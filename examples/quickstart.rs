//! Quickstart: transform a code with EC-FRM and store/read data with it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the paper's pipeline end to end: pick a candidate code, bind it
//! to the EC-FRM layout, inspect a read plan, then use the full object
//! store — normal read, degraded read, disk recovery.

use std::sync::Arc;

use ecfrm::codes::{CandidateCode, LrcCode};
use ecfrm::core::{LayoutKind, Scheme};
use ecfrm::store::ObjectStore;

fn main() {
    // 1. A candidate code: the paper's running example, (6,2,2) LRC
    //    (6 data + 2 local parity + 2 global parity disks).
    let code: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
    println!("candidate code : {}", code.name());
    println!("disks          : {}", code.n());
    println!("fault tolerance: any {} disks\n", code.fault_tolerance());

    // 2. Bind it to layouts and compare the bottleneck of an 8-element
    //    read (paper Figure 3 vs Figure 7(a)).
    for scheme in [
        Scheme::builder(code.clone()).build(),
        Scheme::builder(code.clone())
            .layout(LayoutKind::Rotated)
            .build(),
        Scheme::builder(code.clone())
            .layout(LayoutKind::EcFrm)
            .build(),
    ] {
        let plan = scheme.normal_read_plan(0, 8);
        println!(
            "{:<18} 8-element read: max load {} across {} disks",
            scheme.name(),
            plan.max_load(),
            plan.disks_touched()
        );
    }
    println!();

    // 3. The full storage system over the EC-FRM form.
    let store = ObjectStore::new(
        Scheme::builder(code).layout(LayoutKind::EcFrm).build(),
        4096,
    );
    let payload: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
    store.put("dataset.bin", &payload).expect("put");
    let read = store.get("dataset.bin").expect("normal read");
    assert_eq!(read, payload);
    println!("stored + read back {} bytes (normal read ok)", read.len());

    // 4. Degraded read: fail a disk, read again — reconstruction is
    //    transparent.
    store.fail_disk(2).expect("fail disk 2");
    let read = store.get("dataset.bin").expect("degraded read");
    assert_eq!(read, payload);
    println!("degraded read with disk 2 down: ok");

    // 5. Permanent loss: wipe the disk and rebuild it from survivors.
    let rebuilt = store.recover_disk(2).expect("recovery");
    println!("recovered disk 2: {rebuilt} elements rebuilt");
    let read = store.get("dataset.bin").expect("read after recovery");
    assert_eq!(read, payload);
    println!("read after recovery: ok");
}

//! Failure drill: the §II-D failure taxonomy exercised on a live store.
//!
//! ```text
//! cargo run --release --example failure_drill
//! ```
//!
//! Runs the three failure scenarios the paper's metrics target, over
//! EC-FRM-RS(6,3):
//!
//! 1. **transient failure** (>90% of data-centre failures — upgrades,
//!    reboots): fail a disk, serve degraded reads, heal it;
//! 2. **permanent single-disk loss** (99.75% of recoveries): wipe a disk
//!    and rebuild it group by group;
//! 3. **multi-disk loss up to the MDS limit**: three disks gone at once,
//!    reads still served, then all three rebuilt.

use std::sync::Arc;

use ecfrm::codes::{CandidateCode, RsCode};
use ecfrm::core::{DiskRecovery, LayoutKind, Scheme};
use ecfrm::store::ObjectStore;

fn main() {
    let code: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
    let scheme = Scheme::builder(code).layout(LayoutKind::EcFrm).build();
    println!("scheme: {} (tolerates any 3 of 9 disks)\n", scheme.name());

    let store = ObjectStore::new(scheme.clone(), 8192);
    let payload: Vec<u8> = (0..2_000_000u32)
        .map(|i| ((i * 7 + 13) % 256) as u8)
        .collect();
    store.put("volume.img", &payload).expect("put");
    store.flush();

    // --- Scenario 1: transient failure -------------------------------
    println!("scenario 1: transient failure of disk 5 (no data lost)");
    store.fail_disk(5).expect("fail");
    let plan = store.scheme().degraded_read_plan(0, 12, &[5]);
    println!(
        "  degraded 12-element read: max load {}, cost {:.3} (extra reads: {})",
        plan.max_load(),
        plan.cost(),
        plan.repair_fetched()
    );
    assert_eq!(store.get("volume.img").expect("degraded read"), payload);
    store.heal_disk(5).expect("heal");
    println!("  disk healed, no rebuild needed\n");

    // --- Scenario 2: permanent single-disk loss ----------------------
    println!("scenario 2: permanent loss of disk 1");
    let recovery = DiskRecovery::plan(&scheme, 1, store.stats().stripes);
    println!(
        "  rebuild plan: {} elements from {} reads; per-disk read load {:?}",
        recovery.total_rebuilt(),
        recovery.total_reads(),
        recovery.read_load()
    );
    store.fail_disk(1).expect("fail");
    let rebuilt = store.recover_disk(1).expect("recover");
    println!("  rebuilt {rebuilt} elements; verifying reads...");
    assert_eq!(store.get("volume.img").expect("read"), payload);
    println!("  ok\n");

    // --- Scenario 3: triple failure (MDS limit) ----------------------
    println!("scenario 3: disks 0, 4, 8 all lost (the RS(6,3) limit)");
    for d in [0, 4, 8] {
        store.fail_disk(d).expect("fail");
    }
    assert_eq!(
        store.get("volume.img").expect("triple-degraded read"),
        payload
    );
    println!("  triple-degraded read ok; rebuilding one disk at a time");
    for d in [0, 4, 8] {
        let n = store.recover_disk(d).expect("recover");
        println!("  disk {d}: {n} elements rebuilt");
    }
    assert_eq!(store.get("volume.img").expect("read"), payload);
    println!("  all healthy again — drill complete");
}

//! The paper's motivating workload (§III-A): a library of MP3-sized
//! files — "the size of some common files (like MP3 files) is usually
//! from a few megabytes to dozens of megabytes and the size of each
//! element … is usually several megabytes", so user reads span *several
//! elements* and the most-loaded disk becomes the bottleneck.
//!
//! ```text
//! cargo run --release --example mp3_library
//! ```
//!
//! Stores a song library under standard LRC and EC-FRM-LRC, replays the
//! same random song fetches against both, and reports the modelled read
//! speed of each layout on the Savvio array.

use std::sync::Arc;

use ecfrm::codes::{CandidateCode, LrcCode};
use ecfrm::core::{LayoutKind, Scheme};
use ecfrm::sim::{mean, speed_mb_s, ArraySim, DiskModel};
use ecfrm::store::ObjectStore;
use ecfrm::util::Rng;

/// 1 MB elements, as in the paper's discussion.
const ELEMENT: usize = 1_000_000;

fn main() {
    let code: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
    let mut rng = Rng::seed_from_u64(2015);

    // A library of songs: 3-12 MB each.
    let songs: Vec<(String, usize)> = (0..40)
        .map(|i| {
            (
                format!("track{i:02}.mp3"),
                rng.random_range(3usize..=12) * ELEMENT,
            )
        })
        .collect();
    let total_mb: usize = songs.iter().map(|(_, s)| s / ELEMENT).sum();
    println!("library: {} songs, {total_mb} MB total\n", songs.len());

    for scheme in [
        Scheme::builder(code.clone()).build(),
        Scheme::builder(code.clone())
            .layout(LayoutKind::EcFrm)
            .build(),
    ] {
        let name = scheme.name();
        let sim = ArraySim::uniform(scheme.n_disks(), DiskModel::savvio_10k3(), ELEMENT);
        let store = ObjectStore::new(scheme, ELEMENT);

        // Ingest the library (content is synthetic but unique per song).
        for (i, (title, size)) in songs.iter().enumerate() {
            let body: Vec<u8> = (0..*size).map(|j| ((i * 37 + j) % 256) as u8).collect();
            store.put(title, &body).expect("put song");
        }
        store.flush();

        // Replay 500 random song fetches; model each fetch's time from
        // its read plan on the Savvio array.
        let mut replay = Rng::seed_from_u64(99);
        let mut speeds = Vec::new();
        let mut worst_case_ms: f64 = 0.0;
        for _ in 0..500 {
            let (title, size) = &songs[replay.random_range(0..songs.len())];
            let meta = store.meta(title).expect("song exists");
            let first = meta.offset / ELEMENT as u64;
            let count = size / ELEMENT;
            let plan = store.scheme().normal_read_plan(first, count);
            let t = sim.read_time_ms(&plan.per_disk_load(), &mut replay);
            worst_case_ms = worst_case_ms.max(t);
            speeds.push(speed_mb_s(*size, t));

            // Also actually fetch the bytes through the threaded engine,
            // verifying the data path end to end.
            let body = store.get(title).expect("read song");
            assert_eq!(body.len(), *size);
        }
        println!(
            "{name:<18} mean fetch speed {:>6.1} MB/s | slowest fetch {:>6.0} ms",
            mean(&speeds),
            worst_case_ms
        );
    }

    println!("\nEC-FRM serves the same songs from the same disks faster because");
    println!("sequential elements spread over all n disks, capping the per-disk queue.");
}

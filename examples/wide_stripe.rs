//! Wide stripes: EC-FRM layout math + GF(2^16) Reed–Solomon beyond the
//! 255-device limit of byte symbols.
//!
//! ```text
//! cargo run --release --example wide_stripe
//! ```
//!
//! The paper's construction (Eq. (1)–(4)) is pure arithmetic in `(n, k)`
//! and applies to arbitrarily wide stripes; the `GF(2^8)` symbols of the
//! evaluation cap `n` at 255. This example runs a (240, 60) stripe —
//! 300 devices — using the `WideRs` code over `GF(2^16)` and the same
//! EC-FRM layout, demonstrating that the framework scales to
//! datacenter-wide stripes.

use ecfrm::codes::WideRs;
use ecfrm::layout::{EcFrmLayout, Layout};

fn main() {
    const K: usize = 240;
    const M: usize = 60;
    const N: usize = K + M;
    const ELEMENT: usize = 4096;

    // 1. The layout: 300 columns, gcd(300, 240) = 60 → 5 rows per stripe.
    let layout = EcFrmLayout::new(N, K);
    println!(
        "EC-FRM layout over {N} disks: {} rows/stripe ({} data + {} parity), r = {}",
        layout.rows_per_stripe(),
        layout.data_rows(),
        layout.parity_rows(),
        layout.r()
    );

    // Sequential data covers all 300 disks: a 300-element read loads no
    // disk twice.
    let mut load = vec![0usize; N];
    for idx in 0..N as u64 {
        load[layout.data_location(idx).disk] += 1;
    }
    assert!(load.iter().all(|&l| l == 1));
    println!("300 consecutive elements -> one element per disk (max load 1)");

    // 2. The code: GF(2^16) Reed-Solomon, any 60 of 300 elements may die.
    let rs = WideRs::new(K, M);
    println!("WideRs({K},{M}): MDS over GF(2^16), tolerates any {M} of {N} elements");
    let data: Vec<Vec<u8>> = (0..K)
        .map(|i| {
            (0..ELEMENT)
                .map(|j| ((i * 31 + j * 7 + 5) % 256) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
    let mut parity = vec![vec![0u8; ELEMENT]; M];
    let t0 = std::time::Instant::now();
    rs.encode(&refs, &mut parity);
    println!(
        "encoded {:.2} MB of data into {:.2} MB of parity in {:.0} ms",
        (K * ELEMENT) as f64 / 1e6,
        (M * ELEMENT) as f64 / 1e6,
        t0.elapsed().as_secs_f64() * 1e3
    );

    // 3. Catastrophe: 60 simultaneous losses, spread over data and parity.
    let mut shards: Vec<Option<Vec<u8>>> = data
        .iter()
        .cloned()
        .map(Some)
        .chain(parity.iter().cloned().map(Some))
        .collect();
    let mut erased = Vec::new();
    for i in 0..M {
        let e = (i * 5) % N;
        if shards[e].is_some() {
            shards[e] = None;
            erased.push(e);
        }
    }
    println!(
        "erased {} elements: {:?}…",
        erased.len(),
        &erased[..8.min(erased.len())]
    );
    let t0 = std::time::Instant::now();
    rs.decode(&mut shards, ELEMENT)
        .expect("within MDS tolerance");
    println!("decoded in {:.0} ms", t0.elapsed().as_secs_f64() * 1e3);
    for (i, d) in data.iter().enumerate() {
        assert_eq!(shards[i].as_deref().unwrap(), &d[..], "data {i}");
    }
    println!("all {} erased elements restored bit-exactly", erased.len());
}

//! ASCII reproduction of the paper's load-distribution figures.
//!
//! ```text
//! cargo run --example load_balance
//! ```
//!
//! Prints the per-disk access counts behind Figure 3 (standard/rotated
//! LRC, 8-element read), Figure 7(a) (EC-FRM-LRC, same read), and
//! Figure 7(b)/(c) (14-element degraded reads where EC-FRM sometimes —
//! but not always — lowers the bottleneck).

use std::sync::Arc;

use ecfrm::codes::{CandidateCode, LrcCode};
use ecfrm::core::{LayoutKind, ReadPlan, Scheme};

fn show(title: &str, plan: &ReadPlan, failed: &[usize]) {
    println!("{title}");
    for (d, &l) in plan.per_disk_load().iter().enumerate() {
        let tag = if failed.contains(&d) { " X" } else { "" };
        println!("  disk {d:>2} |{}{tag}", "█".repeat(l));
    }
    println!(
        "  -> max load {}, {} disks contributing, {} elements fetched\n",
        plan.max_load(),
        plan.disks_touched(),
        plan.total_fetched()
    );
}

fn main() {
    let code: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
    let standard = Scheme::builder(code.clone()).build();
    let rotated = Scheme::builder(code.clone())
        .layout(LayoutKind::Rotated)
        .build();
    let ecfrm = Scheme::builder(code).layout(LayoutKind::EcFrm).build();

    println!("== Figure 3: the 8-element read bottleneck ==\n");
    show(
        "Figure 3(a): standard (6,2,2) LRC, read elements 0..8",
        &standard.normal_read_plan(0, 8),
        &[],
    );
    show(
        "Figure 3(b): rotated stripes, same read",
        &rotated.normal_read_plan(0, 8),
        &[],
    );

    println!("== Figure 7(a): EC-FRM fixes it ==\n");
    show(
        "EC-FRM-LRC(6,2,2), read elements 0..8",
        &ecfrm.normal_read_plan(0, 8),
        &[],
    );

    println!("== Figure 7(b)/(c): degraded 14-element reads ==\n");
    // A favourable case: the repair's local group overlaps the demand set.
    show(
        "EC-FRM-LRC, read 0..14 with disk 2 failed (favourable)",
        &ecfrm.degraded_read_plan(0, 14, &[2]),
        &[2],
    );
    // A less favourable case: "things are not always fine" (paper §V-A) —
    // scan for a start/disk pair whose bottleneck stays high.
    let mut worst = (0u64, 0usize, 0usize);
    for start in 0..30u64 {
        for disk in 0..10usize {
            let p = ecfrm.degraded_read_plan(start, 14, &[disk]);
            if p.max_load() > worst.2 {
                worst = (start, disk, p.max_load());
            }
        }
    }
    show(
        &format!(
            "EC-FRM-LRC, read {}..{} with disk {} failed (unfavourable)",
            worst.0,
            worst.0 + 14,
            worst.1
        ),
        &ecfrm.degraded_read_plan(worst.0, 14, &[worst.1]),
        &[worst.1],
    );

    println!("Compare: standard LRC under the same degraded read —");
    show(
        "LRC(6,2,2) standard, read 0..14 with disk 2 failed",
        &standard.degraded_read_plan(0, 14, &[2]),
        &[2],
    );
}

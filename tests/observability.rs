//! Observability integration: the paper's Figure 8 mechanism as a
//! regression test. EC-FRM's whole point is that sequential reads spread
//! over all `n` disks instead of piling onto the `k` data disks, so the
//! store's `disk_load` board must show a strictly tighter max/mean
//! spread for EC-FRM than for the standard form — and the latency
//! histograms must actually populate on the read path.

use std::sync::Arc;

use ecfrm::codes::RsCode;
use ecfrm::core::{LayoutKind, Scheme};
use ecfrm::store::ObjectStore;

const ELEMENT: usize = 512;
const STRIPES: usize = 32;

/// Ingest one object and sweep it with sequential 8-element reads (the
/// paper's Figure 3/7 request shape), returning the store afterwards.
fn store_after_sequential_reads(kind: LayoutKind) -> ObjectStore {
    let code = Arc::new(RsCode::vandermonde(6, 3));
    let scheme = Scheme::builder(code).layout(kind).build();
    let store = ObjectStore::new(scheme, ELEMENT);
    let total = ELEMENT * 6 * STRIPES;
    let data: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
    store.put("obj", &data).unwrap();
    let window = (8 * ELEMENT) as u64;
    let mut off = 0u64;
    while off + window <= total as u64 {
        let got = store.get_range("obj", off, window).unwrap();
        assert_eq!(got.len(), window as usize);
        off += window;
    }
    store
}

fn load_imbalance(store: &ObjectStore) -> f64 {
    let snap = store.recorder().snapshot();
    let board = snap.boards.get("disk_load").expect("disk_load board");
    assert!(board.max_elements() > 0, "reads must register disk load");
    board.imbalance()
}

#[test]
fn ecfrm_load_spread_strictly_tighter_than_standard() {
    let std_imb = load_imbalance(&store_after_sequential_reads(LayoutKind::Standard));
    let ec_imb = load_imbalance(&store_after_sequential_reads(LayoutKind::EcFrm));
    // Standard reads never touch the m parity disks, so max/mean is at
    // least n/k = 1.5 here; EC-FRM spreads the same reads evenly.
    assert!(std_imb >= 1.4, "standard imbalance {std_imb:.3}");
    assert!(
        ec_imb < std_imb,
        "EC-FRM imbalance {ec_imb:.3} must be strictly tighter than standard {std_imb:.3}"
    );
    assert!(
        ec_imb < 1.2,
        "EC-FRM spread should be near-even, got {ec_imb:.3}"
    );
}

#[test]
fn read_path_populates_latency_histograms() {
    let store = store_after_sequential_reads(LayoutKind::EcFrm);
    let snap = store.recorder().snapshot();

    let reads = snap.counters.get("reads").copied().unwrap_or(0);
    assert!(reads > 0, "read counter must count the sweep");

    for name in ["plan_us", "read_us"] {
        let h = snap
            .histograms
            .get(name)
            .unwrap_or_else(|| panic!("{name} histogram missing"));
        assert_eq!(h.count, reads, "{name} records once per read");
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
        assert!(h.p99() <= h.max);
    }

    // The flattened wire/JSON form carries the percentile columns.
    let flat = snap.flatten();
    for key in ["read_us.p50", "read_us.p95", "read_us.p99", "read_us.max"] {
        assert!(
            flat.iter().any(|(k, _)| k == key),
            "flatten() missing {key}"
        );
    }
    let json = snap.to_json();
    assert!(json.contains("disk_load") && json.contains("read_us"));
}

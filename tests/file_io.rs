//! Differential suite for the `FileDisk` read backends.
//!
//! The same randomized batch workload — absent offsets, duplicate and
//! overlapping sequential runs, element sizes straddling the 512/4096
//! alignment boundaries `O_DIRECT` cares about — runs against three
//! backends: `MemDisk` (the reference), the blocking sorted-pass
//! `FileDisk`, and the io_uring `FileDisk`. Bytes must be identical
//! everywhere, and the reactor's `io.submitted == io.completed` balance
//! must hold after every array-level pass.
//!
//! Under `ECFRM_FORCE_FILE_IO=blocking` (the CI fallback leg) or on
//! kernels without io_uring, the uring disk silently degrades to the
//! blocking path and the suite still runs end to end — the differential
//! property is backend-independent by construction.
//!
//! A separate test kills the uring engine mid-flight and asserts every
//! outstanding handle resolves (to all-`None` or to complete pre-kill
//! bytes) instead of hanging.

use std::sync::Arc;

use ecfrm::sim::{DiskBackend, FileDisk, FileIoConfig, FileIoMode, MemDisk, ThreadedArray};

/// Element sizes ±1 around the alignment boundaries, plus a tiny one.
const SIZES: &[usize] = &[8, 511, 512, 513, 4096, 4097];
const PRESENT_SPAN: u64 = 96;
const PROBE_SPAN: u64 = 128; // offsets beyond PRESENT_SPAN probe absence
const TRIALS: usize = 40;

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

fn element(offset: u64, es: usize, salt: u64) -> Vec<u8> {
    let seed = offset.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
    (0..es)
        .map(|i| (seed.wrapping_add(i as u64).wrapping_mul(131) % 251) as u8)
        .collect()
}

fn tmpfile(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ecfrm-fileio-{tag}-{}", std::process::id()))
}

/// Whether this run can construct a disk that genuinely uses uring.
fn uring_available() -> bool {
    ecfrm::sim::uring::supported() && std::env::var("ECFRM_FORCE_FILE_IO").is_err()
}

/// A random batch: mixed present/absent offsets, duplicates, and
/// sequential runs (so the uring coalescer sees both shapes).
fn random_batch(x: &mut u64) -> Vec<u64> {
    let len = (xorshift(x) % 48) as usize;
    let mut batch = Vec::with_capacity(len);
    while batch.len() < len {
        let o = xorshift(x) % PROBE_SPAN;
        batch.push(o);
        // Half the time, extend into a short sequential run.
        if xorshift(x).is_multiple_of(2) {
            let run = xorshift(x) % 4;
            for d in 1..=run {
                if batch.len() < len {
                    batch.push((o + d) % PROBE_SPAN);
                }
            }
        }
    }
    batch
}

#[test]
fn backends_read_identical_bytes() {
    for &es in SIZES {
        let salt = es as u64;
        let mem = MemDisk::new();
        let pb = tmpfile(&format!("diff-blk-{es}"));
        let pu = tmpfile(&format!("diff-ur-{es}"));
        let blocking = FileDisk::create_with(&pb, es, FileIoConfig::blocking()).unwrap();
        // Auto mode: uring where the kernel has it, blocking fallback
        // elsewhere (and under ECFRM_FORCE_FILE_IO=blocking) — the
        // differential property must hold either way.
        let uring = FileDisk::create_with(&pu, es, FileIoConfig::default()).unwrap();
        if uring_available() {
            assert!(
                uring.io_backend().starts_with("uring"),
                "probe says uring works, auto disk must use it (got {})",
                uring.io_backend()
            );
        }

        // Populate a random subset so some offsets inside the span are
        // genuinely absent on all three disks.
        let mut x = 0xD1F7 + salt;
        for o in 0..PRESENT_SPAN {
            if !xorshift(&mut x).is_multiple_of(4) {
                let bytes = element(o, es, salt);
                mem.write(o, bytes.clone());
                blocking.write(o, bytes.clone());
                uring.write(o, bytes);
            }
        }

        for trial in 0..TRIALS {
            let batch = random_batch(&mut x);
            let want = mem.read_many(&batch);
            assert_eq!(
                blocking.read_many(&batch),
                want,
                "blocking diverged from MemDisk (es {es}, trial {trial})"
            );
            assert_eq!(
                uring.read_many(&batch),
                want,
                "{} diverged from MemDisk (es {es}, trial {trial})",
                uring.io_backend()
            );
        }
        let _ = std::fs::remove_file(&pb);
        let _ = std::fs::remove_file(&pu);
    }
}

#[test]
fn arrays_balance_submissions_across_backends() {
    const ES: usize = 513; // unaligned on purpose
    let make = |mode: FileIoMode, tag: &str| -> (ThreadedArray, Vec<std::path::PathBuf>) {
        let paths: Vec<_> = (0..3).map(|d| tmpfile(&format!("bal-{tag}-{d}"))).collect();
        let backends: Vec<Arc<dyn DiskBackend>> = paths
            .iter()
            .map(|p| {
                let cfg = FileIoConfig {
                    mode,
                    ..FileIoConfig::default()
                };
                Arc::new(FileDisk::create_with(p, ES, cfg).unwrap()) as Arc<dyn DiskBackend>
            })
            .collect();
        (ThreadedArray::from_backends(backends), paths)
    };

    for (mode, tag) in [(FileIoMode::Blocking, "blk"), (FileIoMode::Auto, "auto")] {
        let (array, paths) = make(mode, tag);
        let items: Vec<_> = (0..60u64)
            .map(|i| (((i % 3) as usize, i / 3), element(i, ES, 99)))
            .collect();
        let want: Vec<_> = items.iter().map(|(_, b)| b.clone()).collect();
        let addrs: Vec<_> = items.iter().map(|(a, _)| *a).collect();
        array.write_batch(items);

        let mut x = 0xBA1A;
        for _ in 0..20 {
            let pick: Vec<_> = (0..24)
                .map(|_| addrs[(xorshift(&mut x) % addrs.len() as u64) as usize])
                .collect();
            let got = array.read_batch(&pick);
            for (g, a) in got.iter().zip(&pick) {
                let idx = addrs.iter().position(|p| p == a).unwrap();
                assert_eq!(g.as_ref(), Some(&want[idx]), "wrong bytes ({tag})");
            }
        }
        let io = array.io_stats().snapshot();
        assert_eq!(
            io.submitted, io.completed,
            "read_batch waits for every reply, so submissions balance ({tag})"
        );
        drop(array);
        for p in paths {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[test]
fn mid_flight_kill_resolves_all_handles() {
    if !uring_available() {
        eprintln!("uring unavailable (kernel or ECFRM_FORCE_FILE_IO) — skipped");
        return;
    }
    const ES: usize = 4096;
    let p = tmpfile("kill");
    let disk = Arc::new(
        FileDisk::create_with(
            &p,
            ES,
            FileIoConfig {
                mode: FileIoMode::Uring,
                depth: 4, // tiny ring: plenty still queued at kill time
                direct: true,
            },
        )
        .unwrap(),
    );
    assert!(disk.io_backend().starts_with("uring"));
    for o in 0..PROBE_SPAN {
        disk.write(o, element(o, ES, 7));
    }

    let handles: Vec<_> = (0..64)
        .map(|_| disk.submit_read_many(&(0..PROBE_SPAN).collect::<Vec<_>>()))
        .collect();
    assert!(disk.kill_io_engine(), "uring disk has an engine to kill");
    for (i, handle) in handles.into_iter().enumerate() {
        let got = handle.wait(); // the hang is the failure mode
        assert_eq!(got.len(), PROBE_SPAN as usize, "batch {i} kept its shape");
        for (o, g) in got.iter().enumerate() {
            // Batches that completed before the kill carry real bytes;
            // killed ones are None. Never torn, never wrong.
            if let Some(bytes) = g {
                assert_eq!(bytes, &element(o as u64, ES, 7), "batch {i} elem {o}");
            }
        }
    }
    // The engine stays dead: later submissions resolve all-None.
    assert_eq!(disk.read_many(&[0, 1]), vec![None, None]);
    // The blocking disk has no engine, and says so.
    let pb = tmpfile("kill-blk");
    let blocking = FileDisk::create_with(&pb, ES, FileIoConfig::blocking()).unwrap();
    assert!(!blocking.kill_io_engine());
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_file(&pb);
}

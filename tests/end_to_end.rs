//! Cross-crate integration tests: the full stack (gf → codes → layout →
//! core → sim → store) exercised over the code × layout matrix.

use std::sync::Arc;

use ecfrm::codes::{CandidateCode, LrcCode, RsCode, XorCode};
use ecfrm::core::{LayoutKind, Scheme};
use ecfrm::store::{ObjectStore, StoreError};

fn all_codes() -> Vec<Arc<dyn CandidateCode>> {
    vec![
        Arc::new(RsCode::vandermonde(6, 3)),
        Arc::new(RsCode::cauchy(8, 4)),
        Arc::new(LrcCode::new(6, 2, 2)),
        Arc::new(LrcCode::new(10, 2, 4)),
        Arc::new(XorCode::new(5)),
    ]
}

fn all_forms(code: Arc<dyn CandidateCode>) -> Vec<Scheme> {
    vec![
        Scheme::builder(code.clone()).build(),
        Scheme::builder(code.clone())
            .layout(LayoutKind::Rotated)
            .build(),
        Scheme::builder(code.clone())
            .layout(LayoutKind::EcFrm)
            .build(),
        Scheme::builder(code)
            .layout(LayoutKind::Shuffled)
            .seed(3)
            .build(),
    ]
}

fn blob(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 131 + seed as usize * 41 + 17) % 256) as u8)
        .collect()
}

#[test]
fn full_matrix_put_get() {
    for code in all_codes() {
        for scheme in all_forms(code) {
            let name = scheme.name();
            let store = ObjectStore::new(scheme, 256);
            let data = blob(40_000, 1);
            store.put("obj", &data).unwrap();
            assert_eq!(store.get("obj").unwrap(), data, "{name}");
        }
    }
}

#[test]
fn full_matrix_degraded_get_single_failure() {
    for code in all_codes() {
        for scheme in all_forms(code) {
            let name = scheme.name();
            let n = scheme.n_disks();
            let store = ObjectStore::new(scheme, 128);
            let data = blob(20_000, 2);
            store.put("obj", &data).unwrap();
            for d in 0..n {
                store.fail_disk(d).unwrap();
                assert_eq!(store.get("obj").unwrap(), data, "{name} disk {d}");
                store.heal_disk(d).unwrap();
            }
        }
    }
}

#[test]
fn full_matrix_recover_every_disk() {
    for code in all_codes() {
        for scheme in all_forms(code) {
            let name = scheme.name();
            let n = scheme.n_disks();
            let store = ObjectStore::new(scheme, 128);
            let data = blob(15_000, 3);
            store.put("obj", &data).unwrap();
            store.flush();
            for d in 0..n {
                store.fail_disk(d).unwrap();
                store.recover_disk(d).unwrap();
                assert_eq!(store.get("obj").unwrap(), data, "{name} disk {d}");
            }
        }
    }
}

#[test]
fn max_tolerance_degraded_reads() {
    // Fail exactly `fault_tolerance` disks for each code and read through
    // the EC-FRM form.
    for code in all_codes() {
        let t = code.fault_tolerance();
        let n = code.n();
        let scheme = Scheme::builder(code).layout(LayoutKind::EcFrm).build();
        let name = scheme.name();
        let store = ObjectStore::new(scheme, 128);
        let data = blob(25_000, 4);
        store.put("obj", &data).unwrap();
        // A few adversarial subsets: leading, trailing, strided.
        let subsets: Vec<Vec<usize>> = vec![
            (0..t).collect(),
            (n - t..n).collect(),
            (0..t).map(|i| (i * 2) % n).collect(),
        ];
        for disks in subsets {
            let mut uniq = disks.clone();
            uniq.sort_unstable();
            uniq.dedup();
            if uniq.len() < disks.len() {
                continue;
            }
            for &d in &disks {
                store.fail_disk(d).unwrap();
            }
            assert_eq!(store.get("obj").unwrap(), data, "{name} failed {disks:?}");
            for &d in &disks {
                store.heal_disk(d).unwrap();
            }
        }
    }
}

#[test]
fn many_small_objects_across_stripes() {
    let scheme = Scheme::builder(Arc::new(LrcCode::new(6, 2, 2)))
        .layout(LayoutKind::EcFrm)
        .build();
    let store = ObjectStore::new(scheme, 64);
    let objects: Vec<(String, Vec<u8>)> = (0..100)
        .map(|i| (format!("o{i}"), blob(37 * (i + 1), i as u8)))
        .collect();
    for (name, data) in &objects {
        store.put(name, data).unwrap();
    }
    // Interleave failures with reads.
    store.fail_disk(7).unwrap();
    for (name, data) in objects.iter().rev() {
        assert_eq!(&store.get(name).unwrap()[..], &data[..], "{name}");
    }
}

#[test]
fn range_reads_cross_stripe_boundaries() {
    let scheme = Scheme::builder(Arc::new(RsCode::vandermonde(6, 3)))
        .layout(LayoutKind::EcFrm)
        .build();
    let store = ObjectStore::new(scheme.clone(), 100);
    let stripe_bytes = scheme.data_per_stripe() * 100;
    let data = blob(stripe_bytes * 3 + 57, 5);
    store.put("span", &data).unwrap();
    // Ranges straddling each stripe boundary.
    for b in 1..=3usize {
        let mid = b * stripe_bytes;
        let got = store.get_range("span", (mid - 50) as u64, 100).unwrap();
        assert_eq!(&got[..], &data[mid - 50..mid + 50], "boundary {b}");
    }
}

#[test]
fn data_loss_is_an_error_never_garbage() {
    let scheme = Scheme::builder(Arc::new(XorCode::new(4))).build();
    let store = ObjectStore::new(scheme, 64);
    let data = blob(5_000, 6);
    store.put("obj", &data).unwrap();
    store.get("obj").unwrap();
    store.fail_disk(0).unwrap();
    store.fail_disk(1).unwrap();
    match store.get("obj") {
        Err(StoreError::DataLoss(_)) => {}
        other => panic!("expected DataLoss, got {other:?}"),
    }
}

#[test]
fn facade_reexports_work() {
    // The facade crate exposes the whole stack coherently.
    assert_eq!(ecfrm::VERSION, "0.1.0");
    let x = ecfrm::gf::Gf8;
    let _ = x;
    let m = ecfrm::gf::Matrix::<ecfrm::gf::Gf8>::identity(3);
    assert!(m.is_nonsingular());
    let l = ecfrm::layout::EcFrmLayout::new(10, 6);
    use ecfrm::layout::Layout;
    assert_eq!(l.rows_per_stripe(), 5);
}

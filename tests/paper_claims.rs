//! The paper's quantitative claims, asserted as reproducible shapes.
//!
//! Each test cites the claim it checks. Absolute MB/s differ from the
//! paper's testbed; the asserted quantities are the *relative* results —
//! who wins, roughly by how much, and where the crossovers are. Bounds
//! are set loosely around the paper's reported ranges so the tests are
//! robust to seed changes while still failing if a layout regresses.

use ecfrm_bench::experiment::{run_degraded, run_normal, ExperimentConfig};
use ecfrm_bench::params::{lrc_params, lrc_schemes, rs_params, rs_schemes};
use ecfrm_bench::report::gain_pct;

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        trials_normal: 800,
        trials_degraded: 1200,
        address_space: 6_000,
        ..ExperimentConfig::default()
    }
}

/// §VI-B / Figure 8(a): "EC-FRM-RS achieves 19.2% to 33.9% higher read
/// speed [than standard RS]".
#[test]
fn fig8a_ecfrm_rs_normal_read_gain() {
    let cfg = cfg();
    for (k, m) in rs_params() {
        let [std, _, ec] = rs_schemes(k, m);
        let g = gain_pct(
            run_normal(&ec, &cfg).speed_mb_s,
            run_normal(&std, &cfg).speed_mb_s,
        );
        assert!(
            (12.0..55.0).contains(&g),
            "RS({k},{m}) EC-FRM gain {g:.1}% outside the paper's ballpark (19.2-33.9%)"
        );
    }
}

/// §VI-B / Figure 8(a): "EC-FRM-RS code achieves 17.7% to 18.1% higher
/// read speed than Reed-Solomon code with rotated stripes".
#[test]
fn fig8a_ecfrm_rs_beats_rotated() {
    let cfg = cfg();
    for (k, m) in rs_params() {
        let [_, rot, ec] = rs_schemes(k, m);
        let g = gain_pct(
            run_normal(&ec, &cfg).speed_mb_s,
            run_normal(&rot, &cfg).speed_mb_s,
        );
        assert!(
            (8.0..35.0).contains(&g),
            "RS({k},{m}) EC-FRM-vs-rotated gain {g:.1}% outside ballpark (17.7-18.1%)"
        );
    }
}

/// §VI-B / Figure 8(b): "EC-FRM-LRC gains 23.5% to 46.9% higher read
/// speed than standard LRC".
#[test]
fn fig8b_ecfrm_lrc_normal_read_gain() {
    let cfg = cfg();
    for (k, l, m) in lrc_params() {
        let [std, _, ec] = lrc_schemes(k, l, m);
        let g = gain_pct(
            run_normal(&ec, &cfg).speed_mb_s,
            run_normal(&std, &cfg).speed_mb_s,
        );
        assert!(
            (18.0..60.0).contains(&g),
            "LRC({k},{l},{m}) EC-FRM gain {g:.1}% outside ballpark (23.5-46.9%)"
        );
    }
}

/// §VI-B: rotated stripes land between standard and EC-FRM on normal
/// reads (they "improve the read speed in some level" but "still provide
/// much lower speed than EC-FRM-Code").
#[test]
fn rotated_sits_between_standard_and_ecfrm() {
    let cfg = cfg();
    for (k, m) in rs_params() {
        let [std, rot, ec] = rs_schemes(k, m);
        let s = run_normal(&std, &cfg).speed_mb_s;
        let r = run_normal(&rot, &cfg).speed_mb_s;
        let e = run_normal(&ec, &cfg).speed_mb_s;
        assert!(
            s < r && r < e,
            "RS({k},{m}): expected {s:.0} < {r:.0} < {e:.0}"
        );
    }
}

/// §VI-C / Figure 9(a)(b): "the distinctions [in degraded read cost]
/// between the different forms … are very tiny" (<0.9% RS, <0.7% LRC in
/// the paper; we allow a few percent at our trial counts).
#[test]
fn fig9ab_degraded_cost_form_invariant() {
    let cfg = cfg();
    for (k, m) in rs_params() {
        let [std, rot, ec] = rs_schemes(k, m);
        let c: Vec<f64> = [&std, &rot, &ec]
            .iter()
            .map(|s| run_degraded(s, &cfg).cost)
            .collect();
        let spread = (c.iter().cloned().fold(f64::MIN, f64::max)
            / c.iter().cloned().fold(f64::MAX, f64::min))
            - 1.0;
        assert!(
            spread < 0.06,
            "RS({k},{m}) cost spread {:.1}%",
            spread * 100.0
        );
    }
}

/// §VI-C: "the degraded read cost for LRC code is much less than that in
/// Reed-Solomon code" (locality: repairs read k/l, not k).
#[test]
fn fig9ab_lrc_cost_below_rs() {
    let cfg = cfg();
    for ((k, m), (lk, ll, lm)) in rs_params().into_iter().zip(lrc_params()) {
        let [rs_std, _, _] = rs_schemes(k, m);
        let [lrc_std, _, _] = lrc_schemes(lk, ll, lm);
        let rs_cost = run_degraded(&rs_std, &cfg).cost;
        let lrc_cost = run_degraded(&lrc_std, &cfg).cost;
        assert!(
            lrc_cost + 0.05 < rs_cost,
            "LRC({lk},{ll},{lm}) cost {lrc_cost:.3} not clearly below RS({k},{m}) {rs_cost:.3}"
        );
    }
}

/// §VI-C / Figure 9(c): "EC-FRM-RS code achieves 9.1% to 9.9% higher
/// [degraded read] speed than standard Reed-Solomon code".
#[test]
fn fig9c_ecfrm_rs_degraded_gain() {
    let cfg = cfg();
    for (k, m) in rs_params() {
        let [std, _, ec] = rs_schemes(k, m);
        let g = gain_pct(
            run_degraded(&ec, &cfg).speed_mb_s,
            run_degraded(&std, &cfg).speed_mb_s,
        );
        assert!(
            (4.0..20.0).contains(&g),
            "RS({k},{m}) degraded gain {g:.1}% outside ballpark (9.1-9.9%)"
        );
    }
}

/// §VI-C: against *rotated* RS the degraded-read margin is small and can
/// go either way ("achieves 4.7% higher … when k = 10, but provides
/// 0.26% and 2.9% lower … when k = 8 and k = 6") — assert only that the
/// difference is small.
#[test]
fn fig9c_ecfrm_vs_rotated_is_a_wash() {
    let cfg = cfg();
    for (k, m) in rs_params() {
        let [_, rot, ec] = rs_schemes(k, m);
        let g = gain_pct(
            run_degraded(&ec, &cfg).speed_mb_s,
            run_degraded(&rot, &cfg).speed_mb_s,
        );
        assert!(
            g.abs() < 12.0,
            "RS({k},{m}) EC-FRM-vs-rotated degraded margin {g:.1}% should be small"
        );
    }
}

/// §VI-C / Figure 9(d): "EC-FRM-LRC code gains 3.3% to 12.8% higher
/// degraded read speed than standard LRC code", and beats rotated LRC
/// ("2.6%, 2.9%, and 5.7% higher … when k = 6, 8, 10").
#[test]
fn fig9d_ecfrm_lrc_degraded_gains() {
    let cfg = cfg();
    for (k, l, m) in lrc_params() {
        let [std, rot, ec] = lrc_schemes(k, l, m);
        let e = run_degraded(&ec, &cfg).speed_mb_s;
        let g_std = gain_pct(e, run_degraded(&std, &cfg).speed_mb_s);
        let g_rot = gain_pct(e, run_degraded(&rot, &cfg).speed_mb_s);
        assert!(
            (2.0..25.0).contains(&g_std),
            "LRC({k},{l},{m}) degraded gain vs standard {g_std:.1}% outside ballpark"
        );
        assert!(
            g_rot > 0.0,
            "LRC({k},{l},{m}) EC-FRM should beat rotated on degraded reads ({g_rot:.1}%)"
        );
    }
}

/// §IV-C / §V-B: EC-FRM keeps the candidate code's fault tolerance and
/// storage overhead for every Table I parameter set.
#[test]
fn properties_preserved_for_all_table_one_parameters() {
    for (k, m) in rs_params() {
        let [std, _, ec] = rs_schemes(k, m);
        assert_eq!(std.n_disks(), ec.n_disks(), "storage overhead changed");
        // EC-FRM placement is stripe-periodic, so 2 stripes suffice.
        assert!(ec.verify_disk_tolerance(m, 2), "RS({k},{m})");
    }
    for (k, l, m) in lrc_params() {
        let [_, _, ec] = lrc_schemes(k, l, m);
        assert!(
            ec.verify_disk_tolerance(m + 1, 2),
            "LRC({k},{l},{m}) must tolerate any {} disks",
            m + 1
        );
    }
}

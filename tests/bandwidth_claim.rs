//! §III's scoping assumption, tested: the paper's results hold "with
//! sufficient bandwidth"; once the client link binds, layout stops
//! mattering and fetch volume takes over.

use std::sync::Arc;

use ecfrm::codes::{CandidateCode, LrcCode, RsCode};
use ecfrm::core::{LayoutKind, Scheme};
use ecfrm::sim::{ClusterSim, DiskModel, NetModel};

fn mean_degraded_speed(scheme: &Scheme, cluster: &ClusterSim) -> f64 {
    let mut total = 0.0;
    let mut n = 0;
    for start in 0..60u64 {
        for failed in 0..scheme.n_disks() {
            // Deterministically mixed sizes 1..=20, as in §VI's workload.
            let size = 1 + ((start * 7 + failed as u64 * 3) % 20) as usize;
            let plan = scheme.degraded_read_plan(start, size, &[failed]);
            total += cluster.read_speed_mb_s(size, &plan.per_disk_load());
            n += 1;
        }
    }
    total / n as f64
}

#[test]
fn sufficient_bandwidth_preserves_layout_gains() {
    let code: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
    let cluster = ClusterSim::new(DiskModel::savvio_10k3(), NetModel::sufficient(), 1_000_000);
    let std = mean_degraded_speed(&Scheme::builder(code.clone()).build(), &cluster);
    let ec = mean_degraded_speed(
        &Scheme::builder(code).layout(LayoutKind::EcFrm).build(),
        &cluster,
    );
    assert!(
        ec > std * 1.05,
        "with sufficient bandwidth EC-FRM must win: {ec:.1} vs {std:.1}"
    );
}

#[test]
fn bound_bandwidth_collapses_layout_gains() {
    let code: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
    let slow = NetModel {
        node_uplink_mb_s: f64::INFINITY,
        client_downlink_mb_s: 100.0, // far below the array's raw rate
        rtt_ms: 0.0,
    };
    let cluster = ClusterSim::new(DiskModel::savvio_10k3(), slow, 1_000_000);
    let std = mean_degraded_speed(&Scheme::builder(code.clone()).build(), &cluster);
    let ec = mean_degraded_speed(
        &Scheme::builder(code).layout(LayoutKind::EcFrm).build(),
        &cluster,
    );
    let gap = (ec / std - 1.0).abs();
    assert!(
        gap < 0.03,
        "with a bound downlink the forms must converge: {ec:.1} vs {std:.1}"
    );
}

#[test]
fn under_bound_bandwidth_lrc_beats_rs_by_cost() {
    // When volume is everything, LRC's lower degraded cost (k/l repair
    // reads) gives it the edge the Fig 9(a)/(b) cost metric predicts.
    let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
    let lrc: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
    let slow = NetModel {
        node_uplink_mb_s: f64::INFINITY,
        client_downlink_mb_s: 100.0,
        rtt_ms: 0.0,
    };
    let cluster = ClusterSim::new(DiskModel::savvio_10k3(), slow, 1_000_000);
    let rs_speed = mean_degraded_speed(&Scheme::builder(rs).build(), &cluster);
    let lrc_speed = mean_degraded_speed(&Scheme::builder(lrc).build(), &cluster);
    assert!(
        lrc_speed > rs_speed * 1.05,
        "LRC {lrc_speed:.1} should beat RS {rs_speed:.1} when bandwidth binds"
    );
}

//! Real-file persistence: `ThreadedArray` over `FileDisk` backends.
//!
//! The simulated benches use in-memory disks; these tests pin down the
//! file-backed path — batch round-trips through real files, survival of
//! a close-and-reopen cycle, and a full `ObjectStore` over reopened
//! disks.

use std::sync::Arc;

use ecfrm::codes::LrcCode;
use ecfrm::core::{LayoutKind, Scheme};
use ecfrm::integrity::FOOTER_LEN;
use ecfrm::sim::{Address, DiskBackend, FileDisk, ThreadedArray};
use ecfrm::store::ObjectStore;

const ELEMENT: usize = 256;
/// On-disk cell size for store-backed disks: payload plus the
/// per-element checksum footer the store appends at seal time.
const CELL: usize = ELEMENT + FOOTER_LEN;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ecfrm-file-array-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn file_backends(dir: &std::path::Path, n: usize, cell: usize) -> Vec<Arc<dyn DiskBackend>> {
    (0..n)
        .map(|d| {
            Arc::new(FileDisk::create(dir.join(format!("d{d}.bin")), cell).unwrap())
                as Arc<dyn DiskBackend>
        })
        .collect()
}

#[test]
fn threaded_array_roundtrips_through_files() {
    let dir = tmpdir("roundtrip");
    let array = ThreadedArray::from_backends(file_backends(&dir, 4, ELEMENT));

    let items: Vec<(Address, Vec<u8>)> = (0..32u64)
        .map(|i| {
            (
                ((i % 4) as usize, i / 4),
                vec![(i * 3 % 251) as u8; ELEMENT],
            )
        })
        .collect();
    let addrs: Vec<Address> = items.iter().map(|(a, _)| *a).collect();
    let want: Vec<Vec<u8>> = items.iter().map(|(_, b)| b.clone()).collect();
    array.write_batch(items);

    let got = array.read_batch(&addrs);
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.as_ref(), Some(w));
    }
    // Absent offsets read as None, not junk.
    assert_eq!(array.read_batch(&[(0, 999)]), vec![None]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn file_disks_survive_reopen() {
    let dir = tmpdir("reopen");
    {
        let array = ThreadedArray::from_backends(file_backends(&dir, 3, ELEMENT));
        array.write_batch(
            (0..9u64)
                .map(|i| (((i % 3) as usize, i / 3), vec![i as u8 + 1; ELEMENT]))
                .collect(),
        );
    } // arrays and disks dropped: files closed

    let reopened: Vec<Arc<dyn DiskBackend>> = (0..3)
        .map(|d| {
            Arc::new(FileDisk::open(dir.join(format!("d{d}.bin")), ELEMENT).unwrap())
                as Arc<dyn DiskBackend>
        })
        .collect();
    let array = ThreadedArray::from_backends(reopened);
    for i in 0..9u64 {
        let got = array.read_batch(&[((i % 3) as usize, i / 3)]);
        assert_eq!(got[0].as_ref().unwrap(), &vec![i as u8 + 1; ELEMENT]);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn object_store_over_files_survives_reopen_and_disk_loss() {
    let dir = tmpdir("store");
    let scheme = Scheme::builder(Arc::new(LrcCode::new(6, 2, 2)))
        .layout(LayoutKind::EcFrm)
        .build();
    let n = scheme.n_disks();
    let data: Vec<u8> = (0..20_000).map(|i| ((i * 7 + 3) % 256) as u8).collect();
    {
        let store = ObjectStore::with_array(
            scheme.clone(),
            ELEMENT,
            ThreadedArray::from_backends(file_backends(&dir, n, CELL)),
        );
        store.put("obj", &data).unwrap();
        store.flush();
        assert_eq!(store.get("obj").unwrap(), data);
    }

    // Reopen the same files; the elements must still decode. Metadata is
    // per-store, so re-ingest bookkeeping by reading raw elements: open
    // a fresh store, put the same object, and confirm the bytes land
    // identically (FileDisk offsets are deterministic).
    let reopened: Vec<Arc<dyn DiskBackend>> = (0..n)
        .map(|d| {
            Arc::new(FileDisk::open(dir.join(format!("d{d}.bin")), CELL).unwrap())
                as Arc<dyn DiskBackend>
        })
        .collect();
    let array = ThreadedArray::from_backends(reopened);
    // Every element written by the first store is still on disk.
    let mut elements = 0usize;
    for d in 0..n {
        elements += array.disk(d).len();
    }
    assert!(elements > 0, "shard files retained elements after reopen");

    // A disk wiped on the reopened array degrades but does not lose data
    // for a store built over the same array.
    let store = ObjectStore::with_array(scheme, ELEMENT, array);
    store.put("obj2", &data).unwrap();
    store.flush();
    store.fail_disk(1).unwrap();
    assert_eq!(store.get("obj2").unwrap(), data);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Randomised tests over the whole stack.
//!
//! Property-style: seeded pseudo-random sweeps of codes, layouts, data
//! and failure patterns (fixed seeds, so failures replay exactly); the
//! properties are the paper's structural invariants:
//!
//! * layout mappings are bijective and group-column-disjoint for ANY
//!   `(n, k)`, not just Table I's;
//! * encode→erase→decode is the identity whenever the erasure pattern is
//!   within tolerance;
//! * read planners fetch what they claim and never touch failed disks;
//! * the store's byte interface is exact for arbitrary object sizes and
//!   ranges.

use std::collections::HashMap;
use std::sync::Arc;

use ecfrm::codes::{CandidateCode, LrcCode, RsCode, XorCode};
use ecfrm::core::{LayoutKind, ReadCtx, Scheme};
use ecfrm::layout::{EcFrmLayout, Layout, Loc, RotatedLayout, ShuffledLayout, StandardLayout};
use ecfrm::store::ObjectStore;
use ecfrm::util::Rng;

/// Any valid (n, k) pair with n ≤ 24 (keeps exhaustive sub-checks fast).
fn nk(rng: &mut Rng) -> (usize, usize) {
    let n = rng.random_range(2usize..=24);
    (n, rng.random_range(1usize..n))
}

/// A layout of any kind over a random (n, k).
fn any_layout(rng: &mut Rng) -> Box<dyn Layout> {
    let (n, k) = nk(rng);
    match rng.random_range(0usize..4) {
        0 => Box::new(StandardLayout::new(n, k)),
        1 => Box::new(RotatedLayout::new(n, k)),
        2 => Box::new(EcFrmLayout::new(n, k)),
        _ => Box::new(ShuffledLayout::new(n, k, rng.random())),
    }
}

/// A small candidate code (RS, Cauchy-RS, LRC or XOR).
fn any_code(rng: &mut Rng) -> Arc<dyn CandidateCode> {
    match rng.random_range(0usize..4) {
        0 => {
            let k = rng.random_range(2usize..=8);
            let m = rng.random_range(1usize..=4);
            Arc::new(RsCode::vandermonde(k, m))
        }
        1 => {
            let k = rng.random_range(2usize..=8);
            let m = rng.random_range(1usize..=4);
            Arc::new(RsCode::cauchy(k, m))
        }
        2 => {
            let g = rng.random_range(1usize..=4);
            let l = rng.random_range(1usize..=2);
            let m = rng.random_range(1usize..=3);
            Arc::new(LrcCode::new(g * l, l, m))
        }
        _ => Arc::new(XorCode::new(rng.random_range(2usize..=8))),
    }
}

fn xorshift_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x & 0xFF) as u8
        })
        .collect()
}

/// data_location / element_at are mutually inverse for every layout.
#[test]
fn layout_data_mapping_inverts() {
    let mut rng = Rng::seed_from_u64(0x1A1);
    for _ in 0..64 {
        let layout = any_layout(&mut rng);
        for _ in 0..32 {
            let idx = rng.random_range(0u64..10_000);
            let loc = layout.data_location(idx);
            assert!(loc.disk < layout.n_disks());
            let se = layout.element_at(loc);
            let (stripe, row, pos) = layout.data_coordinates(idx);
            assert_eq!((se.stripe, se.row, se.pos), (stripe, row, pos));
        }
    }
}

/// parity_location / element_at are mutually inverse.
#[test]
fn layout_parity_mapping_inverts() {
    let mut rng = Rng::seed_from_u64(0x1A2);
    for _ in 0..64 {
        let layout = any_layout(&mut rng);
        let stripe = rng.random_range(0u64..200);
        let n = layout.code_n();
        let k = layout.code_k();
        for row in 0..layout.rows_per_stripe() {
            for p in 0..n - k {
                let loc = layout.parity_location(stripe, row, p);
                let se = layout.element_at(loc);
                assert_eq!((se.stripe, se.row, se.pos), (stripe, row, k + p));
            }
        }
    }
}

/// Every candidate row of every layout occupies n distinct disks — the
/// property Lemma 1's fault-tolerance argument rests on.
#[test]
fn rows_hit_distinct_disks() {
    let mut rng = Rng::seed_from_u64(0x1A3);
    for _ in 0..64 {
        let layout = any_layout(&mut rng);
        let stripe = rng.random_range(0u64..50);
        for row in 0..layout.rows_per_stripe() {
            let locs = layout.row_locations(stripe, row);
            let mut disks: Vec<usize> = locs.iter().map(|l| l.disk).collect();
            disks.sort_unstable();
            disks.dedup();
            assert_eq!(disks.len(), layout.code_n());
        }
    }
}

/// Distinct data elements never collide physically.
#[test]
fn data_locations_injective() {
    let mut rng = Rng::seed_from_u64(0x1A4);
    for _ in 0..64 {
        let layout = any_layout(&mut rng);
        let base = rng.random_range(0u64..5_000);
        let span = (layout.data_per_stripe() * 2) as u64;
        let mut seen = std::collections::HashSet::new();
        for idx in base..base + span {
            assert!(seen.insert(layout.data_location(idx)), "collision at {idx}");
        }
    }
}

/// Encode → erase within tolerance → decode restores everything, for
/// every code.
#[test]
fn code_roundtrip_within_tolerance() {
    let mut rng = Rng::seed_from_u64(0x1A5);
    for _ in 0..64 {
        let code = any_code(&mut rng);
        let seed: u64 = rng.random();
        let len = rng.random_range(1usize..128);
        let k = code.k();
        let n = code.n();
        let t = code.fault_tolerance();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| xorshift_bytes(seed.wrapping_add(i as u64), len))
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let mut parity = vec![vec![0u8; len]; code.m()];
        code.encode(&refs, &mut parity);
        let full: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        // Erase t random positions.
        let mut shards = full.clone();
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        for &e in &order[..t] {
            shards[e] = None;
        }
        code.decode(&mut shards, len).unwrap();
        for (i, want) in full.iter().enumerate() {
            assert_eq!(shards[i].as_ref(), want.as_ref());
        }
    }
}

/// Degraded plans never touch failed disks and always cover the
/// requested elements.
#[test]
fn degraded_plans_sound() {
    let mut rng = Rng::seed_from_u64(0x1A6);
    for _ in 0..48 {
        let code = any_code(&mut rng);
        let start = rng.random_range(0u64..2_000);
        let count = rng.random_range(1usize..24);
        let n = code.n();
        let failed = rng.random_range(0usize..n);
        for scheme in [
            Scheme::builder(code.clone()).build(),
            Scheme::builder(code.clone())
                .layout(LayoutKind::Rotated)
                .build(),
            Scheme::builder(code.clone())
                .layout(LayoutKind::EcFrm)
                .build(),
        ] {
            let plan = scheme.degraded_read_plan(start, count, &[failed]);
            assert!(plan.unreadable.is_empty());
            for f in &plan.fetches {
                assert_ne!(f.loc.disk, failed);
            }
            // No duplicate fetches.
            let mut locs: Vec<Loc> = plan.fetches.iter().map(|f| f.loc).collect();
            let total = locs.len();
            locs.sort_unstable();
            locs.dedup();
            assert_eq!(locs.len(), total, "duplicate fetch in plan");
            // Demand fetches = requested elements not on the failed disk.
            let lost = (0..count as u64)
                .filter(|i| scheme.layout().data_location(start + i).disk == failed)
                .count();
            let demand = plan
                .fetches
                .iter()
                .filter(|f| f.purpose == ecfrm::core::Purpose::Demand)
                .count();
            assert_eq!(demand, count - lost);
        }
    }
}

/// Executing a degraded plan and assembling yields the original data.
#[test]
fn degraded_execution_correct() {
    let mut rng = Rng::seed_from_u64(0x1A7);
    for _ in 0..48 {
        let code = any_code(&mut rng);
        let seed: u64 = rng.random();
        let start_frac: f64 = rng.random_range(0.0..1.0);
        let count = rng.random_range(1usize..16);
        let scheme = Scheme::builder(code).layout(LayoutKind::EcFrm).build();
        let dps = scheme.data_per_stripe();
        let stripes = 3u64;
        let len = 16usize;
        let total = stripes as usize * dps;
        let data: Vec<Vec<u8>> = (0..total)
            .map(|i| xorshift_bytes(seed.wrapping_add(i as u64), len))
            .collect();
        let mut all: HashMap<Loc, Vec<u8>> = HashMap::new();
        for s in 0..stripes {
            let refs: Vec<&[u8]> = data[s as usize * dps..(s as usize + 1) * dps]
                .iter()
                .map(|v| v.as_slice())
                .collect();
            for (loc, bytes) in scheme.encode_stripe(s, &refs).iter() {
                all.insert(loc, bytes.to_vec());
            }
        }
        let count = count.min(total); // tiny codes have small stripes
        let max_start = (total - count) as u64;
        let start = (start_frac * max_start as f64) as u64;
        let failed = rng.random_range(0usize..scheme.n_disks());
        let plan = scheme.degraded_read_plan(start, count, &[failed]);
        let fetched: HashMap<Loc, Vec<u8>> = plan
            .fetches
            .iter()
            .map(|f| (f.loc, all[&f.loc].clone()))
            .collect();
        let got = scheme
            .assemble_read(start, count, &fetched, ReadCtx::default())
            .unwrap();
        for (i, g) in got.iter().enumerate() {
            assert_eq!(g, &data[start as usize + i]);
        }
    }
}

/// The store's byte interface is exact for arbitrary sizes/ranges.
#[test]
fn store_roundtrip_bytes() {
    let mut rng = Rng::seed_from_u64(0x1A8);
    for _ in 0..16 {
        let len = rng.random_range(0usize..30_000);
        let range_frac: f64 = rng.random_range(0.0..1.0);
        let range_len_frac: f64 = rng.random_range(0.0..1.0);
        let element_size = [64usize, 100, 256, 1000][rng.random_range(0usize..4)];
        let scheme = Scheme::builder(Arc::new(LrcCode::new(6, 2, 2)))
            .layout(LayoutKind::EcFrm)
            .build();
        let store = ObjectStore::new(scheme, element_size);
        let data: Vec<u8> = (0..len).map(|i| ((i * 131 + 7) % 256) as u8).collect();
        store.put("obj", &data).unwrap();
        assert_eq!(&store.get("obj").unwrap()[..], &data[..]);
        if len > 0 {
            let start = (range_frac * (len - 1) as f64) as u64;
            let max_len = len as u64 - start;
            let rlen = (range_len_frac * max_len as f64) as u64;
            let got = store.get_range("obj", start, rlen).unwrap();
            assert_eq!(&got[..], &data[start as usize..(start + rlen) as usize]);
        }
    }
}

//! Property-based tests over the whole stack (proptest).
//!
//! Strategy-generated codes, layouts, data and failure patterns; the
//! properties are the paper's structural invariants:
//!
//! * layout mappings are bijective and group-column-disjoint for ANY
//!   `(n, k)`, not just Table I's;
//! * encode→erase→decode is the identity whenever the erasure pattern is
//!   within tolerance;
//! * read planners fetch what they claim and never touch failed disks;
//! * the store's byte interface is exact for arbitrary object sizes and
//!   ranges.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use ecfrm::codes::{CandidateCode, LrcCode, RsCode, XorCode};
use ecfrm::core::Scheme;
use ecfrm::layout::{EcFrmLayout, Layout, Loc, RotatedLayout, ShuffledLayout, StandardLayout};
use ecfrm::store::ObjectStore;

/// Any valid (n, k) pair with n ≤ 24 (keeps exhaustive sub-checks fast).
fn nk() -> impl Strategy<Value = (usize, usize)> {
    (2usize..=24).prop_flat_map(|n| (Just(n), 1usize..n))
}

/// A layout of any kind over (n, k).
fn any_layout() -> impl Strategy<Value = Box<dyn Layout>> {
    (nk(), 0usize..4, any::<u64>()).prop_map(|((n, k), kind, seed)| -> Box<dyn Layout> {
        match kind {
            0 => Box::new(StandardLayout::new(n, k)),
            1 => Box::new(RotatedLayout::new(n, k)),
            2 => Box::new(EcFrmLayout::new(n, k)),
            _ => Box::new(ShuffledLayout::new(n, k, seed)),
        }
    })
}

/// A small candidate code (RS, Cauchy-RS, LRC or XOR).
fn any_code() -> impl Strategy<Value = Arc<dyn CandidateCode>> {
    prop_oneof![
        (2usize..=8, 1usize..=4).prop_map(|(k, m)| {
            Arc::new(RsCode::vandermonde(k, m)) as Arc<dyn CandidateCode>
        }),
        (2usize..=8, 1usize..=4)
            .prop_map(|(k, m)| Arc::new(RsCode::cauchy(k, m)) as Arc<dyn CandidateCode>),
        (1usize..=4, 1usize..=2, 1usize..=3).prop_map(|(g, l, m)| {
            Arc::new(LrcCode::new(g * l, l, m)) as Arc<dyn CandidateCode>
        }),
        (2usize..=8).prop_map(|k| Arc::new(XorCode::new(k)) as Arc<dyn CandidateCode>),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// data_location / element_at are mutually inverse for every layout.
    #[test]
    fn layout_data_mapping_inverts(layout in any_layout(), idx in 0u64..10_000) {
        let loc = layout.data_location(idx);
        prop_assert!(loc.disk < layout.n_disks());
        let se = layout.element_at(loc);
        let (stripe, row, pos) = layout.data_coordinates(idx);
        prop_assert_eq!((se.stripe, se.row, se.pos), (stripe, row, pos));
    }

    /// parity_location / element_at are mutually inverse.
    #[test]
    fn layout_parity_mapping_inverts(layout in any_layout(), stripe in 0u64..200) {
        let n = layout.code_n();
        let k = layout.code_k();
        for row in 0..layout.rows_per_stripe() {
            for p in 0..n - k {
                let loc = layout.parity_location(stripe, row, p);
                let se = layout.element_at(loc);
                prop_assert_eq!((se.stripe, se.row, se.pos), (stripe, row, k + p));
            }
        }
    }

    /// Every candidate row of every layout occupies n distinct disks —
    /// the property Lemma 1's fault-tolerance argument rests on.
    #[test]
    fn rows_hit_distinct_disks(layout in any_layout(), stripe in 0u64..50) {
        for row in 0..layout.rows_per_stripe() {
            let locs = layout.row_locations(stripe, row);
            let mut disks: Vec<usize> = locs.iter().map(|l| l.disk).collect();
            disks.sort_unstable();
            disks.dedup();
            prop_assert_eq!(disks.len(), layout.code_n());
        }
    }

    /// Distinct data elements never collide physically.
    #[test]
    fn data_locations_injective(layout in any_layout(), base in 0u64..5_000) {
        let span = (layout.data_per_stripe() * 2) as u64;
        let mut seen = std::collections::HashSet::new();
        for idx in base..base + span {
            prop_assert!(seen.insert(layout.data_location(idx)), "collision at {}", idx);
        }
    }

    /// Encode → erase within tolerance → decode restores everything,
    /// for every code.
    #[test]
    fn code_roundtrip_within_tolerance(
        code in any_code(),
        seed in any::<u64>(),
        len in 1usize..128,
    ) {
        let k = code.k();
        let n = code.n();
        let t = code.fault_tolerance();
        let mut x = seed | 1;
        let mut byte = move || {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            (x & 0xFF) as u8
        };
        let data: Vec<Vec<u8>> = (0..k).map(|_| (0..len).map(|_| byte()).collect()).collect();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let mut parity = vec![vec![0u8; len]; code.m()];
        code.encode(&refs, &mut parity);
        let full: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some)
            .chain(parity.into_iter().map(Some)).collect();
        // Erase t positions pseudo-randomly: Fisher-Yates on 0..n driven
        // by a xorshift stream, take the first t.
        let mut shards = full.clone();
        let mut order: Vec<usize> = (0..n).collect();
        let mut y = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for i in (1..n).rev() {
            y ^= y << 13; y ^= y >> 7; y ^= y << 17;
            order.swap(i, (y % (i as u64 + 1)) as usize);
        }
        let erased = &order[..t];
        for &e in erased {
            shards[e] = None;
        }
        code.decode(&mut shards, len).unwrap();
        for (i, want) in full.iter().enumerate() {
            prop_assert_eq!(shards[i].as_ref(), want.as_ref());
        }
    }

    /// Degraded plans never touch failed disks and always cover the
    /// requested elements.
    #[test]
    fn degraded_plans_sound(
        code in any_code(),
        start in 0u64..2_000,
        count in 1usize..24,
        fail_pick in any::<u64>(),
    ) {
        let n = code.n();
        let failed = (fail_pick % n as u64) as usize;
        for scheme in [Scheme::standard(code.clone()), Scheme::rotated(code.clone()),
                       Scheme::ecfrm(code.clone())] {
            let plan = scheme.degraded_read_plan(start, count, &[failed]);
            prop_assert!(plan.unreadable.is_empty());
            for f in &plan.fetches {
                prop_assert_ne!(f.loc.disk, failed);
            }
            // No duplicate fetches.
            let mut locs: Vec<Loc> = plan.fetches.iter().map(|f| f.loc).collect();
            let total = locs.len();
            locs.sort_unstable();
            locs.dedup();
            prop_assert_eq!(locs.len(), total, "duplicate fetch in plan");
            // Demand fetches = requested elements not on the failed disk.
            let lost = (0..count as u64)
                .filter(|i| scheme.layout().data_location(start + i).disk == failed)
                .count();
            let demand = plan.fetches.iter()
                .filter(|f| f.purpose == ecfrm::core::Purpose::Demand).count();
            prop_assert_eq!(demand, count - lost);
        }
    }

    /// Executing a degraded plan and assembling yields the original data.
    #[test]
    fn degraded_execution_correct(
        code in any_code(),
        seed in any::<u64>(),
        start_frac in 0.0f64..1.0,
        count in 1usize..16,
        fail_pick in any::<u64>(),
    ) {
        let scheme = Scheme::ecfrm(code);
        let dps = scheme.data_per_stripe();
        let stripes = 3u64;
        let len = 16usize;
        let total = stripes as usize * dps;
        let mut x = seed | 1;
        let mut byte = move || { x ^= x << 13; x ^= x >> 7; x ^= x << 17; (x & 0xFF) as u8 };
        let data: Vec<Vec<u8>> = (0..total).map(|_| (0..len).map(|_| byte()).collect()).collect();
        let mut all: HashMap<Loc, Vec<u8>> = HashMap::new();
        for s in 0..stripes {
            let refs: Vec<&[u8]> = data[s as usize * dps..(s as usize + 1) * dps]
                .iter().map(|v| v.as_slice()).collect();
            for (loc, bytes) in scheme.encode_stripe(s, &refs).iter() {
                all.insert(loc, bytes.to_vec());
            }
        }
        let count = count.min(total); // tiny codes have small stripes
        let max_start = (total - count) as u64;
        let start = (start_frac * max_start as f64) as u64;
        let failed = (fail_pick % scheme.n_disks() as u64) as usize;
        let plan = scheme.degraded_read_plan(start, count, &[failed]);
        let fetched: HashMap<Loc, Vec<u8>> = plan.fetches.iter()
            .map(|f| (f.loc, all[&f.loc].clone())).collect();
        let got = scheme.assemble_read(start, count, &fetched).unwrap();
        for (i, g) in got.iter().enumerate() {
            prop_assert_eq!(g, &data[start as usize + i]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The store's byte interface is exact for arbitrary sizes/ranges.
    #[test]
    fn store_roundtrip_bytes(
        len in 0usize..30_000,
        range_frac in 0.0f64..1.0,
        range_len_frac in 0.0f64..1.0,
        element_size in prop_oneof![Just(64usize), Just(100), Just(256), Just(1000)],
    ) {
        let scheme = Scheme::ecfrm(Arc::new(LrcCode::new(6, 2, 2)));
        let store = ObjectStore::new(scheme, element_size);
        let data: Vec<u8> = (0..len).map(|i| ((i * 131 + 7) % 256) as u8).collect();
        store.put("obj", &data).unwrap();
        prop_assert_eq!(&store.get("obj").unwrap()[..], &data[..]);
        if len > 0 {
            let start = (range_frac * (len - 1) as f64) as u64;
            let max_len = len as u64 - start;
            let rlen = (range_len_frac * max_len as f64) as u64;
            let got = store.get_range("obj", start, rlen).unwrap();
            prop_assert_eq!(&got[..], &data[start as usize..(start + rlen) as usize]);
        }
    }
}

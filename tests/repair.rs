//! Integration test for the background repair subsystem: kill one disk
//! *mid-workload* under foreground load, verify the foreground stays
//! degraded-but-correct throughout, and verify background repair
//! restores full redundancy — after which reads of the repaired disk
//! need zero decodes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ecfrm::codes::RsCode;
use ecfrm::core::{LayoutKind, Scheme};
use ecfrm::sim::{DiskBackend, FaultKind, FaultyDisk, MemDisk, ThreadedArray};
use ecfrm::store::{ObjectStore, RepairConfig, RepairManager};

fn blob(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 131 + seed as usize * 17 + 3) % 256) as u8)
        .collect()
}

/// Build an RS(6,3) EC-FRM store over fault-injectable disks.
fn faulty_store() -> (Arc<ObjectStore>, Vec<Arc<FaultyDisk>>) {
    let scheme = Scheme::builder(Arc::new(RsCode::vandermonde(6, 3)))
        .layout(LayoutKind::EcFrm)
        .build();
    let faulty: Vec<Arc<FaultyDisk>> = (0..scheme.n_disks())
        .map(|_| FaultyDisk::wrap(Arc::new(MemDisk::new())))
        .collect();
    let backends: Vec<Arc<dyn DiskBackend>> = faulty
        .iter()
        .map(|f| Arc::clone(f) as Arc<dyn DiskBackend>)
        .collect();
    let store = Arc::new(ObjectStore::with_array(
        scheme,
        64,
        ThreadedArray::from_backends(backends),
    ));
    (store, faulty)
}

#[test]
fn kill_mid_workload_foreground_correct_and_redundancy_restored() {
    let (store, faulty) = faulty_store();
    let data = blob(60_000, 1);
    store.put("obj", &data).unwrap();
    store.flush();
    let stripes = store.stats().stripes;
    assert!(stripes >= 20, "enough stripes to repair: {stripes}");

    // Background repair with a replacement-disk factory: a killed node
    // comes back as a fresh empty disk that repair fills.
    let cfg = RepairConfig {
        workers: 2,
        rate_limit: None,
        poll: Duration::from_millis(1),
        replacer: Some(Arc::new(|_d| {
            Arc::new(MemDisk::new()) as Arc<dyn DiskBackend>
        })),
    };
    let mgr = RepairManager::spawn(Arc::clone(&store), cfg);

    // Foreground load: two readers hammering the object while the fault
    // fires. Every read must return correct bytes, killed disk or not.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|r| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let want = data.clone();
            std::thread::spawn(move || {
                let mut reads = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let start = (reads * 977 + r * 4099) % (want.len() - 512);
                    let got = store.get_range("obj", start as u64, 512).unwrap();
                    assert_eq!(got, &want[start..start + 512], "foreground read corrupt");
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    // Let the workload run, then kill disk 3 mid-flight: it stops
    // answering after 40 more served element reads.
    std::thread::sleep(Duration::from_millis(20));
    faulty[3].arm(FaultKind::Kill, 40);

    // The pipeline must detect the kill, replace the disk, rebuild every
    // stripe, and heal — all under continuing foreground load.
    let t0 = std::time::Instant::now();
    while !faulty[3].fired() && t0.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(faulty[3].fired(), "workload never tripped the fault");
    while mgr.progress().disks_restored == 0 && t0.elapsed() < Duration::from_secs(60) {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(mgr.progress().disks_restored, 1, "kill detected, repaired");
    assert!(
        mgr.wait_idle(Duration::from_secs(60)),
        "repair did not finish: {:?}",
        mgr.progress()
    );
    stop.store(true, Ordering::Release);
    for r in readers {
        let reads = r.join().expect("foreground reader died");
        assert!(reads > 0);
    }

    // Full redundancy restored.
    assert!(store.stats().failed_disks.is_empty());
    assert!(store.array().suspects().is_empty());
    let progress = mgr.progress();
    assert_eq!(
        progress.stripes_done, stripes,
        "every sealed stripe repaired exactly once"
    );
    assert_eq!(progress.disks_restored, 1);
    assert_eq!(progress.queue_depth, 0);

    // The counters made it into the store's registry too.
    let snap = store.recorder().snapshot();
    assert_eq!(
        snap.counters.get("repair.stripes_done").copied(),
        Some(stripes)
    );
    assert!(snap.counters.get("repair.bytes").copied().unwrap_or(0) > 0);
    assert!(
        snap.gauges
            .get("repair.time_to_redundancy_ms")
            .copied()
            .unwrap_or(-1)
            >= 0,
        "time-to-full-redundancy recorded"
    );

    // A subsequent read is fully normal: no degraded planning, zero
    // repair (decode) fetches, no replans.
    let (bytes, stats) = store.get_with_stats("obj").unwrap();
    assert_eq!(bytes, data);
    assert!(!stats.degraded, "read after repair must plan normally");
    assert_eq!(stats.repair_elements, 0, "zero decodes after repair");
    assert_eq!(stats.replans, 0);

    // And the replaced disk physically holds its full share again.
    assert!(!store.array().disk(3).is_empty());
    assert!(store.scrub().unwrap().is_clean());
    mgr.shutdown();
}

#[test]
fn degraded_read_hints_repair_hot_stripes_first() {
    let (store, faulty) = faulty_store();
    let data = blob(60_000, 2);
    store.put("obj", &data).unwrap();
    store.flush();

    // Pause the pipeline so detection/promotion is deterministic, kill a
    // disk, and issue one degraded read of a small hot range.
    let mgr = RepairManager::spawn(
        Arc::clone(&store),
        RepairConfig {
            poll: Duration::from_millis(1),
            replacer: Some(Arc::new(|_d| {
                Arc::new(MemDisk::new()) as Arc<dyn DiskBackend>
            })),
            ..RepairConfig::default()
        },
    );
    mgr.pause();
    faulty[5].arm(FaultKind::Kill, 0);
    let (got, stats) = store.get_range_with_stats("obj", 0, 512).unwrap();
    assert_eq!(got, &data[..512]);
    assert!(stats.degraded);
    assert!(
        store.repair_queue().hint_count() > 0,
        "degraded read staged priority hints"
    );
    mgr.resume();

    assert!(
        mgr.wait_idle(Duration::from_secs(60)),
        "repair did not finish: {:?}",
        mgr.progress()
    );
    assert!(store.stats().failed_disks.is_empty());
    assert_eq!(mgr.progress().stripes_done, store.stats().stripes);
    let (bytes, stats) = store.get_with_stats("obj").unwrap();
    assert_eq!(bytes, data);
    assert!(!stats.degraded);
}

#[test]
fn transient_suspect_is_cleared_without_repair_traffic() {
    let (store, faulty) = faulty_store();
    let data = blob(30_000, 3);
    store.put("obj", &data).unwrap();
    store.flush();

    let mgr = RepairManager::spawn(
        Arc::clone(&store),
        RepairConfig {
            poll: Duration::from_millis(1),
            ..RepairConfig::default()
        },
    );

    // A disk that goes quiet and comes back before/at the probe: the
    // detector (or the next successful read) withdraws the suspicion and
    // no reconstruction happens.
    store.array().mark_suspect(6);
    faulty[6].clear(); // healthy — the probe will get an answer
    assert!(mgr.wait_idle(Duration::from_secs(10)));
    assert!(store.array().suspects().is_empty());
    assert_eq!(mgr.progress().stripes_done, 0, "no repair traffic");
    assert_eq!(mgr.progress().disks_restored, 0);
    assert!(store.stats().failed_disks.is_empty());
    let (bytes, stats) = store.get_with_stats("obj").unwrap();
    assert_eq!(bytes, data);
    assert!(!stats.degraded);
}

#[test]
fn rate_limited_repair_still_completes() {
    let (store, _faulty) = faulty_store();
    let data = blob(40_000, 4);
    store.put("obj", &data).unwrap();
    store.flush();
    store.fail_disk(1).unwrap();
    store.array().disk(1).wipe();

    // ~1 MB/s budget: enough for this dataset's repair traffic within
    // the timeout, but every stripe passes through the token bucket.
    let mgr = RepairManager::spawn(
        Arc::clone(&store),
        RepairConfig {
            rate_limit: Some(1_000_000),
            poll: Duration::from_millis(1),
            ..RepairConfig::default()
        },
    );
    assert!(
        mgr.wait_idle(Duration::from_secs(60)),
        "rate-limited repair did not finish: {:?}",
        mgr.progress()
    );
    assert!(store.stats().failed_disks.is_empty());
    assert_eq!(store.get("obj").unwrap(), data);
    assert!(store.scrub().unwrap().is_clean());
}

//! Physical timing test: the paper's bottleneck argument demonstrated in
//! wall-clock time on the threaded engine, not just in the analytic
//! model.
//!
//! Every disk sleeps a fixed latency per element read. An 8-element read
//! over standard (6,2,2) LRC double-loads a disk (Figure 3a) and must
//! take ≥ 2 latencies; the same read over EC-FRM-LRC loads every disk at
//! most once (Figure 7a) and completes in ~1 latency. Generous margins
//! keep the test robust on loaded machines.

use std::sync::Arc;
use std::time::Duration;

use ecfrm::codes::LrcCode;
use ecfrm::core::{LayoutKind, Scheme};
use ecfrm::sim::ThreadedArray;
use ecfrm::store::ObjectStore;

const LATENCY: Duration = Duration::from_millis(20);
const ELEMENT: usize = 1024;

fn store_with_latency(scheme: Scheme) -> ObjectStore {
    let array = ThreadedArray::with_latency(scheme.n_disks(), LATENCY);
    ObjectStore::with_array(scheme, ELEMENT, array)
}

/// An object spanning exactly 8 elements, starting at element 0.
fn eight_element_object(store: &ObjectStore) -> Vec<u8> {
    let data: Vec<u8> = (0..8 * ELEMENT).map(|i| (i % 251) as u8).collect();
    store.put("eight", &data).unwrap();
    store.flush();
    data
}

#[test]
fn standard_layout_pays_two_latencies() {
    let code = Arc::new(LrcCode::new(6, 2, 2));
    let store = store_with_latency(Scheme::builder(code).build());
    let data = eight_element_object(&store);
    let (bytes, stats) = store.get_with_stats("eight").unwrap();
    assert_eq!(bytes, data);
    assert_eq!(stats.max_disk_load, 2, "Figure 3(a): double-loaded disk");
    assert!(
        stats.elapsed >= 2 * LATENCY,
        "two same-disk accesses must serialise: {:?}",
        stats.elapsed
    );
}

#[test]
fn ecfrm_layout_pays_one_latency() {
    let code = Arc::new(LrcCode::new(6, 2, 2));
    let store = store_with_latency(Scheme::builder(code).layout(LayoutKind::EcFrm).build());
    let data = eight_element_object(&store);
    let (bytes, stats) = store.get_with_stats("eight").unwrap();
    assert_eq!(bytes, data);
    assert_eq!(stats.max_disk_load, 1, "Figure 7(a): no disk loaded twice");
    assert!(
        stats.elapsed >= LATENCY,
        "physics: at least one access happened"
    );
    assert!(
        stats.elapsed < 2 * LATENCY,
        "all 8 accesses should overlap across 8 disks: {:?}",
        stats.elapsed
    );
}

#[test]
fn ecfrm_is_faster_in_wall_clock_across_many_reads() {
    let code = Arc::new(LrcCode::new(6, 2, 2));
    let std_store = store_with_latency(Scheme::builder(code.clone()).build());
    let ec_store = store_with_latency(Scheme::builder(code).layout(LayoutKind::EcFrm).build());
    let d1 = eight_element_object(&std_store);
    let d2 = eight_element_object(&ec_store);
    assert_eq!(d1, d2);

    let mut std_total = Duration::ZERO;
    let mut ec_total = Duration::ZERO;
    for _ in 0..5 {
        std_total += std_store.get_with_stats("eight").unwrap().1.elapsed;
        ec_total += ec_store.get_with_stats("eight").unwrap().1.elapsed;
    }
    assert!(
        ec_total < std_total,
        "EC-FRM {ec_total:?} should beat standard {std_total:?} in wall clock"
    );
}

#[test]
fn degraded_read_wall_clock_still_bounded() {
    // With one disk down, the EC-FRM degraded read of 8 elements still
    // finishes in a small number of latencies (repair reads overlap with
    // demand reads on distinct disks).
    let code = Arc::new(LrcCode::new(6, 2, 2));
    let store = store_with_latency(Scheme::builder(code).layout(LayoutKind::EcFrm).build());
    let data = eight_element_object(&store);
    store.fail_disk(0).unwrap();
    let (bytes, stats) = store.get_with_stats("eight").unwrap();
    assert_eq!(bytes, data);
    assert!(stats.degraded);
    assert!(
        stats.elapsed < 4 * LATENCY,
        "degraded read over-serialised: {:?} (max load {})",
        stats.elapsed,
        stats.max_disk_load
    );
}

//! # EC-FRM — An Erasure Coding Framework to Speed Up Reads
//!
//! A from-scratch Rust reproduction of *EC-FRM: An Erasure Coding
//! Framework to Speed up Reads for Erasure Coded Cloud Storage Systems*
//! (Fu, Shu, Shen — ICPP 2015).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`gf`] — Galois field arithmetic, region kernels, matrices
//!   (the GF-Complete/Jerasure substrate, rebuilt);
//! * [`codes`] — candidate codes: Reed–Solomon, Azure LRC, XOR;
//! * [`layout`] — standard / rotated / EC-FRM / shuffled placements;
//! * [`core`] — the framework: [`Scheme`](core::Scheme), read planners,
//!   recovery;
//! * [`sim`] — the disk-array testbed: calibrated timing model and a
//!   real threaded I/O engine;
//! * [`store`] — an append-only erasure-coded object store built on all
//!   of the above;
//! * [`integrity`] — end-to-end integrity: a from-scratch keyed block
//!   hash, per-element checksum footers, and merkle stripe manifests
//!   that let a scrub localize a flipped byte without decoding;
//! * [`net`] — a real networked shard service: wire protocol, shard
//!   servers, remote-disk clients with retries/hedging, and a loopback
//!   cluster harness;
//! * [`vertical`] — the vertical codes (X-Code, WEAVER) whose
//!   restrictions motivate EC-FRM (paper §II-B);
//! * [`util`] — dependency-free RNG, lock, and parallel-map utilities.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use ecfrm::codes::LrcCode;
//! use ecfrm::core::{LayoutKind, Scheme};
//!
//! // Transform (6,2,2) LRC into its EC-FRM form and compare read plans.
//! let code = Arc::new(LrcCode::new(6, 2, 2));
//! let standard = Scheme::builder(code.clone()).build();
//! let ecfrm = Scheme::builder(code).layout(LayoutKind::EcFrm).build();
//!
//! // Paper Figure 3 vs Figure 7(a): the 8-element read's bottleneck.
//! assert_eq!(standard.normal_read_plan(0, 8).max_load(), 2);
//! assert_eq!(ecfrm.normal_read_plan(0, 8).max_load(), 1);
//! ```

pub use ecfrm_codes as codes;
pub use ecfrm_core as core;
pub use ecfrm_gf as gf;
pub use ecfrm_integrity as integrity;
pub use ecfrm_layout as layout;
pub use ecfrm_net as net;
pub use ecfrm_obs as obs;
pub use ecfrm_sim as sim;
pub use ecfrm_store as store;
pub use ecfrm_util as util;
pub use ecfrm_vertical as vertical;

/// Crate version, from the workspace manifest.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

//! Bulk "region" operations: the hot loops of erasure encoding/decoding.
//!
//! A *region* is a byte buffer holding one field element per byte
//! (`GF(2^8)`) or per byte-pair (`GF(2^16)`). Encoding a parity element is
//! a dot product of coefficient × data-region terms; decoding is the same
//! with inverted-matrix coefficients. These kernels correspond to
//! GF-Complete's `multiply_region` family:
//!
//! * [`xor_region`] — `dst ^= src`, processed 64 bits at a time;
//! * [`mul_region`] / [`mul_add_region`] — multiply a region by a constant
//!   (optionally accumulating), dispatched to the runtime-selected
//!   split-table backend in [`crate::kernel`] (SSSE3/AVX2/NEON byte
//!   shuffles where the CPU has them, a portable nibble-table loop
//!   otherwise);
//! * [`dot_region`] — the full encode kernel: `dst = Σ cᵢ·srcᵢ`;
//! * [`dot_region_multi`] — the fused variant producing all parity
//!   regions in one streaming pass over the data regions.
//!
//! Constants 0 and 1 are special-cased (skip / plain XOR), which matters in
//! practice because XOR-heavy codes such as LRC local parities hit those
//! paths on every element.

use crate::kernel;

/// Block size (bytes) for the fused multi-output kernels: large enough to
/// amortise per-call overhead, small enough that one block of every
/// output plus one source stays L1/L2-resident while streaming.
pub const MULTI_BLOCK: usize = 32 * 1024;

/// `dst ^= src` over equal-length regions, 8 bytes at a time. Tails
/// shorter than a word are folded into one overlapping unaligned word
/// whose already-processed bytes are masked out of the source.
///
/// # Panics
/// Panics if `dst.len() != src.len()`.
pub fn xor_region(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_region length mismatch");
    let len = dst.len();
    let n = len / 8 * 8;
    let mut i = 0;
    while i < n {
        let a = u64::from_le_bytes(dst[i..i + 8].try_into().unwrap());
        let b = u64::from_le_bytes(src[i..i + 8].try_into().unwrap());
        dst[i..i + 8].copy_from_slice(&(a ^ b).to_le_bytes());
        i += 8;
    }
    let tail = len - n;
    if tail > 0 {
        if len >= 8 {
            // One overlapping word at the end: the low `8 - tail` bytes
            // were already XORed above, so mask them out of the source —
            // a zero contribution leaves them untouched.
            let w = len - 8;
            let a = u64::from_le_bytes(dst[w..].try_into().unwrap());
            let b = u64::from_le_bytes(src[w..].try_into().unwrap());
            let mask = !0u64 << (8 * (8 - tail));
            dst[w..].copy_from_slice(&(a ^ (b & mask)).to_le_bytes());
        } else {
            for (d, s) in dst[n..].iter_mut().zip(&src[n..]) {
                *d ^= *s;
            }
        }
    }
}

/// `dst = c * src` over `GF(2^8)`, element-wise.
///
/// # Panics
/// Panics if `dst.len() != src.len()`.
pub fn mul_region(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_region length mismatch");
    kernel::active().mul_region8(c, src, dst);
}

/// `dst ^= c * src` over `GF(2^8)`, element-wise (multiply–accumulate).
///
/// # Panics
/// Panics if `dst.len() != src.len()`.
pub fn mul_add_region(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_add_region length mismatch");
    kernel::active().mul_add_region8(c, src, dst);
}

/// Dot-product encode kernel: `dst = Σᵢ coeffs[i] · srcs[i]`.
///
/// This is the inner loop of every parity computation: one output region
/// accumulated from `k` input regions with per-input coefficients. The
/// first nonzero term is written with a straight multiply (overwriting
/// `dst`), so no zero-fill pass touches the output beforehand.
///
/// # Panics
/// Panics if `coeffs.len() != srcs.len()`, or any source length differs
/// from `dst`.
pub fn dot_region(coeffs: &[u8], srcs: &[&[u8]], dst: &mut [u8]) {
    assert_eq!(coeffs.len(), srcs.len(), "dot_region arity mismatch");
    let mut started = false;
    for (&c, src) in coeffs.iter().zip(srcs) {
        if started {
            mul_add_region(c, src, dst);
        } else if c != 0 {
            mul_region(c, src, dst);
            started = true;
        } else {
            assert_eq!(dst.len(), src.len(), "dot_region length mismatch");
        }
    }
    if !started {
        dst.fill(0);
    }
}

/// Fused multi-output dot kernel: `dsts[r] = Σᵢ coeff_rows[r][i]·srcs[i]`
/// for every output row `r`, in one blocked streaming pass.
///
/// Computing all `m` parities per block means each source block is read
/// once while hot instead of `m` times from DRAM — for `(k, m)` encode
/// this cuts memory traffic from `m·k` source reads to `k`, the trick
/// behind ISA-L's `ec_encode_data`.
///
/// # Panics
/// Panics if `coeff_rows.len() != dsts.len()`, any coefficient row's
/// arity differs from `srcs.len()`, or any region length differs.
pub fn dot_region_multi(coeff_rows: &[&[u8]], srcs: &[&[u8]], dsts: &mut [&mut [u8]]) {
    assert_eq!(
        coeff_rows.len(),
        dsts.len(),
        "dot_region_multi row/output arity mismatch"
    );
    let len = dsts.first().map_or(0, |d| d.len());
    for d in dsts.iter() {
        assert_eq!(d.len(), len, "dot_region_multi output length mismatch");
    }
    for s in srcs {
        assert_eq!(s.len(), len, "dot_region_multi source length mismatch");
    }
    for row in coeff_rows {
        assert_eq!(
            row.len(),
            srcs.len(),
            "dot_region_multi coefficient arity mismatch"
        );
    }
    let k = kernel::active();
    let mut off = 0;
    while off < len {
        let end = (off + MULTI_BLOCK).min(len);
        for (row, dst) in coeff_rows.iter().zip(dsts.iter_mut()) {
            let db = &mut dst[off..end];
            let mut started = false;
            for (&c, src) in row.iter().zip(srcs) {
                if started {
                    k.mul_add_region8(c, &src[off..end], db);
                } else if c != 0 {
                    k.mul_region8(c, &src[off..end], db);
                    started = true;
                }
            }
            if !started {
                db.fill(0);
            }
        }
        off = end;
    }
}

/// Reference (scalar, unoptimised) implementations used by tests to pin
/// down the optimised kernels.
pub mod reference {
    use crate::field::Field;
    use crate::gf8::Gf8;

    /// Byte-at-a-time `dst = c*src`.
    pub fn mul_region(c: u8, src: &[u8], dst: &mut [u8]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = Gf8::mul(c as u32, s as u32) as u8;
        }
    }

    /// Byte-at-a-time `dst ^= c*src`.
    pub fn mul_add_region(c: u8, src: &[u8], dst: &mut [u8]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= Gf8::mul(c as u32, s as u32) as u8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_bytes(len: usize, seed: u64) -> Vec<u8> {
        // Tiny deterministic generator: keeps the tests free of external
        // RNG plumbing while still covering varied byte values.
        let mut x = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xFF) as u8
            })
            .collect()
    }

    #[test]
    fn xor_region_matches_scalar() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            let a = pseudo_bytes(len, 1);
            let b = pseudo_bytes(len, 2);
            let mut got = a.clone();
            xor_region(&mut got, &b);
            let want: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            assert_eq!(got, want, "len={len}");
        }
    }

    #[test]
    fn xor_region_self_inverse() {
        let a = pseudo_bytes(777, 3);
        let b = pseudo_bytes(777, 4);
        let mut buf = a.clone();
        xor_region(&mut buf, &b);
        xor_region(&mut buf, &b);
        assert_eq!(buf, a);
    }

    #[test]
    fn mul_region_matches_reference() {
        for c in [0u8, 1, 2, 3, 0x1D, 0x80, 0xFF] {
            for len in [0usize, 1, 5, 8, 100, 4096] {
                let src = pseudo_bytes(len, c as u64 + 10);
                let mut got = vec![0u8; len];
                let mut want = vec![0u8; len];
                mul_region(c, &src, &mut got);
                reference::mul_region(c, &src, &mut want);
                assert_eq!(got, want, "c={c} len={len}");
            }
        }
    }

    #[test]
    fn mul_add_region_matches_reference() {
        for c in [0u8, 1, 2, 0xA5, 0xFF] {
            let src = pseudo_bytes(513, 20);
            let init = pseudo_bytes(513, 21);
            let mut got = init.clone();
            let mut want = init.clone();
            mul_add_region(c, &src, &mut got);
            reference::mul_add_region(c, &src, &mut want);
            assert_eq!(got, want, "c={c}");
        }
    }

    #[test]
    fn mul_region_by_inverse_roundtrips() {
        use crate::field::Field;
        use crate::gf8::Gf8;
        let src = pseudo_bytes(256, 30);
        for c in [2u8, 7, 0x1D, 0xEE] {
            let mut mid = vec![0u8; src.len()];
            let mut back = vec![0u8; src.len()];
            mul_region(c, &src, &mut mid);
            mul_region(Gf8::inv(c as u32) as u8, &mid, &mut back);
            assert_eq!(back, src, "c={c}");
        }
    }

    #[test]
    fn dot_region_is_linear_combination() {
        let s0 = pseudo_bytes(300, 40);
        let s1 = pseudo_bytes(300, 41);
        let s2 = pseudo_bytes(300, 42);
        let coeffs = [3u8, 0, 0x7C];
        let mut got = vec![0u8; 300];
        dot_region(&coeffs, &[&s0, &s1, &s2], &mut got);
        let mut want = vec![0u8; 300];
        reference::mul_add_region(3, &s0, &mut want);
        reference::mul_add_region(0x7C, &s2, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn dot_region_overwrites_dst() {
        // dst contents must never leak into the result, even without a
        // zero-fill pass.
        let s = pseudo_bytes(64, 50);
        let mut dst = pseudo_bytes(64, 51);
        dot_region(&[1], &[&s], &mut dst);
        assert_eq!(dst, s);
    }

    #[test]
    fn dot_region_all_zero_coeffs_zeroes_dst() {
        let s = pseudo_bytes(64, 52);
        let mut dst = pseudo_bytes(64, 53);
        dot_region(&[0, 0], &[&s, &s], &mut dst);
        assert_eq!(dst, vec![0u8; 64]);
    }

    #[test]
    fn dot_region_leading_zero_coeffs() {
        // The first nonzero coefficient may appear anywhere in the row.
        let s0 = pseudo_bytes(100, 54);
        let s1 = pseudo_bytes(100, 55);
        let mut got = pseudo_bytes(100, 56);
        dot_region(&[0, 7], &[&s0, &s1], &mut got);
        let mut want = vec![0u8; 100];
        reference::mul_add_region(7, &s1, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn dot_region_multi_matches_independent_dots() {
        let srcs: Vec<Vec<u8>> = (0..4)
            .map(|i| pseudo_bytes(MULTI_BLOCK + 97, 60 + i))
            .collect();
        let src_refs: Vec<&[u8]> = srcs.iter().map(Vec::as_slice).collect();
        let rows: Vec<Vec<u8>> = vec![
            vec![1, 1, 1, 1],
            vec![0, 0, 0, 0],
            vec![2, 0, 0x1D, 0xFF],
            vec![0, 9, 0, 0],
        ];
        let row_refs: Vec<&[u8]> = rows.iter().map(Vec::as_slice).collect();
        let len = srcs[0].len();
        let mut outs: Vec<Vec<u8>> = (0..rows.len())
            .map(|i| pseudo_bytes(len, 70 + i as u64))
            .collect();
        {
            let mut out_refs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
            dot_region_multi(&row_refs, &src_refs, &mut out_refs);
        }
        for (row, got) in rows.iter().zip(&outs) {
            let mut want = vec![0u8; len];
            dot_region(row, &src_refs, &mut want);
            assert_eq!(got, &want, "row={row:?}");
        }
    }

    #[test]
    fn dot_region_multi_no_outputs_or_sources() {
        // m = 0 is a no-op; k = 0 zero-fills every output.
        dot_region_multi(&[], &[], &mut []);
        let mut out = pseudo_bytes(33, 80);
        let row: &[u8] = &[];
        dot_region_multi(&[row], &[], &mut [&mut out]);
        assert_eq!(out, vec![0u8; 33]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut d = [0u8; 4];
        xor_region(&mut d, &[0u8; 5]);
    }

    #[test]
    #[should_panic]
    fn dot_region_mismatched_source_panics() {
        let s0 = [0u8; 4];
        let s1 = [0u8; 5];
        let mut d = [0u8; 4];
        dot_region(&[0, 1], &[&s0, &s1], &mut d);
    }
}

//! Bulk "region" operations: the hot loops of erasure encoding/decoding.
//!
//! A *region* is a byte buffer holding one field element per byte
//! (`GF(2^8)`) or per byte-pair (`GF(2^16)`). Encoding a parity element is
//! a dot product of coefficient × data-region terms; decoding is the same
//! with inverted-matrix coefficients. These kernels correspond to
//! GF-Complete's `multiply_region` family:
//!
//! * [`xor_region`] — `dst ^= src`, processed 64 bits at a time;
//! * [`mul_region`] / [`mul_add_region`] — multiply a region by a constant
//!   (optionally accumulating), streaming through a single 256-byte row of
//!   the product table so the lookup stays L1-resident;
//! * [`dot_region`] — the full encode kernel: `dst = Σ cᵢ·srcᵢ`.
//!
//! Constants 0 and 1 are special-cased (skip / plain XOR), which matters in
//! practice because XOR-heavy codes such as LRC local parities hit those
//! paths on every element.

use crate::gf8::Gf8;

/// `dst ^= src` over equal-length regions, 8 bytes at a time.
///
/// # Panics
/// Panics if `dst.len() != src.len()`.
pub fn xor_region(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_region length mismatch");
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let a = u64::from_ne_bytes(dc.try_into().unwrap());
        let b = u64::from_ne_bytes(sc.try_into().unwrap());
        dc.copy_from_slice(&(a ^ b).to_ne_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= *sb;
    }
}

/// `dst = c * src` over `GF(2^8)`, element-wise.
///
/// # Panics
/// Panics if `dst.len() != src.len()`.
pub fn mul_region(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_region length mismatch");
    match c {
        0 => dst.fill(0),
        1 => dst.copy_from_slice(src),
        _ => {
            let row = Gf8::mul_row(c);
            // Unrolled by 4: the bound checks vanish and the table row
            // stays in L1 for the whole region.
            let mut i = 0;
            let n4 = src.len() / 4 * 4;
            while i < n4 {
                dst[i] = row[src[i] as usize];
                dst[i + 1] = row[src[i + 1] as usize];
                dst[i + 2] = row[src[i + 2] as usize];
                dst[i + 3] = row[src[i + 3] as usize];
                i += 4;
            }
            while i < src.len() {
                dst[i] = row[src[i] as usize];
                i += 1;
            }
        }
    }
}

/// `dst ^= c * src` over `GF(2^8)`, element-wise (multiply–accumulate).
///
/// # Panics
/// Panics if `dst.len() != src.len()`.
pub fn mul_add_region(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_add_region length mismatch");
    match c {
        0 => {}
        1 => xor_region(dst, src),
        _ => {
            let row = Gf8::mul_row(c);
            let mut i = 0;
            let n4 = src.len() / 4 * 4;
            while i < n4 {
                dst[i] ^= row[src[i] as usize];
                dst[i + 1] ^= row[src[i + 1] as usize];
                dst[i + 2] ^= row[src[i + 2] as usize];
                dst[i + 3] ^= row[src[i + 3] as usize];
                i += 4;
            }
            while i < src.len() {
                dst[i] ^= row[src[i] as usize];
                i += 1;
            }
        }
    }
}

/// Dot-product encode kernel: `dst = Σᵢ coeffs[i] · srcs[i]`.
///
/// This is the inner loop of every parity computation: one output region
/// accumulated from `k` input regions with per-input coefficients.
///
/// # Panics
/// Panics if `coeffs.len() != srcs.len()`, or any source length differs
/// from `dst`.
pub fn dot_region(coeffs: &[u8], srcs: &[&[u8]], dst: &mut [u8]) {
    assert_eq!(coeffs.len(), srcs.len(), "dot_region arity mismatch");
    dst.fill(0);
    for (&c, src) in coeffs.iter().zip(srcs) {
        mul_add_region(c, src, dst);
    }
}

/// Reference (scalar, unoptimised) implementations used by tests to pin
/// down the optimised kernels.
pub mod reference {
    use crate::field::Field;
    use crate::gf8::Gf8;

    /// Byte-at-a-time `dst = c*src`.
    pub fn mul_region(c: u8, src: &[u8], dst: &mut [u8]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = Gf8::mul(c as u32, s as u32) as u8;
        }
    }

    /// Byte-at-a-time `dst ^= c*src`.
    pub fn mul_add_region(c: u8, src: &[u8], dst: &mut [u8]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= Gf8::mul(c as u32, s as u32) as u8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_bytes(len: usize, seed: u64) -> Vec<u8> {
        // Tiny deterministic generator: keeps the tests free of external
        // RNG plumbing while still covering varied byte values.
        let mut x = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xFF) as u8
            })
            .collect()
    }

    #[test]
    fn xor_region_matches_scalar() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let a = pseudo_bytes(len, 1);
            let b = pseudo_bytes(len, 2);
            let mut got = a.clone();
            xor_region(&mut got, &b);
            let want: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            assert_eq!(got, want, "len={len}");
        }
    }

    #[test]
    fn xor_region_self_inverse() {
        let a = pseudo_bytes(777, 3);
        let b = pseudo_bytes(777, 4);
        let mut buf = a.clone();
        xor_region(&mut buf, &b);
        xor_region(&mut buf, &b);
        assert_eq!(buf, a);
    }

    #[test]
    fn mul_region_matches_reference() {
        for c in [0u8, 1, 2, 3, 0x1D, 0x80, 0xFF] {
            for len in [0usize, 1, 5, 8, 100, 4096] {
                let src = pseudo_bytes(len, c as u64 + 10);
                let mut got = vec![0u8; len];
                let mut want = vec![0u8; len];
                mul_region(c, &src, &mut got);
                reference::mul_region(c, &src, &mut want);
                assert_eq!(got, want, "c={c} len={len}");
            }
        }
    }

    #[test]
    fn mul_add_region_matches_reference() {
        for c in [0u8, 1, 2, 0xA5, 0xFF] {
            let src = pseudo_bytes(513, 20);
            let init = pseudo_bytes(513, 21);
            let mut got = init.clone();
            let mut want = init.clone();
            mul_add_region(c, &src, &mut got);
            reference::mul_add_region(c, &src, &mut want);
            assert_eq!(got, want, "c={c}");
        }
    }

    #[test]
    fn mul_region_by_inverse_roundtrips() {
        use crate::field::Field;
        let src = pseudo_bytes(256, 30);
        for c in [2u8, 7, 0x1D, 0xEE] {
            let mut mid = vec![0u8; src.len()];
            let mut back = vec![0u8; src.len()];
            mul_region(c, &src, &mut mid);
            mul_region(Gf8::inv(c as u32) as u8, &mid, &mut back);
            assert_eq!(back, src, "c={c}");
        }
    }

    #[test]
    fn dot_region_is_linear_combination() {
        let s0 = pseudo_bytes(300, 40);
        let s1 = pseudo_bytes(300, 41);
        let s2 = pseudo_bytes(300, 42);
        let coeffs = [3u8, 0, 0x7C];
        let mut got = vec![0u8; 300];
        dot_region(&coeffs, &[&s0, &s1, &s2], &mut got);
        let mut want = vec![0u8; 300];
        reference::mul_add_region(3, &s0, &mut want);
        reference::mul_add_region(0x7C, &s2, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn dot_region_overwrites_dst() {
        // dst must be zeroed first, not accumulated into.
        let s = pseudo_bytes(64, 50);
        let mut dst = pseudo_bytes(64, 51);
        dot_region(&[1], &[&s], &mut dst);
        assert_eq!(dst, s);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut d = [0u8; 4];
        xor_region(&mut d, &[0u8; 5]);
    }
}

//! `GF(2^8)` with the primitive polynomial `0x11D`
//! (x⁸ + x⁴ + x³ + x² + 1) — the field used by Jerasure, GF-Complete and
//! most storage-oriented Reed–Solomon deployments.
//!
//! All tables are generated at compile time:
//!
//! * `EXP` — antilog table, doubled in length so `exp(log a + log b)` needs
//!   no modular reduction;
//! * `LOG` — discrete logarithms;
//! * `MUL` — the full 256×256 product table (64 KiB). A single row of it
//!   (`mul_row`) is the lookup table the region operations stream through,
//!   which is the same strategy GF-Complete's "table" implementation uses;
//! * `INV` — multiplicative inverses.

use crate::field::{peasant_mul, Field};

/// Primitive polynomial for this field (including the x⁸ term).
pub const POLY8: u32 = 0x11D;

const ORDER: usize = 256;

const fn build_exp() -> [u8; 2 * (ORDER - 1)] {
    let mut t = [0u8; 2 * (ORDER - 1)];
    let mut x: u32 = 1;
    let mut i = 0;
    while i < ORDER - 1 {
        t[i] = x as u8;
        t[i + (ORDER - 1)] = x as u8;
        x = peasant_mul(x, 2, 8, POLY8);
        i += 1;
    }
    t
}

const fn build_log(exp: &[u8; 2 * (ORDER - 1)]) -> [u16; ORDER] {
    // LOG[0] is a sentinel; callers must never use it.
    let mut t = [0u16; ORDER];
    let mut i = 0;
    while i < ORDER - 1 {
        t[exp[i] as usize] = i as u16;
        i += 1;
    }
    t
}

const fn build_mul() -> [[u8; ORDER]; ORDER] {
    let mut t = [[0u8; ORDER]; ORDER];
    let mut a = 0;
    while a < ORDER {
        let mut b = 0;
        while b < ORDER {
            t[a][b] = peasant_mul(a as u32, b as u32, 8, POLY8) as u8;
            b += 1;
        }
        a += 1;
    }
    t
}

const fn build_inv(exp: &[u8; 2 * (ORDER - 1)], log: &[u16; ORDER]) -> [u8; ORDER] {
    let mut t = [0u8; ORDER];
    let mut a = 1;
    while a < ORDER {
        let l = log[a] as usize;
        t[a] = exp[(ORDER - 1 - l) % (ORDER - 1)];
        a += 1;
    }
    t
}

/// Antilog table, doubled: `EXP[i] == g^i` for `i < 510`.
pub static EXP: [u8; 2 * (ORDER - 1)] = build_exp();
/// Log table: `LOG[a] == log_g a` for `a != 0`.
pub static LOG: [u16; ORDER] = build_log(&EXP);
/// Full product table: `MUL[a][b] == a*b`.
pub static MUL: [[u8; ORDER]; ORDER] = build_mul();
/// Inverse table: `INV[a] == a^-1` for `a != 0`.
pub static INV: [u8; ORDER] = build_inv(&EXP, &LOG);

/// Marker type implementing [`Field`] for `GF(2^8)`.
///
/// This is the field every byte-oriented code in the workspace uses: one
/// field element per stored byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Gf8;

impl Gf8 {
    /// The 256-byte multiplication row for a constant `c`:
    /// `row[b] == c * b`. Region operations stream source bytes through
    /// this row.
    #[inline(always)]
    pub fn mul_row(c: u8) -> &'static [u8; 256] {
        &MUL[c as usize]
    }
}

impl Field for Gf8 {
    const W: u32 = 8;
    const ORDER: u32 = 256;
    const POLY: u32 = POLY8;

    #[inline(always)]
    fn mul(a: u32, b: u32) -> u32 {
        debug_assert!(a < 256 && b < 256);
        MUL[a as usize][b as usize] as u32
    }

    #[inline(always)]
    fn inv(a: u32) -> u32 {
        assert!(
            a != 0 && a < 256,
            "inverse of zero (or out-of-field element)"
        );
        INV[a as usize] as u32
    }

    #[inline(always)]
    fn exp(e: u32) -> u32 {
        EXP[(e % 255) as usize] as u32
    }

    #[inline(always)]
    fn log(a: u32) -> u32 {
        assert!(a != 0 && a < 256, "log of zero (or out-of-field element)");
        LOG[a as usize] as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_match_peasant_reference() {
        for a in 0..256u32 {
            for b in 0..256u32 {
                assert_eq!(
                    Gf8::mul(a, b),
                    peasant_mul(a, b, 8, POLY8),
                    "mismatch at {a}*{b}"
                );
            }
        }
    }

    #[test]
    fn exp_log_roundtrip() {
        for a in 1..256u32 {
            assert_eq!(Gf8::exp(Gf8::log(a)), a);
        }
        for e in 0..255u32 {
            assert_eq!(Gf8::log(Gf8::exp(e)), e);
        }
    }

    #[test]
    fn exp_is_cyclic_with_period_255() {
        assert_eq!(Gf8::exp(0), 1);
        assert_eq!(Gf8::exp(255), 1);
        // g is primitive: no smaller period.
        for e in 1..255u32 {
            assert_ne!(Gf8::exp(e), 1, "generator period divides {e}");
        }
    }

    #[test]
    fn inverses_are_inverses() {
        for a in 1..256u32 {
            assert_eq!(Gf8::mul(a, Gf8::inv(a)), 1);
            assert_eq!(Gf8::div(a, a), 1);
        }
    }

    #[test]
    fn division_undoes_multiplication() {
        for a in 0..256u32 {
            for b in 1..256u32 {
                assert_eq!(Gf8::div(Gf8::mul(a, b), b), a);
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [0u32, 1, 2, 3, 0x53, 0xFF] {
            let mut acc = 1u32;
            for e in 0..20u32 {
                assert_eq!(Gf8::pow(a, e), acc, "a={a} e={e}");
                acc = Gf8::mul(acc, a);
            }
        }
    }

    #[test]
    fn pow_zero_conventions() {
        assert_eq!(Gf8::pow(0, 0), 1);
        assert_eq!(Gf8::pow(0, 5), 0);
    }

    #[test]
    #[should_panic]
    fn inv_of_zero_panics() {
        Gf8::inv(0);
    }

    #[test]
    fn mul_row_is_mul_table_row() {
        for c in [0u8, 1, 2, 0x1D, 0xAB, 0xFF] {
            let row = Gf8::mul_row(c);
            for (b, &entry) in row.iter().enumerate() {
                assert_eq!(entry as u32, Gf8::mul(c as u32, b as u32));
            }
        }
    }
}

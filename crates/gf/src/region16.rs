//! Region operations over `GF(2^16)`: buffers hold one field element per
//! little-endian byte pair.
//!
//! These are the wide-symbol counterparts of [`crate::region`], used by
//! codes whose stripe exceeds the 255-element reach of `GF(2^8)`
//! (GF-Complete's `w = 16` case). Multiplication is log/antilog per
//! symbol — no product table exists at this width.

use crate::field::Field;
use crate::gf16::Gf16;

/// `dst = c * src` over `GF(2^16)`, element-wise on byte-pair symbols.
///
/// # Panics
/// Panics if lengths differ or are odd.
pub fn mul_region16(c: u16, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_region16 length mismatch");
    assert_eq!(src.len() % 2, 0, "GF(2^16) regions hold whole symbols");
    match c {
        0 => dst.fill(0),
        1 => dst.copy_from_slice(src),
        _ => {
            for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
                let v = u16::from_le_bytes([s[0], s[1]]);
                let p = Gf16::mul(c as u32, v as u32) as u16;
                d.copy_from_slice(&p.to_le_bytes());
            }
        }
    }
}

/// `dst ^= c * src` over `GF(2^16)`.
///
/// # Panics
/// Panics if lengths differ or are odd.
pub fn mul_add_region16(c: u16, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_add_region16 length mismatch");
    assert_eq!(src.len() % 2, 0, "GF(2^16) regions hold whole symbols");
    match c {
        0 => {}
        1 => crate::region::xor_region(dst, src),
        _ => {
            for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
                let v = u16::from_le_bytes([s[0], s[1]]);
                let p = Gf16::mul(c as u32, v as u32) as u16;
                let cur = u16::from_le_bytes([d[0], d[1]]);
                d.copy_from_slice(&(cur ^ p).to_le_bytes());
            }
        }
    }
}

/// Dot-product encode kernel over `GF(2^16)`: `dst = Σᵢ coeffs[i]·srcs[i]`.
///
/// # Panics
/// Panics on arity or length mismatches.
pub fn dot_region16(coeffs: &[u16], srcs: &[&[u8]], dst: &mut [u8]) {
    assert_eq!(coeffs.len(), srcs.len(), "dot_region16 arity mismatch");
    dst.fill(0);
    for (&c, src) in coeffs.iter().zip(srcs) {
        mul_add_region16(c, src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xFF) as u8
            })
            .collect()
    }

    fn scalar_mul(c: u16, src: &[u8]) -> Vec<u8> {
        src.chunks_exact(2)
            .flat_map(|s| {
                let v = u16::from_le_bytes([s[0], s[1]]);
                (Gf16::mul(c as u32, v as u32) as u16).to_le_bytes()
            })
            .collect()
    }

    #[test]
    fn mul_region_matches_scalar() {
        let src = pseudo(512, 3);
        for c in [0u16, 1, 2, 0x1234, 0xFFFF] {
            let mut dst = vec![0u8; 512];
            mul_region16(c, &src, &mut dst);
            assert_eq!(dst, scalar_mul(c, &src), "c={c:#x}");
        }
    }

    #[test]
    fn mul_by_inverse_roundtrips() {
        let src = pseudo(128, 5);
        for c in [3u16, 0x101, 0xABCD] {
            let mut mid = vec![0u8; 128];
            let mut back = vec![0u8; 128];
            mul_region16(c, &src, &mut mid);
            let cinv = Gf16::inv(c as u32) as u16;
            mul_region16(cinv, &mid, &mut back);
            assert_eq!(back, src, "c={c:#x}");
        }
    }

    #[test]
    fn mul_add_accumulates() {
        let src = pseudo(64, 7);
        let init = pseudo(64, 8);
        let mut dst = init.clone();
        mul_add_region16(0x55AA, &src, &mut dst);
        let want: Vec<u8> = scalar_mul(0x55AA, &src)
            .iter()
            .zip(&init)
            .map(|(a, b)| a ^ b)
            .collect();
        assert_eq!(dst, want);
    }

    #[test]
    fn dot_region_is_linear_combination() {
        let a = pseudo(96, 10);
        let b = pseudo(96, 11);
        let mut dst = pseudo(96, 12); // must be overwritten
        dot_region16(&[2, 3], &[&a, &b], &mut dst);
        let mut want = scalar_mul(2, &a);
        for (w, x) in want.iter_mut().zip(scalar_mul(3, &b)) {
            *w ^= x;
        }
        assert_eq!(dst, want);
    }

    #[test]
    #[should_panic]
    fn odd_length_rejected() {
        let mut d = vec![0u8; 3];
        mul_region16(2, &[0u8; 3], &mut d);
    }
}

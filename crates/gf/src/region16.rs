//! Region operations over `GF(2^16)`: buffers hold one field element per
//! little-endian byte pair.
//!
//! These are the wide-symbol counterparts of [`crate::region`], used by
//! codes whose stripe exceeds the 255-element reach of `GF(2^8)`
//! (GF-Complete's `w = 16` case). Multiplication dispatches to the
//! runtime-selected split-table backend in [`crate::kernel`] — four
//! nibble tables per coefficient, byte-shuffled 16 or 32 symbols at a
//! time on SIMD backends, log/antilog per symbol only in the scalar
//! baseline.

use crate::kernel;
use crate::region::MULTI_BLOCK;

/// `dst = c * src` over `GF(2^16)`, element-wise on byte-pair symbols.
///
/// # Panics
/// Panics if lengths differ or are odd.
pub fn mul_region16(c: u16, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_region16 length mismatch");
    assert_eq!(src.len() % 2, 0, "GF(2^16) regions hold whole symbols");
    kernel::active().mul_region16(c, src, dst);
}

/// `dst ^= c * src` over `GF(2^16)`.
///
/// # Panics
/// Panics if lengths differ or are odd.
pub fn mul_add_region16(c: u16, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_add_region16 length mismatch");
    assert_eq!(src.len() % 2, 0, "GF(2^16) regions hold whole symbols");
    kernel::active().mul_add_region16(c, src, dst);
}

/// Dot-product encode kernel over `GF(2^16)`: `dst = Σᵢ coeffs[i]·srcs[i]`.
/// The first nonzero term overwrites `dst` directly, so no zero-fill pass
/// precedes the accumulation.
///
/// # Panics
/// Panics on arity or length mismatches.
pub fn dot_region16(coeffs: &[u16], srcs: &[&[u8]], dst: &mut [u8]) {
    assert_eq!(coeffs.len(), srcs.len(), "dot_region16 arity mismatch");
    let mut started = false;
    for (&c, src) in coeffs.iter().zip(srcs) {
        if started {
            mul_add_region16(c, src, dst);
        } else if c != 0 {
            mul_region16(c, src, dst);
            started = true;
        } else {
            assert_eq!(dst.len(), src.len(), "dot_region16 length mismatch");
        }
    }
    if !started {
        dst.fill(0);
    }
}

/// Fused multi-output dot kernel over `GF(2^16)`: all output regions in
/// one blocked streaming pass over the sources (see
/// [`crate::region::dot_region_multi`] for the rationale).
///
/// # Panics
/// Panics on arity mismatches, length mismatches, or odd region lengths.
pub fn dot_region_multi16(coeff_rows: &[&[u16]], srcs: &[&[u8]], dsts: &mut [&mut [u8]]) {
    assert_eq!(
        coeff_rows.len(),
        dsts.len(),
        "dot_region_multi16 row/output arity mismatch"
    );
    let len = dsts.first().map_or(0, |d| d.len());
    assert_eq!(len % 2, 0, "GF(2^16) regions hold whole symbols");
    for d in dsts.iter() {
        assert_eq!(d.len(), len, "dot_region_multi16 output length mismatch");
    }
    for s in srcs {
        assert_eq!(s.len(), len, "dot_region_multi16 source length mismatch");
    }
    for row in coeff_rows {
        assert_eq!(
            row.len(),
            srcs.len(),
            "dot_region_multi16 coefficient arity mismatch"
        );
    }
    let k = kernel::active();
    // MULTI_BLOCK is a multiple of 2, so block boundaries never split a
    // symbol.
    let mut off = 0;
    while off < len {
        let end = (off + MULTI_BLOCK).min(len);
        for (row, dst) in coeff_rows.iter().zip(dsts.iter_mut()) {
            let db = &mut dst[off..end];
            let mut started = false;
            for (&c, src) in row.iter().zip(srcs) {
                if started {
                    k.mul_add_region16(c, &src[off..end], db);
                } else if c != 0 {
                    k.mul_region16(c, &src[off..end], db);
                    started = true;
                }
            }
            if !started {
                db.fill(0);
            }
        }
        off = end;
    }
}

/// Reference (scalar, unoptimised) implementations used by tests to pin
/// down the optimised kernels — the `GF(2^16)` counterpart of
/// [`crate::region::reference`].
pub mod reference {
    use crate::field::Field;
    use crate::gf16::Gf16;

    /// Symbol-at-a-time `dst = c*src` over little-endian byte pairs.
    ///
    /// # Panics
    /// Panics if lengths differ or are odd.
    pub fn mul_region16(c: u16, src: &[u8], dst: &mut [u8]) {
        assert_eq!(
            dst.len(),
            src.len(),
            "reference mul_region16 length mismatch"
        );
        assert_eq!(src.len() % 2, 0, "GF(2^16) regions hold whole symbols");
        for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
            let v = u16::from_le_bytes([s[0], s[1]]);
            let p = Gf16::mul(c as u32, v as u32) as u16;
            d.copy_from_slice(&p.to_le_bytes());
        }
    }

    /// Symbol-at-a-time `dst ^= c*src` over little-endian byte pairs.
    ///
    /// # Panics
    /// Panics if lengths differ or are odd.
    pub fn mul_add_region16(c: u16, src: &[u8], dst: &mut [u8]) {
        assert_eq!(
            dst.len(),
            src.len(),
            "reference mul_add_region16 length mismatch"
        );
        assert_eq!(src.len() % 2, 0, "GF(2^16) regions hold whole symbols");
        for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
            let v = u16::from_le_bytes([s[0], s[1]]);
            let p = Gf16::mul(c as u32, v as u32) as u16;
            let cur = u16::from_le_bytes([d[0], d[1]]);
            d.copy_from_slice(&(cur ^ p).to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field;
    use crate::gf16::Gf16;

    fn pseudo(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xFF) as u8
            })
            .collect()
    }

    #[test]
    fn mul_region_matches_reference() {
        // Includes "unaligned" even lengths that exercise the SIMD tail
        // (SIMD bodies step 32/64 bytes; 510 and 66 leave remainders).
        for len in [0usize, 2, 6, 30, 34, 66, 510, 512] {
            let src = pseudo(len, 3);
            for c in [0u16, 1, 2, 0x1234, 0xFFFF] {
                let mut dst = vec![0xAAu8; len];
                let mut want = vec![0u8; len];
                mul_region16(c, &src, &mut dst);
                reference::mul_region16(c, &src, &mut want);
                assert_eq!(dst, want, "c={c:#x} len={len}");
            }
        }
    }

    #[test]
    fn mul_by_inverse_roundtrips() {
        let src = pseudo(128, 5);
        for c in [3u16, 0x101, 0xABCD] {
            let mut mid = vec![0u8; 128];
            let mut back = vec![0u8; 128];
            mul_region16(c, &src, &mut mid);
            let cinv = Gf16::inv(c as u32) as u16;
            mul_region16(cinv, &mid, &mut back);
            assert_eq!(back, src, "c={c:#x}");
        }
    }

    #[test]
    fn mul_add_matches_reference() {
        for len in [0usize, 2, 30, 66, 510] {
            let src = pseudo(len, 7);
            let init = pseudo(len, 8);
            for c in [0u16, 1, 0x55AA, 0xFFFF] {
                let mut dst = init.clone();
                let mut want = init.clone();
                mul_add_region16(c, &src, &mut dst);
                reference::mul_add_region16(c, &src, &mut want);
                assert_eq!(dst, want, "c={c:#x} len={len}");
            }
        }
    }

    #[test]
    fn dot_region_is_linear_combination() {
        let a = pseudo(96, 10);
        let b = pseudo(96, 11);
        let mut dst = pseudo(96, 12); // must be overwritten
        dot_region16(&[2, 3], &[&a, &b], &mut dst);
        let mut want = vec![0u8; 96];
        reference::mul_add_region16(2, &a, &mut want);
        reference::mul_add_region16(3, &b, &mut want);
        assert_eq!(dst, want);
    }

    #[test]
    fn dot_region_all_zero_coeffs_zeroes_dst() {
        let a = pseudo(64, 13);
        let mut dst = pseudo(64, 14);
        dot_region16(&[0, 0], &[&a, &a], &mut dst);
        assert_eq!(dst, vec![0u8; 64]);
    }

    #[test]
    fn dot_region_leading_zero_coeffs() {
        let a = pseudo(64, 15);
        let b = pseudo(64, 16);
        let mut dst = pseudo(64, 17);
        dot_region16(&[0, 0x0102], &[&a, &b], &mut dst);
        let mut want = vec![0u8; 64];
        reference::mul_add_region16(0x0102, &b, &mut want);
        assert_eq!(dst, want);
    }

    #[test]
    fn dot_region_multi_matches_independent_dots() {
        let srcs: Vec<Vec<u8>> = (0..3).map(|i| pseudo(MULTI_BLOCK + 98, 20 + i)).collect();
        let src_refs: Vec<&[u8]> = srcs.iter().map(Vec::as_slice).collect();
        let rows: Vec<Vec<u16>> = vec![vec![1, 1, 1], vec![0, 0, 0], vec![0x1234, 0, 0xFFFF]];
        let row_refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let len = srcs[0].len();
        let mut outs: Vec<Vec<u8>> = (0..rows.len())
            .map(|i| pseudo(len, 30 + i as u64))
            .collect();
        {
            let mut out_refs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
            dot_region_multi16(&row_refs, &src_refs, &mut out_refs);
        }
        for (row, got) in rows.iter().zip(&outs) {
            let mut want = vec![0u8; len];
            dot_region16(row, &src_refs, &mut want);
            assert_eq!(got, &want, "row={row:?}");
        }
    }

    #[test]
    #[should_panic]
    fn odd_length_rejected() {
        let mut d = vec![0u8; 3];
        mul_region16(2, &[0u8; 3], &mut d);
    }

    #[test]
    #[should_panic]
    fn reference_odd_length_rejected() {
        let mut d = vec![0u8; 3];
        reference::mul_region16(2, &[0u8; 3], &mut d);
    }
}

//! The [`Field`] trait: arithmetic over binary extension fields `GF(2^w)`.
//!
//! All erasure-code math in this workspace is expressed against this trait
//! so that the same Reed–Solomon / LRC machinery works over `GF(2^4)`,
//! `GF(2^8)` and `GF(2^16)`. Elements are carried as `u32` regardless of
//! `w`; implementations guarantee that results always fit in `w` bits and
//! may debug-assert that inputs do.

/// Arithmetic over a binary extension field `GF(2^w)`.
///
/// Implementations are zero-sized marker types; every operation is an
/// associated function. Addition is XOR (characteristic 2), multiplication
/// is polynomial multiplication modulo a primitive polynomial, typically
/// realised through log/antilog tables generated at compile time.
pub trait Field: Copy + Clone + Send + Sync + 'static {
    /// Field width in bits: elements live in `0..2^W`.
    const W: u32;

    /// Number of field elements, `2^W`.
    const ORDER: u32;

    /// The primitive polynomial used for reduction (including the leading
    /// `x^W` term), e.g. `0x11D` for the common `GF(2^8)`.
    const POLY: u32;

    /// Field addition: in characteristic 2 this is bitwise XOR.
    #[inline(always)]
    fn add(a: u32, b: u32) -> u32 {
        a ^ b
    }

    /// Field subtraction: identical to addition in characteristic 2.
    #[inline(always)]
    fn sub(a: u32, b: u32) -> u32 {
        a ^ b
    }

    /// Field multiplication.
    fn mul(a: u32, b: u32) -> u32;

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `a == 0`; zero has no inverse.
    fn inv(a: u32) -> u32;

    /// Field division `a / b`.
    ///
    /// # Panics
    /// Panics if `b == 0`.
    #[inline]
    fn div(a: u32, b: u32) -> u32 {
        Self::mul(a, Self::inv(b))
    }

    /// `generator ^ e` where the generator is the primitive element whose
    /// powers enumerate all non-zero field elements. `e` is reduced modulo
    /// `ORDER - 1`.
    fn exp(e: u32) -> u32;

    /// Discrete logarithm base the primitive generator.
    ///
    /// # Panics
    /// Panics if `a == 0`.
    fn log(a: u32) -> u32;

    /// Exponentiation `a ^ e` by square-and-multiply via log tables.
    #[inline]
    fn pow(a: u32, e: u32) -> u32 {
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        if e == 0 {
            return 1;
        }
        let l = Self::log(a) as u64 * e as u64;
        Self::exp((l % (Self::ORDER as u64 - 1)) as u32)
    }
}

/// Slow-but-obviously-correct carry-less ("Russian peasant") multiply used
/// to generate the tables and as the reference in tests.
///
/// Works for any `w <= 16` with the given primitive polynomial `poly`
/// (which must include the leading `x^w` bit).
pub const fn peasant_mul(mut a: u32, mut b: u32, w: u32, poly: u32) -> u32 {
    let mut p: u32 = 0;
    let high_bit = 1u32 << (w - 1);
    let mask = (1u32 << w) - 1;
    let mut i = 0;
    while i < w {
        if b & 1 != 0 {
            p ^= a;
        }
        b >>= 1;
        let carry = a & high_bit != 0;
        a = (a << 1) & mask;
        if carry {
            a ^= poly & mask;
        }
        i += 1;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peasant_mul_small_identities() {
        // In GF(2^8)/0x11D: x * x = x^2, i.e. 2 * 2 = 4.
        assert_eq!(peasant_mul(2, 2, 8, 0x11D), 4);
        // Multiplying by 1 is identity.
        for a in 0..=255u32 {
            assert_eq!(peasant_mul(a, 1, 8, 0x11D), a);
            assert_eq!(peasant_mul(1, a, 8, 0x11D), a);
        }
        // Multiplying by 0 annihilates.
        for a in 0..=255u32 {
            assert_eq!(peasant_mul(a, 0, 8, 0x11D), 0);
        }
    }

    #[test]
    fn peasant_mul_known_vector() {
        // 0x53 * 0xCA = 0x01 in GF(2^8) with poly 0x11B (AES field):
        // classic test vector showing reduction polynomial matters.
        assert_eq!(peasant_mul(0x53, 0xCA, 8, 0x11B), 0x01);
    }

    #[test]
    fn peasant_mul_commutes() {
        for a in (0..256u32).step_by(7) {
            for b in (0..256u32).step_by(11) {
                assert_eq!(peasant_mul(a, b, 8, 0x11D), peasant_mul(b, a, 8, 0x11D));
            }
        }
    }

    #[test]
    fn peasant_mul_distributes() {
        for a in (0..256u32).step_by(13) {
            for b in (0..256u32).step_by(17) {
                for c in (0..256u32).step_by(29) {
                    assert_eq!(
                        peasant_mul(a, b ^ c, 8, 0x11D),
                        peasant_mul(a, b, 8, 0x11D) ^ peasant_mul(a, c, 8, 0x11D)
                    );
                }
            }
        }
    }
}

//! Runtime-dispatched region-multiply kernels built on 4-bit split tables.
//!
//! This is the workspace's substitute for GF-Complete's `SPLIT w,4`
//! implementations — the kernels behind Jerasure 1.2's headline speed.
//! The idea: a product `c·b` over `GF(2^8)` splits by linearity into
//! `c·(b_lo) ⊕ c·(b_hi·16)`, so two 16-entry tables (one per nibble)
//! fully describe multiplication by `c`. Sixteen entries is exactly the
//! reach of the byte-shuffle instructions every modern ISA ships
//! (`pshufb` / `vpshufb` / `tbl`), which turns the per-byte table lookup
//! into a 16- or 32-wide parallel lookup. `GF(2^16)` splits the same way
//! into four nibbles, each contributing a 16-bit partial product.
//!
//! Five backends are compiled (per architecture) and one is selected at
//! first use:
//!
//! | name       | arch     | technique                                   |
//! |------------|----------|---------------------------------------------|
//! | `avx2`     | x86_64   | 32-wide `_mm256_shuffle_epi8` nibble lookup |
//! | `ssse3`    | x86_64   | 16-wide `_mm_shuffle_epi8` nibble lookup    |
//! | `neon`     | aarch64  | 16-wide `vqtbl1q_u8` nibble lookup          |
//! | `portable` | any      | two-nibble tables, u64 loads, 8×-unrolled   |
//! | `scalar`   | any      | the original 256-byte product-row stream    |
//!
//! Selection order is top to bottom (first supported wins); the
//! `ECFRM_FORCE_KERNEL` environment variable overrides it by name, which
//! is how CI pins the differential suite to each backend in turn.
//! Forcing a backend the CPU cannot run (or a name that does not exist)
//! panics at first use — a test-harness override must never silently
//! degrade.
//!
//! All backends implement the same contract and are pinned against the
//! byte-at-a-time references in [`crate::region::reference`] and
//! [`crate::region16::reference`] by `tests/kernel_backends.rs`.

use std::sync::OnceLock;

use crate::field::Field;
use crate::gf16::Gf16;
use crate::gf8::Gf8;

/// The two 16-entry split tables for `GF(2^8)` multiplication by `c`:
/// `lo[n] = c·n` and `hi[n] = c·(n·16)`, so `c·b = lo[b & 15] ⊕ hi[b >> 4]`.
#[inline]
pub(crate) fn split_tables8(c: u8) -> ([u8; 16], [u8; 16]) {
    let row = Gf8::mul_row(c);
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    for n in 0..16 {
        lo[n] = row[n];
        hi[n] = row[n << 4];
    }
    (lo, hi)
}

/// The four 16-entry split tables for `GF(2^16)` multiplication by `c`:
/// `t[j][n] = c·(n·16^j)`, so a symbol's product is the XOR of four
/// nibble lookups.
#[inline]
pub(crate) fn split_tables16(c: u16) -> [[u16; 16]; 4] {
    let mut t = [[0u16; 16]; 4];
    for (j, table) in t.iter_mut().enumerate() {
        for (n, entry) in table.iter_mut().enumerate() {
            *entry = Gf16::mul(c as u32, (n << (4 * j)) as u32) as u16;
        }
    }
    t
}

/// One region-multiply backend. The function pointers must be correct
/// for **every** coefficient (including 0 and 1); the public wrappers in
/// [`crate::region`] / [`crate::region16`] shortcut 0 and 1 before
/// dispatching, so backends only see `c >= 2` in practice.
pub struct Kernel {
    /// Backend name as accepted by `ECFRM_FORCE_KERNEL`.
    pub name: &'static str,
    supported: fn() -> bool,
    mul8: fn(u8, &[u8], &mut [u8]),
    mul_add8: fn(u8, &[u8], &mut [u8]),
    mul16: fn(u16, &[u8], &mut [u8]),
    mul_add16: fn(u16, &[u8], &mut [u8]),
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Kernel({})", self.name)
    }
}

impl Kernel {
    /// True when the running CPU can execute this backend.
    pub fn is_supported(&self) -> bool {
        (self.supported)()
    }

    /// `dst = c·src` over `GF(2^8)`. Lengths must match (checked by the
    /// callers in [`crate::region`]).
    #[inline]
    pub fn mul_region8(&self, c: u8, src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        match c {
            0 => dst.fill(0),
            1 => dst.copy_from_slice(src),
            _ => (self.mul8)(c, src, dst),
        }
    }

    /// `dst ^= c·src` over `GF(2^8)`.
    #[inline]
    pub fn mul_add_region8(&self, c: u8, src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        match c {
            0 => {}
            1 => crate::region::xor_region(dst, src),
            _ => (self.mul_add8)(c, src, dst),
        }
    }

    /// `dst = c·src` over `GF(2^16)` (LE byte-pair symbols, even length).
    #[inline]
    pub fn mul_region16(&self, c: u16, src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        match c {
            0 => dst.fill(0),
            1 => dst.copy_from_slice(src),
            _ => (self.mul16)(c, src, dst),
        }
    }

    /// `dst ^= c·src` over `GF(2^16)`.
    #[inline]
    pub fn mul_add_region16(&self, c: u16, src: &[u8], dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        match c {
            0 => {}
            1 => crate::region::xor_region(dst, src),
            _ => (self.mul_add16)(c, src, dst),
        }
    }
}

// ---------------------------------------------------------------------------
// scalar backend: the original 256-byte product-row stream. Kept both as
// the universally-available baseline the benches compare against and as
// the tail loop every wider backend falls back to.
// ---------------------------------------------------------------------------

fn scalar_mul8(c: u8, src: &[u8], dst: &mut [u8]) {
    let row = Gf8::mul_row(c);
    // Unrolled by 4: the bound checks vanish and the table row stays in
    // L1 for the whole region.
    let mut i = 0;
    let n4 = src.len() / 4 * 4;
    while i < n4 {
        dst[i] = row[src[i] as usize];
        dst[i + 1] = row[src[i + 1] as usize];
        dst[i + 2] = row[src[i + 2] as usize];
        dst[i + 3] = row[src[i + 3] as usize];
        i += 4;
    }
    while i < src.len() {
        dst[i] = row[src[i] as usize];
        i += 1;
    }
}

fn scalar_mul_add8(c: u8, src: &[u8], dst: &mut [u8]) {
    let row = Gf8::mul_row(c);
    let mut i = 0;
    let n4 = src.len() / 4 * 4;
    while i < n4 {
        dst[i] ^= row[src[i] as usize];
        dst[i + 1] ^= row[src[i + 1] as usize];
        dst[i + 2] ^= row[src[i + 2] as usize];
        dst[i + 3] ^= row[src[i + 3] as usize];
        i += 4;
    }
    while i < src.len() {
        dst[i] ^= row[src[i] as usize];
        i += 1;
    }
}

fn scalar_mul16(c: u16, src: &[u8], dst: &mut [u8]) {
    for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
        let v = u16::from_le_bytes([s[0], s[1]]);
        let p = Gf16::mul(c as u32, v as u32) as u16;
        d.copy_from_slice(&p.to_le_bytes());
    }
}

fn scalar_mul_add16(c: u16, src: &[u8], dst: &mut [u8]) {
    for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
        let v = u16::from_le_bytes([s[0], s[1]]);
        let p = Gf16::mul(c as u32, v as u32) as u16;
        let cur = u16::from_le_bytes([d[0], d[1]]);
        d.copy_from_slice(&(cur ^ p).to_le_bytes());
    }
}

static SCALAR: Kernel = Kernel {
    name: "scalar",
    supported: || true,
    mul8: scalar_mul8,
    mul_add8: scalar_mul_add8,
    mul16: scalar_mul16,
    mul_add16: scalar_mul_add16,
};

// ---------------------------------------------------------------------------
// portable backend: the same two-nibble split tables the SIMD paths use,
// walked with u64 loads and an 8×-unrolled lookup body. No intrinsics,
// so it runs (and is differentially tested) on every architecture.
// ---------------------------------------------------------------------------

/// Multiply the 8 packed bytes of `word` through the split tables.
#[inline(always)]
fn split_word8(word: u64, lo: &[u8; 16], hi: &[u8; 16]) -> u64 {
    let b = word.to_le_bytes();
    u64::from_le_bytes([
        lo[(b[0] & 15) as usize] ^ hi[(b[0] >> 4) as usize],
        lo[(b[1] & 15) as usize] ^ hi[(b[1] >> 4) as usize],
        lo[(b[2] & 15) as usize] ^ hi[(b[2] >> 4) as usize],
        lo[(b[3] & 15) as usize] ^ hi[(b[3] >> 4) as usize],
        lo[(b[4] & 15) as usize] ^ hi[(b[4] >> 4) as usize],
        lo[(b[5] & 15) as usize] ^ hi[(b[5] >> 4) as usize],
        lo[(b[6] & 15) as usize] ^ hi[(b[6] >> 4) as usize],
        lo[(b[7] & 15) as usize] ^ hi[(b[7] >> 4) as usize],
    ])
}

fn portable_mul8(c: u8, src: &[u8], dst: &mut [u8]) {
    let (lo, hi) = split_tables8(c);
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let w = u64::from_le_bytes(sc.try_into().unwrap());
        dc.copy_from_slice(&split_word8(w, &lo, &hi).to_le_bytes());
    }
    for (db, &sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db = lo[(sb & 15) as usize] ^ hi[(sb >> 4) as usize];
    }
}

fn portable_mul_add8(c: u8, src: &[u8], dst: &mut [u8]) {
    let (lo, hi) = split_tables8(c);
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let w = u64::from_le_bytes(sc.try_into().unwrap());
        let cur = u64::from_le_bytes((&*dc).try_into().unwrap());
        dc.copy_from_slice(&(cur ^ split_word8(w, &lo, &hi)).to_le_bytes());
    }
    for (db, &sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= lo[(sb & 15) as usize] ^ hi[(sb >> 4) as usize];
    }
}

/// Multiply one `GF(2^16)` symbol through the four split tables.
#[inline(always)]
fn split_sym16(v: u16, t: &[[u16; 16]; 4]) -> u16 {
    t[0][(v & 15) as usize]
        ^ t[1][((v >> 4) & 15) as usize]
        ^ t[2][((v >> 8) & 15) as usize]
        ^ t[3][(v >> 12) as usize]
}

fn portable_mul16(c: u16, src: &[u8], dst: &mut [u8]) {
    let t = split_tables16(c);
    for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
        let v = u16::from_le_bytes([s[0], s[1]]);
        d.copy_from_slice(&split_sym16(v, &t).to_le_bytes());
    }
}

fn portable_mul_add16(c: u16, src: &[u8], dst: &mut [u8]) {
    let t = split_tables16(c);
    for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
        let v = u16::from_le_bytes([s[0], s[1]]);
        let cur = u16::from_le_bytes([d[0], d[1]]);
        d.copy_from_slice(&(cur ^ split_sym16(v, &t)).to_le_bytes());
    }
}

static PORTABLE: Kernel = Kernel {
    name: "portable",
    supported: || true,
    mul8: portable_mul8,
    mul_add8: portable_mul_add8,
    mul16: portable_mul16,
    mul_add16: portable_mul_add16,
};

// ---------------------------------------------------------------------------
// x86_64 backends: SSSE3 (pshufb, 16-wide) and AVX2 (vpshufb, 32-wide).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    // -- GF(2^8) ------------------------------------------------------

    /// # Safety
    /// Caller must ensure the CPU supports SSSE3 and `src.len() == dst.len()`.
    #[target_feature(enable = "ssse3")]
    unsafe fn mul8_ssse3(c: u8, src: &[u8], dst: &mut [u8], accumulate: bool) {
        let (lo, hi) = split_tables8(c);
        let lo_t = _mm_loadu_si128(lo.as_ptr() as *const __m128i);
        let hi_t = _mm_loadu_si128(hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0f);
        let n = src.len() / 16 * 16;
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let s = _mm_loadu_si128(sp.add(i) as *const __m128i);
            let l = _mm_shuffle_epi8(lo_t, _mm_and_si128(s, mask));
            let h = _mm_shuffle_epi8(hi_t, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
            let mut p = _mm_xor_si128(l, h);
            if accumulate {
                p = _mm_xor_si128(p, _mm_loadu_si128(dp.add(i) as *const __m128i));
            }
            _mm_storeu_si128(dp.add(i) as *mut __m128i, p);
            i += 16;
        }
        if accumulate {
            portable_mul_add8(c, &src[n..], &mut dst[n..]);
        } else {
            portable_mul8(c, &src[n..], &mut dst[n..]);
        }
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and `src.len() == dst.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn mul8_avx2(c: u8, src: &[u8], dst: &mut [u8], accumulate: bool) {
        let (lo, hi) = split_tables8(c);
        let lo_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr() as *const __m128i));
        let hi_t = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0f);
        let n = src.len() / 32 * 32;
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let s = _mm256_loadu_si256(sp.add(i) as *const __m256i);
            let l = _mm256_shuffle_epi8(lo_t, _mm256_and_si256(s, mask));
            let h = _mm256_shuffle_epi8(hi_t, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
            let mut p = _mm256_xor_si256(l, h);
            if accumulate {
                p = _mm256_xor_si256(p, _mm256_loadu_si256(dp.add(i) as *const __m256i));
            }
            _mm256_storeu_si256(dp.add(i) as *mut __m256i, p);
            i += 32;
        }
        if accumulate {
            portable_mul_add8(c, &src[n..], &mut dst[n..]);
        } else {
            portable_mul8(c, &src[n..], &mut dst[n..]);
        }
    }

    // -- GF(2^16) -----------------------------------------------------
    //
    // Memory holds interleaved little-endian byte pairs. Each iteration
    // deinterleaves a run of symbols into a low-byte plane and a
    // high-byte plane, runs four nibble lookups per output plane, and
    // re-interleaves on store. This is GF-Complete's SPLIT 16,4 without
    // the ALTMAP layout change (regions stay plain byte-pair buffers).

    /// Build the eight 16-byte lookup tables for the planes: for split
    /// table `j`, `[j][0]` maps a nibble to the low result byte and
    /// `[j][1]` to the high result byte.
    #[inline]
    fn plane_tables16(c: u16) -> [[[u8; 16]; 2]; 4] {
        let t = split_tables16(c);
        let mut planes = [[[0u8; 16]; 2]; 4];
        for j in 0..4 {
            for n in 0..16 {
                let [l, h] = t[j][n].to_le_bytes();
                planes[j][0][n] = l;
                planes[j][1][n] = h;
            }
        }
        planes
    }

    /// # Safety
    /// Caller must ensure the CPU supports SSSE3, equal lengths, and an
    /// even region length.
    #[target_feature(enable = "ssse3")]
    unsafe fn mul16_ssse3(c: u16, src: &[u8], dst: &mut [u8], accumulate: bool) {
        let planes = plane_tables16(c);
        let t: [__m128i; 8] = [
            _mm_loadu_si128(planes[0][0].as_ptr() as *const __m128i),
            _mm_loadu_si128(planes[0][1].as_ptr() as *const __m128i),
            _mm_loadu_si128(planes[1][0].as_ptr() as *const __m128i),
            _mm_loadu_si128(planes[1][1].as_ptr() as *const __m128i),
            _mm_loadu_si128(planes[2][0].as_ptr() as *const __m128i),
            _mm_loadu_si128(planes[2][1].as_ptr() as *const __m128i),
            _mm_loadu_si128(planes[3][0].as_ptr() as *const __m128i),
            _mm_loadu_si128(planes[3][1].as_ptr() as *const __m128i),
        ];
        let mask = _mm_set1_epi8(0x0f);
        // Even-byte / odd-byte extraction masks for deinterleaving.
        let even = _mm_setr_epi8(0, 2, 4, 6, 8, 10, 12, 14, -1, -1, -1, -1, -1, -1, -1, -1);
        let odd = _mm_setr_epi8(1, 3, 5, 7, 9, 11, 13, 15, -1, -1, -1, -1, -1, -1, -1, -1);
        let n = src.len() / 32 * 32;
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let v0 = _mm_loadu_si128(sp.add(i) as *const __m128i);
            let v1 = _mm_loadu_si128(sp.add(i + 16) as *const __m128i);
            // 16 low-plane bytes and 16 high-plane bytes of 16 symbols.
            let lo = _mm_unpacklo_epi64(_mm_shuffle_epi8(v0, even), _mm_shuffle_epi8(v1, even));
            let hi = _mm_unpacklo_epi64(_mm_shuffle_epi8(v0, odd), _mm_shuffle_epi8(v1, odd));
            let n0 = _mm_and_si128(lo, mask);
            let n1 = _mm_and_si128(_mm_srli_epi64(lo, 4), mask);
            let n2 = _mm_and_si128(hi, mask);
            let n3 = _mm_and_si128(_mm_srli_epi64(hi, 4), mask);
            let rlo = _mm_xor_si128(
                _mm_xor_si128(_mm_shuffle_epi8(t[0], n0), _mm_shuffle_epi8(t[2], n1)),
                _mm_xor_si128(_mm_shuffle_epi8(t[4], n2), _mm_shuffle_epi8(t[6], n3)),
            );
            let rhi = _mm_xor_si128(
                _mm_xor_si128(_mm_shuffle_epi8(t[1], n0), _mm_shuffle_epi8(t[3], n1)),
                _mm_xor_si128(_mm_shuffle_epi8(t[5], n2), _mm_shuffle_epi8(t[7], n3)),
            );
            let mut out0 = _mm_unpacklo_epi8(rlo, rhi);
            let mut out1 = _mm_unpackhi_epi8(rlo, rhi);
            if accumulate {
                out0 = _mm_xor_si128(out0, _mm_loadu_si128(dp.add(i) as *const __m128i));
                out1 = _mm_xor_si128(out1, _mm_loadu_si128(dp.add(i + 16) as *const __m128i));
            }
            _mm_storeu_si128(dp.add(i) as *mut __m128i, out0);
            _mm_storeu_si128(dp.add(i + 16) as *mut __m128i, out1);
            i += 32;
        }
        if accumulate {
            portable_mul_add16(c, &src[n..], &mut dst[n..]);
        } else {
            portable_mul16(c, &src[n..], &mut dst[n..]);
        }
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2, equal lengths, and an
    /// even region length.
    #[target_feature(enable = "avx2")]
    unsafe fn mul16_avx2(c: u16, src: &[u8], dst: &mut [u8], accumulate: bool) {
        let planes = plane_tables16(c);
        let bt = |p: &[u8; 16]| {
            _mm256_broadcastsi128_si256(_mm_loadu_si128(p.as_ptr() as *const __m128i))
        };
        let t: [__m256i; 8] = [
            bt(&planes[0][0]),
            bt(&planes[0][1]),
            bt(&planes[1][0]),
            bt(&planes[1][1]),
            bt(&planes[2][0]),
            bt(&planes[2][1]),
            bt(&planes[3][0]),
            bt(&planes[3][1]),
        ];
        let mask = _mm256_set1_epi8(0x0f);
        #[allow(clippy::cast_possible_wrap)]
        let even = _mm256_setr_epi8(
            0, 2, 4, 6, 8, 10, 12, 14, -1, -1, -1, -1, -1, -1, -1, -1, 0, 2, 4, 6, 8, 10, 12, 14,
            -1, -1, -1, -1, -1, -1, -1, -1,
        );
        let odd = _mm256_setr_epi8(
            1, 3, 5, 7, 9, 11, 13, 15, -1, -1, -1, -1, -1, -1, -1, -1, 1, 3, 5, 7, 9, 11, 13, 15,
            -1, -1, -1, -1, -1, -1, -1, -1,
        );
        let n = src.len() / 64 * 64;
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let v0 = _mm256_loadu_si256(sp.add(i) as *const __m256i);
            let v1 = _mm256_loadu_si256(sp.add(i + 32) as *const __m256i);
            // Per-lane even/odd extraction leaves each lane's 8 plane
            // bytes in its low half; permute packs them: low 128 bits =
            // v0's 16 plane bytes, etc.
            let e0 = _mm256_permute4x64_epi64(_mm256_shuffle_epi8(v0, even), 0b11011000);
            let e1 = _mm256_permute4x64_epi64(_mm256_shuffle_epi8(v1, even), 0b11011000);
            let o0 = _mm256_permute4x64_epi64(_mm256_shuffle_epi8(v0, odd), 0b11011000);
            let o1 = _mm256_permute4x64_epi64(_mm256_shuffle_epi8(v1, odd), 0b11011000);
            // 32 low-plane bytes (symbols 0..32) and 32 high-plane bytes.
            let lo = _mm256_permute2x128_si256(e0, e1, 0x20);
            let hi = _mm256_permute2x128_si256(o0, o1, 0x20);
            let n0 = _mm256_and_si256(lo, mask);
            let n1 = _mm256_and_si256(_mm256_srli_epi64(lo, 4), mask);
            let n2 = _mm256_and_si256(hi, mask);
            let n3 = _mm256_and_si256(_mm256_srli_epi64(hi, 4), mask);
            let rlo = _mm256_xor_si256(
                _mm256_xor_si256(_mm256_shuffle_epi8(t[0], n0), _mm256_shuffle_epi8(t[2], n1)),
                _mm256_xor_si256(_mm256_shuffle_epi8(t[4], n2), _mm256_shuffle_epi8(t[6], n3)),
            );
            let rhi = _mm256_xor_si256(
                _mm256_xor_si256(_mm256_shuffle_epi8(t[1], n0), _mm256_shuffle_epi8(t[3], n1)),
                _mm256_xor_si256(_mm256_shuffle_epi8(t[5], n2), _mm256_shuffle_epi8(t[7], n3)),
            );
            // Re-interleave planes back into byte pairs: unpack works
            // per lane, so recombine lane halves across the two stores.
            let il = _mm256_unpacklo_epi8(rlo, rhi);
            let ih = _mm256_unpackhi_epi8(rlo, rhi);
            let mut out0 = _mm256_permute2x128_si256(il, ih, 0x20);
            let mut out1 = _mm256_permute2x128_si256(il, ih, 0x31);
            if accumulate {
                out0 = _mm256_xor_si256(out0, _mm256_loadu_si256(dp.add(i) as *const __m256i));
                out1 = _mm256_xor_si256(out1, _mm256_loadu_si256(dp.add(i + 32) as *const __m256i));
            }
            _mm256_storeu_si256(dp.add(i) as *mut __m256i, out0);
            _mm256_storeu_si256(dp.add(i + 32) as *mut __m256i, out1);
            i += 64;
        }
        if accumulate {
            portable_mul_add16(c, &src[n..], &mut dst[n..]);
        } else {
            portable_mul16(c, &src[n..], &mut dst[n..]);
        }
    }

    // Safe wrappers: support is verified once at backend selection, so
    // the target-feature calls are sound by construction.
    pub(super) fn ssse3_mul8(c: u8, src: &[u8], dst: &mut [u8]) {
        unsafe { mul8_ssse3(c, src, dst, false) }
    }
    pub(super) fn ssse3_mul_add8(c: u8, src: &[u8], dst: &mut [u8]) {
        unsafe { mul8_ssse3(c, src, dst, true) }
    }
    pub(super) fn ssse3_mul16(c: u16, src: &[u8], dst: &mut [u8]) {
        unsafe { mul16_ssse3(c, src, dst, false) }
    }
    pub(super) fn ssse3_mul_add16(c: u16, src: &[u8], dst: &mut [u8]) {
        unsafe { mul16_ssse3(c, src, dst, true) }
    }
    pub(super) fn avx2_mul8(c: u8, src: &[u8], dst: &mut [u8]) {
        unsafe { mul8_avx2(c, src, dst, false) }
    }
    pub(super) fn avx2_mul_add8(c: u8, src: &[u8], dst: &mut [u8]) {
        unsafe { mul8_avx2(c, src, dst, true) }
    }
    pub(super) fn avx2_mul16(c: u16, src: &[u8], dst: &mut [u8]) {
        unsafe { mul16_avx2(c, src, dst, false) }
    }
    pub(super) fn avx2_mul_add16(c: u16, src: &[u8], dst: &mut [u8]) {
        unsafe { mul16_avx2(c, src, dst, true) }
    }
}

#[cfg(target_arch = "x86_64")]
static SSSE3: Kernel = Kernel {
    name: "ssse3",
    supported: || std::arch::is_x86_feature_detected!("ssse3"),
    mul8: x86::ssse3_mul8,
    mul_add8: x86::ssse3_mul_add8,
    mul16: x86::ssse3_mul16,
    mul_add16: x86::ssse3_mul_add16,
};

#[cfg(target_arch = "x86_64")]
static AVX2: Kernel = Kernel {
    name: "avx2",
    supported: || std::arch::is_x86_feature_detected!("avx2"),
    mul8: x86::avx2_mul8,
    mul_add8: x86::avx2_mul_add8,
    mul16: x86::avx2_mul16,
    mul_add16: x86::avx2_mul_add16,
};

// ---------------------------------------------------------------------------
// aarch64 backend: NEON vqtbl1q_u8 nibble lookup (tbl covers 16 entries,
// exactly one split table). vld2q/vst2q give the byte-pair deinterleave
// for GF(2^16) in hardware.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::*;
    #[allow(clippy::wildcard_imports)]
    use std::arch::aarch64::*;

    /// # Safety
    /// Caller must ensure NEON support and `src.len() == dst.len()`.
    #[target_feature(enable = "neon")]
    unsafe fn mul8_neon(c: u8, src: &[u8], dst: &mut [u8], accumulate: bool) {
        let (lo, hi) = split_tables8(c);
        let lo_t = vld1q_u8(lo.as_ptr());
        let hi_t = vld1q_u8(hi.as_ptr());
        let mask = vdupq_n_u8(0x0f);
        let n = src.len() / 16 * 16;
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let s = vld1q_u8(sp.add(i));
            let l = vqtbl1q_u8(lo_t, vandq_u8(s, mask));
            let h = vqtbl1q_u8(hi_t, vshrq_n_u8(s, 4));
            let mut p = veorq_u8(l, h);
            if accumulate {
                p = veorq_u8(p, vld1q_u8(dp.add(i)));
            }
            vst1q_u8(dp.add(i), p);
            i += 16;
        }
        if accumulate {
            portable_mul_add8(c, &src[n..], &mut dst[n..]);
        } else {
            portable_mul8(c, &src[n..], &mut dst[n..]);
        }
    }

    /// # Safety
    /// Caller must ensure NEON support, equal lengths, and an even
    /// region length.
    #[target_feature(enable = "neon")]
    unsafe fn mul16_neon(c: u16, src: &[u8], dst: &mut [u8], accumulate: bool) {
        let t = split_tables16(c);
        let mut planes = [[0u8; 16]; 8];
        for j in 0..4 {
            for n in 0..16 {
                let [l, h] = t[j][n].to_le_bytes();
                planes[2 * j][n] = l;
                planes[2 * j + 1][n] = h;
            }
        }
        let tv: [uint8x16_t; 8] = [
            vld1q_u8(planes[0].as_ptr()),
            vld1q_u8(planes[1].as_ptr()),
            vld1q_u8(planes[2].as_ptr()),
            vld1q_u8(planes[3].as_ptr()),
            vld1q_u8(planes[4].as_ptr()),
            vld1q_u8(planes[5].as_ptr()),
            vld1q_u8(planes[6].as_ptr()),
            vld1q_u8(planes[7].as_ptr()),
        ];
        let mask = vdupq_n_u8(0x0f);
        let n = src.len() / 32 * 32;
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            // Structure load deinterleaves 16 byte-pair symbols into a
            // low-byte plane and a high-byte plane.
            let v = vld2q_u8(sp.add(i));
            let n0 = vandq_u8(v.0, mask);
            let n1 = vshrq_n_u8(v.0, 4);
            let n2 = vandq_u8(v.1, mask);
            let n3 = vshrq_n_u8(v.1, 4);
            let rlo = veorq_u8(
                veorq_u8(vqtbl1q_u8(tv[0], n0), vqtbl1q_u8(tv[2], n1)),
                veorq_u8(vqtbl1q_u8(tv[4], n2), vqtbl1q_u8(tv[6], n3)),
            );
            let rhi = veorq_u8(
                veorq_u8(vqtbl1q_u8(tv[1], n0), vqtbl1q_u8(tv[3], n1)),
                veorq_u8(vqtbl1q_u8(tv[5], n2), vqtbl1q_u8(tv[7], n3)),
            );
            let mut out = uint8x16x2_t(rlo, rhi);
            if accumulate {
                let cur = vld2q_u8(dp.add(i));
                out = uint8x16x2_t(veorq_u8(out.0, cur.0), veorq_u8(out.1, cur.1));
            }
            vst2q_u8(dp.add(i), out);
            i += 32;
        }
        if accumulate {
            portable_mul_add16(c, &src[n..], &mut dst[n..]);
        } else {
            portable_mul16(c, &src[n..], &mut dst[n..]);
        }
    }

    pub(super) fn neon_mul8(c: u8, src: &[u8], dst: &mut [u8]) {
        unsafe { mul8_neon(c, src, dst, false) }
    }
    pub(super) fn neon_mul_add8(c: u8, src: &[u8], dst: &mut [u8]) {
        unsafe { mul8_neon(c, src, dst, true) }
    }
    pub(super) fn neon_mul16(c: u16, src: &[u8], dst: &mut [u8]) {
        unsafe { mul16_neon(c, src, dst, false) }
    }
    pub(super) fn neon_mul_add16(c: u16, src: &[u8], dst: &mut [u8]) {
        unsafe { mul16_neon(c, src, dst, true) }
    }
}

#[cfg(target_arch = "aarch64")]
static NEON: Kernel = Kernel {
    name: "neon",
    supported: || std::arch::is_aarch64_feature_detected!("neon"),
    mul8: arm::neon_mul8,
    mul_add8: arm::neon_mul_add8,
    mul16: arm::neon_mul16,
    mul_add16: arm::neon_mul_add16,
};

// ---------------------------------------------------------------------------
// dispatch
// ---------------------------------------------------------------------------

/// Every backend compiled for this architecture, in selection-preference
/// order. Check [`Kernel::is_supported`] before invoking one directly —
/// entries exist even when the running CPU lacks the feature.
pub fn backends() -> &'static [&'static Kernel] {
    #[cfg(target_arch = "x86_64")]
    {
        static ALL: [&Kernel; 4] = [&AVX2, &SSSE3, &PORTABLE, &SCALAR];
        &ALL
    }
    #[cfg(target_arch = "aarch64")]
    {
        static ALL: [&Kernel; 3] = [&NEON, &PORTABLE, &SCALAR];
        &ALL
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        static ALL: [&Kernel; 2] = [&PORTABLE, &SCALAR];
        &ALL
    }
}

/// Look up a compiled backend by its `ECFRM_FORCE_KERNEL` name.
pub fn by_name(name: &str) -> Option<&'static Kernel> {
    backends().iter().copied().find(|k| k.name == name)
}

/// Pure selection logic: an explicit name must exist and be runnable;
/// otherwise the first supported backend in preference order wins.
///
/// # Panics
/// Panics when `force` names an unknown or CPU-unsupported backend —
/// a forced kernel silently degrading would invalidate whatever test
/// pinned it.
fn choose(force: Option<&str>) -> &'static Kernel {
    if let Some(name) = force {
        let Some(k) = by_name(name) else {
            let names: Vec<&str> = backends().iter().map(|k| k.name).collect();
            panic!("ECFRM_FORCE_KERNEL={name:?} is not a compiled backend (have: {names:?})");
        };
        assert!(
            k.is_supported(),
            "ECFRM_FORCE_KERNEL={name:?} is not supported by this CPU"
        );
        return k;
    }
    backends()
        .iter()
        .copied()
        .find(|k| k.is_supported())
        .expect("scalar backend is always supported")
}

/// The process-wide active kernel: selected once on first use from
/// `ECFRM_FORCE_KERNEL` or CPU feature detection.
pub fn active() -> &'static Kernel {
    static ACTIVE: OnceLock<&'static Kernel> = OnceLock::new();
    ACTIVE.get_or_init(|| choose(std::env::var("ECFRM_FORCE_KERNEL").ok().as_deref()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_tables8_reconstruct_products() {
        for c in [2u8, 3, 0x1D, 0x80, 0xFF] {
            let (lo, hi) = split_tables8(c);
            for b in 0..=255u8 {
                let want = Gf8::mul(c as u32, b as u32) as u8;
                assert_eq!(lo[(b & 15) as usize] ^ hi[(b >> 4) as usize], want);
            }
        }
    }

    #[test]
    fn split_tables16_reconstruct_products() {
        for c in [2u16, 0x1234, 0xFFFF, 0x8001] {
            let t = split_tables16(c);
            for v in [0u16, 1, 2, 0x00FF, 0x0F0F, 0xABCD, 0xFFFF, 0x8000] {
                let want = Gf16::mul(c as u32, v as u32) as u16;
                assert_eq!(split_sym16(v, &t), want, "c={c:#x} v={v:#x}");
            }
        }
    }

    #[test]
    fn choose_defaults_to_supported_backend() {
        let k = choose(None);
        assert!(k.is_supported());
    }

    #[test]
    fn choose_honours_force() {
        assert_eq!(choose(Some("portable")).name, "portable");
        assert_eq!(choose(Some("scalar")).name, "scalar");
    }

    #[test]
    #[should_panic]
    fn choose_rejects_unknown_name() {
        choose(Some("warp-drive"));
    }

    #[test]
    fn backends_include_universal_fallbacks() {
        let names: Vec<&str> = backends().iter().map(|k| k.name).collect();
        assert!(names.contains(&"portable"));
        assert!(names.contains(&"scalar"));
    }

    #[test]
    fn active_is_stable() {
        assert_eq!(active().name, active().name);
    }
}

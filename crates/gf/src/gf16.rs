//! `GF(2^16)` with primitive polynomial `0x1100B`
//! (x¹⁶ + x¹² + x³ + x + 1), the polynomial Jerasure uses for `w = 16`.
//!
//! Provided so codes can span more than 255 devices per stripe (the
//! `GF(2^8)` limit). Tables are two 128 KiB statics generated at compile
//! time; multiplication is log/antilog based (a full product table would
//! be 8 GiB).

use crate::field::{peasant_mul, Field};

/// Primitive polynomial for this field (including the x¹⁶ term).
pub const POLY16: u32 = 0x1100B;

const ORDER: usize = 1 << 16;

const fn build_exp() -> [u16; 2 * (ORDER - 1)] {
    let mut t = [0u16; 2 * (ORDER - 1)];
    let mut x: u32 = 1;
    let mut i = 0;
    while i < ORDER - 1 {
        t[i] = x as u16;
        t[i + (ORDER - 1)] = x as u16;
        x = peasant_mul(x, 2, 16, POLY16);
        i += 1;
    }
    t
}

const fn build_log(exp: &[u16; 2 * (ORDER - 1)]) -> [u16; ORDER] {
    let mut t = [0u16; ORDER];
    let mut i = 0;
    while i < ORDER - 1 {
        t[exp[i] as usize] = i as u16;
        i += 1;
    }
    t
}

static EXP: [u16; 2 * (ORDER - 1)] = build_exp();
static LOG: [u16; ORDER] = build_log(&EXP);

/// Marker type implementing [`Field`] for `GF(2^16)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Gf16;

impl Field for Gf16 {
    const W: u32 = 16;
    const ORDER: u32 = 1 << 16;
    const POLY: u32 = POLY16;

    #[inline]
    fn mul(a: u32, b: u32) -> u32 {
        debug_assert!(a < (1 << 16) && b < (1 << 16));
        if a == 0 || b == 0 {
            return 0;
        }
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize] as u32
    }

    #[inline]
    fn inv(a: u32) -> u32 {
        assert!(a != 0 && a < (1 << 16), "inverse of zero");
        EXP[(ORDER - 1 - LOG[a as usize] as usize) % (ORDER - 1)] as u32
    }

    #[inline]
    fn exp(e: u32) -> u32 {
        EXP[(e as usize) % (ORDER - 1)] as u32
    }

    #[inline]
    fn log(a: u32) -> u32 {
        assert!(a != 0 && a < (1 << 16), "log of zero");
        LOG[a as usize] as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spot_check_against_peasant_reference() {
        // Full 2^32 cross-product is too slow; stride through the field.
        let mut a = 1u32;
        for _ in 0..500 {
            let mut b = 3u32;
            for _ in 0..200 {
                assert_eq!(Gf16::mul(a, b), peasant_mul(a, b, 16, POLY16));
                b = b.wrapping_mul(48271) & 0xFFFF;
            }
            a = a.wrapping_mul(69621) & 0xFFFF;
            if a == 0 {
                a = 1;
            }
        }
    }

    #[test]
    fn exp_log_roundtrip() {
        for a in (1..ORDER as u32).step_by(251) {
            assert_eq!(Gf16::exp(Gf16::log(a)), a);
        }
    }

    #[test]
    fn inverses_spot_check() {
        for a in (1..ORDER as u32).step_by(509) {
            assert_eq!(Gf16::mul(a, Gf16::inv(a)), 1);
        }
    }

    #[test]
    fn generator_period_is_full() {
        // g^(order-1) == 1 and g^((order-1)/p) != 1 for prime factors p of
        // 65535 = 3 * 5 * 17 * 257.
        assert_eq!(Gf16::exp(65535), 1);
        for p in [3u32, 5, 17, 257] {
            assert_ne!(Gf16::exp(65535 / p), 1, "period divides 65535/{p}");
        }
    }
}

//! Dense matrices over a [`Field`], with the operations erasure codes
//! need: multiplication, Gauss–Jordan inversion, rank, and the
//! Vandermonde / Cauchy constructors from which systematic Reed–Solomon
//! generator matrices are derived (following Plank's Jerasure tutorial).

use crate::field::Field;
use std::marker::PhantomData;

/// A dense row-major matrix over the field `F`.
///
/// Elements are stored as `u32` but always lie in `0..F::ORDER`.
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix<F: Field> {
    rows: usize,
    cols: usize,
    data: Vec<u32>,
    _f: PhantomData<F>,
}

impl<F: Field> std::fmt::Debug for Matrix<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix<{}x{}> over GF(2^{})", self.rows, self.cols, F::W)?;
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>4x}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl<F: Field> std::ops::Index<(usize, usize)> for Matrix<F> {
    type Output = u32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &u32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl<F: Field> std::ops::IndexMut<(usize, usize)> for Matrix<F> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut u32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl<F: Field> Matrix<F> {
    /// An all-zero `rows × cols` matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0; rows * cols],
            _f: PhantomData,
        }
    }

    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows*cols` or any element is outside the
    /// field.
    pub fn from_data(rows: usize, cols: usize, data: Vec<u32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data size mismatch");
        assert!(
            data.iter().all(|&x| x < F::ORDER),
            "element outside GF(2^{})",
            F::W
        );
        Self {
            rows,
            cols,
            data,
            _f: PhantomData,
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[u32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row-major backing data.
    pub fn data(&self) -> &[u32] {
        &self.data
    }

    /// A `rows × cols` Vandermonde matrix: entry `(i, j) = xᵢʲ` with
    /// `xᵢ = i` (distinct field elements).
    ///
    /// # Panics
    /// Panics if `rows > F::ORDER` (elements would repeat).
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= F::ORDER as usize,
            "vandermonde needs distinct evaluation points"
        );
        let mut m = Self::zero(rows, cols);
        for i in 0..rows {
            let mut v = 1u32;
            for j in 0..cols {
                m[(i, j)] = v;
                v = F::mul(v, i as u32);
            }
        }
        m
    }

    /// A `rows × cols` Cauchy matrix: entry `(i, j) = 1/(xᵢ + yⱼ)` with
    /// `xᵢ = i` and `yⱼ = rows + j`. Every square submatrix of a Cauchy
    /// matrix is non-singular, which makes identity-over-Cauchy a
    /// systematic MDS generator directly.
    ///
    /// # Panics
    /// Panics if `rows + cols > F::ORDER`.
    pub fn cauchy(rows: usize, cols: usize) -> Self {
        assert!(
            rows + cols <= F::ORDER as usize,
            "cauchy needs {} distinct elements in GF(2^{})",
            rows + cols,
            F::W
        );
        let mut m = Self::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = F::inv((i as u32) ^ (rows + j) as u32);
            }
        }
        m
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn mul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Self::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self[(i, l)];
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let t = F::mul(a, rhs[(l, j)]);
                    out[(i, j)] ^= t;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[u32]) -> Vec<u32> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = 0u32;
                for j in 0..self.cols {
                    acc ^= F::mul(self[(i, j)], v[j]);
                }
                acc
            })
            .collect()
    }

    /// Pick a subset of rows into a new matrix.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn select_rows(&self, rows: &[usize]) -> Self {
        let mut out = Self::zero(rows.len(), self.cols);
        for (oi, &r) in rows.iter().enumerate() {
            assert!(r < self.rows, "row index out of range");
            for c in 0..self.cols {
                out[(oi, c)] = self[(r, c)];
            }
        }
        out
    }

    /// Stack `self` on top of `below`.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vstack(&self, below: &Self) -> Self {
        assert_eq!(self.cols, below.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&below.data);
        Self::from_data(self.rows + below.rows, self.cols, data)
    }

    /// Gauss–Jordan inverse. Returns `None` when singular.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn invert(&self) -> Option<Self> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Self::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| a[(r, col)] != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalise the pivot row.
            let p = a[(col, col)];
            if p != 1 {
                let pinv = F::inv(p);
                a.scale_row(col, pinv);
                inv.scale_row(col, pinv);
            }
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r != col && a[(r, col)] != 0 {
                    let f = a[(r, col)];
                    a.add_scaled_row(col, r, f);
                    inv.add_scaled_row(col, r, f);
                }
            }
        }
        Some(inv)
    }

    /// Rank via Gaussian elimination (non-destructive).
    pub fn rank(&self) -> usize {
        let mut a = self.clone();
        let mut rank = 0;
        for col in 0..a.cols {
            if rank == a.rows {
                break;
            }
            if let Some(p) = (rank..a.rows).find(|&r| a[(r, col)] != 0) {
                a.swap_rows(p, rank);
                let pinv = F::inv(a[(rank, col)]);
                a.scale_row(rank, pinv);
                for r in 0..a.rows {
                    if r != rank && a[(r, col)] != 0 {
                        let f = a[(r, col)];
                        a.add_scaled_row(rank, r, f);
                    }
                }
                rank += 1;
            }
        }
        rank
    }

    /// True when square and invertible.
    pub fn is_nonsingular(&self) -> bool {
        self.rows == self.cols && self.rank() == self.rows
    }

    fn swap_rows(&mut self, r0: usize, r1: usize) {
        if r0 == r1 {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(r0 * self.cols + c, r1 * self.cols + c);
        }
    }

    fn scale_row(&mut self, r: usize, f: u32) {
        for c in 0..self.cols {
            let v = self[(r, c)];
            self[(r, c)] = F::mul(v, f);
        }
    }

    /// `row[dst] ^= f * row[src]`.
    fn add_scaled_row(&mut self, src: usize, dst: usize, f: u32) {
        for c in 0..self.cols {
            let t = F::mul(f, self[(src, c)]);
            self[(dst, c)] ^= t;
        }
    }

    /// Derive the parity sub-matrix of a **systematic** MDS generator from
    /// a Vandermonde matrix, following the classic Plank construction:
    /// build the `(k+m) × k` Vandermonde, then apply column operations
    /// (which preserve "every k rows invertible") until the top `k × k`
    /// block is the identity. The returned `m × k` block holds the parity
    /// coefficients.
    ///
    /// # Panics
    /// Panics if `k + m > F::ORDER`.
    pub fn systematic_vandermonde_parity(k: usize, m: usize) -> Self {
        assert!(
            k + m <= F::ORDER as usize,
            "k+m too large for GF(2^{})",
            F::W
        );
        let mut v = Self::vandermonde(k + m, k);
        // Column-reduce so the top k×k block becomes identity. Column
        // operations are multiplications on the right by invertible
        // matrices, so every k-row submatrix stays invertible.
        for i in 0..k {
            // Ensure v[i][i] != 0 by swapping columns if needed.
            if v[(i, i)] == 0 {
                let j = (i + 1..k)
                    .find(|&j| v[(i, j)] != 0)
                    .expect("vandermonde rows are linearly independent");
                for r in 0..k + m {
                    let tmp = v[(r, i)];
                    v[(r, i)] = v[(r, j)];
                    v[(r, j)] = tmp;
                }
            }
            // Scale column i so the diagonal becomes 1.
            let d = v[(i, i)];
            if d != 1 {
                let dinv = F::inv(d);
                for r in 0..k + m {
                    let t = v[(r, i)];
                    v[(r, i)] = F::mul(t, dinv);
                }
            }
            // Clear the rest of row i with column operations.
            for j in 0..k {
                if j != i && v[(i, j)] != 0 {
                    let f = v[(i, j)];
                    for r in 0..k + m {
                        let t = F::mul(f, v[(r, i)]);
                        v[(r, j)] ^= t;
                    }
                }
            }
        }
        // Top block is now identity; return the bottom m×k parity block.
        let parity_rows: Vec<usize> = (k..k + m).collect();
        v.select_rows(&parity_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf4, Gf8};

    type M8 = Matrix<Gf8>;
    type M4 = Matrix<Gf4>;

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = M8::vandermonde(4, 4);
        let i = M8::identity(4);
        assert_eq!(a.mul(&i), a);
        assert_eq!(i.mul(&a), a);
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = M8::cauchy(5, 5);
        let ainv = a.invert().expect("cauchy is invertible");
        assert_eq!(a.mul(&ainv), M8::identity(5));
        assert_eq!(ainv.mul(&a), M8::identity(5));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        // Two equal rows.
        let a = M8::from_data(2, 2, vec![1, 2, 1, 2]);
        assert!(a.invert().is_none());
        assert_eq!(a.rank(), 1);
        assert!(!a.is_nonsingular());
    }

    #[test]
    fn zero_matrix_rank_zero() {
        assert_eq!(M8::zero(3, 4).rank(), 0);
    }

    #[test]
    fn vandermonde_square_is_invertible() {
        for n in 1..8 {
            assert!(M8::vandermonde(n, n).is_nonsingular(), "n={n}");
        }
    }

    #[test]
    fn cauchy_every_square_submatrix_invertible_gf4() {
        // Exhaustive over GF(16) with a 3x3 Cauchy: all 1x1, 2x2, 3x3
        // minors must be non-singular.
        let c = M4::cauchy(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_ne!(c[(i, j)], 0);
            }
        }
        // 2x2 minors.
        for r0 in 0..3 {
            for r1 in r0 + 1..3 {
                for c0 in 0..3 {
                    for c1 in c0 + 1..3 {
                        let det =
                            Gf4::mul(c[(r0, c0)], c[(r1, c1)]) ^ Gf4::mul(c[(r0, c1)], c[(r1, c0)]);
                        assert_ne!(det, 0);
                    }
                }
            }
        }
        assert!(c.is_nonsingular());
    }

    /// Enumerate all k-subsets of 0..n in lexicographic order.
    fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut idx: Vec<usize> = (0..k).collect();
        if k > n {
            return out;
        }
        loop {
            out.push(idx.clone());
            // Advance to the next combination.
            let mut i = k;
            while i > 0 {
                i -= 1;
                if idx[i] != i + n - k {
                    idx[i] += 1;
                    for j in i + 1..k {
                        idx[j] = idx[j - 1] + 1;
                    }
                    break;
                }
                if i == 0 {
                    return out;
                }
            }
            if k == 0 {
                return out;
            }
        }
    }

    #[test]
    fn combinations_enumerates_all() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(5, 3).len(), 10);
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn systematic_vandermonde_parity_yields_mds() {
        // For (k, m), stacking identity over the parity block must have
        // every k-row subset invertible (MDS property). Exhaustive for
        // small parameters.
        for (k, m) in [(3usize, 2usize), (4, 3), (6, 3)] {
            let p = M8::systematic_vandermonde_parity(k, m);
            assert_eq!(p.rows(), m);
            assert_eq!(p.cols(), k);
            let g = M8::identity(k).vstack(&p);
            for idx in combinations(k + m, k) {
                assert!(
                    g.select_rows(&idx).is_nonsingular(),
                    "rows {idx:?} singular for (k={k}, m={m})"
                );
            }
        }
    }

    #[test]
    fn mul_vec_matches_mul() {
        let a = M8::cauchy(4, 6);
        let v: Vec<u32> = (1..=6).collect();
        let as_col = M8::from_data(6, 1, v.clone());
        let want: Vec<u32> = a.mul(&as_col).data().to_vec();
        assert_eq!(a.mul_vec(&v), want);
    }

    #[test]
    fn select_rows_and_vstack() {
        let a = M8::vandermonde(4, 3);
        let top = a.select_rows(&[0, 1]);
        let bot = a.select_rows(&[2, 3]);
        assert_eq!(top.vstack(&bot), a);
    }

    #[test]
    fn rank_of_rectangular() {
        let a = M8::vandermonde(6, 3);
        assert_eq!(a.rank(), 3);
        let b = M8::vandermonde(3, 6);
        assert_eq!(b.rank(), 3);
    }

    #[test]
    #[should_panic]
    fn invert_non_square_panics() {
        let _ = M8::zero(2, 3).invert();
    }
}

//! Galois field arithmetic and linear algebra for erasure coding.
//!
//! This crate is the from-scratch substitute for the GF-Complete and
//! Jerasure C libraries that the EC-FRM paper builds on. It provides:
//!
//! * [`Field`] — an abstraction over binary extension fields `GF(2^w)`,
//!   with concrete implementations [`Gf4`], [`Gf8`] and [`Gf16`] backed by
//!   compile-time generated logarithm/antilogarithm tables;
//! * [`region`] — bulk "region" operations over byte buffers (XOR,
//!   multiply-by-constant, multiply-accumulate, fused multi-parity dot
//!   products), the hot loops of erasure encoding and decoding;
//! * [`kernel`] — the runtime-dispatched split-table backends behind the
//!   region ops: SSSE3/AVX2/NEON byte-shuffle kernels where available, a
//!   portable 64-bit nibble-table loop otherwise, overridable via the
//!   `ECFRM_FORCE_KERNEL` environment variable;
//! * [`matrix`] — dense matrices over a field, with Gauss–Jordan
//!   inversion, rank computation, and the Vandermonde / Cauchy
//!   constructors used to derive systematic Reed–Solomon generator
//!   matrices.
//!
//! # Example
//!
//! ```
//! use ecfrm_gf::{Field, Gf8};
//!
//! let a = 0x57;
//! let b = 0x83;
//! let p = Gf8::mul(a, b);
//! assert_eq!(Gf8::div(p, b), a);
//! assert_eq!(Gf8::add(a, a), 0); // characteristic 2
//! ```

#![warn(missing_docs)]

pub mod field;
pub mod gf16;
pub mod gf4;
pub mod gf8;
pub mod kernel;
pub mod matrix;
pub mod region;
pub mod region16;

pub use field::Field;
pub use gf16::Gf16;
pub use gf4::Gf4;
pub use gf8::Gf8;
pub use matrix::Matrix;

//! `GF(2^4)` with primitive polynomial `0x13` (x⁴ + x + 1).
//!
//! Small enough to be exhaustively testable, `GF(2^4)` is included mainly
//! so generic code paths (matrix algebra, Cauchy constructions) can be
//! verified against a field where brute force over all elements and all
//! small matrices is feasible, and to support narrow codes where
//! `n < 16` suffices.

use crate::field::{peasant_mul, Field};

/// Primitive polynomial for this field (including the x⁴ term).
pub const POLY4: u32 = 0x13;

const ORDER: usize = 16;

const fn build_exp() -> [u8; 2 * (ORDER - 1)] {
    let mut t = [0u8; 2 * (ORDER - 1)];
    let mut x: u32 = 1;
    let mut i = 0;
    while i < ORDER - 1 {
        t[i] = x as u8;
        t[i + (ORDER - 1)] = x as u8;
        x = peasant_mul(x, 2, 4, POLY4);
        i += 1;
    }
    t
}

const fn build_log(exp: &[u8; 2 * (ORDER - 1)]) -> [u8; ORDER] {
    let mut t = [0u8; ORDER];
    let mut i = 0;
    while i < ORDER - 1 {
        t[exp[i] as usize] = i as u8;
        i += 1;
    }
    t
}

static EXP: [u8; 2 * (ORDER - 1)] = build_exp();
static LOG: [u8; ORDER] = build_log(&EXP);

/// Marker type implementing [`Field`] for `GF(2^4)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Gf4;

impl Field for Gf4 {
    const W: u32 = 4;
    const ORDER: u32 = 16;
    const POLY: u32 = POLY4;

    #[inline]
    fn mul(a: u32, b: u32) -> u32 {
        debug_assert!(a < 16 && b < 16);
        if a == 0 || b == 0 {
            return 0;
        }
        EXP[(LOG[a as usize] + LOG[b as usize]) as usize] as u32
    }

    #[inline]
    fn inv(a: u32) -> u32 {
        assert!(a != 0 && a < 16, "inverse of zero");
        EXP[(15 - LOG[a as usize] as usize) % 15] as u32
    }

    #[inline]
    fn exp(e: u32) -> u32 {
        EXP[(e % 15) as usize] as u32
    }

    #[inline]
    fn log(a: u32) -> u32 {
        assert!(a != 0 && a < 16, "log of zero");
        LOG[a as usize] as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_field_axioms() {
        // GF(16) is tiny: check associativity/commutativity/distributivity
        // over every triple.
        for a in 0..16u32 {
            for b in 0..16u32 {
                assert_eq!(Gf4::mul(a, b), Gf4::mul(b, a));
                assert_eq!(Gf4::mul(a, b), peasant_mul(a, b, 4, POLY4));
                for c in 0..16u32 {
                    assert_eq!(Gf4::mul(a, Gf4::mul(b, c)), Gf4::mul(Gf4::mul(a, b), c));
                    assert_eq!(Gf4::mul(a, b ^ c), Gf4::mul(a, b) ^ Gf4::mul(a, c));
                }
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..16u32 {
            assert_eq!(Gf4::mul(a, Gf4::inv(a)), 1);
        }
    }

    #[test]
    fn generator_is_primitive() {
        let mut seen = [false; 16];
        for e in 0..15u32 {
            let v = Gf4::exp(e) as usize;
            assert!(!seen[v], "generator repeats before full period");
            seen[v] = true;
        }
        assert!(!seen[0], "generator never hits zero");
    }
}

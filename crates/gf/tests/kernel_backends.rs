//! Differential suite pinning every compiled kernel backend against the
//! byte-at-a-time references in `region::reference` / `region16::reference`.
//!
//! Every backend × coefficient class {0, 1, random sample} × length class
//! {0, 1, 7, 8, 9, 63, 64, 65, 4096, 64 KiB ± 1} is exercised for both
//! `mul` and `mul_add`, in both symbol widths. Backends the running CPU
//! cannot execute are skipped (they still compile); CI additionally runs
//! the whole crate under `ECFRM_FORCE_KERNEL=<name>` so the dispatched
//! public API is pinned per backend as well.

use ecfrm_gf::kernel::{backends, by_name, Kernel};
use ecfrm_gf::{region, region16};

const LENGTHS: &[usize] = &[0, 1, 7, 8, 9, 63, 64, 65, 4096, 65535, 65536, 65537];

fn pseudo(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x & 0xFF) as u8
        })
        .collect()
}

/// The coefficient classes from the acceptance criteria: 0, 1, and a
/// spread of "random" (fixed-seed) values covering low/high nibbles.
fn coeffs8() -> Vec<u8> {
    vec![0, 1, 2, 3, 0x1D, 0x53, 0x80, 0xA7, 0xFF]
}

fn coeffs16() -> Vec<u16> {
    vec![0, 1, 2, 0x00FF, 0x0101, 0x1234, 0x8000, 0xABCD, 0xFFFF]
}

fn supported() -> impl Iterator<Item = &'static Kernel> {
    backends().iter().copied().filter(|k| k.is_supported())
}

#[test]
fn every_backend_mul8_matches_reference() {
    for k in supported() {
        for &len in LENGTHS {
            let src = pseudo(len, 11);
            for c in coeffs8() {
                let mut got = vec![0xA5u8; len];
                let mut want = vec![0u8; len];
                k.mul_region8(c, &src, &mut got);
                region::reference::mul_region(c, &src, &mut want);
                assert_eq!(got, want, "backend={} c={c} len={len}", k.name);
            }
        }
    }
}

#[test]
fn every_backend_mul_add8_matches_reference() {
    for k in supported() {
        for &len in LENGTHS {
            let src = pseudo(len, 12);
            let init = pseudo(len, 13);
            for c in coeffs8() {
                let mut got = init.clone();
                let mut want = init.clone();
                k.mul_add_region8(c, &src, &mut got);
                region::reference::mul_add_region(c, &src, &mut want);
                assert_eq!(got, want, "backend={} c={c} len={len}", k.name);
            }
        }
    }
}

#[test]
fn every_backend_mul16_matches_reference() {
    for k in supported() {
        for &len in LENGTHS {
            let len = len / 2 * 2; // whole symbols
            let src = pseudo(len, 14);
            for c in coeffs16() {
                let mut got = vec![0x5Au8; len];
                let mut want = vec![0u8; len];
                k.mul_region16(c, &src, &mut got);
                region16::reference::mul_region16(c, &src, &mut want);
                assert_eq!(got, want, "backend={} c={c:#x} len={len}", k.name);
            }
        }
    }
}

#[test]
fn every_backend_mul_add16_matches_reference() {
    for k in supported() {
        for &len in LENGTHS {
            let len = len / 2 * 2;
            let src = pseudo(len, 15);
            let init = pseudo(len, 16);
            for c in coeffs16() {
                let mut got = init.clone();
                let mut want = init.clone();
                k.mul_add_region16(c, &src, &mut got);
                region16::reference::mul_add_region16(c, &src, &mut want);
                assert_eq!(got, want, "backend={} c={c:#x} len={len}", k.name);
            }
        }
    }
}

#[test]
fn backend_agreement_pairwise() {
    // Belt and braces: all supported backends agree with each other on a
    // larger randomized region (catches any reference blind spot).
    let len = 64 * 1024 + 24;
    let src = pseudo(len, 17);
    let init = pseudo(len, 18);
    let ks: Vec<&Kernel> = supported().collect();
    for c in [2u8, 0x1D, 0xEE] {
        let mut first: Option<Vec<u8>> = None;
        for k in &ks {
            let mut got = init.clone();
            k.mul_add_region8(c, &src, &mut got);
            match &first {
                None => first = Some(got),
                Some(f) => assert_eq!(&got, f, "backend={} c={c}", k.name),
            }
        }
    }
}

#[test]
fn dot_region_multi_matches_reference_combination() {
    // The fused kernel goes through the dispatched active backend; pin
    // its algebra against the scalar references directly.
    let k = 6;
    let m = 3;
    let len = region::MULTI_BLOCK + 65;
    let srcs: Vec<Vec<u8>> = (0..k).map(|i| pseudo(len, 40 + i as u64)).collect();
    let src_refs: Vec<&[u8]> = srcs.iter().map(Vec::as_slice).collect();
    let rows: Vec<Vec<u8>> = (0..m)
        .map(|r| {
            (0..k)
                .map(|i| ((r * 37 + i * 11 + 1) % 255) as u8)
                .collect()
        })
        .collect();
    let row_refs: Vec<&[u8]> = rows.iter().map(Vec::as_slice).collect();
    let mut outs: Vec<Vec<u8>> = (0..m).map(|r| pseudo(len, 50 + r as u64)).collect();
    {
        let mut out_refs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
        region::dot_region_multi(&row_refs, &src_refs, &mut out_refs);
    }
    for (row, got) in rows.iter().zip(&outs) {
        let mut want = vec![0u8; len];
        for (&c, src) in row.iter().zip(&src_refs) {
            region::reference::mul_add_region(c, src, &mut want);
        }
        assert_eq!(got, &want, "row={row:?}");
    }
}

#[test]
fn dot_region_multi16_matches_reference_combination() {
    let k = 4;
    let m = 2;
    let len = region::MULTI_BLOCK + 66;
    let srcs: Vec<Vec<u8>> = (0..k).map(|i| pseudo(len, 60 + i as u64)).collect();
    let src_refs: Vec<&[u8]> = srcs.iter().map(Vec::as_slice).collect();
    let rows: Vec<Vec<u16>> = (0..m)
        .map(|r| {
            (0..k)
                .map(|i| ((r * 1009 + i * 257 + 1) % 65535) as u16)
                .collect()
        })
        .collect();
    let row_refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
    let mut outs: Vec<Vec<u8>> = (0..m).map(|r| pseudo(len, 70 + r as u64)).collect();
    {
        let mut out_refs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
        region16::dot_region_multi16(&row_refs, &src_refs, &mut out_refs);
    }
    for (row, got) in rows.iter().zip(&outs) {
        let mut want = vec![0u8; len];
        for (&c, src) in row.iter().zip(&src_refs) {
            region16::reference::mul_add_region16(c, src, &mut want);
        }
        assert_eq!(got, &want, "row={row:?}");
    }
}

#[test]
fn by_name_resolves_universal_backends() {
    assert!(by_name("portable").is_some());
    assert!(by_name("scalar").is_some());
    assert!(by_name("no-such-kernel").is_none());
}

#[test]
fn forced_kernel_env_is_respected_when_set() {
    // When CI pins ECFRM_FORCE_KERNEL, the dispatched kernel must be the
    // forced one; without the variable this just sanity-checks support.
    let active = ecfrm_gf::kernel::active();
    match std::env::var("ECFRM_FORCE_KERNEL") {
        Ok(name) => assert_eq!(active.name, name),
        Err(_) => assert!(active.is_supported()),
    }
}

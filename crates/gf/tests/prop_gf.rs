//! Randomised tests for the Galois-field substrate.
//!
//! Property-style: each test sweeps a seeded pseudo-random sample of the
//! input space (fixed seeds, so failures reproduce deterministically).

use ecfrm_gf::field::peasant_mul;
use ecfrm_gf::region::{self, reference};
use ecfrm_gf::{Field, Gf16, Gf4, Gf8, Matrix};
use ecfrm_util::Rng;

/// Check the full field-axiom set for one (a, b, c) triple.
fn axioms<F: Field>(a: u32, b: u32, c: u32) {
    // Commutativity and associativity.
    assert_eq!(F::mul(a, b), F::mul(b, a));
    assert_eq!(F::mul(a, F::mul(b, c)), F::mul(F::mul(a, b), c));
    // Distributivity over XOR-addition.
    assert_eq!(F::mul(a, b ^ c), F::mul(a, b) ^ F::mul(a, c));
    // Identities.
    assert_eq!(F::mul(a, 1), a);
    assert_eq!(F::mul(a, 0), 0);
    // Inverses.
    if a != 0 {
        assert_eq!(F::mul(a, F::inv(a)), 1);
        assert_eq!(F::div(F::mul(b, a), a), b);
    }
    // Reference multiplier agreement.
    assert_eq!(F::mul(a, b), peasant_mul(a, b, F::W, F::POLY));
}

#[test]
fn gf4_axioms_exhaustive() {
    for a in 0..16 {
        for b in 0..16 {
            for c in 0..16 {
                axioms::<Gf4>(a, b, c);
            }
        }
    }
}

#[test]
fn gf8_axioms_sampled() {
    let mut rng = Rng::seed_from_u64(0x6F8A);
    for _ in 0..4096 {
        axioms::<Gf8>(
            rng.random_range(0u32..256),
            rng.random_range(0u32..256),
            rng.random_range(0u32..256),
        );
    }
}

#[test]
fn gf16_axioms_sampled() {
    let mut rng = Rng::seed_from_u64(0x6F16);
    for _ in 0..4096 {
        axioms::<Gf16>(
            rng.random_range(0u32..65536),
            rng.random_range(0u32..65536),
            rng.random_range(0u32..65536),
        );
    }
}

#[test]
fn exp_log_bijection_gf8() {
    for a in 1u32..256 {
        assert_eq!(Gf8::exp(Gf8::log(a)), a);
    }
}

#[test]
fn pow_laws_gf8() {
    // a^(e1+e2) == a^e1 * a^e2.
    let mut rng = Rng::seed_from_u64(0x709);
    for _ in 0..2048 {
        let a = rng.random_range(1u32..256);
        let e1 = rng.random_range(0u32..500);
        let e2 = rng.random_range(0u32..500);
        assert_eq!(
            Gf8::pow(a, e1 + e2),
            Gf8::mul(Gf8::pow(a, e1), Gf8::pow(a, e2))
        );
    }
}

#[test]
fn region_kernels_match_reference() {
    let mut rng = Rng::seed_from_u64(0x12E6);
    for _ in 0..256 {
        let c = rng.random_range(0u32..256) as u8;
        let n = rng.random_range(0usize..300);
        let mut src = vec![0u8; n];
        rng.fill_bytes(&mut src);
        let mut acc = vec![0u8; n];
        rng.fill_bytes(&mut acc);

        let mut got = acc.clone();
        let mut want = acc.clone();
        region::mul_add_region(c, &src, &mut got);
        reference::mul_add_region(c, &src, &mut want);
        assert_eq!(got, want, "mul_add_region mismatch for c={c} n={n}");

        let mut got2 = vec![0u8; n];
        let mut want2 = vec![0u8; n];
        region::mul_region(c, &src, &mut got2);
        reference::mul_region(c, &src, &mut want2);
        assert_eq!(got2, want2, "mul_region mismatch for c={c} n={n}");
    }
}

#[test]
fn region16_acts_symbol_wise() {
    // mul_region16 must act symbol-wise like the scalar field op.
    let mut rng = Rng::seed_from_u64(0x12E16);
    for _ in 0..256 {
        let c = rng.random_range(0u32..65536);
        let n_words = rng.random_range(1usize..100);
        let words: Vec<u16> = (0..n_words)
            .map(|_| rng.random_range(0u32..65536) as u16)
            .collect();
        let src: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut dst = vec![0u8; src.len()];
        ecfrm_gf::region16::mul_region16(c as u16, &src, &mut dst);
        for (w, d) in words.iter().zip(dst.chunks_exact(2)) {
            let got = u16::from_le_bytes([d[0], d[1]]);
            assert_eq!(got as u32, Gf16::mul(c, *w as u32));
        }
    }
}

#[test]
fn matrix_inverse_roundtrip() {
    // Random matrix over GF(2^8); if invertible, A·A⁻¹ = I and the
    // inverse inverts back.
    let mut rng = Rng::seed_from_u64(0x3A7);
    for _ in 0..512 {
        let n = rng.random_range(1usize..6);
        let data: Vec<u32> = (0..n * n).map(|_| rng.random_range(0u32..256)).collect();
        let a = Matrix::<Gf8>::from_data(n, n, data);
        if let Some(ainv) = a.invert() {
            assert_eq!(a.mul(&ainv), Matrix::<Gf8>::identity(n));
            assert_eq!(ainv.invert().unwrap(), a.clone());
            assert!(a.is_nonsingular());
        } else {
            assert!(a.rank() < n);
        }
    }
}

#[test]
fn cauchy_matrices_always_invertible() {
    for rows in 1usize..8 {
        let c = Matrix::<Gf8>::cauchy(rows, rows);
        assert!(c.invert().is_some(), "{rows}×{rows} Cauchy not invertible");
    }
}

#[test]
fn matmul_associative() {
    let mut rng = Rng::seed_from_u64(0xA550C);
    for _ in 0..512 {
        let n = rng.random_range(1usize..5);
        let mut m = || {
            let data: Vec<u32> = (0..n * n).map(|_| rng.random_range(0u32..256)).collect();
            Matrix::<Gf8>::from_data(n, n, data)
        };
        let (a, b, c) = (m(), m(), m());
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }
}

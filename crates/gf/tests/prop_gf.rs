//! Property-based tests for the Galois-field substrate.

use proptest::prelude::*;

use ecfrm_gf::field::peasant_mul;
use ecfrm_gf::region::{self, reference};
use ecfrm_gf::{Field, Gf16, Gf4, Gf8, Matrix};

/// Check the full field-axiom set for one (a, b, c) triple.
fn axioms<F: Field>(a: u32, b: u32, c: u32) {
    // Commutativity and associativity.
    assert_eq!(F::mul(a, b), F::mul(b, a));
    assert_eq!(F::mul(a, F::mul(b, c)), F::mul(F::mul(a, b), c));
    // Distributivity over XOR-addition.
    assert_eq!(F::mul(a, b ^ c), F::mul(a, b) ^ F::mul(a, c));
    // Identities.
    assert_eq!(F::mul(a, 1), a);
    assert_eq!(F::mul(a, 0), 0);
    // Inverses.
    if a != 0 {
        assert_eq!(F::mul(a, F::inv(a)), 1);
        assert_eq!(F::div(F::mul(b, a), a), b);
    }
    // Reference multiplier agreement.
    assert_eq!(F::mul(a, b), peasant_mul(a, b, F::W, F::POLY));
}

proptest! {
    #[test]
    fn gf8_axioms(a in 0u32..256, b in 0u32..256, c in 0u32..256) {
        axioms::<Gf8>(a, b, c);
    }

    #[test]
    fn gf4_axioms(a in 0u32..16, b in 0u32..16, c in 0u32..16) {
        axioms::<Gf4>(a, b, c);
    }

    #[test]
    fn gf16_axioms(a in 0u32..65536, b in 0u32..65536, c in 0u32..65536) {
        axioms::<Gf16>(a, b, c);
    }

    #[test]
    fn exp_log_bijection_gf8(a in 1u32..256) {
        prop_assert_eq!(Gf8::exp(Gf8::log(a)), a);
    }

    #[test]
    fn pow_laws_gf8(a in 1u32..256, e1 in 0u32..500, e2 in 0u32..500) {
        // a^(e1+e2) == a^e1 * a^e2.
        prop_assert_eq!(
            Gf8::pow(a, e1 + e2),
            Gf8::mul(Gf8::pow(a, e1), Gf8::pow(a, e2))
        );
    }

    #[test]
    fn region_kernels_match_reference(
        c in 0u32..256,
        data in proptest::collection::vec(any::<u8>(), 0..300),
        acc in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let n = data.len().min(acc.len());
        let src = &data[..n];
        let mut got = acc[..n].to_vec();
        let mut want = acc[..n].to_vec();
        region::mul_add_region(c as u8, src, &mut got);
        reference::mul_add_region(c as u8, src, &mut want);
        prop_assert_eq!(&got, &want);

        let mut got2 = vec![0u8; n];
        let mut want2 = vec![0u8; n];
        region::mul_region(c as u8, src, &mut got2);
        reference::mul_region(c as u8, src, &mut want2);
        prop_assert_eq!(got2, want2);
    }

    #[test]
    fn region16_linear_in_both_arguments(
        c in 0u32..65536,
        words in proptest::collection::vec(any::<u16>(), 1..100),
    ) {
        // mul_region16 must act symbol-wise like the scalar field op.
        let src: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut dst = vec![0u8; src.len()];
        ecfrm_gf::region16::mul_region16(c as u16, &src, &mut dst);
        for (w, d) in words.iter().zip(dst.chunks_exact(2)) {
            let got = u16::from_le_bytes([d[0], d[1]]);
            prop_assert_eq!(got as u32, Gf16::mul(c, *w as u32));
        }
    }

    #[test]
    fn matrix_inverse_roundtrip(
        n in 1usize..6,
        seed in any::<u64>(),
    ) {
        // Random matrix over GF(2^8); if invertible, A·A⁻¹ = I and the
        // inverse inverts back.
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            (x % 256) as u32
        };
        let data: Vec<u32> = (0..n * n).map(|_| next()).collect();
        let a = Matrix::<Gf8>::from_data(n, n, data);
        if let Some(ainv) = a.invert() {
            prop_assert_eq!(a.mul(&ainv), Matrix::<Gf8>::identity(n));
            prop_assert_eq!(ainv.invert().unwrap(), a.clone());
            prop_assert!(a.is_nonsingular());
        } else {
            prop_assert!(a.rank() < n);
        }
    }

    #[test]
    fn cauchy_matrices_always_invertible(rows in 1usize..8) {
        let c = Matrix::<Gf8>::cauchy(rows, rows);
        prop_assert!(c.invert().is_some());
    }

    #[test]
    fn matmul_associative(
        seed in any::<u64>(),
        n in 1usize..5,
    ) {
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            (x % 256) as u32
        };
        let mut m = |_: usize| {
            let data: Vec<u32> = (0..n * n).map(|_| next()).collect();
            Matrix::<Gf8>::from_data(n, n, data)
        };
        let (a, b, c) = (m(0), m(1), m(2));
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }
}

//! Merkle manifests over stripe elements.
//!
//! Each sealed stripe gets a binary merkle tree whose leaves are
//! [`leaf_hash`]es of the element payloads in layout order (row by row,
//! data then parity). The 128-bit root is the stripe's identity: a
//! scrub can verify any single element against the root in O(log n)
//! hashes — no decode, no other elements — and a mismatch localizes to
//! the exact leaf.
//!
//! Domain separation keeps leaves and interior nodes in disjoint hash
//! domains (a leaf can never be replayed as a node or vice versa), and
//! the leaf index is folded into the leaf key so two identical elements
//! at different positions hash differently.
//!
//! Odd nodes are *promoted*: a level of 5 hashes pairs the first four
//! and carries the fifth up unchanged, so proofs simply skip that
//! level for the promoted node.

use crate::hash::{hash128, HashKey};

/// Domain tag for leaf hashes.
const LEAF_TAG: u64 = 0x4C45_4146; // "LEAF"
/// Domain tag for interior node hashes.
const NODE_TAG: u64 = 0x4E4F_4445; // "NODE"

/// Hash an element payload into its leaf, bound to its position in the
/// stripe.
pub fn leaf_hash(key: &HashKey, index: u64, data: &[u8]) -> u128 {
    hash128(&key.derive(LEAF_TAG, index), data)
}

/// Hash two children into their parent.
fn node_hash(key: &HashKey, left: u128, right: u128) -> u128 {
    let mut buf = [0u8; 32];
    buf[..16].copy_from_slice(&left.to_le_bytes());
    buf[16..].copy_from_slice(&right.to_le_bytes());
    hash128(&key.derive(NODE_TAG, 0), &buf)
}

/// One step of a merkle proof: the sibling hash and which side it sits
/// on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MerkleStep {
    /// The sibling subtree's hash.
    pub sibling: u128,
    /// True when the sibling is the *left* child (our node is right).
    pub sibling_is_left: bool,
}

/// A binary merkle tree over element leaf hashes, all levels retained.
///
/// Retaining interior levels costs 2n−1 hashes (32 bytes each) per
/// stripe and makes proof extraction O(log n) lookups; only the root
/// needs to be trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` = leaves, last level = `[root]`.
    levels: Vec<Vec<u128>>,
}

impl MerkleTree {
    /// Build a tree from precomputed leaf hashes. Panics on zero leaves
    /// (a sealed stripe always has n·rows elements).
    pub fn from_leaves(key: &HashKey, leaves: Vec<u128>) -> Self {
        assert!(!leaves.is_empty(), "merkle tree needs at least one leaf");
        let mut levels = vec![leaves];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                next.push(match pair {
                    [l, r] => node_hash(key, *l, *r),
                    [odd] => *odd, // promoted unchanged
                    _ => unreachable!(),
                });
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The stripe root.
    pub fn root(&self) -> u128 {
        self.levels.last().unwrap()[0]
    }

    /// Number of leaves (elements) in the tree.
    pub fn n_leaves(&self) -> usize {
        self.levels[0].len()
    }

    /// The stored leaf hash at `index`.
    pub fn leaf(&self, index: usize) -> u128 {
        self.levels[0][index]
    }

    /// The O(log n) inclusion proof for leaf `index`.
    pub fn proof(&self, index: usize) -> Vec<MerkleStep> {
        assert!(index < self.n_leaves(), "leaf index out of range");
        let mut steps = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = i ^ 1;
            if sibling < level.len() {
                steps.push(MerkleStep {
                    sibling: level[sibling],
                    sibling_is_left: sibling < i,
                });
            } // else: odd node promoted, no step at this level
            i /= 2;
        }
        steps
    }

    /// Fold a leaf hash through a proof and compare against `root`.
    /// Trusts nothing but the root.
    pub fn verify(key: &HashKey, root: u128, leaf: u128, proof: &[MerkleStep]) -> bool {
        let mut h = leaf;
        for step in proof {
            h = if step.sibling_is_left {
                node_hash(key, step.sibling, h)
            } else {
                node_hash(key, h, step.sibling)
            };
        }
        h == root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(key: &HashKey, n: usize) -> Vec<u128> {
        (0..n)
            .map(|i| leaf_hash(key, i as u64, format!("element-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn every_leaf_proves_against_the_root() {
        let key = HashKey::DEFAULT;
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 40] {
            let tree = MerkleTree::from_leaves(&key, leaves(&key, n));
            for i in 0..n {
                let proof = tree.proof(i);
                assert!(
                    proof.len() <= (usize::BITS - (n - 1).leading_zeros()) as usize,
                    "proof for {i}/{n} longer than log2"
                );
                assert!(MerkleTree::verify(&key, tree.root(), tree.leaf(i), &proof));
            }
        }
    }

    #[test]
    fn wrong_leaf_wrong_index_wrong_root_all_fail() {
        let key = HashKey::DEFAULT;
        let tree = MerkleTree::from_leaves(&key, leaves(&key, 12));
        let proof = tree.proof(5);
        // Tampered element content.
        let bad = leaf_hash(&key, 5, b"tampered");
        assert!(!MerkleTree::verify(&key, tree.root(), bad, &proof));
        // Same bytes, wrong position.
        let moved = leaf_hash(&key, 6, b"element-5");
        assert!(!MerkleTree::verify(&key, tree.root(), moved, &proof));
        // Wrong root.
        assert!(!MerkleTree::verify(
            &key,
            tree.root() ^ 1,
            tree.leaf(5),
            &proof
        ));
    }

    #[test]
    fn root_binds_every_position() {
        let key = HashKey::DEFAULT;
        let mut ls = leaves(&key, 9);
        let t1 = MerkleTree::from_leaves(&key, ls.clone());
        ls.swap(0, 8);
        let t2 = MerkleTree::from_leaves(&key, ls);
        assert_ne!(t1.root(), t2.root());
    }
}

//! A from-scratch keyed 64/128-bit block hash ("efh": ec-frm hash).
//!
//! Design: the classic 4-lane mix-and-merge shape (the shape xxHash and
//! friends converge on, because it keeps four multiply/rotate chains in
//! flight per 32-byte block), specialized for this workspace:
//!
//! * **keyed** — a 128-bit [`HashKey`] perturbs all four lane seeds and
//!   the short-input path, so checksums are not forgeable by content
//!   alone and distinct stores verify with distinct keys;
//! * **64 and 128 bit digests from one pass** — [`hash128`] runs the
//!   same block mix and finishes the accumulator twice through two
//!   independent avalanche functions;
//! * **no external crates, no unsafe** — per workspace policy.
//!
//! The wire/disk format built on it is the *element footer*: each stored
//! cell is `payload || checksum` where the checksum is [`hash64`] under
//! a key derived from the store key *and the cell's disk offset*
//! ([`element_checksum`]). Folding the address in means a misdirected
//! I/O — correct bytes fetched from the wrong address — fails
//! verification just like a flipped bit.
//!
//! [`mod@reference`] holds an independently written byte-at-a-time
//! implementation of the same specification; `tests/hash_backends.rs`
//! sweeps both across lengths and key classes and requires bit-exact
//! agreement, in the style of the GF kernel differential suite.

/// Mix primes (odd, high-entropy bit patterns). Shared by the optimized
/// and reference implementations; everything *structural* is written
/// twice.
pub(crate) const P1: u64 = 0x9E37_79B1_85EB_CA87;
pub(crate) const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
pub(crate) const P3: u64 = 0x1656_67B1_9E37_79F9;
pub(crate) const P4: u64 = 0x85EB_CA77_C2B2_AE63;
pub(crate) const P5: u64 = 0x27D4_EB2F_1656_67C5;

/// Domain tag for element-footer key derivation.
const ELEMENT_TAG: u64 = 0x454C_454D; // "ELEM"

/// Bytes appended to each stored element: one little-endian [`hash64`].
pub const FOOTER_LEN: usize = 8;

/// A 128-bit hashing key.
///
/// The key is *not* secret-grade (this is an integrity checksum, not a
/// MAC against an adaptive adversary), but keying the hash keeps
/// checksums store-specific and gives the merkle layer cheap domain
/// separation via [`HashKey::derive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashKey {
    /// First key word; seeds the lane accumulators.
    pub k0: u64,
    /// Second key word; whitens the lanes and the finalizers.
    pub k1: u64,
}

impl HashKey {
    /// The well-known default store key.
    pub const DEFAULT: HashKey = HashKey {
        k0: 0xEC_F4_4D_00_5E_ED_00_01,
        k1: 0x0123_4567_89AB_CDEF,
    };

    /// Derive a sub-key for a separate domain (`tag`) and position
    /// (`salt`). Used for element footers (salt = disk offset) and
    /// merkle leaves/nodes (salt = leaf index).
    pub fn derive(&self, tag: u64, salt: u64) -> HashKey {
        HashKey {
            k0: self.k0 ^ tag.wrapping_mul(P2),
            k1: self
                .k1
                .wrapping_add(salt.wrapping_mul(P5))
                .rotate_left((tag & 63) as u32),
        }
    }
}

impl Default for HashKey {
    fn default() -> Self {
        HashKey::DEFAULT
    }
}

#[inline(always)]
fn round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline(always)]
fn merge(h: u64, v: u64) -> u64 {
    (h ^ round(0, v)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline(always)]
fn lanes_from(key: &HashKey) -> [u64; 4] {
    [
        key.k0.wrapping_add(P1).wrapping_add(P2) ^ key.k1,
        key.k0.wrapping_add(P2) ^ key.k1.rotate_left(16),
        key.k0 ^ key.k1.rotate_left(32),
        key.k0.wrapping_sub(P1) ^ key.k1.rotate_left(48),
    ]
}

#[inline(always)]
fn short_seed(key: &HashKey) -> u64 {
    key.k0
        .wrapping_mul(P5)
        .wrapping_add(key.k1.rotate_left(23))
        .wrapping_add(P5)
}

/// Finalizer for the low 64 bits.
#[inline(always)]
fn avalanche_lo(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

/// Independent finalizer for the high 64 bits of [`hash128`].
#[inline(always)]
fn avalanche_hi(key: &HashKey, pre: u64) -> u64 {
    let mut g = (pre ^ key.k1.wrapping_mul(P3)).wrapping_add(key.k0.rotate_left(29));
    g ^= g >> 31;
    g = g.wrapping_mul(P4);
    g ^= g >> 29;
    g = g.wrapping_mul(P2);
    g ^= g >> 33;
    g
}

/// The shared single pass: mix every byte of `data` into one 64-bit
/// accumulator (pre-avalanche).
fn mix(key: &HashKey, data: &[u8]) -> u64 {
    let len = data.len();
    let mut h;
    let mut tail = data;
    if len >= 32 {
        let mut v = lanes_from(key);
        let mut blocks = data.chunks_exact(32);
        for block in &mut blocks {
            for (i, lane) in block.chunks_exact(8).enumerate() {
                v[i] = round(v[i], u64::from_le_bytes(lane.try_into().unwrap()));
            }
        }
        tail = blocks.remainder();
        h = v[0]
            .rotate_left(1)
            .wrapping_add(v[1].rotate_left(7))
            .wrapping_add(v[2].rotate_left(12))
            .wrapping_add(v[3].rotate_left(18));
        for lane in v {
            h = merge(h, lane);
        }
    } else {
        h = short_seed(key);
    }
    h = h.wrapping_add(len as u64);

    let mut words = tail.chunks_exact(8);
    for lane in &mut words {
        h ^= round(0, u64::from_le_bytes(lane.try_into().unwrap()));
        h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
    }
    let mut rest = words.remainder();
    if rest.len() >= 4 {
        let w = u32::from_le_bytes(rest[..4].try_into().unwrap()) as u64;
        h ^= w.wrapping_mul(P1);
        h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        rest = &rest[4..];
    }
    for &b in rest {
        h ^= (b as u64).wrapping_mul(P5);
        h = h.rotate_left(11).wrapping_mul(P1);
    }
    h
}

/// Keyed 64-bit hash of `data`.
pub fn hash64(key: &HashKey, data: &[u8]) -> u64 {
    avalanche_lo(mix(key, data))
}

/// Keyed 128-bit hash of `data`: the same single block pass finished by
/// two independent avalanche functions (`hi << 64 | lo`).
pub fn hash128(key: &HashKey, data: &[u8]) -> u128 {
    let pre = mix(key, data);
    ((avalanche_hi(key, pre) as u128) << 64) | avalanche_lo(pre) as u128
}

/// The checksum stored in an element's footer: [`hash64`] under a key
/// derived from the store key and the element's disk `offset`, so a
/// misdirected read fails verification.
pub fn element_checksum(key: &HashKey, offset: u64, data: &[u8]) -> u64 {
    hash64(&key.derive(ELEMENT_TAG, offset), data)
}

/// Append the 8-byte checksum footer for a cell destined for disk
/// `offset` (the payload is everything currently in `cell`).
pub fn append_footer(key: &HashKey, offset: u64, cell: &mut Vec<u8>) {
    let sum = element_checksum(key, offset, cell);
    cell.extend_from_slice(&sum.to_le_bytes());
}

/// Verify a stored cell (`payload || footer`) read back from disk
/// `offset`. Returns the payload slice when the footer matches, `None`
/// when the cell is too short or the checksum disagrees.
pub fn verify_footer<'a>(key: &HashKey, offset: u64, cell: &'a [u8]) -> Option<&'a [u8]> {
    if cell.len() < FOOTER_LEN {
        return None;
    }
    let (payload, footer) = cell.split_at(cell.len() - FOOTER_LEN);
    let stored = u64::from_le_bytes(footer.try_into().unwrap());
    if element_checksum(key, offset, payload) == stored {
        Some(payload)
    } else {
        None
    }
}

/// Byte-at-a-time portable implementation of the same specification,
/// written independently of the optimized path (no `chunks_exact`, no
/// `from_le_bytes`): the differential suite requires bit-exact
/// agreement with [`hash64`]/[`hash128`] on every input.
pub mod reference {
    use super::{avalanche_hi, avalanche_lo, HashKey, P1, P2, P3, P4, P5};

    /// Assemble a little-endian word of `n` bytes starting at `at`.
    fn word(data: &[u8], at: usize, n: usize) -> u64 {
        let mut w = 0u64;
        let mut i = n;
        while i > 0 {
            i -= 1;
            w = (w << 8) | data[at + i] as u64;
        }
        w
    }

    // The reference deliberately avoids `rotate_left` so its bit motion
    // is independent of the intrinsic the fast path leans on.
    #[allow(clippy::manual_rotate)]
    fn ref_round(acc: u64, lane: u64) -> u64 {
        let mut a = acc.wrapping_add(lane.wrapping_mul(P2));
        a = (a << 31) | (a >> 33);
        a.wrapping_mul(P1)
    }

    fn ref_mix(key: &HashKey, data: &[u8]) -> u64 {
        let len = data.len();
        let mut pos = 0usize;
        let mut h;
        if len >= 32 {
            let mut v = [
                key.k0.wrapping_add(P1).wrapping_add(P2) ^ key.k1,
                key.k0.wrapping_add(P2) ^ key.k1.rotate_left(16),
                key.k0 ^ key.k1.rotate_left(32),
                key.k0.wrapping_sub(P1) ^ key.k1.rotate_left(48),
            ];
            while len - pos >= 32 {
                let mut i = 0;
                while i < 4 {
                    v[i] = ref_round(v[i], word(data, pos + 8 * i, 8));
                    i += 1;
                }
                pos += 32;
            }
            h = v[0]
                .rotate_left(1)
                .wrapping_add(v[1].rotate_left(7))
                .wrapping_add(v[2].rotate_left(12))
                .wrapping_add(v[3].rotate_left(18));
            let mut i = 0;
            while i < 4 {
                h = (h ^ ref_round(0, v[i])).wrapping_mul(P1).wrapping_add(P4);
                i += 1;
            }
        } else {
            h = key
                .k0
                .wrapping_mul(P5)
                .wrapping_add(key.k1.rotate_left(23))
                .wrapping_add(P5);
        }
        h = h.wrapping_add(len as u64);

        while len - pos >= 8 {
            h ^= ref_round(0, word(data, pos, 8));
            h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
            pos += 8;
        }
        if len - pos >= 4 {
            h ^= word(data, pos, 4).wrapping_mul(P1);
            h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
            pos += 4;
        }
        while pos < len {
            h ^= (data[pos] as u64).wrapping_mul(P5);
            h = h.rotate_left(11).wrapping_mul(P1);
            pos += 1;
        }
        h
    }

    /// Reference keyed 64-bit hash; must equal [`super::hash64`].
    pub fn hash64(key: &HashKey, data: &[u8]) -> u64 {
        avalanche_lo(ref_mix(key, data))
    }

    /// Reference keyed 128-bit hash; must equal [`super::hash128`].
    pub fn hash128(key: &HashKey, data: &[u8]) -> u128 {
        let pre = ref_mix(key, data);
        ((avalanche_hi(key, pre) as u128) << 64) | avalanche_lo(pre) as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footer_roundtrip_and_rejections() {
        let key = HashKey::DEFAULT;
        let mut cell = vec![7u8; 100];
        append_footer(&key, 42, &mut cell);
        assert_eq!(cell.len(), 100 + FOOTER_LEN);
        assert_eq!(verify_footer(&key, 42, &cell), Some(&vec![7u8; 100][..]));
        // Wrong offset (misdirected read) fails.
        assert_eq!(verify_footer(&key, 43, &cell), None);
        // Any flipped payload bit fails.
        let mut bad = cell.clone();
        bad[50] ^= 0x01;
        assert_eq!(verify_footer(&key, 42, &bad), None);
        // Flipped footer bit fails.
        let mut bad = cell.clone();
        bad[100] ^= 0x80;
        assert_eq!(verify_footer(&key, 42, &bad), None);
        // Runt cell fails.
        assert_eq!(verify_footer(&key, 42, &cell[..4]), None);
    }

    #[test]
    fn keys_and_lengths_separate() {
        let a = hash64(&HashKey::DEFAULT, b"hello");
        let b = hash64(&HashKey { k0: 1, k1: 2 }, b"hello");
        assert_ne!(a, b);
        assert_ne!(
            hash64(&HashKey::DEFAULT, b""),
            hash64(&HashKey::DEFAULT, b"\0")
        );
        let h = hash128(&HashKey::DEFAULT, b"hello");
        assert_ne!((h >> 64) as u64, h as u64, "hi and lo words must differ");
    }

    #[test]
    fn empty_input_is_stable_across_impls() {
        let key = HashKey::DEFAULT;
        assert_eq!(hash64(&key, b""), reference::hash64(&key, b""));
        assert_eq!(hash128(&key, b""), reference::hash128(&key, b""));
    }
}

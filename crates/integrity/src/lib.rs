//! End-to-end integrity primitives for the EC-FRM store.
//!
//! Erasure coding protects against *loss* — a disk that stops answering.
//! It does nothing against *lies*: a disk (or a wire) that answers with
//! the wrong bytes is happily decoded and served, and a parity scrub can
//! only say "some group disagrees", not which element. This crate gives
//! every element a verified identity so the store can treat a corrupt
//! answer exactly like an erasure:
//!
//! * [`hash`] — a from-scratch keyed 64/128-bit block hash (no external
//!   crates, per workspace policy) with a byte-at-a-time portable
//!   reference implementation used by the differential test suite;
//! * [`hash::element_checksum`] / [`hash::append_footer`] — the 8-byte
//!   per-element checksum footer persisted next to each element. The
//!   element's disk offset is folded into the key, so a *misdirected*
//!   read (right bytes, wrong address) also fails verification;
//! * [`merkle`] — per-stripe merkle manifests over element leaf hashes,
//!   so a scrub can check any single element against the stripe root in
//!   O(log n) hashes without decoding the stripe.
//!
//! The store wires these into seal (footer + manifest creation), the
//! batched read path (verify-on-read: a bad footer marks the element
//! absent and the read replans degraded), the repair pipeline (sources
//! are verified, rebuilt elements are re-footered), and the wire
//! protocol (servers can pre-verify a coalesced run before shipping it).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hash;
pub mod merkle;

pub use hash::{
    append_footer, element_checksum, hash128, hash64, verify_footer, HashKey, FOOTER_LEN,
};
pub use merkle::{leaf_hash, MerkleStep, MerkleTree};

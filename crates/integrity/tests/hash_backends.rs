//! Differential suite pinning the optimized keyed hash against the
//! byte-at-a-time implementation in `hash::reference`, in the style of
//! the GF kernel backend suite.
//!
//! Every key class × length class {0, 1, 3, 4, 5, 7, 8, 9, 31, 32, 33,
//! 63, 64, 65, 4096, 64 KiB ± 1} is exercised for both digest widths,
//! plus a seeded random sweep over lengths 0..=1024 and avalanche /
//! footer-format sanity checks.

use ecfrm_integrity::hash::{self, reference};
use ecfrm_integrity::{element_checksum, hash128, hash64, leaf_hash, HashKey, MerkleTree};

/// Length classes: every branch boundary of the block/tail structure
/// (32-byte blocks, 8-byte words, 4-byte word, loose bytes) ± 1, plus
/// the acceptance sweep's 64 KiB ± 1.
const LENGTHS: &[usize] = &[
    0, 1, 3, 4, 5, 7, 8, 9, 12, 13, 31, 32, 33, 39, 40, 63, 64, 65, 4096, 65535, 65536, 65537,
];

fn pseudo(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x & 0xFF) as u8
        })
        .collect()
}

/// Key classes: the default, degenerate all-zero / all-one keys, single
/// set bits at both ends, and a spread of fixed "random" keys.
fn keys() -> Vec<HashKey> {
    let mut ks = vec![
        HashKey::DEFAULT,
        HashKey { k0: 0, k1: 0 },
        HashKey {
            k0: u64::MAX,
            k1: u64::MAX,
        },
        HashKey { k0: 1, k1: 0 },
        HashKey { k0: 0, k1: 1 },
        HashKey { k0: 1 << 63, k1: 0 },
        HashKey { k0: 0, k1: 1 << 63 },
    ];
    let mut x = 0xDEAD_BEEF_CAFE_F00Du64;
    for _ in 0..8 {
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let k0 = next();
        let k1 = next();
        ks.push(HashKey { k0, k1 });
    }
    ks
}

#[test]
fn hash64_matches_reference_across_lengths_and_keys() {
    for key in keys() {
        for &len in LENGTHS {
            let data = pseudo(len, len as u64 ^ key.k0);
            assert_eq!(
                hash64(&key, &data),
                reference::hash64(&key, &data),
                "len={len} key={key:?}"
            );
        }
    }
}

#[test]
fn hash128_matches_reference_across_lengths_and_keys() {
    for key in keys() {
        for &len in LENGTHS {
            let data = pseudo(len, len as u64 ^ key.k1);
            assert_eq!(
                hash128(&key, &data),
                reference::hash128(&key, &data),
                "len={len} key={key:?}"
            );
        }
    }
}

#[test]
fn seeded_sweep_every_length_to_1k() {
    // Proptest-style seeded sweep: every length 0..=1024 with a
    // length-derived seed, both widths, two keys.
    for key in [
        HashKey::DEFAULT,
        HashKey {
            k0: 77,
            k1: 0x0F0F_F0F0,
        },
    ] {
        for len in 0..=1024usize {
            let data = pseudo(len, 0xA11C_E000 + len as u64);
            assert_eq!(
                hash64(&key, &data),
                reference::hash64(&key, &data),
                "len={len}"
            );
            assert_eq!(
                hash128(&key, &data),
                reference::hash128(&key, &data),
                "len={len}"
            );
        }
    }
}

#[test]
fn single_bit_flips_always_change_the_digest() {
    // Avalanche sanity at a block boundary length: flipping any single
    // bit of a 40-byte input (one full block + tail) must change both
    // digests, and no two flips may collide with each other.
    let key = HashKey::DEFAULT;
    let base = pseudo(40, 99);
    let h0 = hash64(&key, &base);
    let mut seen = std::collections::HashSet::new();
    seen.insert(h0);
    for byte in 0..base.len() {
        for bit in 0..8 {
            let mut flipped = base.clone();
            flipped[byte] ^= 1 << bit;
            let h = hash64(&key, &flipped);
            assert!(seen.insert(h), "collision at byte {byte} bit {bit}");
        }
    }
}

#[test]
fn element_checksum_binds_the_offset() {
    let key = HashKey::DEFAULT;
    let data = pseudo(4096, 7);
    let sums: Vec<u64> = (0..64u64)
        .map(|off| element_checksum(&key, off * 4104, &data))
        .collect();
    let unique: std::collections::HashSet<_> = sums.iter().collect();
    assert_eq!(
        unique.len(),
        sums.len(),
        "same bytes at different offsets must differ"
    );
}

#[test]
fn footer_survives_roundtrip_for_every_length_class() {
    let key = HashKey::DEFAULT;
    for &len in LENGTHS {
        let payload = pseudo(len, 21);
        let mut cell = payload.clone();
        hash::append_footer(&key, 1234, &mut cell);
        assert_eq!(
            hash::verify_footer(&key, 1234, &cell),
            Some(&payload[..]),
            "len={len}"
        );
    }
}

#[test]
fn merkle_localizes_a_flipped_byte_to_the_exact_element() {
    // Stripe-shaped end-to-end check: 4 rows × 10 elements, corrupt one
    // byte of one element, and require (a) exactly that leaf fails its
    // O(log n) proof, (b) every other leaf still verifies.
    let key = HashKey::DEFAULT;
    let elements: Vec<Vec<u8>> = (0..40).map(|i| pseudo(512, 1000 + i)).collect();
    let leaves: Vec<u128> = elements
        .iter()
        .enumerate()
        .map(|(i, e)| leaf_hash(&key, i as u64, e))
        .collect();
    let tree = MerkleTree::from_leaves(&key, leaves);

    let victim = 23usize;
    let mut tampered = elements.clone();
    tampered[victim][100] ^= 0x40;

    let failures: Vec<usize> = (0..tampered.len())
        .filter(|&i| {
            let leaf = leaf_hash(&key, i as u64, &tampered[i]);
            !MerkleTree::verify(&key, tree.root(), leaf, &tree.proof(i))
        })
        .collect();
    assert_eq!(failures, vec![victim]);
}

//! Pay-after token bucket shared by background repair and front-door
//! admission control.
//!
//! The bucket refills continuously at `rate` bytes/second up to a burst
//! allowance of ~100 ms worth of rate. A caller may start work only
//! while the balance is non-negative, then charges the work's *actual*
//! byte cost afterwards — possibly driving the balance negative, which
//! future refill pays off. Long-run throughput converges to exactly
//! `rate` with no need to estimate a request's cost up front.
//!
//! Two consumption styles share the same balance:
//!
//! * **Blocking** ([`TokenBucket::wait_ready`] + [`TokenBucket::spend`])
//!   — what the repair workers use: park until the balance recovers,
//!   then charge.
//! * **Deadline-aware** ([`TokenBucket::ready_in`] + `spend`) — what
//!   admission control uses: ask how long until the balance recovers,
//!   then delay the request up to a bound or reject it outright.
//!
//! ```
//! use ecfrm_util::TokenBucket;
//! use std::sync::atomic::AtomicBool;
//! use std::time::Duration;
//!
//! let bucket = TokenBucket::new(1_000_000); // 1 MB/s
//! let stop = AtomicBool::new(false);
//! bucket.wait_ready(&stop, Duration::from_millis(1));
//! bucket.spend(500_000); // charge actual bytes after the work
//! // Overdrawn by ~0.5 s of rate: refill pays the debt off over time,
//! // so long-run throughput converges to exactly `rate`.
//! assert!(bucket.ready_in() > Duration::ZERO);
//! ```

use crate::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Pay-after token bucket: start work only while the balance is
/// non-negative, then charge the work's actual bytes.
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    state: Mutex<(f64, Instant)>,
}

impl TokenBucket {
    /// A bucket refilling at `rate_bytes_per_sec` (clamped to ≥ 1) with
    /// ~100 ms of burst allowance so consumers are smooth, not lumpy.
    pub fn new(rate_bytes_per_sec: u64) -> Self {
        let rate = rate_bytes_per_sec.max(1) as f64;
        Self {
            rate,
            burst: rate * 0.1,
            state: Mutex::new((0.0, Instant::now())),
        }
    }

    /// The configured refill rate in bytes/second.
    pub fn rate(&self) -> u64 {
        self.rate as u64
    }

    /// Block until the balance is non-negative (or `stop` is raised).
    ///
    /// `poll` bounds how coarsely the stop flag is observed while
    /// parked; the sleep itself is sized from the token deficit.
    pub fn wait_ready(&self, stop: &AtomicBool, poll: Duration) {
        loop {
            if stop.load(Ordering::Acquire) {
                return;
            }
            let wait = {
                let mut s = self.state.lock();
                let now = Instant::now();
                let (ref mut tokens, ref mut last) = *s;
                *tokens = (*tokens + last.elapsed().as_secs_f64() * self.rate).min(self.burst);
                *last = now;
                if *tokens >= 0.0 {
                    return;
                }
                Duration::from_secs_f64((-*tokens / self.rate).min(0.05))
            };
            std::thread::sleep(wait.max(poll.min(Duration::from_millis(1))));
        }
    }

    /// How long until the balance recovers to non-negative.
    ///
    /// Returns [`Duration::ZERO`] when work may start immediately.
    /// Admission control uses this to decide delay-vs-reject without
    /// parking a server thread on the bucket.
    pub fn ready_in(&self) -> Duration {
        let mut s = self.state.lock();
        let now = Instant::now();
        let (ref mut tokens, ref mut last) = *s;
        *tokens = (*tokens + last.elapsed().as_secs_f64() * self.rate).min(self.burst);
        *last = now;
        if *tokens >= 0.0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(-*tokens / self.rate)
        }
    }

    /// Charge `bytes` against the balance.
    pub fn spend(&self, bytes: u64) {
        self.state.lock().0 -= bytes as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_bounds_long_run_rate() {
        let bucket = TokenBucket::new(1_000_000); // 1 MB/s
        let stop = AtomicBool::new(false);
        let t0 = Instant::now();
        // Spend 300 KB in 50 KB chunks: at 1 MB/s this must take at
        // least ~150 ms (the first ~100 KB rides the burst allowance).
        for _ in 0..6 {
            bucket.wait_ready(&stop, Duration::from_millis(1));
            bucket.spend(50_000);
        }
        assert!(t0.elapsed() >= Duration::from_millis(150));
    }

    #[test]
    fn ready_in_tracks_deficit() {
        let bucket = TokenBucket::new(1_000_000); // 1 MB/s
        assert_eq!(bucket.ready_in(), Duration::ZERO);
        // Overdraw by 500 KB: recovery takes ~0.5 s at 1 MB/s.
        bucket.spend(500_000);
        let wait = bucket.ready_in();
        assert!(wait > Duration::from_millis(300), "wait {wait:?}");
        assert!(wait < Duration::from_millis(700), "wait {wait:?}");
    }

    #[test]
    fn stop_flag_unparks_wait_ready() {
        let bucket = TokenBucket::new(1);
        bucket.spend(10_000_000); // ~115 days of deficit at 1 B/s
        let stop = AtomicBool::new(true);
        let t0 = Instant::now();
        bucket.wait_ready(&stop, Duration::from_millis(1));
        assert!(t0.elapsed() < Duration::from_secs(1));
    }
}

//! Panic-safe synchronisation wrappers.
//!
//! `std::sync::Mutex::lock` returns a `Result` purely to surface
//! poisoning; across this workspace a poisoned lock means a worker thread
//! already panicked, and propagating the inner value (parking_lot's
//! behaviour) is what every call site wants. This wrapper collapses the
//! `Result` so the lock reads as `m.lock()`.

use std::sync::{MutexGuard, PoisonError};

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_poisoning() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock usable after a panicking holder");
    }
}

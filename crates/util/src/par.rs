//! Scoped-thread parallel mapping — the `par_iter().map().collect()`
//! shape the store's encode/rebuild paths and the figure harness use,
//! built on `std::thread::scope` with an atomic work queue.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: available parallelism, capped by the job count.
fn workers_for(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    cores.min(jobs).max(1)
}

/// Parallel map over a slice, preserving order. The closure receives
/// `(index, &item)`. Runs inline when there is at most one item or one
/// core. Panics in workers propagate to the caller.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers_for(n);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let slots = out.as_mut_slice();
    // Each worker claims indices from the shared counter and writes its
    // own disjoint slot, so handing out &mut cells via raw parts is safe.
    let slots_ptr = SendPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let f = &f;
            let slots_ptr = &slots_ptr;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                // SAFETY: `i` is claimed exactly once across all workers
                // (fetch_add), so no two threads touch slot `i`, and the
                // scope keeps `slots` alive until every worker joins.
                unsafe { *slots_ptr.0.add(i) = Some(r) };
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker filled slot"))
        .collect()
}

/// A raw pointer wrapper that asserts cross-thread sendability for the
/// disjoint-slot write pattern above.
struct SendPtr<T>(*mut T);
unsafe impl<T> Sync for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys = par_map(&xs, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |_, &x| x).is_empty());
        assert_eq!(par_map(&[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn actually_runs_concurrently() {
        use std::sync::atomic::AtomicUsize;
        if std::thread::available_parallelism().map_or(1, |n| n.get()) < 2 {
            return; // single-core CI runner: nothing to assert
        }
        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        let xs: Vec<usize> = (0..64).collect();
        par_map(&xs, |_, _| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) > 1, "no overlap observed");
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let xs = [1, 2, 3];
        par_map(&xs, |_, &x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}

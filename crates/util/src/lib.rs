//! Dependency-free utilities shared across the EC-FRM workspace.
//!
//! The build environment is fully offline, so the workspace carries no
//! external crates. This crate supplies the three pieces the rest of the
//! workspace would otherwise pull from crates.io:
//!
//! * [`Rng`] — a small, fast, seedable PRNG (xoshiro256**) with the
//!   `random_range` / `random` surface the simulators and workload
//!   generators need. Deterministic given a seed, so every figure and
//!   test regenerates bit-identically.
//! * [`Mutex`] — a [`std::sync::Mutex`] wrapper whose `lock()` returns
//!   the guard directly (poisoning is collapsed into the inner value,
//!   parking_lot-style), keeping call sites free of `unwrap()` noise.
//! * [`par_map`] — scoped-thread parallel map over a slice, the rayon
//!   `par_iter().map().collect()` shape the store and figure harness use.
//! * [`TokenBucket`] — the pay-after rate limiter shared by background
//!   repair and the front door's per-tenant admission control.

#![warn(missing_docs)]

pub mod bucket;
pub mod par;
pub mod rng;
pub mod sync;

pub use bucket::TokenBucket;
pub use par::par_map;
pub use rng::Rng;
pub use sync::Mutex;

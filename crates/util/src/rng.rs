//! A seedable PRNG with the sampling surface the workspace needs.
//!
//! xoshiro256** (Blackman & Vigna) seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` used. Not cryptographic; statistical
//! quality is far more than sufficient for workload generation, jitter
//! sampling, and retry-backoff randomisation.

use std::ops::{Range, RangeInclusive};

/// A deterministic, seedable pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed via SplitMix64 so nearby seeds yield uncorrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → the standard [0,1) double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a range: `rng.random_range(0..n)`,
    /// `rng.random_range(1..=20)`, `rng.random_range(-0.2..=0.2)`.
    ///
    /// # Panics
    /// Panics on an empty range.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform draw of a [`Sample`] type: `let u: f64 = rng.random();`.
    pub fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Fill a byte slice with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&w[..rest.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (no modulo bias).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection zone below 2^64 mod bound.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Types drawable uniformly with [`Rng::random`].
pub trait Sample {
    /// Draw one value.
    fn sample(rng: &mut Rng) -> Self;
}

impl Sample for f64 {
    fn sample(rng: &mut Rng) -> Self {
        rng.next_f64()
    }
}

impl Sample for u64 {
    fn sample(rng: &mut Rng) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut Rng) -> Self {
        rng.next_u32()
    }
}

impl Sample for u8 {
    fn sample(rng: &mut Rng) -> Self {
        (rng.next_u64() & 0xFF) as u8
    }
}

impl Sample for bool {
    fn sample(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + rng.bounded(span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u64, usize, u32);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(1usize..=20);
            assert!((1..=20).contains(&y));
            let f = r.random_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.bounded(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut r = Rng::seed_from_u64(3);
        assert_eq!(r.random_range(5usize..=5), 5);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = Rng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::seed_from_u64(11);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "50-element shuffle should move something");
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).random_range(5u64..5);
    }
}

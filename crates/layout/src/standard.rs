//! The conventional horizontal layout (paper Figure 1/2/3a).
//!
//! Every stripe is one candidate row. Data element `j` of the row always
//! lives on disk `j` and parity `p` on disk `k + p`: parity disks are
//! dedicated and **never** serve normal reads, which is exactly the
//! bottleneck §III-A describes.

use crate::traits::{Layout, Loc, StoredElement};

/// Standard horizontal placement for an `(n, k)` candidate code.
#[derive(Debug, Clone)]
pub struct StandardLayout {
    n: usize,
    k: usize,
}

impl StandardLayout {
    /// Create a standard layout over `n` disks with `k` data disks.
    ///
    /// # Panics
    /// Panics unless `0 < k < n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k > 0 && k < n, "standard layout requires 0 < k < n");
        Self { n, k }
    }
}

impl Layout for StandardLayout {
    fn name(&self) -> &'static str {
        "standard"
    }

    fn n_disks(&self) -> usize {
        self.n
    }

    fn code_n(&self) -> usize {
        self.n
    }

    fn code_k(&self) -> usize {
        self.k
    }

    fn rows_per_stripe(&self) -> usize {
        1
    }

    fn data_location(&self, idx: u64) -> Loc {
        let stripe = idx / self.k as u64;
        let pos = (idx % self.k as u64) as usize;
        Loc::new(pos, stripe)
    }

    fn parity_location(&self, stripe: u64, row: usize, p: usize) -> Loc {
        debug_assert_eq!(row, 0, "standard layout has one row per stripe");
        debug_assert!(p < self.n - self.k);
        Loc::new(self.k + p, stripe)
    }

    fn element_at(&self, loc: Loc) -> StoredElement {
        debug_assert!(loc.disk < self.n);
        StoredElement {
            stripe: loc.offset,
            row: 0,
            pos: loc.disk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_maps_to_data_disks_only() {
        let l = StandardLayout::new(10, 6);
        for idx in 0..60u64 {
            let loc = l.data_location(idx);
            assert!(loc.disk < 6, "data on parity disk at idx {idx}");
            assert_eq!(loc.offset, idx / 6);
        }
    }

    #[test]
    fn parity_maps_to_parity_disks_only() {
        let l = StandardLayout::new(10, 6);
        for stripe in 0..5u64 {
            for p in 0..4 {
                let loc = l.parity_location(stripe, 0, p);
                assert!(loc.disk >= 6);
                assert_eq!(loc.offset, stripe);
            }
        }
    }

    #[test]
    fn element_at_inverts_both_mappings() {
        let l = StandardLayout::new(9, 6);
        for idx in 0..54u64 {
            let se = l.element_at(l.data_location(idx));
            let (stripe, row, pos) = l.data_coordinates(idx);
            assert_eq!(se, StoredElement { stripe, row, pos });
        }
        for stripe in 0..4u64 {
            for p in 0..3 {
                let se = l.element_at(l.parity_location(stripe, 0, p));
                assert_eq!(
                    se,
                    StoredElement {
                        stripe,
                        row: 0,
                        pos: 6 + p
                    }
                );
            }
        }
    }

    #[test]
    fn row_locations_cover_n_distinct_disks() {
        let l = StandardLayout::new(10, 6);
        for stripe in 0..3u64 {
            let locs = l.row_locations(stripe, 0);
            assert_eq!(locs.len(), 10);
            let mut disks: Vec<usize> = locs.iter().map(|l| l.disk).collect();
            disks.sort_unstable();
            disks.dedup();
            assert_eq!(disks.len(), 10, "row elements must hit distinct disks");
        }
    }

    #[test]
    fn contiguous_data_hits_distinct_disks_within_a_row() {
        // §III-A assumption: contiguous elements on different disks —
        // true inside one stripe for the standard layout.
        let l = StandardLayout::new(10, 6);
        let disks: Vec<usize> = (0..6u64).map(|i| l.data_location(i).disk).collect();
        assert_eq!(disks, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic]
    fn k_must_be_less_than_n() {
        StandardLayout::new(6, 6);
    }
}

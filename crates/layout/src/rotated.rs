//! Rotated stripes (paper §II-A "Rotated Stripes", Figure 3b): the
//! logical→physical disk mapping shifts by one disk per stripe — in the
//! RAID-5 left-symmetric direction, so that the first data element of
//! stripe `s+1` lands on the disk *after* the last parity element of
//! stripe `s` and sequential data mostly continues around the array.
//!
//! This is the paper's stronger baseline ("R-RS" / "R-LRC"). It helps —
//! every disk eventually holds data, and straddling reads continue onto
//! fresh disks — but within a *single* stripe the parity elements still
//! sit in the same row as the data and interrupt the sequential run, so
//! an `l`-element read (`l > k`) still loads some disk twice
//! (Figure 3b's double-loaded disk).

use crate::traits::{Layout, Loc, StoredElement};

/// Per-stripe rotated placement for an `(n, k)` candidate code:
/// element at logical position `j` of stripe `s` lives on physical disk
/// `(j - s) mod n` (left-symmetric rotation).
#[derive(Debug, Clone)]
pub struct RotatedLayout {
    n: usize,
    k: usize,
}

impl RotatedLayout {
    /// Create a rotated layout over `n` disks with `k` data positions.
    ///
    /// # Panics
    /// Panics unless `0 < k < n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k > 0 && k < n, "rotated layout requires 0 < k < n");
        Self { n, k }
    }

    #[inline]
    fn rotate(&self, pos: usize, stripe: u64) -> usize {
        let n = self.n as u64;
        ((pos as u64 + n - stripe % n) % n) as usize
    }

    #[inline]
    fn unrotate(&self, disk: usize, stripe: u64) -> usize {
        ((disk as u64 + stripe) % self.n as u64) as usize
    }
}

impl Layout for RotatedLayout {
    fn name(&self) -> &'static str {
        "rotated"
    }

    fn n_disks(&self) -> usize {
        self.n
    }

    fn code_n(&self) -> usize {
        self.n
    }

    fn code_k(&self) -> usize {
        self.k
    }

    fn rows_per_stripe(&self) -> usize {
        1
    }

    fn data_location(&self, idx: u64) -> Loc {
        let stripe = idx / self.k as u64;
        let pos = (idx % self.k as u64) as usize;
        Loc::new(self.rotate(pos, stripe), stripe)
    }

    fn parity_location(&self, stripe: u64, row: usize, p: usize) -> Loc {
        debug_assert_eq!(row, 0, "rotated layout has one row per stripe");
        debug_assert!(p < self.n - self.k);
        Loc::new(self.rotate(self.k + p, stripe), stripe)
    }

    fn element_at(&self, loc: Loc) -> StoredElement {
        debug_assert!(loc.disk < self.n);
        StoredElement {
            stripe: loc.offset,
            row: 0,
            pos: self.unrotate(loc.disk, loc.offset),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_zero_matches_standard() {
        let r = RotatedLayout::new(10, 6);
        for idx in 0..6u64 {
            assert_eq!(r.data_location(idx), Loc::new(idx as usize, 0));
        }
    }

    #[test]
    fn stripe_one_is_shifted_left_by_one() {
        let r = RotatedLayout::new(10, 6);
        // Data elements 6..12 are stripe 1, logical positions 0..5,
        // physical disks 9, 0, 1, 2, 3, 4 (left-symmetric rotation).
        let want = [9usize, 0, 1, 2, 3, 4];
        for (i, idx) in (6u64..12).enumerate() {
            assert_eq!(r.data_location(idx), Loc::new(want[i], 1));
        }
        // Parities of stripe 1 are on disks 5, 6, 7, 8.
        let disks: Vec<usize> = (0..4).map(|p| r.parity_location(1, 0, p).disk).collect();
        assert_eq!(disks, vec![5, 6, 7, 8]);
    }

    #[test]
    fn small_straddling_reads_avoid_self_collision() {
        // The reason for the left-symmetric direction: a read of ≤ k
        // elements crossing one stripe boundary continues onto disks the
        // tail did not use.
        let r = RotatedLayout::new(10, 6);
        for start in 0..60u64 {
            for size in 1..=6usize {
                let mut load = vec![0usize; 10];
                for i in 0..size as u64 {
                    load[r.data_location(start + i).disk] += 1;
                }
                assert_eq!(
                    *load.iter().max().unwrap(),
                    1,
                    "start={start} size={size} load={load:?}"
                );
            }
        }
    }

    #[test]
    fn element_at_inverts_mappings() {
        let r = RotatedLayout::new(9, 6);
        for idx in 0..108u64 {
            let se = r.element_at(r.data_location(idx));
            let (stripe, row, pos) = r.data_coordinates(idx);
            assert_eq!(se, StoredElement { stripe, row, pos }, "idx={idx}");
        }
        for stripe in 0..18u64 {
            for p in 0..3 {
                let se = r.element_at(r.parity_location(stripe, 0, p));
                assert_eq!(se.pos, 6 + p);
                assert_eq!(se.stripe, stripe);
            }
        }
    }

    #[test]
    fn rotation_covers_all_disks_over_n_stripes() {
        // Over n consecutive stripes, logical position 0 visits every
        // physical disk exactly once: load spreads in aggregate.
        let r = RotatedLayout::new(10, 6);
        let mut seen: Vec<usize> = (0..10u64).map(|s| r.data_location(s * 6).disk).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn each_stripe_occupies_distinct_disks() {
        let r = RotatedLayout::new(10, 6);
        for stripe in 0..20u64 {
            let locs = r.row_locations(stripe, 0);
            let mut disks: Vec<usize> = locs.iter().map(|l| l.disk).collect();
            disks.sort_unstable();
            disks.dedup();
            assert_eq!(disks.len(), 10);
        }
    }

    #[test]
    fn figure_3b_parity_still_interrupts_sequential_run() {
        // Figure 3(b): in rotated stripes the parity elements share the
        // row with data, so an 8-element read still double-loads a disk.
        // Read data elements 0..8 (stripes 0 and 1).
        let r = RotatedLayout::new(10, 6);
        let mut load = vec![0usize; 10];
        for idx in 0..8u64 {
            load[r.data_location(idx).disk] += 1;
        }
        assert_eq!(*load.iter().max().unwrap(), 2, "load = {load:?}");
    }
}

//! Rotation by `k` per stripe — the strongest possible rotation baseline.
//!
//! Rotating the logical→physical mapping by `k` disks per stripe makes
//! the *disk sequence* of data identical to EC-FRM's: sequential data
//! walks all `n` disks, window after window, because stripe `s+1`'s
//! data begins on exactly the disk after stripe `s`'s data ended.
//!
//! This layout answers the natural objection "couldn't a smarter
//! rotation match EC-FRM without restructuring stripes?" — and the
//! measured answer (see the `placement` ablation) is instructive: under
//! the element-count load metric, k-rotation ties EC-FRM *exactly* on
//! both normal and degraded reads. What it does **not** replicate is
//! EC-FRM's physical contiguity: within one read, EC-FRM's dense data
//! rows put each disk's accesses at *consecutive* offsets (adjacent on
//! the platter), while k-rotation reaches a given disk only in the
//! stripes whose data window covers it, leaving offset holes, and it
//! interleaves data and parity at every offset. On real disks, adjacent
//! same-read accesses are what keep the most-loaded disk's positioning
//! cost low; the paper's construction buys balance *and* contiguity at
//! once.

use crate::traits::{Layout, Loc, StoredElement};

/// Per-stripe rotation by `k`: element at logical position `j` of stripe
/// `s` lives on physical disk `(j + s·k) mod n`.
#[derive(Debug, Clone)]
pub struct KRotatedLayout {
    n: usize,
    k: usize,
}

impl KRotatedLayout {
    /// Create a k-rotated layout over `n` disks with `k` data positions.
    ///
    /// # Panics
    /// Panics unless `0 < k < n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k > 0 && k < n, "k-rotated layout requires 0 < k < n");
        Self { n, k }
    }

    /// Per-stripe shift, computed overflow-safely.
    #[inline]
    fn shift(&self, stripe: u64) -> usize {
        (((stripe % self.n as u64) as usize) * self.k) % self.n
    }

    #[inline]
    fn rotate(&self, pos: usize, stripe: u64) -> usize {
        (pos + self.shift(stripe)) % self.n
    }

    #[inline]
    fn unrotate(&self, disk: usize, stripe: u64) -> usize {
        (disk + self.n - self.shift(stripe)) % self.n
    }
}

impl Layout for KRotatedLayout {
    fn name(&self) -> &'static str {
        "krotated"
    }

    fn n_disks(&self) -> usize {
        self.n
    }

    fn code_n(&self) -> usize {
        self.n
    }

    fn code_k(&self) -> usize {
        self.k
    }

    fn rows_per_stripe(&self) -> usize {
        1
    }

    fn data_location(&self, idx: u64) -> Loc {
        let stripe = idx / self.k as u64;
        let pos = (idx % self.k as u64) as usize;
        Loc::new(self.rotate(pos, stripe), stripe)
    }

    fn parity_location(&self, stripe: u64, row: usize, p: usize) -> Loc {
        debug_assert_eq!(row, 0, "k-rotated layout has one row per stripe");
        debug_assert!(p < self.n - self.k);
        Loc::new(self.rotate(self.k + p, stripe), stripe)
    }

    fn element_at(&self, loc: Loc) -> StoredElement {
        debug_assert!(loc.disk < self.n);
        StoredElement {
            stripe: loc.offset,
            row: 0,
            pos: self.unrotate(loc.disk, loc.offset),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_continues_across_all_disks() {
        // Like EC-FRM: any n consecutive data elements hit n distinct
        // disks — as long as no stripe boundary's parity gap intervenes
        // twice.
        let l = KRotatedLayout::new(10, 6);
        // Stripe 0 data: disks 0..5; stripe 1 data: disks 6..9, 0, 1.
        let disks: Vec<usize> = (0..12u64).map(|i| l.data_location(i).disk).collect();
        assert_eq!(disks[..10], [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        // Elements 10, 11 wrap onto disks 0, 1 — first collision after a
        // full circuit, like EC-FRM's dense rows.
        assert_eq!(&disks[10..], &[0, 1]);
    }

    #[test]
    fn element_at_inverts_mappings() {
        let l = KRotatedLayout::new(10, 6);
        for idx in 0..240u64 {
            let se = l.element_at(l.data_location(idx));
            let (stripe, row, pos) = l.data_coordinates(idx);
            assert_eq!(se, StoredElement { stripe, row, pos }, "idx={idx}");
        }
        for stripe in 0..20u64 {
            for p in 0..4 {
                let se = l.element_at(l.parity_location(stripe, 0, p));
                assert_eq!(se.pos, 6 + p);
                assert_eq!(se.stripe, stripe);
            }
        }
    }

    #[test]
    fn each_stripe_occupies_distinct_disks() {
        let l = KRotatedLayout::new(9, 6);
        for stripe in 0..18u64 {
            let locs = l.row_locations(stripe, 0);
            let mut disks: Vec<usize> = locs.iter().map(|l| l.disk).collect();
            disks.sort_unstable();
            disks.dedup();
            assert_eq!(disks.len(), 9);
        }
    }

    #[test]
    fn load_counts_tie_ecfrm_but_offsets_scatter() {
        // Count metric: k-rotation's disk sequence for data equals
        // EC-FRM's, so per-disk load counts match for every read window.
        let kr = KRotatedLayout::new(10, 6);
        let ec = crate::EcFrmLayout::new(10, 6);
        let loads = |l: &dyn Layout, start: u64, count: u64| -> Vec<usize> {
            let mut load = vec![0usize; 10];
            for i in 0..count {
                load[l.data_location(start + i).disk] += 1;
            }
            load
        };
        for start in 0..60u64 {
            for count in [1u64, 7, 14, 30] {
                assert_eq!(
                    loads(&kr, start, count),
                    loads(&ec, start, count),
                    "start {start} count {count}"
                );
            }
        }
        // Offset metric: within ONE read (here 30 elements = one EC-FRM
        // stripe's data), a disk's accesses are at consecutive offsets
        // under EC-FRM (dense data rows) but leave holes under
        // k-rotation (only stripes whose window covers the disk).
        let offsets_on_disk0 = |l: &dyn Layout| -> Vec<u64> {
            let mut v: Vec<u64> = (0..30u64)
                .map(|i| l.data_location(i))
                .filter(|loc| loc.disk == 0)
                .map(|loc| loc.offset)
                .collect();
            v.sort_unstable();
            v
        };
        let max_gap = |v: &[u64]| v.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        let ec_offsets = offsets_on_disk0(&ec);
        let kr_offsets = offsets_on_disk0(&kr);
        assert_eq!(ec_offsets, vec![0, 1, 2], "EC-FRM: consecutive offsets");
        assert_eq!(max_gap(&ec_offsets), 1);
        assert!(
            max_gap(&kr_offsets) > 1,
            "k-rotation scatters within a read: {kr_offsets:?}"
        );
    }
}

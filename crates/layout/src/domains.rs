//! Failure domains: which disks share a rack (or host, or switch).
//!
//! Cross-domain traffic is the expensive kind — the oversubscribed
//! aggregation links between racks, not the top-of-rack switch. A
//! [`DomainMap`] labels each disk with its failure domain so the repair
//! planner and degraded reads can prefer helpers inside the reader's
//! domain and count the reads that had to cross anyway. The default,
//! [`DomainMap::single`], puts every disk in one domain and reproduces
//! the previous (domain-blind) behaviour exactly.

/// Disk → failure-domain labels for an array of `n` disks.
///
/// Domains are small dense integers (`0..n_domains`); the map is just
/// the label vector, cheap to clone and compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainMap {
    labels: Vec<usize>,
    n_domains: usize,
}

impl DomainMap {
    /// Every disk in one domain — the domain-blind default. Ranking by
    /// domain becomes a constant and all prior behaviour is preserved.
    pub fn single(n_disks: usize) -> Self {
        Self {
            labels: vec![0; n_disks],
            n_domains: usize::from(n_disks > 0),
        }
    }

    /// `n_disks` split into `n_domains` contiguous runs of (near-)equal
    /// size: disks `0..ceil(n/d)` in domain 0, and so on. The common
    /// "racks of adjacent shards" deployment.
    ///
    /// # Panics
    /// If `n_domains` is zero, or exceeds `n_disks`.
    pub fn contiguous(n_disks: usize, n_domains: usize) -> Self {
        assert!(n_domains > 0, "at least one failure domain");
        assert!(
            n_domains <= n_disks,
            "more domains ({n_domains}) than disks ({n_disks})"
        );
        let per = n_disks.div_ceil(n_domains);
        Self {
            labels: (0..n_disks).map(|d| d / per).collect(),
            n_domains,
        }
    }

    /// Explicit labels, one per disk. Labels need not be dense — they
    /// are compacted to `0..n_domains` preserving first-appearance
    /// order, so `[7, 7, 3]` becomes `[0, 0, 1]`.
    ///
    /// # Panics
    /// If `labels` is empty.
    pub fn from_labels(labels: &[usize]) -> Self {
        assert!(!labels.is_empty(), "at least one disk");
        let mut seen: Vec<usize> = Vec::new();
        let labels = labels
            .iter()
            .map(|&l| {
                seen.iter().position(|&s| s == l).unwrap_or_else(|| {
                    seen.push(l);
                    seen.len() - 1
                })
            })
            .collect();
        Self {
            n_domains: seen.len(),
            labels,
        }
    }

    /// The failure domain of `disk`.
    ///
    /// # Panics
    /// If `disk` is out of range.
    pub fn domain_of(&self, disk: usize) -> usize {
        self.labels[disk]
    }

    /// Number of distinct domains.
    pub fn n_domains(&self) -> usize {
        self.n_domains
    }

    /// Number of disks the map covers.
    pub fn n_disks(&self) -> usize {
        self.labels.len()
    }

    /// `true` when `a` and `b` share a failure domain — reading from
    /// `b` to repair `a` stays inside the rack.
    pub fn same_domain(&self, a: usize, b: usize) -> bool {
        self.labels[a] == self.labels[b]
    }
}

#[cfg(test)]
mod tests {
    use super::DomainMap;

    #[test]
    fn single_puts_everything_in_domain_zero() {
        let m = DomainMap::single(9);
        assert_eq!(m.n_domains(), 1);
        assert_eq!(m.n_disks(), 9);
        assert!((0..9).all(|d| m.domain_of(d) == 0));
        assert!(m.same_domain(0, 8));
    }

    #[test]
    fn contiguous_splits_into_equal_runs() {
        let m = DomainMap::contiguous(9, 3);
        assert_eq!(m.n_domains(), 3);
        for d in 0..9 {
            assert_eq!(m.domain_of(d), d / 3, "disk {d}");
        }
        assert!(m.same_domain(0, 2));
        assert!(!m.same_domain(2, 3));
    }

    #[test]
    fn contiguous_handles_uneven_split() {
        // 10 disks over 3 domains: runs of 4, 4, 2.
        let m = DomainMap::contiguous(10, 3);
        let labels: Vec<usize> = (0..10).map(|d| m.domain_of(d)).collect();
        assert_eq!(labels, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
        assert_eq!(m.n_domains(), 3);
    }

    #[test]
    fn from_labels_compacts_sparse_labels() {
        let m = DomainMap::from_labels(&[7, 7, 3, 7, 9]);
        let labels: Vec<usize> = (0..5).map(|d| m.domain_of(d)).collect();
        assert_eq!(labels, vec![0, 0, 1, 0, 2]);
        assert_eq!(m.n_domains(), 3);
    }

    #[test]
    #[should_panic(expected = "more domains")]
    fn contiguous_rejects_more_domains_than_disks() {
        let _ = DomainMap::contiguous(2, 3);
    }
}

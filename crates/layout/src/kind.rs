//! [`LayoutKind`]: the one name-to-layout mapping for the workspace.
//!
//! The CLI, the bench harness and the scheme builder all need to turn a
//! layout name ("standard", "ecfrm", …) into a [`Layout`]. Before this
//! enum each of them carried its own match arms and they drifted (the
//! CLI, for instance, never learned about `krotated`); now they all
//! parse through [`LayoutKind::from_str`] and construct through
//! [`LayoutKind::build`].

use std::str::FromStr;
use std::sync::Arc;

use crate::{EcFrmLayout, KRotatedLayout, Layout, RotatedLayout, ShuffledLayout, StandardLayout};

/// Every layout the workspace knows how to build, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LayoutKind {
    /// Conventional horizontal placement (paper's "RS"/"LRC" baseline).
    #[default]
    Standard,
    /// Per-stripe rotation (paper's "R-RS"/"R-LRC" baseline).
    Rotated,
    /// Rotation by `k` per stripe (strongest rotation baseline,
    /// ablation).
    KRotated,
    /// Per-stripe pseudo-random permutation (ablation; uses the builder
    /// seed).
    Shuffled,
    /// The paper's transformation (§IV-B): sequential data across all
    /// `n` disks.
    EcFrm,
}

impl LayoutKind {
    /// All kinds, in baseline → EC-FRM order.
    pub const ALL: [LayoutKind; 5] = [
        LayoutKind::Standard,
        LayoutKind::Rotated,
        LayoutKind::KRotated,
        LayoutKind::Shuffled,
        LayoutKind::EcFrm,
    ];

    /// Canonical lower-case name (`"standard"`, `"rotated"`,
    /// `"krotated"`, `"shuffled"`, `"ecfrm"`), matching what
    /// [`Layout::name`] reports for the built layout.
    pub fn name(&self) -> &'static str {
        match self {
            LayoutKind::Standard => "standard",
            LayoutKind::Rotated => "rotated",
            LayoutKind::KRotated => "krotated",
            LayoutKind::Shuffled => "shuffled",
            LayoutKind::EcFrm => "ecfrm",
        }
    }

    /// Construct the layout for an `(n, k)` candidate code. `seed` is
    /// only consulted by [`LayoutKind::Shuffled`].
    pub fn build(&self, n: usize, k: usize, seed: u64) -> Arc<dyn Layout> {
        match self {
            LayoutKind::Standard => Arc::new(StandardLayout::new(n, k)),
            LayoutKind::Rotated => Arc::new(RotatedLayout::new(n, k)),
            LayoutKind::KRotated => Arc::new(KRotatedLayout::new(n, k)),
            LayoutKind::Shuffled => Arc::new(ShuffledLayout::new(n, k, seed)),
            LayoutKind::EcFrm => Arc::new(EcFrmLayout::new(n, k)),
        }
    }
}

impl std::fmt::Display for LayoutKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for LayoutKind {
    type Err = String;

    /// Parse a layout name, case-insensitively. Accepts the canonical
    /// names plus the paper's spellings (`"ec-frm"`, `"k-rotated"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "standard" => Ok(LayoutKind::Standard),
            "rotated" => Ok(LayoutKind::Rotated),
            "krotated" | "k-rotated" => Ok(LayoutKind::KRotated),
            "shuffled" => Ok(LayoutKind::Shuffled),
            "ecfrm" | "ec-frm" => Ok(LayoutKind::EcFrm),
            other => Err(format!(
                "unknown layout '{other}' (expected one of: standard, rotated, krotated, shuffled, ecfrm)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_from_str() {
        for kind in LayoutKind::ALL {
            assert_eq!(kind.name().parse::<LayoutKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn parsing_is_case_insensitive_and_accepts_paper_spellings() {
        assert_eq!("EC-FRM".parse::<LayoutKind>().unwrap(), LayoutKind::EcFrm);
        assert_eq!(
            "Standard".parse::<LayoutKind>().unwrap(),
            LayoutKind::Standard
        );
        assert_eq!(
            "K-Rotated".parse::<LayoutKind>().unwrap(),
            LayoutKind::KRotated
        );
        assert!("zigzag".parse::<LayoutKind>().is_err());
    }

    #[test]
    fn build_produces_matching_layout() {
        for kind in LayoutKind::ALL {
            let l = kind.build(9, 6, 42);
            assert_eq!(l.name(), kind.name());
            assert_eq!(l.code_n(), 9);
            assert_eq!(l.code_k(), 6);
        }
    }

    #[test]
    fn default_is_standard() {
        assert_eq!(LayoutKind::default(), LayoutKind::Standard);
    }
}

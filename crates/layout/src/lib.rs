//! Stripe layouts: how the elements of an erasure code map onto disks.
//!
//! The EC-FRM paper's contribution is not a new code but a new *layout*:
//! the same `(n, k)` candidate code laid out differently so that
//! sequential data occupies all `n` disks instead of the `k` data disks.
//! This crate implements the three forms §VI evaluates, plus one ablation:
//!
//! * [`StandardLayout`] — the conventional horizontal layout (Figure 3a):
//!   data element `j` of every row on disk `j`, parities on dedicated
//!   disks `k..n`;
//! * [`RotatedLayout`] — the logical→physical rotation applied stripe by
//!   stripe (Figure 3b), the "R-RS"/"R-LRC" baselines;
//! * [`EcFrmLayout`] — the paper's construction (§IV-B, Eq. (1)–(4)):
//!   `n/gcd(n,k)` candidate rows regrouped into one stripe of
//!   `n/gcd(n,k)` rows × `n` columns with data laid row-major across all
//!   disks;
//! * [`ShuffledLayout`] — per-stripe pseudo-random permutation, an
//!   ablation separating "spread across all disks" from "spread
//!   *sequentially* across all disks";
//! * [`KRotatedLayout`] — rotation by `k` per stripe, the strongest
//!   rotation baseline: data placement matches EC-FRM's, but parity
//!   still interrupts the sequence every `k` elements.
//!
//! All layouts implement [`Layout`], which maps between the logical data
//! address space (sequential element indices, the paper's append-only
//! write model) and physical `(disk, offset)` locations, in both
//! directions.

pub mod domains;
pub mod ecfrm;
pub mod kind;
pub mod krotated;
pub mod rotated;
pub mod shuffled;
pub mod standard;
pub mod traits;

pub use domains::DomainMap;
pub use ecfrm::EcFrmLayout;
pub use kind::LayoutKind;
pub use krotated::KRotatedLayout;
pub use rotated::RotatedLayout;
pub use shuffled::ShuffledLayout;
pub use standard::StandardLayout;
pub use traits::{Layout, Loc, StoredElement};

/// Greatest common divisor (Euclid). The paper's `r = gcd(n, k)`.
pub fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::gcd;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(10, 6), 2);
        assert_eq!(gcd(9, 6), 3);
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(15, 10), 5);
        assert_eq!(gcd(7, 1), 1);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 5), 5);
    }
}

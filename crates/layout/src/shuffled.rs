//! Per-stripe pseudo-random placement — an ablation layout.
//!
//! Like [`RotatedLayout`](crate::RotatedLayout) this spreads parity over
//! all disks across stripes, but instead of a rotation it applies an
//! independent pseudo-random permutation per stripe. Comparing it with
//! EC-FRM separates two effects the paper bundles together: "all disks
//! hold data" (which shuffling also achieves, in aggregate) versus
//! "sequential data occupies *consecutive* disks" (which only EC-FRM
//! achieves and which is what bounds the most-loaded disk for
//! several-element reads).

use crate::traits::{Layout, Loc, StoredElement};

/// Deterministic per-stripe shuffled placement for an `(n, k)` code.
#[derive(Debug, Clone)]
pub struct ShuffledLayout {
    n: usize,
    k: usize,
    seed: u64,
}

/// SplitMix64 step: the standard 64-bit mixer, good enough to decorrelate
/// per-stripe permutations.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl ShuffledLayout {
    /// Create a shuffled layout over `n` disks with `k` data positions,
    /// deterministic in `seed`.
    ///
    /// # Panics
    /// Panics unless `0 < k < n`.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        assert!(k > 0 && k < n, "shuffled layout requires 0 < k < n");
        Self { n, k, seed }
    }

    /// The permutation for `stripe`: `perm[logical pos] = physical disk`.
    fn perm(&self, stripe: u64) -> Vec<usize> {
        let mut state = self
            .seed
            .wrapping_mul(0x2545F4914F6CDD1D)
            .wrapping_add(stripe.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let mut p: Vec<usize> = (0..self.n).collect();
        // Fisher-Yates driven by splitmix64.
        for i in (1..self.n).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            p.swap(i, j);
        }
        p
    }
}

impl Layout for ShuffledLayout {
    fn name(&self) -> &'static str {
        "shuffled"
    }

    fn n_disks(&self) -> usize {
        self.n
    }

    fn code_n(&self) -> usize {
        self.n
    }

    fn code_k(&self) -> usize {
        self.k
    }

    fn rows_per_stripe(&self) -> usize {
        1
    }

    fn data_location(&self, idx: u64) -> Loc {
        let stripe = idx / self.k as u64;
        let pos = (idx % self.k as u64) as usize;
        Loc::new(self.perm(stripe)[pos], stripe)
    }

    fn parity_location(&self, stripe: u64, row: usize, p: usize) -> Loc {
        debug_assert_eq!(row, 0, "shuffled layout has one row per stripe");
        debug_assert!(p < self.n - self.k);
        Loc::new(self.perm(stripe)[self.k + p], stripe)
    }

    fn element_at(&self, loc: Loc) -> StoredElement {
        debug_assert!(loc.disk < self.n);
        let perm = self.perm(loc.offset);
        let pos = perm
            .iter()
            .position(|&d| d == loc.disk)
            .expect("permutation covers all disks");
        StoredElement {
            stripe: loc.offset,
            row: 0,
            pos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_deterministic_and_valid() {
        let l = ShuffledLayout::new(10, 6, 42);
        for stripe in 0..50u64 {
            let p1 = l.perm(stripe);
            let p2 = l.perm(stripe);
            assert_eq!(p1, p2);
            let mut sorted = p1.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn different_stripes_get_different_permutations() {
        let l = ShuffledLayout::new(10, 6, 42);
        let distinct = (0..20u64)
            .map(|s| l.perm(s))
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct > 15, "permutations look constant: {distinct}/20");
    }

    #[test]
    fn element_at_inverts_mappings() {
        let l = ShuffledLayout::new(9, 6, 7);
        for idx in 0..90u64 {
            let se = l.element_at(l.data_location(idx));
            let (stripe, row, pos) = l.data_coordinates(idx);
            assert_eq!(se, StoredElement { stripe, row, pos });
        }
        for stripe in 0..15u64 {
            for p in 0..3 {
                let se = l.element_at(l.parity_location(stripe, 0, p));
                assert_eq!(se.pos, 6 + p);
            }
        }
    }

    #[test]
    fn each_stripe_occupies_distinct_disks() {
        let l = ShuffledLayout::new(10, 6, 99);
        for stripe in 0..20u64 {
            let locs = l.row_locations(stripe, 0);
            let mut disks: Vec<usize> = locs.iter().map(|l| l.disk).collect();
            disks.sort_unstable();
            disks.dedup();
            assert_eq!(disks.len(), 10);
        }
    }

    #[test]
    fn seeds_change_placement() {
        let a = ShuffledLayout::new(10, 6, 1);
        let b = ShuffledLayout::new(10, 6, 2);
        let differs = (0..20u64).any(|s| a.perm(s) != b.perm(s));
        assert!(differs);
    }
}

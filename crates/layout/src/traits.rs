//! The [`Layout`] trait and physical-location types.
//!
//! A layout answers two questions, in both directions:
//!
//! 1. *Where does logical data element `i` live?* The logical address
//!    space is the paper's append-only write model: data elements are
//!    numbered sequentially as they are written, and contiguous elements
//!    should land on different disks to exploit parallel I/O (§III-A's
//!    standing assumption, shared with Khan et al., FAST'12).
//! 2. *What lives at physical location `(disk, offset)`?* Needed for
//!    failure handling: when a disk dies, every element stored on it is
//!    identified by walking its offsets.
//!
//! Layouts are purely arithmetic — no I/O — so they are cheap to query in
//! planners and easy to test exhaustively.

/// Physical location of one element: a disk (column) and an element-sized
/// offset within that disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc {
    /// Disk index, `0..n_disks`.
    pub disk: usize,
    /// Offset on the disk, in element units.
    pub offset: u64,
}

impl Loc {
    /// Convenience constructor.
    pub fn new(disk: usize, offset: u64) -> Self {
        Self { disk, offset }
    }
}

/// Identity of the element stored at some physical location, expressed in
/// code coordinates: which stripe, which candidate row of that stripe,
/// and which position within the row (`0..k` data, `k..n` parity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoredElement {
    /// Layout stripe index.
    pub stripe: u64,
    /// Candidate-code row within the stripe (the paper's *group* index
    /// for EC-FRM layouts; always 0 for one-row layouts).
    pub row: usize,
    /// Position within the candidate row: `0..k` data, `k..n` parity.
    pub pos: usize,
}

impl StoredElement {
    /// Global data element index if this is a data element (`pos < k`),
    /// given the layout that produced it.
    pub fn data_index(&self, layout: &dyn Layout) -> Option<u64> {
        if self.pos < layout.code_k() {
            Some(
                self.stripe * layout.data_per_stripe() as u64
                    + (self.row * layout.code_k() + self.pos) as u64,
            )
        } else {
            None
        }
    }
}

/// A mapping between the logical element address space of an `(n, k)`
/// candidate code and physical `(disk, offset)` locations.
///
/// Invariants every implementation upholds (and the test suites check):
///
/// * the `n` elements of one candidate row map to `n` **distinct disks**;
/// * `data_location` and `parity_location` never collide;
/// * `element_at` inverts both.
pub trait Layout: Send + Sync + std::fmt::Debug {
    /// Short name used in reports, e.g. `"standard"`, `"rotated"`,
    /// `"ecfrm"`.
    fn name(&self) -> &'static str;

    /// Total number of disks (= `n`, one column per disk).
    fn n_disks(&self) -> usize;

    /// Elements per candidate row (`n`).
    fn code_n(&self) -> usize;

    /// Data elements per candidate row (`k`).
    fn code_k(&self) -> usize;

    /// Candidate rows per layout stripe (1 for standard/rotated,
    /// `n/gcd(n,k)` for EC-FRM).
    fn rows_per_stripe(&self) -> usize;

    /// Data elements per layout stripe (`k · rows_per_stripe`).
    fn data_per_stripe(&self) -> usize {
        self.code_k() * self.rows_per_stripe()
    }

    /// Total elements per layout stripe (`n · rows_per_stripe`).
    fn total_per_stripe(&self) -> usize {
        self.code_n() * self.rows_per_stripe()
    }

    /// Offsets (element units) each disk advances per layout stripe.
    fn offsets_per_stripe(&self) -> u64 {
        self.rows_per_stripe() as u64
    }

    /// Physical location of global data element `idx`.
    fn data_location(&self, idx: u64) -> Loc;

    /// Physical location of parity `p` (`0..n-k`) of candidate row `row`
    /// of layout stripe `stripe`.
    fn parity_location(&self, stripe: u64, row: usize, p: usize) -> Loc;

    /// Inverse mapping: what is stored at `loc`?
    fn element_at(&self, loc: Loc) -> StoredElement;

    /// Locations of all `n` elements of candidate row `row` of stripe
    /// `stripe`, indexed by row position (data `0..k`, parity `k..n`).
    fn row_locations(&self, stripe: u64, row: usize) -> Vec<Loc> {
        let k = self.code_k();
        let n = self.code_n();
        let base = stripe * self.data_per_stripe() as u64 + (row * k) as u64;
        let mut locs: Vec<Loc> = (0..k as u64)
            .map(|t| self.data_location(base + t))
            .collect();
        locs.extend((0..n - k).map(|p| self.parity_location(stripe, row, p)));
        locs
    }

    /// The stripe and candidate row that contain global data element
    /// `idx` — `(stripe, row, pos_in_row)`.
    fn data_coordinates(&self, idx: u64) -> (u64, usize, usize) {
        let dps = self.data_per_stripe() as u64;
        let stripe = idx / dps;
        let within = (idx % dps) as usize;
        let k = self.code_k();
        (stripe, within / k, within % k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StandardLayout;

    #[test]
    fn loc_ordering_and_ctor() {
        let a = Loc::new(0, 5);
        let b = Loc::new(1, 0);
        assert!(a < b);
        assert_eq!(a, Loc { disk: 0, offset: 5 });
    }

    #[test]
    fn stored_element_data_index_roundtrip() {
        let l = StandardLayout::new(10, 6);
        for idx in [0u64, 1, 5, 6, 17, 100] {
            let loc = l.data_location(idx);
            let se = l.element_at(loc);
            assert_eq!(se.data_index(&l), Some(idx));
        }
        // Parity elements have no data index.
        let ploc = l.parity_location(3, 0, 1);
        let se = l.element_at(ploc);
        assert_eq!(se.data_index(&l), None);
    }

    #[test]
    fn data_coordinates_consistency() {
        let l = StandardLayout::new(9, 6);
        let (stripe, row, pos) = l.data_coordinates(20);
        assert_eq!((stripe, row, pos), (3, 0, 2));
    }
}

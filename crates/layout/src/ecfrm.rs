//! The EC-FRM layout (paper §IV-B, Eq. (1)–(4)).
//!
//! For an `(n, k)` candidate code let `r = gcd(n, k)`. One EC-FRM stripe
//! is an `n/r × n` grid (one column per disk): data elements fill the
//! first `k/r` rows **row-major** — so logically sequential data is
//! physically sequential across *all* `n` disks — and parities fill the
//! remaining `(n-k)/r` rows.
//!
//! Elements regroup into `n/r` *groups* `G_i`, each one candidate-code
//! row:
//!
//! * `D_i` (Eq. (1)) — data elements `i·k .. i·k+k-1` (sequential), which
//!   land in columns `<i·k>_n .. <i·k+k-1>_n`;
//! * `P_{i,j}` (Eq. (2)) — parity chunk `j` of group `i`: `r` elements in
//!   parity row `k/r + j`, continuing the group's column sequence, i.e.
//!   columns `<i·k + k + j·r>_n .. <i·k + k + j·r + r - 1>_n`;
//! * `G_i = D_i ∪ P_i` (Eq. (3)–(4)).
//!
//! Each group therefore covers `n` *consecutive-mod-n* columns — `n`
//! distinct disks — so per group the candidate code's layout assumptions
//! hold and fault tolerance is preserved (paper Lemma 1, §IV-C).
//!
//! (The paper's Eq. (2) prints the column start as `i·k + k + j·i`; the
//! worked examples, Figure 4, and the step-2 identification rule all use
//! `i·k + k + j·r`, so the `j·i` is a typo we do not reproduce.)

use crate::gcd;
use crate::traits::{Layout, Loc, StoredElement};

/// The paper's EC-FRM placement for an `(n, k)` candidate code.
///
/// ```
/// use ecfrm_layout::{EcFrmLayout, Layout, Loc};
///
/// // (6,2,2) LRC as a (10,6) candidate: 5 rows × 10 columns per stripe.
/// let l = EcFrmLayout::new(10, 6);
/// assert_eq!(l.rows_per_stripe(), 5);
/// // Data element 7 lands on disk 7, row 0 (Figure 4's d0,7)...
/// assert_eq!(l.data_location(7), Loc::new(7, 0));
/// // ...and group 1's first local parity on disk 2, row 3 (p3,2).
/// assert_eq!(l.parity_location(0, 1, 0), Loc::new(2, 3));
/// ```
#[derive(Debug, Clone)]
pub struct EcFrmLayout {
    n: usize,
    k: usize,
    r: usize,
}

impl EcFrmLayout {
    /// Create an EC-FRM layout over `n` disks with `k` data elements per
    /// candidate row.
    ///
    /// # Panics
    /// Panics unless `0 < k < n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k > 0 && k < n, "EC-FRM layout requires 0 < k < n");
        Self { n, k, r: gcd(n, k) }
    }

    /// The paper's `r = gcd(n, k)`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Number of data rows per stripe (`k/r`).
    pub fn data_rows(&self) -> usize {
        self.k / self.r
    }

    /// Number of parity rows per stripe (`(n-k)/r`).
    pub fn parity_rows(&self) -> usize {
        (self.n - self.k) / self.r
    }

    /// Column of element `pos` (`0..n`) of group `i`: the group occupies
    /// `n` consecutive columns mod `n` starting at `<i·k>_n`.
    pub fn group_column(&self, group: usize, pos: usize) -> usize {
        debug_assert!(group < self.n / self.r && pos < self.n);
        (group * self.k + pos) % self.n
    }

    /// Row (within the stripe grid) of element `pos` of group `i`.
    pub fn group_row(&self, group: usize, pos: usize) -> usize {
        debug_assert!(group < self.n / self.r && pos < self.n);
        if pos < self.k {
            (group * self.k + pos) / self.n
        } else {
            self.data_rows() + (pos - self.k) / self.r
        }
    }
}

impl Layout for EcFrmLayout {
    fn name(&self) -> &'static str {
        "ecfrm"
    }

    fn n_disks(&self) -> usize {
        self.n
    }

    fn code_n(&self) -> usize {
        self.n
    }

    fn code_k(&self) -> usize {
        self.k
    }

    fn rows_per_stripe(&self) -> usize {
        self.n / self.r
    }

    fn data_location(&self, idx: u64) -> Loc {
        let dps = self.data_per_stripe() as u64; // k·n/r
        let stripe = idx / dps;
        let w = (idx % dps) as usize; // row-major within the data rows
        let row = w / self.n;
        let col = w % self.n;
        Loc::new(col, stripe * self.offsets_per_stripe() + row as u64)
    }

    fn parity_location(&self, stripe: u64, row: usize, p: usize) -> Loc {
        // `row` is the group index i; `p` is the parity position within
        // the candidate row (0..n-k).
        debug_assert!(row < self.rows_per_stripe());
        debug_assert!(p < self.n - self.k);
        let col = self.group_column(row, self.k + p);
        let prow = self.data_rows() + p / self.r;
        Loc::new(col, stripe * self.offsets_per_stripe() + prow as u64)
    }

    fn element_at(&self, loc: Loc) -> StoredElement {
        debug_assert!(loc.disk < self.n);
        let ops = self.offsets_per_stripe();
        let stripe = loc.offset / ops;
        let grid_row = (loc.offset % ops) as usize;
        if grid_row < self.data_rows() {
            // Data: row-major index within the stripe's data region.
            let w = grid_row * self.n + loc.disk;
            StoredElement {
                stripe,
                row: w / self.k, // group
                pos: w % self.k,
            }
        } else {
            // Parity: find the unique (group, parity position) whose
            // chunk covers this column in this parity row.
            let j = grid_row - self.data_rows();
            for s in 0..self.r {
                // Column of chunk start must be col - s (mod n) and the
                // chunk start for group i is <i·k + k + j·r>_n.
                let start = (loc.disk + self.n - (self.k + j * self.r + s) % self.n) % self.n;
                if !start.is_multiple_of(self.r) {
                    continue;
                }
                // Solve i·k ≡ start (mod n); i is unique in 0..n/r.
                if let Some(i) = (0..self.n / self.r).find(|&i| (i * self.k) % self.n == start) {
                    return StoredElement {
                        stripe,
                        row: i,
                        pos: self.k + j * self.r + s,
                    };
                }
            }
            unreachable!(
                "parity rows partition into group chunks; ({}, {}) unmatched",
                loc.disk, loc.offset
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example: (6,2,2) LRC as a (10,6) candidate.
    fn paper_layout() -> EcFrmLayout {
        EcFrmLayout::new(10, 6)
    }

    #[test]
    fn paper_parameters() {
        let l = paper_layout();
        assert_eq!(l.r(), 2);
        assert_eq!(l.rows_per_stripe(), 5);
        assert_eq!(l.data_rows(), 3);
        assert_eq!(l.parity_rows(), 2);
        assert_eq!(l.data_per_stripe(), 30);
        assert_eq!(l.total_per_stripe(), 50);
    }

    #[test]
    fn figure_4_group_0() {
        // D0 = {d0,0 .. d0,5}; P0,0 = {p3,6, p3,7}; P0,1 = {p4,8, p4,9}.
        let l = paper_layout();
        for t in 0..6u64 {
            assert_eq!(l.data_location(t), Loc::new(t as usize, 0));
        }
        assert_eq!(l.parity_location(0, 0, 0), Loc::new(6, 3));
        assert_eq!(l.parity_location(0, 0, 1), Loc::new(7, 3));
        assert_eq!(l.parity_location(0, 0, 2), Loc::new(8, 4));
        assert_eq!(l.parity_location(0, 0, 3), Loc::new(9, 4));
    }

    #[test]
    fn paper_group_1_example() {
        // §IV-E: G1 = {d0,6, d0,7, d0,8, d0,9, d1,0, d1,1,
        //              p3,2, p3,3, p4,4, p4,5}.
        let l = paper_layout();
        let want_data = [(6usize, 0u64), (7, 0), (8, 0), (9, 0), (0, 1), (1, 1)];
        for (t, (col, row)) in want_data.iter().enumerate() {
            assert_eq!(l.data_location(6 + t as u64), Loc::new(*col, *row));
        }
        assert_eq!(l.parity_location(0, 1, 0), Loc::new(2, 3));
        assert_eq!(l.parity_location(0, 1, 1), Loc::new(3, 3));
        assert_eq!(l.parity_location(0, 1, 2), Loc::new(4, 4));
        assert_eq!(l.parity_location(0, 1, 3), Loc::new(5, 4));
    }

    #[test]
    fn paper_group_3_example() {
        // §IV-B step 2: last data element of D3 is d2,3, P3,0 = {p3,4,
        // p3,5}, P3,1 = {p4,6, p4,7}.
        let l = paper_layout();
        assert_eq!(l.data_location(23), Loc::new(3, 2)); // d2,3 = element 23
        assert_eq!(l.parity_location(0, 3, 0), Loc::new(4, 3));
        assert_eq!(l.parity_location(0, 3, 1), Loc::new(5, 3));
        assert_eq!(l.parity_location(0, 3, 2), Loc::new(6, 4));
        assert_eq!(l.parity_location(0, 3, 3), Loc::new(7, 4));
    }

    #[test]
    fn paper_group_2_example() {
        // §IV-B: G2's parities are {p3,8, p3,9, p4,0, p4,1}.
        let l = paper_layout();
        assert_eq!(l.parity_location(0, 2, 0), Loc::new(8, 3));
        assert_eq!(l.parity_location(0, 2, 1), Loc::new(9, 3));
        assert_eq!(l.parity_location(0, 2, 2), Loc::new(0, 4));
        assert_eq!(l.parity_location(0, 2, 3), Loc::new(1, 4));
    }

    #[test]
    fn each_group_covers_n_distinct_disks() {
        for (n, k) in [(10usize, 6usize), (9, 6), (12, 8), (15, 10), (7, 3), (5, 4)] {
            let l = EcFrmLayout::new(n, k);
            for g in 0..l.rows_per_stripe() {
                let locs = l.row_locations(0, g);
                assert_eq!(locs.len(), n);
                let mut disks: Vec<usize> = locs.iter().map(|l| l.disk).collect();
                disks.sort_unstable();
                disks.dedup();
                assert_eq!(disks.len(), n, "({n},{k}) group {g}");
            }
        }
    }

    #[test]
    fn stripe_grid_is_partitioned_by_groups() {
        // Every (row, col) cell of the stripe grid is owned by exactly
        // one (group, pos).
        for (n, k) in [(10usize, 6usize), (9, 6), (12, 8), (15, 10), (7, 3)] {
            let l = EcFrmLayout::new(n, k);
            let rows = l.rows_per_stripe();
            let mut owner = vec![vec![None; n]; rows];
            for g in 0..rows {
                for (pos, loc) in l.row_locations(0, g).iter().enumerate() {
                    let row = loc.offset as usize;
                    assert!(
                        owner[row][loc.disk].is_none(),
                        "({n},{k}): cell ({row},{}) claimed twice",
                        loc.disk
                    );
                    owner[row][loc.disk] = Some((g, pos));
                }
            }
            for (row, cells) in owner.iter().enumerate() {
                for (col, cell) in cells.iter().enumerate() {
                    assert!(cell.is_some(), "({n},{k}): cell ({row},{col}) empty");
                }
            }
        }
    }

    #[test]
    fn element_at_inverts_all_mappings() {
        for (n, k) in [(10usize, 6usize), (9, 6), (12, 8), (15, 10), (5, 4), (7, 3)] {
            let l = EcFrmLayout::new(n, k);
            let dps = l.data_per_stripe() as u64;
            for idx in 0..(3 * dps) {
                let se = l.element_at(l.data_location(idx));
                let (stripe, row, pos) = l.data_coordinates(idx);
                assert_eq!(
                    se,
                    StoredElement { stripe, row, pos },
                    "({n},{k}) idx={idx}"
                );
            }
            for stripe in 0..3u64 {
                for g in 0..l.rows_per_stripe() {
                    for p in 0..n - k {
                        let se = l.element_at(l.parity_location(stripe, g, p));
                        assert_eq!(
                            se,
                            StoredElement {
                                stripe,
                                row: g,
                                pos: k + p
                            },
                            "({n},{k}) stripe={stripe} g={g} p={p}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sequential_data_spreads_over_all_disks() {
        // The paper's normal-read argument: any n consecutive data
        // elements occupy n distinct disks.
        let l = paper_layout();
        for start in 0..60u64 {
            let mut disks: Vec<usize> = (start..start + 10)
                .map(|i| l.data_location(i).disk)
                .collect();
            disks.sort_unstable();
            disks.dedup();
            assert_eq!(disks.len(), 10, "start={start}");
        }
    }

    #[test]
    fn figure_7a_eight_element_read_max_load_one() {
        // Figure 7(a): an 8-element normal read loads no disk twice
        // (contrast with Figure 3's standard/rotated max load of 2).
        let l = paper_layout();
        let mut load = vec![0usize; 10];
        for idx in 0..8u64 {
            load[l.data_location(idx).disk] += 1;
        }
        assert_eq!(*load.iter().max().unwrap(), 1, "load = {load:?}");
    }

    #[test]
    fn works_when_gcd_is_one() {
        // (7,3): r = 1, 7 rows, 3 data rows, 4 parity rows; parity chunks
        // are single elements.
        let l = EcFrmLayout::new(7, 3);
        assert_eq!(l.r(), 1);
        assert_eq!(l.rows_per_stripe(), 7);
        assert_eq!(l.data_rows(), 3);
        assert_eq!(l.parity_rows(), 4);
    }

    #[test]
    fn works_when_k_divides_n() {
        // (12,6): r = 6, 2 rows, 1 data row, 1 parity row.
        let l = EcFrmLayout::new(12, 6);
        assert_eq!(l.r(), 6);
        assert_eq!(l.rows_per_stripe(), 2);
        assert_eq!(l.data_rows(), 1);
        assert_eq!(l.parity_rows(), 1);
        // Group 0: data cols 0..5, parity cols 6..11; group 1: data cols
        // 6..11, parity cols 0..5.
        assert_eq!(l.parity_location(0, 1, 0), Loc::new(0, 1));
    }

    #[test]
    fn group_row_matches_locations() {
        for (n, k) in [(10usize, 6usize), (9, 6), (7, 3)] {
            let l = EcFrmLayout::new(n, k);
            for g in 0..l.rows_per_stripe() {
                let locs = l.row_locations(0, g);
                for (pos, loc) in locs.iter().enumerate() {
                    assert_eq!(
                        l.group_row(g, pos),
                        loc.offset as usize,
                        "({n},{k}) g={g} pos={pos}"
                    );
                    assert_eq!(l.group_column(g, pos), loc.disk);
                }
            }
        }
    }

    #[test]
    fn wide_parameters_beyond_gf8_limit() {
        // The layout math is code-agnostic: a (300, 240) EC-FRM grid for
        // a GF(2^16) wide-stripe code.
        let l = EcFrmLayout::new(300, 240);
        assert_eq!(l.r(), 60);
        assert_eq!(l.rows_per_stripe(), 5);
        let locs = l.row_locations(0, 3);
        let mut disks: Vec<usize> = locs.iter().map(|l| l.disk).collect();
        disks.sort_unstable();
        disks.dedup();
        assert_eq!(disks.len(), 300);
        // Inversion still holds at this scale.
        for idx in [0u64, 239, 240, 1199, 1200, 3599] {
            let se = l.element_at(l.data_location(idx));
            let (stripe, row, pos) = l.data_coordinates(idx);
            assert_eq!(se, StoredElement { stripe, row, pos });
        }
    }

    #[test]
    fn offsets_advance_per_stripe() {
        let l = paper_layout();
        let first_of_stripe_1 = l.data_location(30);
        assert_eq!(first_of_stripe_1, Loc::new(0, 5));
    }
}

//! Analytic disk-array timing: the paper's "read speed is limited by the
//! slowest disk to respond" model (§I, §III-A), computed exactly.

use ecfrm_util::Rng;

use crate::disk::DiskModel;

/// Multiplicative per-access service-time jitter, uniform in
/// `[1 - spread, 1 + spread]`.
///
/// Real disks vary access to access (queueing, head position, track
/// location); jitter makes the "most-loaded disk is *usually* the
/// slowest" statement of §III-B statistical rather than exact, as on the
/// paper's testbed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jitter {
    /// Half-width of the uniform multiplier, `0.0 ≤ spread < 1.0`.
    pub spread: f64,
}

impl Jitter {
    /// Construct, validating the spread.
    ///
    /// # Panics
    /// Panics unless `0.0 <= spread < 1.0`.
    pub fn new(spread: f64) -> Self {
        assert!((0.0..1.0).contains(&spread), "spread must be in [0, 1)");
        Self { spread }
    }

    fn sample(&self, rng: &mut Rng) -> f64 {
        if self.spread == 0.0 {
            1.0
        } else {
            1.0 + rng.random_range(-self.spread..=self.spread)
        }
    }
}

/// An array of (possibly heterogeneous) disk models evaluated under the
/// max-over-disks completion-time rule.
///
/// ```
/// use ecfrm_sim::{ArraySim, DiskModel};
/// use ecfrm_util::Rng;
///
/// let array = ArraySim::uniform(10, DiskModel::savvio_10k3(), 1_000_000);
/// let mut rng = Rng::seed_from_u64(1);
/// // Balanced 8-element read: one 17.1 ms element per disk.
/// let t = array.read_time_ms(&[1, 1, 1, 1, 1, 1, 1, 1, 0, 0], &mut rng);
/// assert!((t - 17.1).abs() < 1e-9);
/// // Skewed plan: the double-loaded disk doubles the time.
/// let t = array.read_time_ms(&[2, 1, 1, 1, 1, 1, 1, 0, 0, 0], &mut rng);
/// assert!((t - 34.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ArraySim {
    disks: Vec<DiskModel>,
    element_size: usize,
    jitter: Option<Jitter>,
}

impl ArraySim {
    /// A homogeneous array of `n` copies of `model` holding
    /// `element_size`-byte elements.
    pub fn uniform(n: usize, model: DiskModel, element_size: usize) -> Self {
        assert!(n > 0, "array needs at least one disk");
        Self {
            disks: vec![model; n],
            element_size,
            jitter: None,
        }
    }

    /// A heterogeneous array from explicit per-disk models.
    pub fn heterogeneous(disks: Vec<DiskModel>, element_size: usize) -> Self {
        assert!(!disks.is_empty(), "array needs at least one disk");
        Self {
            disks,
            element_size,
            jitter: None,
        }
    }

    /// Enable per-access jitter.
    pub fn with_jitter(mut self, jitter: Jitter) -> Self {
        self.jitter = Some(jitter);
        self
    }

    /// Number of disks.
    pub fn n_disks(&self) -> usize {
        self.disks.len()
    }

    /// Element size in bytes.
    pub fn element_size(&self) -> usize {
        self.element_size
    }

    /// Completion time (ms) of a parallel read described by per-disk
    /// element counts: each disk serves its queue sequentially; the read
    /// completes when the last disk finishes.
    ///
    /// # Panics
    /// Panics if `per_disk_load.len()` differs from the disk count.
    pub fn read_time_ms(&self, per_disk_load: &[usize], rng: &mut Rng) -> f64 {
        assert_eq!(
            per_disk_load.len(),
            self.disks.len(),
            "load vector does not match disk count"
        );
        let mut worst: f64 = 0.0;
        for (disk, &q) in self.disks.iter().zip(per_disk_load) {
            let t: f64 = (0..q)
                .map(|i| {
                    let base = disk.queued_service_time_ms(i, self.element_size);
                    match self.jitter {
                        None => base,
                        Some(j) => base * j.sample(rng),
                    }
                })
                .sum();
            worst = worst.max(t);
        }
        worst
    }

    /// Read speed in MB/s for a request of `requested_elements` under the
    /// given load vector (the paper's Figure 8/9 metric).
    pub fn read_speed_mb_s(
        &self,
        requested_elements: usize,
        per_disk_load: &[usize],
        rng: &mut Rng,
    ) -> f64 {
        let t = self.read_time_ms(per_disk_load, rng);
        if t == 0.0 {
            return 0.0;
        }
        crate::metrics::speed_mb_s(requested_elements * self.element_size, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(42)
    }

    #[test]
    fn time_is_max_over_disks() {
        let a = ArraySim::uniform(4, DiskModel::savvio_10k3(), 1_000_000);
        let per = DiskModel::savvio_10k3().service_time_ms(1_000_000);
        let t = a.read_time_ms(&[1, 3, 0, 2], &mut rng());
        assert!((t - 3.0 * per).abs() < 1e-9);
    }

    #[test]
    fn zero_load_is_instant() {
        let a = ArraySim::uniform(4, DiskModel::savvio_10k3(), 1_000_000);
        assert_eq!(a.read_time_ms(&[0, 0, 0, 0], &mut rng()), 0.0);
        assert_eq!(a.read_speed_mb_s(0, &[0, 0, 0, 0], &mut rng()), 0.0);
    }

    #[test]
    fn speed_scales_with_bottleneck() {
        // Same 8 requested elements; max load 1 must be twice as fast as
        // max load 2 (the whole point of EC-FRM).
        let a = ArraySim::uniform(10, DiskModel::savvio_10k3(), 1_000_000);
        let balanced = vec![1, 1, 1, 1, 1, 1, 1, 1, 0, 0];
        let skewed = vec![2, 2, 1, 1, 1, 1, 0, 0, 0, 0];
        let s1 = a.read_speed_mb_s(8, &balanced, &mut rng());
        let s2 = a.read_speed_mb_s(8, &skewed, &mut rng());
        assert!((s1 / s2 - 2.0).abs() < 1e-9, "s1={s1} s2={s2}");
    }

    #[test]
    fn heterogeneous_slow_disk_dominates() {
        let mut disks = vec![DiskModel::savvio_10k3(); 4];
        disks[3] = DiskModel::savvio_10k3().with_speed_factor(0.25);
        let a = ArraySim::heterogeneous(disks, 1_000_000);
        let t = a.read_time_ms(&[1, 1, 1, 1], &mut rng());
        let slow = DiskModel::savvio_10k3()
            .with_speed_factor(0.25)
            .service_time_ms(1_000_000);
        assert!((t - slow).abs() < 1e-9);
    }

    #[test]
    fn jitter_stays_in_bounds_and_perturbs() {
        let a =
            ArraySim::uniform(2, DiskModel::savvio_10k3(), 1_000_000).with_jitter(Jitter::new(0.2));
        let base = DiskModel::savvio_10k3().service_time_ms(1_000_000);
        let mut r = rng();
        let mut saw_different = false;
        let mut prev: Option<f64> = None;
        for _ in 0..100 {
            let t = a.read_time_ms(&[1, 0], &mut r);
            assert!(t >= base * 0.8 - 1e-9 && t <= base * 1.2 + 1e-9);
            if let Some(p) = prev {
                if (t - p).abs() > 1e-12 {
                    saw_different = true;
                }
            }
            prev = Some(t);
        }
        assert!(saw_different, "jitter should vary access times");
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let a =
            ArraySim::uniform(2, DiskModel::savvio_10k3(), 1_000_000).with_jitter(Jitter::new(0.0));
        let t1 = a.read_time_ms(&[2, 1], &mut rng());
        let t2 = a.read_time_ms(&[2, 1], &mut rng());
        assert_eq!(t1, t2);
    }

    #[test]
    #[should_panic]
    fn load_vector_length_checked() {
        let a = ArraySim::uniform(4, DiskModel::savvio_10k3(), 1_000_000);
        a.read_time_ms(&[1, 2], &mut rng());
    }
}

//! A real concurrent disk-array engine.
//!
//! [`ArraySim`](crate::ArraySim) *models* time; [`ThreadedArray`] actually
//! runs the parallel I/O structure of an erasure-coded read: one worker
//! thread per disk, jobs fanned out over channels, results collected —
//! the code path a storage frontend would execute, here over in-memory
//! disks ([`MemDisk`]) with optional injected per-access latency so the
//! bottleneck behaviour is physically observable in examples and tests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::time::Duration;

use ecfrm_obs::DiskBoard;
use ecfrm_util::Mutex;

use crate::metrics::NetStats;

/// Address of one element on the array: `(disk, offset)`.
pub type Address = (usize, u64);

/// What the array needs from a disk: element-granular read/write plus
/// failure injection. Implemented by [`MemDisk`] (in-memory, optional
/// simulated latency) and [`FileDisk`](crate::file_disk::FileDisk)
/// (real files).
pub trait DiskBackend: Send + Sync + std::fmt::Debug {
    /// Fetch the element at `offset`; `None` when absent or failed.
    fn read(&self, offset: u64) -> Option<Vec<u8>>;
    /// Store an element.
    fn write(&self, offset: u64, bytes: Vec<u8>);
    /// Mark failed: reads return `None` until healed.
    fn fail(&self);
    /// Clear the failure flag.
    fn heal(&self);
    /// Permanently erase all contents.
    fn wipe(&self);
    /// Number of stored elements.
    fn len(&self) -> usize;
    /// True when no elements are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Network transport statistics, when this backend speaks to a
    /// remote shard (see `ecfrm-net`). Local backends return `None`.
    fn net_stats(&self) -> Option<NetStats> {
        None
    }
}

/// An in-memory "disk": a map from element offset to element bytes, with
/// optional simulated per-access latency and a failure switch.
#[derive(Debug)]
pub struct MemDisk {
    elements: Mutex<HashMap<u64, Vec<u8>>>,
    latency: Duration,
    failed: AtomicBool,
}

impl MemDisk {
    /// An empty disk with no simulated latency.
    pub fn new() -> Self {
        Self::with_latency(Duration::ZERO)
    }

    /// An empty disk that sleeps `latency` on every read.
    pub fn with_latency(latency: Duration) -> Self {
        Self {
            elements: Mutex::new(HashMap::new()),
            latency,
            failed: AtomicBool::new(false),
        }
    }
}

impl DiskBackend for MemDisk {
    /// Fetch an element; `None` if absent or the disk is failed. Sleeps
    /// the configured latency on every (attempted) access.
    fn read(&self, offset: u64) -> Option<Vec<u8>> {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        if self.failed.load(Ordering::Acquire) {
            return None;
        }
        self.elements.lock().get(&offset).cloned()
    }

    fn write(&self, offset: u64, bytes: Vec<u8>) {
        self.elements.lock().insert(offset, bytes);
    }

    /// Mark the disk failed: reads return `None` until healed. Contents
    /// are preserved (the paper's dominant failure class is transient —
    /// §II-D: >90% of data-centre failures lose no data).
    fn fail(&self) {
        self.failed.store(true, Ordering::Release);
    }

    fn heal(&self) {
        self.failed.store(false, Ordering::Release);
    }

    /// Permanently erase all contents (a real disk loss, before rebuild).
    fn wipe(&self) {
        self.elements.lock().clear();
    }

    fn len(&self) -> usize {
        self.elements.lock().len()
    }
}

impl Default for MemDisk {
    fn default() -> Self {
        Self::new()
    }
}

enum Job {
    Read {
        tag: usize,
        offset: u64,
        reply: Sender<(usize, Option<Vec<u8>>)>,
    },
    Write {
        offset: u64,
        bytes: Vec<u8>,
        done: Sender<()>,
    },
    Shutdown,
}

/// One worker thread per disk; jobs dispatched over channels.
///
/// Every served element read is tallied on a per-disk [`DiskBoard`]
/// (count + bytes), so the paper's "most-loaded disk is the bottleneck"
/// is directly observable per layout via [`ThreadedArray::load_board`].
pub struct ThreadedArray {
    disks: Vec<Arc<dyn DiskBackend>>,
    senders: Vec<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    board: DiskBoard,
}

impl std::fmt::Debug for ThreadedArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadedArray({} disks)", self.disks.len())
    }
}

impl ThreadedArray {
    /// Spawn an array of `n` latency-free disks.
    pub fn new(n: usize) -> Self {
        Self::with_latency(n, Duration::ZERO)
    }

    /// Spawn an array of `n` disks that each sleep `latency` per read.
    pub fn with_latency(n: usize, latency: Duration) -> Self {
        let disks: Vec<Arc<dyn DiskBackend>> = (0..n)
            .map(|_| Arc::new(MemDisk::with_latency(latency)) as Arc<dyn DiskBackend>)
            .collect();
        Self::from_backends(disks)
    }

    /// Spawn workers over caller-supplied disk backends (in-memory,
    /// file-backed, or custom).
    ///
    /// # Panics
    /// Panics if `disks` is empty.
    pub fn from_backends(disks: Vec<Arc<dyn DiskBackend>>) -> Self {
        assert!(!disks.is_empty(), "array needs at least one disk");
        let n = disks.len();
        let board = DiskBoard::new(n);
        let mut senders = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for (d, disk) in disks.iter().enumerate() {
            let (tx, rx) = channel::<Job>();
            let disk = Arc::clone(disk);
            let board = board.clone();
            senders.push(tx);
            workers.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Read { tag, offset, reply } => {
                            let bytes = disk.read(offset);
                            if let Some(b) = &bytes {
                                board.record(d, 1, b.len() as u64);
                            }
                            let _ = reply.send((tag, bytes));
                        }
                        Job::Write {
                            offset,
                            bytes,
                            done,
                        } => {
                            disk.write(offset, bytes);
                            let _ = done.send(());
                        }
                        Job::Shutdown => break,
                    }
                }
            }));
        }
        Self {
            disks,
            senders,
            workers,
            board,
        }
    }

    /// Number of disks.
    pub fn n_disks(&self) -> usize {
        self.disks.len()
    }

    /// Direct handle to a disk (for failure injection and inspection).
    pub fn disk(&self, d: usize) -> &Arc<dyn DiskBackend> {
        &self.disks[d]
    }

    /// The per-disk served-read tally board (elements + bytes per disk,
    /// cumulative since construction). Cheap to clone; snapshot it for
    /// a point-in-time load table.
    pub fn load_board(&self) -> &DiskBoard {
        &self.board
    }

    /// Write a batch of elements, waiting for all to land.
    pub fn write_batch(&self, items: Vec<(Address, Vec<u8>)>) {
        let (done_tx, done_rx) = channel();
        let count = items.len();
        for ((disk, offset), bytes) in items {
            self.senders[disk]
                .send(Job::Write {
                    offset,
                    bytes,
                    done: done_tx.clone(),
                })
                .expect("worker alive");
        }
        for _ in 0..count {
            done_rx.recv().expect("worker alive");
        }
    }

    /// Read a batch of addresses **in parallel** (each disk serves its
    /// own queue concurrently with the others), returning results in
    /// request order. `None` entries are failed/absent elements.
    pub fn read_batch(&self, addrs: &[Address]) -> Vec<Option<Vec<u8>>> {
        let (reply_tx, reply_rx) = channel();
        for (tag, &(disk, offset)) in addrs.iter().enumerate() {
            self.senders[disk]
                .send(Job::Read {
                    tag,
                    offset,
                    reply: reply_tx.clone(),
                })
                .expect("worker alive");
        }
        let mut out: Vec<Option<Vec<u8>>> = vec![None; addrs.len()];
        for _ in 0..addrs.len() {
            let (tag, bytes) = reply_rx.recv().expect("worker alive");
            out[tag] = bytes;
        }
        out
    }
}

impl Drop for ThreadedArray {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Job::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn memdisk_write_read() {
        let d = MemDisk::new();
        assert!(d.is_empty());
        d.write(5, vec![1, 2, 3]);
        assert_eq!(d.read(5), Some(vec![1, 2, 3]));
        assert_eq!(d.read(6), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn memdisk_failure_and_heal() {
        let d = MemDisk::new();
        d.write(0, vec![7]);
        d.fail();
        assert_eq!(d.read(0), None);
        d.heal();
        assert_eq!(d.read(0), Some(vec![7]));
        d.wipe();
        assert_eq!(d.read(0), None);
    }

    #[test]
    fn batch_roundtrip_preserves_order() {
        let a = ThreadedArray::new(4);
        let items: Vec<(Address, Vec<u8>)> = (0..16u64)
            .map(|i| (((i % 4) as usize, i / 4), vec![i as u8; 3]))
            .collect();
        a.write_batch(items.clone());
        let addrs: Vec<Address> = items.iter().map(|(a, _)| *a).collect();
        let got = a.read_batch(&addrs);
        for (g, (_, want)) in got.iter().zip(&items) {
            assert_eq!(g.as_ref(), Some(want));
        }
    }

    #[test]
    fn failed_disk_returns_none_others_fine() {
        let a = ThreadedArray::new(3);
        a.write_batch(vec![
            ((0, 0), vec![1]),
            ((1, 0), vec![2]),
            ((2, 0), vec![3]),
        ]);
        a.disk(1).fail();
        let got = a.read_batch(&[(0, 0), (1, 0), (2, 0)]);
        assert_eq!(got[0], Some(vec![1]));
        assert_eq!(got[1], None);
        assert_eq!(got[2], Some(vec![3]));
    }

    #[test]
    fn parallel_reads_overlap_across_disks() {
        // 4 disks × 1 element each at 20 ms latency must take well under
        // the 80 ms a serial scan would: demonstrates actual parallelism.
        let a = ThreadedArray::with_latency(4, Duration::from_millis(20));
        a.write_batch((0..4).map(|d| ((d, 0u64), vec![d as u8])).collect());
        let t0 = Instant::now();
        let got = a.read_batch(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let elapsed = t0.elapsed();
        assert!(got.iter().all(|g| g.is_some()));
        assert!(
            elapsed < Duration::from_millis(60),
            "reads did not overlap: {elapsed:?}"
        );
    }

    #[test]
    fn same_disk_reads_serialise() {
        // 3 elements on ONE disk at 20 ms each: must take at least 60 ms —
        // the most-loaded-disk bottleneck is physically real here.
        let a = ThreadedArray::with_latency(2, Duration::from_millis(20));
        a.write_batch((0..3u64).map(|o| ((0usize, o), vec![o as u8])).collect());
        let t0 = Instant::now();
        let got = a.read_batch(&[(0, 0), (0, 1), (0, 2)]);
        let elapsed = t0.elapsed();
        assert!(got.iter().all(|g| g.is_some()));
        assert!(
            elapsed >= Duration::from_millis(55),
            "same-disk reads overlapped impossibly: {elapsed:?}"
        );
    }

    #[test]
    fn empty_batches_are_noops() {
        let a = ThreadedArray::new(2);
        a.write_batch(vec![]);
        assert!(a.read_batch(&[]).is_empty());
    }

    #[test]
    fn load_board_tallies_served_reads_per_disk() {
        let a = ThreadedArray::new(3);
        a.write_batch(vec![
            ((0, 0), vec![1, 1]),
            ((0, 1), vec![2, 2]),
            ((1, 0), vec![3, 3]),
        ]);
        a.read_batch(&[(0, 0), (0, 1), (1, 0), (2, 0)]); // (2,0) misses
        let s = a.load_board().snapshot();
        assert_eq!(s.elements, vec![2, 1, 0]); // misses are not served
        assert_eq!(s.bytes, vec![4, 2, 0]);
        a.read_batch(&[(1, 0)]);
        assert_eq!(a.load_board().snapshot().elements, vec![2, 2, 0]);
    }
}

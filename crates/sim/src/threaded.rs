//! A real concurrent disk-array engine.
//!
//! [`ArraySim`](crate::ArraySim) *models* time; [`ThreadedArray`] actually
//! runs the parallel I/O structure of an erasure-coded read. Since the
//! reactor redesign it is a thin driver over the completion engine in
//! [`crate::reactor`]: array-level reads submit one vectored operation
//! per touched disk, a bounded worker pool services blocking backends
//! ([`MemDisk`], files), completion-driven backends (a multiplexed
//! remote client) complete from their own demux thread, and per-disk
//! replies stream back to the caller as they land so decode starts while
//! slower disks are still working.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::time::Duration;

use ecfrm_obs::DiskBoard;
use ecfrm_util::Mutex;

use crate::metrics::NetStats;
use crate::reactor::{IoHandle, IoResults, Reactor, ReactorStats};

/// Address of one element on the array: `(disk, offset)`.
pub type Address = (usize, u64);

/// One peer shard's share of a combined (pre-summed) repair read,
/// forwarded by the aggregating backend so partial sums merge close to
/// the data instead of on the rebuilding client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinePeerSpec {
    /// The peer shard's dialable address (`host:port`).
    pub addr: String,
    /// First local element offset the peer multiplies.
    pub offset: u64,
    /// Number of consecutive local elements.
    pub count: u32,
    /// Row-major `outputs × count` GF(2^8) coefficient matrix (the
    /// output-lane count is shared with the aggregating request).
    pub coeffs: Vec<u8>,
}

/// A combined repair read: multiply `count` contiguous local elements
/// starting at `offset` by a row-major `outputs × count` coefficient
/// matrix over GF(2^8) and return one pre-summed region per output
/// lane, XOR-merged with the partial sums of any forwarded `peers`.
///
/// This is the backend-agnostic description of the `CombineRange` wire
/// op (see `ecfrm-net`): a local backend has no wire to save and
/// reports [`CombineOutcome::Unsupported`], while a remote shard client
/// ships the spec to its server, which does the multiplication beside
/// the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombineSpec {
    /// First local element offset.
    pub offset: u64,
    /// Number of consecutive local elements.
    pub count: u32,
    /// Number of output lanes (pre-summed regions to return).
    pub outputs: u32,
    /// Row-major `outputs × count` GF(2^8) coefficient matrix for the
    /// local elements.
    pub coeffs: Vec<u8>,
    /// The store's integrity key `(k0, k1)`: every local element's
    /// checksum footer is verified against its offset *before* the
    /// element contributes to a sum, and each returned region carries a
    /// footer salted by `offset + lane` for end-to-end verification.
    pub key: (u64, u64),
    /// Other helpers whose partial sums the serving backend fetches and
    /// XOR-merges before answering (one level deep — peers never
    /// forward further).
    pub peers: Vec<CombinePeerSpec>,
}

/// Per-element / per-peer verdicts inside a [`CombineReply`].
pub mod combine_status {
    /// Element verified (or peer contributed) cleanly.
    pub const OK: u8 = 0;
    /// Element absent or the shard is failed / peer unreachable.
    pub const MISSING: u8 = 1;
    /// Element's checksum footer disagreed / a peer shipped a region
    /// that failed verification.
    pub const CORRUPT: u8 = 2;
    /// Peer answered but declined the op (old server or refused spec).
    pub const DECLINED: u8 = 3;
}

/// A successful combined read: one pre-summed region per output lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombineReply {
    /// One region per output lane, each `payload || footer` with the
    /// footer salted by `offset + lane` under the spec's key. Empty when
    /// no local element (and no peer region) contributed.
    pub regions: Vec<Vec<u8>>,
    /// Per local element (in offset order): [`combine_status`] verdict.
    pub local_status: Vec<u8>,
    /// Per forwarded peer (in spec order): [`combine_status`] verdict.
    /// A non-OK peer contributed *nothing* to the sums.
    pub peer_status: Vec<u8>,
}

/// Outcome of [`DiskBackend::combine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CombineOutcome {
    /// The backend cannot pre-sum (local disk, or an old remote server
    /// that latched the op off) — fall back to fetching raw elements.
    Unsupported,
    /// The backend supports the op but this request failed (transport
    /// error, refused spec); retry or fall back.
    Failed(String),
    /// Partial sums computed.
    Combined(CombineReply),
}

/// What the array needs from a disk: element-granular read/write plus
/// failure injection. Implemented by [`MemDisk`] (in-memory, optional
/// simulated latency), [`FileDisk`](crate::file_disk::FileDisk) (real
/// files), and `RemoteDisk` in `ecfrm-net` (a shard over TCP).
///
/// The one required I/O method is the **submission entry point**
/// [`Self::submit_read_many`]: it hands back an
/// [`IoHandle`] that completes with the
/// batch's results. The blocking [`Self::read_many`] and per-element
/// [`Self::read`] are default-implemented shims over it, so a new
/// backend implements exactly one read method.
pub trait DiskBackend: Send + Sync + std::fmt::Debug {
    /// Submit one vectored read covering `offsets`, returning a
    /// completion handle that resolves to one entry per offset, in
    /// input order (`None` = absent or failed element).
    ///
    /// This is the vectored entry point of the batched read path: one
    /// submission per disk per array-level read. A blocking backend may
    /// service the request inline — a single lock (in-memory), one seek
    /// per sorted sequential run (files) — and return an
    /// already-completed handle ([`IoHandle::ready`]); the array then
    /// drives it from the reactor pool so callers never block on
    /// submission. A completion-driven backend (multiplexed remote
    /// shard) returns a pending handle, completes it from its own demux
    /// thread, and reports [`Self::submits_async`] = `true`.
    fn submit_read_many(&self, offsets: &[u64]) -> IoHandle;

    /// Fetch several elements in one request, blocking until served:
    /// submit + wait. Migration shim — batch consumers should prefer
    /// the submission form.
    fn read_many(&self, offsets: &[u64]) -> Vec<Option<Vec<u8>>> {
        self.submit_read_many(offsets).wait()
    }

    /// Fetch the element at `offset`; `None` when absent or failed.
    /// Default: a one-element vectored read.
    fn read(&self, offset: u64) -> Option<Vec<u8>> {
        self.read_many(std::slice::from_ref(&offset))
            .pop()
            .flatten()
    }

    /// True when [`Self::submit_read_many`] is genuinely non-blocking
    /// (completes from the backend's own machinery). The array submits
    /// such backends directly from the driver thread instead of
    /// occupying a reactor pool worker.
    fn submits_async(&self) -> bool {
        false
    }

    /// Store an element.
    fn write(&self, offset: u64, bytes: Vec<u8>);
    /// Mark failed: reads return `None` until healed.
    fn fail(&self);
    /// Clear the failure flag.
    fn heal(&self);
    /// Permanently erase all contents.
    fn wipe(&self);
    /// Number of stored elements.
    fn len(&self) -> usize;
    /// True when no elements are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Network transport statistics, when this backend speaks to a
    /// remote shard (see `ecfrm-net`). Local backends return `None`.
    fn net_stats(&self) -> Option<NetStats> {
        None
    }

    /// Multiply local elements by caller-supplied GF(2^8) coefficients
    /// and return pre-summed regions (optionally merged with peers'
    /// partial sums) instead of raw elements — the repair-traffic
    /// optimisation behind the `CombineRange` wire op. Local backends
    /// have no wire to save and report
    /// [`CombineOutcome::Unsupported`]; only a remote shard client
    /// overrides this.
    fn combine(&self, _spec: &CombineSpec) -> CombineOutcome {
        CombineOutcome::Unsupported
    }

    /// True when [`Self::combine`] is worth attempting right now (the
    /// backend is remote and its server has not latched the op off).
    /// Plan-time gate for the combined repair path.
    fn supports_combine(&self) -> bool {
        false
    }

    /// The dialable `host:port` other shard servers can reach this
    /// backend's data at, when it fronts a remote shard. Local backends
    /// return `None`; a backend without an address cannot serve as a
    /// combined-repair peer.
    fn peer_addr(&self) -> Option<String> {
        None
    }
}

/// An in-memory "disk": a map from element offset to element bytes, with
/// optional simulated per-access latency and a failure switch.
#[derive(Debug)]
pub struct MemDisk {
    elements: Mutex<HashMap<u64, Vec<u8>>>,
    latency: Duration,
    failed: AtomicBool,
}

impl MemDisk {
    /// An empty disk with no simulated latency.
    pub fn new() -> Self {
        Self::with_latency(Duration::ZERO)
    }

    /// An empty disk that sleeps `latency` on every read.
    pub fn with_latency(latency: Duration) -> Self {
        Self {
            elements: Mutex::new(HashMap::new()),
            latency,
            failed: AtomicBool::new(false),
        }
    }
}

impl DiskBackend for MemDisk {
    /// Serve a whole batch under one map lock, inline. The simulated
    /// latency stays *per element* (it models the disk's per-access
    /// service time, which batching does not remove), but is paid as
    /// one sleep so a large batch costs one scheduler round trip.
    fn submit_read_many(&self, offsets: &[u64]) -> IoHandle {
        if !self.latency.is_zero() && !offsets.is_empty() {
            std::thread::sleep(self.latency * offsets.len() as u32);
        }
        if self.failed.load(Ordering::Acquire) {
            return IoHandle::ready(vec![None; offsets.len()]);
        }
        let elements = self.elements.lock();
        IoHandle::ready(offsets.iter().map(|o| elements.get(o).cloned()).collect())
    }

    fn write(&self, offset: u64, bytes: Vec<u8>) {
        self.elements.lock().insert(offset, bytes);
    }

    /// Mark the disk failed: reads return `None` until healed. Contents
    /// are preserved (the paper's dominant failure class is transient —
    /// §II-D: >90% of data-centre failures lose no data).
    fn fail(&self) {
        self.failed.store(true, Ordering::Release);
    }

    fn heal(&self) {
        self.failed.store(false, Ordering::Release);
    }

    /// Permanently erase all contents (a real disk loss, before rebuild).
    fn wipe(&self) {
        self.elements.lock().clear();
    }

    fn len(&self) -> usize {
        self.elements.lock().len()
    }
}

impl Default for MemDisk {
    fn default() -> Self {
        Self::new()
    }
}

/// One disk's answer to its slice of a batched read: the caller's
/// request indices paired with the served bytes (`None` = absent or
/// failed element).
#[derive(Debug)]
pub struct DiskReply {
    /// Which disk answered.
    pub disk: usize,
    /// `(index into the submitted address slice, bytes)` pairs, in the
    /// order the addresses were submitted for this disk.
    pub items: Vec<(usize, Option<Vec<u8>>)>,
}

/// An in-flight batched read: per-disk replies stream out of
/// [`Self::next_reply`] as each disk's submission completes, so callers
/// can start consuming (copying out, decoding) while slower disks are
/// still working.
///
/// Dropping a `BatchRead` abandons any outstanding replies safely.
#[derive(Debug)]
pub struct BatchRead {
    rx: std::sync::mpsc::Receiver<DiskReply>,
    pending: usize,
    jobs: usize,
}

impl BatchRead {
    /// Number of per-disk submissions this batch dispatched — the
    /// array-level request count (one vectored request per touched
    /// disk). For remote backends this is the logical RPC count of the
    /// batch.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Next per-disk reply, blocking until one arrives; `None` once
    /// every dispatched disk has answered. The completion engine
    /// guarantees every submission answers — a panicking backend's
    /// submission completes as all-`None` — so the stream always runs
    /// to exactly [`Self::jobs`] replies.
    pub fn next_reply(&mut self) -> Option<DiskReply> {
        if self.pending == 0 {
            return None;
        }
        match self.rx.recv() {
            Ok(reply) => {
                self.pending -= 1;
                Some(reply)
            }
            Err(_) => {
                self.pending = 0;
                None
            }
        }
    }
}

/// The array engine: a submission/completion reactor shared by every
/// disk, plus per-slot backend registration.
///
/// Array-level reads group addresses by disk and submit **one** vectored
/// operation per touched disk. Blocking backends are serviced by the
/// reactor's bounded worker pool (sized to the disk count by default, so
/// independent disks overlap while same-disk batches serialise their
/// per-element service time); completion-driven backends
/// ([`DiskBackend::submits_async`]) are submitted inline and complete
/// from their own machinery.
///
/// Every served element read is tallied on a per-disk [`DiskBoard`]
/// (count + bytes), so the paper's "most-loaded disk is the bottleneck"
/// is directly observable per layout via [`ThreadedArray::load_board`].
///
/// The array also keeps a *suspect set*: disks whose backend panicked or
/// that a reader reported as unresponsive
/// ([`ThreadedArray::mark_suspect`]). The set is pure reporting — it
/// never changes how submissions are dispatched — and feeds failure
/// detectors such as the store's background `RepairManager`, which probe
/// suspects and either clear them ([`ThreadedArray::clear_suspect`]) or
/// promote them to failed and start reconstruction.
pub struct ThreadedArray {
    slots: Vec<Mutex<Arc<dyn DiskBackend>>>,
    reactor: Reactor,
    board: DiskBoard,
    suspects: Arc<Mutex<BTreeSet<usize>>>,
}

impl std::fmt::Debug for ThreadedArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadedArray({} disks)", self.slots.len())
    }
}

impl ThreadedArray {
    /// Spawn an array of `n` latency-free disks.
    pub fn new(n: usize) -> Self {
        Self::with_latency(n, Duration::ZERO)
    }

    /// Spawn an array of `n` disks that each sleep `latency` per read.
    pub fn with_latency(n: usize, latency: Duration) -> Self {
        let disks: Vec<Arc<dyn DiskBackend>> = (0..n)
            .map(|_| Arc::new(MemDisk::with_latency(latency)) as Arc<dyn DiskBackend>)
            .collect();
        Self::from_backends(disks)
    }

    /// An array over caller-supplied disk backends (in-memory,
    /// file-backed, or remote), with one reactor pool worker per disk —
    /// enough to drive every blocking backend concurrently.
    ///
    /// # Panics
    /// Panics if `disks` is empty.
    pub fn from_backends(disks: Vec<Arc<dyn DiskBackend>>) -> Self {
        let workers = disks.len();
        Self::from_backends_with_workers(disks, workers)
    }

    /// An array over caller-supplied backends with an explicit reactor
    /// pool size, for workloads whose concurrency is not one-op-per-disk
    /// (e.g. many foreground readers over few disks).
    ///
    /// # Panics
    /// Panics if `disks` is empty.
    pub fn from_backends_with_workers(disks: Vec<Arc<dyn DiskBackend>>, workers: usize) -> Self {
        assert!(!disks.is_empty(), "array needs at least one disk");
        let board = DiskBoard::new(disks.len());
        Self {
            slots: disks.into_iter().map(Mutex::new).collect(),
            reactor: Reactor::new(workers),
            board,
            suspects: Arc::new(Mutex::new(BTreeSet::new())),
        }
    }

    /// Number of disks.
    pub fn n_disks(&self) -> usize {
        self.slots.len()
    }

    /// Handle to a disk's current backend (for failure injection and
    /// inspection). A clone — the slot itself may be re-registered
    /// concurrently, after which this handle refers to the *old*
    /// backend.
    pub fn disk(&self, d: usize) -> Arc<dyn DiskBackend> {
        Arc::clone(&self.slots[d].lock())
    }

    /// Live submission/completion counters and queue-depth / in-flight
    /// gauges for the array's I/O engine.
    pub fn io_stats(&self) -> Arc<ReactorStats> {
        self.reactor.stats()
    }

    /// Re-register disk `d` with a replacement backend; in-flight
    /// submissions finish against the old backend, new submissions see
    /// the replacement. Clears the disk's suspect flag and returns the
    /// previous backend.
    ///
    /// This is the "new drive in the slot" operation behind background
    /// repair: a killed or crashed disk gets an empty replacement, the
    /// repair pipeline rebuilds its elements onto it, and readers never
    /// see the array change size.
    pub fn replace_disk(&self, d: usize, backend: Arc<dyn DiskBackend>) -> Arc<dyn DiskBackend> {
        let old = std::mem::replace(&mut *self.slots[d].lock(), backend);
        self.clear_suspect(d);
        old
    }

    /// Re-arm disk `d` after a fault, keeping its backend: clears the
    /// suspect flag. (Under the shared reactor there is no per-disk
    /// thread to respawn — a panicking backend no longer kills a
    /// worker — so this is the lightweight counterpart of
    /// [`Self::replace_disk`] for disks that are still usable.)
    pub fn restart_disk(&self, d: usize) {
        self.clear_suspect(d);
    }

    /// Report disk `d` as unresponsive (timed out, answered all-absent,
    /// or its backend panicked). Purely advisory: dispatch is unchanged,
    /// but failure detectors poll this set.
    pub fn mark_suspect(&self, d: usize) {
        self.suspects.lock().insert(d);
    }

    /// Withdraw a suspicion — the disk answered again.
    pub fn clear_suspect(&self, d: usize) {
        self.suspects.lock().remove(&d);
    }

    /// Disks currently under suspicion, ascending.
    pub fn suspects(&self) -> Vec<usize> {
        self.suspects.lock().iter().copied().collect()
    }

    /// The per-disk served-read tally board (elements + bytes per disk,
    /// cumulative since construction). Cheap to clone; snapshot it for
    /// a point-in-time load table.
    pub fn load_board(&self) -> &DiskBoard {
        &self.board
    }

    /// A hook that marks disk `d` suspect, for the reactor's panic path.
    fn suspect_hook(&self, d: usize) -> Box<dyn FnOnce() + Send + 'static> {
        let suspects = Arc::clone(&self.suspects);
        Box::new(move || {
            suspects.lock().insert(d);
        })
    }

    /// Submit one vectored read for disk `d` covering `(tags, offsets)`
    /// and deliver its [`DiskReply`] on `reply` when it completes —
    /// via the reactor pool for blocking backends, directly for
    /// completion-driven ones. Served elements are tallied on the load
    /// board at completion.
    fn dispatch_read(
        &self,
        d: usize,
        tags: Vec<usize>,
        offsets: Vec<u64>,
        reply: Sender<DiskReply>,
    ) {
        let backend = self.disk(d);
        let board = self.board.clone();
        let deliver = move |results: IoResults| {
            debug_assert_eq!(results.len(), tags.len());
            let mut served = 0u64;
            let mut served_bytes = 0u64;
            let items: Vec<(usize, Option<Vec<u8>>)> = tags
                .into_iter()
                .zip(results)
                .map(|(tag, bytes)| {
                    if let Some(b) = &bytes {
                        served += 1;
                        served_bytes += b.len() as u64;
                    }
                    (tag, bytes)
                })
                .collect();
            if served > 0 {
                board.record(d, served, served_bytes);
            }
            let _ = reply.send(DiskReply { disk: d, items });
        };
        if backend.submits_async() {
            // Completion-driven backend: submit from this thread, let
            // its own machinery complete the handle. Track it in the
            // engine gauges so in-flight covers both paths.
            let stats = self.reactor.stats();
            stats.note_submitted();
            stats.inflight_add(1);
            backend.submit_read_many(&offsets).on_complete(move |r| {
                stats.inflight_add(-1);
                stats.note_completed();
                deliver(r);
            });
        } else {
            let hook = self.suspect_hook(d);
            self.reactor
                .submit_read(backend, offsets, Some(hook))
                .on_complete(deliver);
        }
    }

    /// Write a batch of elements, waiting for all to land: one vectored
    /// write submission per touched disk, so engine traffic is O(disks),
    /// not O(elements). A panicking backend is marked suspect rather
    /// than panicking the caller — the lost elements simply read back
    /// as absent, the same failure surface as a failed disk.
    pub fn write_batch(&self, items: Vec<(Address, Vec<u8>)>) {
        let mut by_disk: HashMap<usize, Vec<(u64, Vec<u8>)>> = HashMap::new();
        for ((disk, offset), bytes) in items {
            by_disk.entry(disk).or_default().push((offset, bytes));
        }
        let handles: Vec<IoHandle> = by_disk
            .into_iter()
            .map(|(disk, items)| {
                self.reactor
                    .submit_write(self.disk(disk), items, Some(self.suspect_hook(disk)))
            })
            .collect();
        for handle in handles {
            let _ = handle.wait();
        }
    }

    /// Start a batched read: addresses are grouped by disk and **one**
    /// vectored read is submitted per touched disk. Per-disk replies
    /// stream out of the returned [`BatchRead`] as each submission
    /// completes, so consumers can overlap decode/copy-out with the
    /// slower disks' I/O.
    ///
    /// A panicking backend's submission completes immediately as
    /// all-`None` (and the disk is marked suspect) instead of panicking
    /// the caller.
    pub fn read_batch_streaming(&self, addrs: &[Address]) -> BatchRead {
        let (reply_tx, reply_rx) = channel::<DiskReply>();
        let mut by_disk: HashMap<usize, (Vec<usize>, Vec<u64>)> = HashMap::new();
        for (tag, &(disk, offset)) in addrs.iter().enumerate() {
            let entry = by_disk.entry(disk).or_default();
            entry.0.push(tag);
            entry.1.push(offset);
        }
        let jobs = by_disk.len();
        for (disk, (tags, offsets)) in by_disk {
            self.dispatch_read(disk, tags, offsets, reply_tx.clone());
        }
        BatchRead {
            rx: reply_rx,
            pending: jobs,
            jobs,
        }
    }

    /// Read a batch of addresses **in parallel** (each disk serves its
    /// own submissions concurrently with the others), returning results
    /// in request order. `None` entries are failed/absent elements.
    ///
    /// This is the collecting form of [`Self::read_batch_streaming`]:
    /// one vectored request per disk, results reassembled into request
    /// order.
    pub fn read_batch(&self, addrs: &[Address]) -> Vec<Option<Vec<u8>>> {
        let mut batch = self.read_batch_streaming(addrs);
        let mut out: Vec<Option<Vec<u8>>> = vec![None; addrs.len()];
        while let Some(reply) = batch.next_reply() {
            for (tag, bytes) in reply.items {
                out[tag] = bytes;
            }
        }
        out
    }

    /// The pre-batching read path: one single-element submission per
    /// address, one backend access per element. Kept as the measured
    /// baseline for the `read_path` microbench and as the reference
    /// side of the batched/per-element differential tests. Production
    /// reads go through [`Self::read_batch`].
    pub fn read_batch_per_element(&self, addrs: &[Address]) -> Vec<Option<Vec<u8>>> {
        let (reply_tx, reply_rx) = channel::<DiskReply>();
        for (tag, &(disk, offset)) in addrs.iter().enumerate() {
            self.dispatch_read(disk, vec![tag], vec![offset], reply_tx.clone());
        }
        drop(reply_tx);
        let mut out: Vec<Option<Vec<u8>>> = vec![None; addrs.len()];
        for _ in 0..addrs.len() {
            match reply_rx.recv() {
                Ok(reply) => {
                    for (tag, bytes) in reply.items {
                        out[tag] = bytes;
                    }
                }
                Err(_) => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn memdisk_write_read() {
        let d = MemDisk::new();
        assert!(d.is_empty());
        d.write(5, vec![1, 2, 3]);
        assert_eq!(d.read(5), Some(vec![1, 2, 3]));
        assert_eq!(d.read(6), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn memdisk_failure_and_heal() {
        let d = MemDisk::new();
        d.write(0, vec![7]);
        d.fail();
        assert_eq!(d.read(0), None);
        d.heal();
        assert_eq!(d.read(0), Some(vec![7]));
        d.wipe();
        assert_eq!(d.read(0), None);
    }

    #[test]
    fn batch_roundtrip_preserves_order() {
        let a = ThreadedArray::new(4);
        let items: Vec<(Address, Vec<u8>)> = (0..16u64)
            .map(|i| (((i % 4) as usize, i / 4), vec![i as u8; 3]))
            .collect();
        a.write_batch(items.clone());
        let addrs: Vec<Address> = items.iter().map(|(a, _)| *a).collect();
        let got = a.read_batch(&addrs);
        for (g, (_, want)) in got.iter().zip(&items) {
            assert_eq!(g.as_ref(), Some(want));
        }
    }

    #[test]
    fn failed_disk_returns_none_others_fine() {
        let a = ThreadedArray::new(3);
        a.write_batch(vec![
            ((0, 0), vec![1]),
            ((1, 0), vec![2]),
            ((2, 0), vec![3]),
        ]);
        a.disk(1).fail();
        let got = a.read_batch(&[(0, 0), (1, 0), (2, 0)]);
        assert_eq!(got[0], Some(vec![1]));
        assert_eq!(got[1], None);
        assert_eq!(got[2], Some(vec![3]));
    }

    #[test]
    fn parallel_reads_overlap_across_disks() {
        // 4 disks × 1 element each at 20 ms latency must take well under
        // the 80 ms a serial scan would: demonstrates actual parallelism.
        let a = ThreadedArray::with_latency(4, Duration::from_millis(20));
        a.write_batch((0..4).map(|d| ((d, 0u64), vec![d as u8])).collect());
        let t0 = Instant::now();
        let got = a.read_batch(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let elapsed = t0.elapsed();
        assert!(got.iter().all(|g| g.is_some()));
        assert!(
            elapsed < Duration::from_millis(60),
            "reads did not overlap: {elapsed:?}"
        );
    }

    #[test]
    fn same_disk_reads_serialise() {
        // 3 elements on ONE disk at 20 ms each: must take at least 60 ms —
        // the most-loaded-disk bottleneck is physically real here.
        let a = ThreadedArray::with_latency(2, Duration::from_millis(20));
        a.write_batch((0..3u64).map(|o| ((0usize, o), vec![o as u8])).collect());
        let t0 = Instant::now();
        let got = a.read_batch(&[(0, 0), (0, 1), (0, 2)]);
        let elapsed = t0.elapsed();
        assert!(got.iter().all(|g| g.is_some()));
        assert!(
            elapsed >= Duration::from_millis(55),
            "same-disk reads overlapped impossibly: {elapsed:?}"
        );
    }

    #[test]
    fn empty_batches_are_noops() {
        let a = ThreadedArray::new(2);
        a.write_batch(vec![]);
        assert!(a.read_batch(&[]).is_empty());
    }

    #[test]
    fn batched_and_per_element_paths_agree() {
        // Same array, same addresses — including absent offsets and a
        // failed disk — must answer identically through both paths.
        let a = ThreadedArray::new(4);
        let items: Vec<(Address, Vec<u8>)> = (0..32u64)
            .map(|i| (((i % 4) as usize, i / 4), vec![i as u8; 5]))
            .collect();
        a.write_batch(items.clone());
        a.disk(2).fail();
        let mut addrs: Vec<Address> = items.iter().map(|(a, _)| *a).collect();
        addrs.push((0, 999)); // absent offset
        addrs.push((3, 777)); // absent offset
        assert_eq!(a.read_batch(&addrs), a.read_batch_per_element(&addrs));
    }

    #[test]
    fn one_job_per_touched_disk() {
        let a = ThreadedArray::new(4);
        a.write_batch(
            (0..12u64)
                .map(|i| (((i % 3) as usize, i / 3), vec![1]))
                .collect(),
        );
        // 12 elements over disks {0,1,2} → exactly 3 per-disk jobs.
        let addrs: Vec<Address> = (0..12u64).map(|i| ((i % 3) as usize, i / 3)).collect();
        let mut batch = a.read_batch_streaming(&addrs);
        assert_eq!(batch.jobs(), 3);
        let mut replies = 0;
        let mut elems = 0;
        while let Some(reply) = batch.next_reply() {
            replies += 1;
            elems += reply.items.len();
            assert!(reply.disk < 3);
        }
        assert_eq!(replies, 3);
        assert_eq!(elems, 12);
    }

    /// A backend whose reads panic — the harshest failure case the
    /// batch paths must survive without panicking the caller.
    #[derive(Debug)]
    struct PanicDisk;
    impl DiskBackend for PanicDisk {
        fn submit_read_many(&self, _offsets: &[u64]) -> IoHandle {
            panic!("injected backend panic");
        }
        fn write(&self, _offset: u64, _bytes: Vec<u8>) {}
        fn fail(&self) {}
        fn heal(&self) {}
        fn wipe(&self) {}
        fn len(&self) -> usize {
            0
        }
    }

    #[test]
    fn panicking_backend_surfaces_as_none_not_panic() {
        let healthy = Arc::new(MemDisk::new());
        healthy.write(0, vec![9]);
        let a = ThreadedArray::from_backends(vec![
            healthy as Arc<dyn DiskBackend>,
            Arc::new(PanicDisk) as Arc<dyn DiskBackend>,
        ]);
        // Disk 1's backend panics mid-batch; the reactor catches it and
        // completes the submission as all-None — nothing panics on our
        // side and the pool worker survives to serve later batches.
        let got = a.read_batch(&[(0, 0), (1, 0)]);
        assert_eq!(got[1], None);
        let got = a.read_batch(&[(0, 0), (1, 0), (1, 7)]);
        assert_eq!(got[0], Some(vec![9]));
        assert_eq!(got[1], None);
        assert_eq!(got[2], None);
        let got = a.read_batch_per_element(&[(0, 0), (1, 0)]);
        assert_eq!(got[0], Some(vec![9]));
        assert_eq!(got[1], None);
        a.write_batch(vec![((0, 1), vec![4]), ((1, 1), vec![5])]);
        assert_eq!(a.read_batch(&[(0, 1)])[0], Some(vec![4]));
    }

    #[test]
    fn memdisk_read_many_matches_per_element_loop() {
        let d = MemDisk::new();
        for o in 0..8u64 {
            d.write(o, vec![o as u8; 4]);
        }
        let offsets = [3u64, 0, 100, 7, 3];
        let want: Vec<Option<Vec<u8>>> = offsets.iter().map(|&o| d.read(o)).collect();
        assert_eq!(d.read_many(&offsets), want);
        d.fail();
        assert_eq!(d.read_many(&offsets), vec![None; 5]);
    }

    #[test]
    fn panicking_backend_is_marked_suspect() {
        let a = ThreadedArray::from_backends(vec![
            Arc::new(MemDisk::new()) as Arc<dyn DiskBackend>,
            Arc::new(PanicDisk) as Arc<dyn DiskBackend>,
        ]);
        assert!(a.suspects().is_empty());
        // The panic hook fires before the submission completes, so the
        // suspect is visible as soon as the read returns.
        let _ = a.read_batch(&[(1, 0)]);
        assert_eq!(a.suspects(), vec![1]);
        a.clear_suspect(1);
        assert!(a.suspects().is_empty());
    }

    #[test]
    fn replace_disk_revives_a_panicking_slot() {
        use crate::fault::FaultyDisk;
        let healthy = Arc::new(MemDisk::new());
        healthy.write(0, vec![3]);
        let faulty = FaultyDisk::wrap(Arc::new(MemDisk::new()));
        faulty.write(0, vec![9]);
        let a = ThreadedArray::from_backends(vec![
            healthy as Arc<dyn DiskBackend>,
            Arc::new(PanicDisk) as Arc<dyn DiskBackend>,
        ]);
        let _ = a.read_batch(&[(1, 0)]); // panics → all-None + suspect
        assert_eq!(a.suspects(), vec![1]);
        // Re-register a usable backend in slot 1; the array serves it.
        a.replace_disk(1, faulty);
        assert!(a.suspects().is_empty());
        let got = a.read_batch(&[(0, 0), (1, 0)]);
        assert_eq!(got[0], Some(vec![3]));
        assert_eq!(got[1], Some(vec![9]));
    }

    #[test]
    fn replace_disk_swaps_backend_and_returns_old() {
        let a = ThreadedArray::new(2);
        a.write_batch(vec![((0, 0), vec![1]), ((1, 0), vec![2])]);
        let fresh = Arc::new(MemDisk::new());
        fresh.write(0, vec![42]);
        let old = a.replace_disk(1, fresh as Arc<dyn DiskBackend>);
        assert_eq!(old.read(0), Some(vec![2]), "old backend handed back");
        assert_eq!(a.read_batch(&[(1, 0)])[0], Some(vec![42]));
        // Writes land on the replacement.
        a.write_batch(vec![((1, 1), vec![7])]);
        assert_eq!(a.read_batch(&[(1, 1)])[0], Some(vec![7]));
    }

    #[test]
    fn restart_disk_keeps_backend_contents() {
        let a = ThreadedArray::new(2);
        a.write_batch(vec![((0, 0), vec![5])]);
        a.restart_disk(0);
        assert_eq!(a.read_batch(&[(0, 0)])[0], Some(vec![5]));
    }

    #[test]
    fn faulty_disk_kill_mid_batch_reads_as_absent() {
        use crate::fault::{FaultKind, FaultyDisk};
        let inner = Arc::new(MemDisk::new());
        let faulty = FaultyDisk::wrap(inner);
        let a = ThreadedArray::from_backends(vec![
            Arc::new(MemDisk::new()) as Arc<dyn DiskBackend>,
            Arc::clone(&faulty) as Arc<dyn DiskBackend>,
        ]);
        a.write_batch(vec![((0, 0), vec![1]), ((1, 0), vec![2])]);
        assert_eq!(a.read_batch(&[(1, 0)])[0], Some(vec![2]));
        faulty.arm(FaultKind::Kill, 0);
        assert_eq!(a.read_batch(&[(1, 0)])[0], None);
        assert_eq!(a.read_batch(&[(0, 0)])[0], Some(vec![1]));
    }

    #[test]
    fn load_board_tallies_served_reads_per_disk() {
        let a = ThreadedArray::new(3);
        a.write_batch(vec![
            ((0, 0), vec![1, 1]),
            ((0, 1), vec![2, 2]),
            ((1, 0), vec![3, 3]),
        ]);
        a.read_batch(&[(0, 0), (0, 1), (1, 0), (2, 0)]); // (2,0) misses
        let s = a.load_board().snapshot();
        assert_eq!(s.elements, vec![2, 1, 0]); // misses are not served
        assert_eq!(s.bytes, vec![4, 2, 0]);
        a.read_batch(&[(1, 0)]);
        assert_eq!(a.load_board().snapshot().elements, vec![2, 2, 0]);
    }

    #[test]
    fn io_stats_track_submissions_and_completions() {
        let a = ThreadedArray::new(2);
        a.write_batch(vec![((0, 0), vec![1]), ((1, 0), vec![2])]);
        a.read_batch(&[(0, 0), (1, 0)]);
        let snap = a.io_stats().snapshot();
        // 2 write submissions + 2 read submissions, all completed.
        assert_eq!(snap.submitted, 4);
        assert_eq!(snap.completed, 4);
        assert_eq!((snap.queue_depth, snap.inflight), (0, 0));
        assert_eq!(snap.panics, 0);
    }
}

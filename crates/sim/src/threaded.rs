//! A real concurrent disk-array engine.
//!
//! [`ArraySim`](crate::ArraySim) *models* time; [`ThreadedArray`] actually
//! runs the parallel I/O structure of an erasure-coded read: one worker
//! thread per disk, jobs fanned out over channels, results collected —
//! the code path a storage frontend would execute, here over in-memory
//! disks ([`MemDisk`]) with optional injected per-access latency so the
//! bottleneck behaviour is physically observable in examples and tests.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ecfrm_obs::DiskBoard;
use ecfrm_util::Mutex;

use crate::metrics::NetStats;

/// Address of one element on the array: `(disk, offset)`.
pub type Address = (usize, u64);

/// What the array needs from a disk: element-granular read/write plus
/// failure injection. Implemented by [`MemDisk`] (in-memory, optional
/// simulated latency) and [`FileDisk`](crate::file_disk::FileDisk)
/// (real files).
pub trait DiskBackend: Send + Sync + std::fmt::Debug {
    /// Fetch the element at `offset`; `None` when absent or failed.
    fn read(&self, offset: u64) -> Option<Vec<u8>>;
    /// Fetch several elements in one request, returned in input order
    /// (`None` = absent or failed, per element).
    ///
    /// This is the vectored entry point of the batched read path: one
    /// call per disk per array-level read. Backends override it to do
    /// the whole batch in one pass — a single lock (in-memory), one
    /// seek per sequential run (files), or one RPC round trip (remote
    /// shards). The default serves each offset through [`Self::read`].
    fn read_many(&self, offsets: &[u64]) -> Vec<Option<Vec<u8>>> {
        offsets.iter().map(|&o| self.read(o)).collect()
    }
    /// Store an element.
    fn write(&self, offset: u64, bytes: Vec<u8>);
    /// Mark failed: reads return `None` until healed.
    fn fail(&self);
    /// Clear the failure flag.
    fn heal(&self);
    /// Permanently erase all contents.
    fn wipe(&self);
    /// Number of stored elements.
    fn len(&self) -> usize;
    /// True when no elements are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Network transport statistics, when this backend speaks to a
    /// remote shard (see `ecfrm-net`). Local backends return `None`.
    fn net_stats(&self) -> Option<NetStats> {
        None
    }
}

/// An in-memory "disk": a map from element offset to element bytes, with
/// optional simulated per-access latency and a failure switch.
#[derive(Debug)]
pub struct MemDisk {
    elements: Mutex<HashMap<u64, Vec<u8>>>,
    latency: Duration,
    failed: AtomicBool,
}

impl MemDisk {
    /// An empty disk with no simulated latency.
    pub fn new() -> Self {
        Self::with_latency(Duration::ZERO)
    }

    /// An empty disk that sleeps `latency` on every read.
    pub fn with_latency(latency: Duration) -> Self {
        Self {
            elements: Mutex::new(HashMap::new()),
            latency,
            failed: AtomicBool::new(false),
        }
    }
}

impl DiskBackend for MemDisk {
    /// Fetch an element; `None` if absent or the disk is failed. Sleeps
    /// the configured latency on every (attempted) access.
    fn read(&self, offset: u64) -> Option<Vec<u8>> {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        if self.failed.load(Ordering::Acquire) {
            return None;
        }
        self.elements.lock().get(&offset).cloned()
    }

    /// Serve a whole batch under one map lock. The simulated latency
    /// stays *per element* (it models the disk's per-access service
    /// time, which batching does not remove), but is paid as one sleep
    /// so a large batch costs one scheduler round trip.
    fn read_many(&self, offsets: &[u64]) -> Vec<Option<Vec<u8>>> {
        if !self.latency.is_zero() && !offsets.is_empty() {
            std::thread::sleep(self.latency * offsets.len() as u32);
        }
        if self.failed.load(Ordering::Acquire) {
            return vec![None; offsets.len()];
        }
        let elements = self.elements.lock();
        offsets.iter().map(|o| elements.get(o).cloned()).collect()
    }

    fn write(&self, offset: u64, bytes: Vec<u8>) {
        self.elements.lock().insert(offset, bytes);
    }

    /// Mark the disk failed: reads return `None` until healed. Contents
    /// are preserved (the paper's dominant failure class is transient —
    /// §II-D: >90% of data-centre failures lose no data).
    fn fail(&self) {
        self.failed.store(true, Ordering::Release);
    }

    fn heal(&self) {
        self.failed.store(false, Ordering::Release);
    }

    /// Permanently erase all contents (a real disk loss, before rebuild).
    fn wipe(&self) {
        self.elements.lock().clear();
    }

    fn len(&self) -> usize {
        self.elements.lock().len()
    }
}

impl Default for MemDisk {
    fn default() -> Self {
        Self::new()
    }
}

enum Job {
    /// Per-element read — the pre-batching baseline, kept for the
    /// `read_path` microbench and differential tests.
    Read {
        tag: usize,
        offset: u64,
        reply: Sender<(usize, Option<Vec<u8>>)>,
    },
    /// One vectored read covering every element this disk serves for
    /// one array-level batch.
    ReadMany {
        tags: Vec<usize>,
        offsets: Vec<u64>,
        reply: Sender<DiskReply>,
    },
    /// One vectored write covering every element this disk stores for
    /// one array-level batch.
    WriteMany {
        items: Vec<(u64, Vec<u8>)>,
        done: Sender<()>,
    },
    Shutdown,
}

/// One disk's answer to its slice of a batched read: the caller's
/// request indices paired with the served bytes (`None` = absent or
/// failed element).
#[derive(Debug)]
pub struct DiskReply {
    /// Which disk answered.
    pub disk: usize,
    /// `(index into the submitted address slice, bytes)` pairs, in the
    /// order the addresses were submitted for this disk.
    pub items: Vec<(usize, Option<Vec<u8>>)>,
}

/// An in-flight batched read: per-disk replies stream out of
/// [`Self::next_reply`] as each disk finishes its vectored request, so
/// callers can start consuming (copying out, decoding) while slower
/// disks are still working.
///
/// Dropping a `BatchRead` abandons any outstanding replies safely.
#[derive(Debug)]
pub struct BatchRead {
    rx: std::sync::mpsc::Receiver<DiskReply>,
    pending: usize,
    jobs: usize,
}

impl BatchRead {
    /// Number of per-disk jobs this batch dispatched — the array-level
    /// request count (one vectored request per touched disk). For
    /// remote backends this is the logical RPC count of the batch.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Next per-disk reply, blocking until one arrives; `None` once
    /// every dispatched disk has answered. A worker that died mid-batch
    /// (panicking backend) ends the stream early — the caller sees its
    /// elements simply never arrive and treats them as absent.
    pub fn next_reply(&mut self) -> Option<DiskReply> {
        if self.pending == 0 {
            return None;
        }
        match self.rx.recv() {
            Ok(reply) => {
                self.pending -= 1;
                Some(reply)
            }
            Err(_) => {
                self.pending = 0;
                None
            }
        }
    }
}

/// One disk's live state: its backend and the channel to its worker.
/// Behind a per-slot [`Mutex`] so a disk can be *re-registered* — its
/// backend replaced or its dead worker respawned — through a shared
/// reference while other disks keep serving.
struct DiskSlot {
    disk: Arc<dyn DiskBackend>,
    sender: Sender<Job>,
}

/// One worker thread per disk; jobs dispatched over channels.
///
/// Every served element read is tallied on a per-disk [`DiskBoard`]
/// (count + bytes), so the paper's "most-loaded disk is the bottleneck"
/// is directly observable per layout via [`ThreadedArray::load_board`].
///
/// The array also keeps a *suspect set*: disks whose worker died or
/// that a reader reported as unresponsive
/// ([`ThreadedArray::mark_suspect`]). The set is pure reporting — it
/// never changes how jobs are dispatched — and feeds failure detectors
/// such as the store's background `RepairManager`, which probe suspects
/// and either clear them ([`ThreadedArray::clear_suspect`]) or promote
/// them to failed and start reconstruction.
pub struct ThreadedArray {
    slots: Vec<Mutex<DiskSlot>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    board: DiskBoard,
    suspects: Mutex<BTreeSet<usize>>,
}

impl std::fmt::Debug for ThreadedArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadedArray({} disks)", self.slots.len())
    }
}

impl ThreadedArray {
    /// Spawn an array of `n` latency-free disks.
    pub fn new(n: usize) -> Self {
        Self::with_latency(n, Duration::ZERO)
    }

    /// Spawn an array of `n` disks that each sleep `latency` per read.
    pub fn with_latency(n: usize, latency: Duration) -> Self {
        let disks: Vec<Arc<dyn DiskBackend>> = (0..n)
            .map(|_| Arc::new(MemDisk::with_latency(latency)) as Arc<dyn DiskBackend>)
            .collect();
        Self::from_backends(disks)
    }

    /// Spawn workers over caller-supplied disk backends (in-memory,
    /// file-backed, or custom).
    ///
    /// # Panics
    /// Panics if `disks` is empty.
    pub fn from_backends(disks: Vec<Arc<dyn DiskBackend>>) -> Self {
        assert!(!disks.is_empty(), "array needs at least one disk");
        let n = disks.len();
        let board = DiskBoard::new(n);
        let mut slots = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for (d, disk) in disks.into_iter().enumerate() {
            let (sender, handle) = Self::spawn_worker(d, Arc::clone(&disk), board.clone());
            slots.push(Mutex::new(DiskSlot { disk, sender }));
            workers.push(handle);
        }
        Self {
            slots,
            workers: Mutex::new(workers),
            board,
            suspects: Mutex::new(BTreeSet::new()),
        }
    }

    /// Spawn one disk's worker loop over `disk`, returning its job
    /// channel and join handle.
    fn spawn_worker(
        d: usize,
        disk: Arc<dyn DiskBackend>,
        board: DiskBoard,
    ) -> (Sender<Job>, JoinHandle<()>) {
        let (tx, rx) = channel::<Job>();
        let handle = std::thread::spawn(move || {
            while let Ok(job) = rx.recv() {
                match job {
                    Job::Read { tag, offset, reply } => {
                        let bytes = disk.read(offset);
                        if let Some(b) = &bytes {
                            board.record(d, 1, b.len() as u64);
                        }
                        let _ = reply.send((tag, bytes));
                    }
                    Job::ReadMany {
                        tags,
                        offsets,
                        reply,
                    } => {
                        let results = disk.read_many(&offsets);
                        debug_assert_eq!(results.len(), tags.len());
                        let mut served = 0u64;
                        let mut served_bytes = 0u64;
                        let items: Vec<(usize, Option<Vec<u8>>)> = tags
                            .into_iter()
                            .zip(results)
                            .map(|(tag, bytes)| {
                                if let Some(b) = &bytes {
                                    served += 1;
                                    served_bytes += b.len() as u64;
                                }
                                (tag, bytes)
                            })
                            .collect();
                        if served > 0 {
                            board.record(d, served, served_bytes);
                        }
                        let _ = reply.send(DiskReply { disk: d, items });
                    }
                    Job::WriteMany { items, done } => {
                        for (offset, bytes) in items {
                            disk.write(offset, bytes);
                        }
                        let _ = done.send(());
                    }
                    Job::Shutdown => break,
                }
            }
        });
        (tx, handle)
    }

    /// Number of disks.
    pub fn n_disks(&self) -> usize {
        self.slots.len()
    }

    /// Handle to a disk's current backend (for failure injection and
    /// inspection). A clone — the slot itself may be re-registered
    /// concurrently, after which this handle refers to the *old*
    /// backend.
    pub fn disk(&self, d: usize) -> Arc<dyn DiskBackend> {
        Arc::clone(&self.slots[d].lock().disk)
    }

    /// A clone of disk `d`'s job channel.
    fn sender(&self, d: usize) -> Sender<Job> {
        self.slots[d].lock().sender.clone()
    }

    /// Re-register disk `d` with a replacement backend: the old worker
    /// is shut down, a fresh worker is spawned over `backend`, and the
    /// disk's suspect flag is cleared. Returns the previous backend.
    ///
    /// This is the "new drive in the slot" operation behind background
    /// repair: a killed or crashed disk gets an empty replacement, the
    /// repair pipeline rebuilds its elements onto it, and readers never
    /// see the array change size.
    pub fn replace_disk(&self, d: usize, backend: Arc<dyn DiskBackend>) -> Arc<dyn DiskBackend> {
        let (sender, handle) = Self::spawn_worker(d, Arc::clone(&backend), self.board.clone());
        let old = {
            let mut slot = self.slots[d].lock();
            let _ = slot.sender.send(Job::Shutdown);
            std::mem::replace(
                &mut *slot,
                DiskSlot {
                    disk: backend,
                    sender,
                },
            )
        };
        self.workers.lock().push(handle);
        self.clear_suspect(d);
        old.disk
    }

    /// Respawn disk `d`'s worker thread over its existing backend — the
    /// recovery path for a worker that died (panicking backend) while
    /// the disk itself is still usable. Clears the suspect flag.
    pub fn restart_disk(&self, d: usize) {
        let backend = Arc::clone(&self.slots[d].lock().disk);
        let (sender, handle) = Self::spawn_worker(d, backend, self.board.clone());
        {
            let mut slot = self.slots[d].lock();
            let _ = slot.sender.send(Job::Shutdown);
            slot.sender = sender;
        }
        self.workers.lock().push(handle);
        self.clear_suspect(d);
    }

    /// Report disk `d` as unresponsive (timed out, answered all-absent,
    /// or its worker died). Purely advisory: dispatch is unchanged, but
    /// failure detectors poll this set.
    pub fn mark_suspect(&self, d: usize) {
        self.suspects.lock().insert(d);
    }

    /// Withdraw a suspicion — the disk answered again.
    pub fn clear_suspect(&self, d: usize) {
        self.suspects.lock().remove(&d);
    }

    /// Disks currently under suspicion, ascending.
    pub fn suspects(&self) -> Vec<usize> {
        self.suspects.lock().iter().copied().collect()
    }

    /// The per-disk served-read tally board (elements + bytes per disk,
    /// cumulative since construction). Cheap to clone; snapshot it for
    /// a point-in-time load table.
    pub fn load_board(&self) -> &DiskBoard {
        &self.board
    }

    /// Write a batch of elements, waiting for all to land: one vectored
    /// `Job::WriteMany` per touched disk, so channel traffic is
    /// O(disks), not O(elements). A dead worker (its backend panicked)
    /// is skipped rather than panicking the caller — the lost elements
    /// simply read back as absent, the same failure surface as a failed
    /// disk.
    pub fn write_batch(&self, items: Vec<(Address, Vec<u8>)>) {
        let (done_tx, done_rx) = channel();
        let mut by_disk: HashMap<usize, Vec<(u64, Vec<u8>)>> = HashMap::new();
        for ((disk, offset), bytes) in items {
            by_disk.entry(disk).or_default().push((offset, bytes));
        }
        let mut dispatched = 0usize;
        for (disk, items) in by_disk {
            if self
                .sender(disk)
                .send(Job::WriteMany {
                    items,
                    done: done_tx.clone(),
                })
                .is_ok()
            {
                dispatched += 1;
            } else {
                self.mark_suspect(disk);
            }
        }
        drop(done_tx);
        for _ in 0..dispatched {
            if done_rx.recv().is_err() {
                break; // a worker died mid-write; nothing left to wait for
            }
        }
    }

    /// Start a batched read: addresses are grouped by disk and **one**
    /// vectored `Job::ReadMany` is enqueued per touched disk (the
    /// reply [`Sender`] is cloned once per disk, not once per element).
    /// Per-disk replies stream out of the returned [`BatchRead`] as
    /// each disk finishes, so consumers can overlap decode/copy-out
    /// with the slower disks' I/O.
    ///
    /// A dead worker (backend panicked earlier) answers immediately
    /// with all-`None` items instead of panicking the caller.
    pub fn read_batch_streaming(&self, addrs: &[Address]) -> BatchRead {
        let (reply_tx, reply_rx) = channel::<DiskReply>();
        let mut by_disk: HashMap<usize, (Vec<usize>, Vec<u64>)> = HashMap::new();
        for (tag, &(disk, offset)) in addrs.iter().enumerate() {
            let entry = by_disk.entry(disk).or_default();
            entry.0.push(tag);
            entry.1.push(offset);
        }
        let jobs = by_disk.len();
        for (disk, (tags, offsets)) in by_disk {
            let job = Job::ReadMany {
                tags,
                offsets,
                reply: reply_tx.clone(),
            };
            if let Err(send_err) = self.sender(disk).send(job) {
                // Worker gone: synthesise the all-absent reply ourselves
                // and report the disk for the failure detector.
                self.mark_suspect(disk);
                let Job::ReadMany { tags, .. } = send_err.0 else {
                    unreachable!("send returns the job it failed to send")
                };
                let _ = reply_tx.send(DiskReply {
                    disk,
                    items: tags.into_iter().map(|t| (t, None)).collect(),
                });
            }
        }
        BatchRead {
            rx: reply_rx,
            pending: jobs,
            jobs,
        }
    }

    /// Read a batch of addresses **in parallel** (each disk serves its
    /// own queue concurrently with the others), returning results in
    /// request order. `None` entries are failed/absent elements.
    ///
    /// This is the collecting form of [`Self::read_batch_streaming`]:
    /// one vectored request per disk, results reassembled into request
    /// order.
    pub fn read_batch(&self, addrs: &[Address]) -> Vec<Option<Vec<u8>>> {
        let mut batch = self.read_batch_streaming(addrs);
        let mut out: Vec<Option<Vec<u8>>> = vec![None; addrs.len()];
        while let Some(reply) = batch.next_reply() {
            for (tag, bytes) in reply.items {
                out[tag] = bytes;
            }
        }
        out
    }

    /// The pre-batching read path: one `Job::Read` per element, one
    /// reply-channel clone per element, one backend access per element.
    /// Kept as the measured baseline for the `read_path` microbench and
    /// as the reference side of the batched/per-element differential
    /// tests. Production reads go through [`Self::read_batch`].
    pub fn read_batch_per_element(&self, addrs: &[Address]) -> Vec<Option<Vec<u8>>> {
        let (reply_tx, reply_rx) = channel();
        let mut dispatched = 0usize;
        for (tag, &(disk, offset)) in addrs.iter().enumerate() {
            if self
                .sender(disk)
                .send(Job::Read {
                    tag,
                    offset,
                    reply: reply_tx.clone(),
                })
                .is_ok()
            {
                dispatched += 1;
            } else {
                self.mark_suspect(disk);
            }
        }
        drop(reply_tx);
        let mut out: Vec<Option<Vec<u8>>> = vec![None; addrs.len()];
        for _ in 0..dispatched {
            match reply_rx.recv() {
                Ok((tag, bytes)) => out[tag] = bytes,
                Err(_) => break, // worker died mid-batch: leave the rest absent
            }
        }
        out
    }
}

impl Drop for ThreadedArray {
    fn drop(&mut self) {
        for slot in &self.slots {
            let _ = slot.lock().sender.send(Job::Shutdown);
        }
        for w in self.workers.lock().drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn memdisk_write_read() {
        let d = MemDisk::new();
        assert!(d.is_empty());
        d.write(5, vec![1, 2, 3]);
        assert_eq!(d.read(5), Some(vec![1, 2, 3]));
        assert_eq!(d.read(6), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn memdisk_failure_and_heal() {
        let d = MemDisk::new();
        d.write(0, vec![7]);
        d.fail();
        assert_eq!(d.read(0), None);
        d.heal();
        assert_eq!(d.read(0), Some(vec![7]));
        d.wipe();
        assert_eq!(d.read(0), None);
    }

    #[test]
    fn batch_roundtrip_preserves_order() {
        let a = ThreadedArray::new(4);
        let items: Vec<(Address, Vec<u8>)> = (0..16u64)
            .map(|i| (((i % 4) as usize, i / 4), vec![i as u8; 3]))
            .collect();
        a.write_batch(items.clone());
        let addrs: Vec<Address> = items.iter().map(|(a, _)| *a).collect();
        let got = a.read_batch(&addrs);
        for (g, (_, want)) in got.iter().zip(&items) {
            assert_eq!(g.as_ref(), Some(want));
        }
    }

    #[test]
    fn failed_disk_returns_none_others_fine() {
        let a = ThreadedArray::new(3);
        a.write_batch(vec![
            ((0, 0), vec![1]),
            ((1, 0), vec![2]),
            ((2, 0), vec![3]),
        ]);
        a.disk(1).fail();
        let got = a.read_batch(&[(0, 0), (1, 0), (2, 0)]);
        assert_eq!(got[0], Some(vec![1]));
        assert_eq!(got[1], None);
        assert_eq!(got[2], Some(vec![3]));
    }

    #[test]
    fn parallel_reads_overlap_across_disks() {
        // 4 disks × 1 element each at 20 ms latency must take well under
        // the 80 ms a serial scan would: demonstrates actual parallelism.
        let a = ThreadedArray::with_latency(4, Duration::from_millis(20));
        a.write_batch((0..4).map(|d| ((d, 0u64), vec![d as u8])).collect());
        let t0 = Instant::now();
        let got = a.read_batch(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let elapsed = t0.elapsed();
        assert!(got.iter().all(|g| g.is_some()));
        assert!(
            elapsed < Duration::from_millis(60),
            "reads did not overlap: {elapsed:?}"
        );
    }

    #[test]
    fn same_disk_reads_serialise() {
        // 3 elements on ONE disk at 20 ms each: must take at least 60 ms —
        // the most-loaded-disk bottleneck is physically real here.
        let a = ThreadedArray::with_latency(2, Duration::from_millis(20));
        a.write_batch((0..3u64).map(|o| ((0usize, o), vec![o as u8])).collect());
        let t0 = Instant::now();
        let got = a.read_batch(&[(0, 0), (0, 1), (0, 2)]);
        let elapsed = t0.elapsed();
        assert!(got.iter().all(|g| g.is_some()));
        assert!(
            elapsed >= Duration::from_millis(55),
            "same-disk reads overlapped impossibly: {elapsed:?}"
        );
    }

    #[test]
    fn empty_batches_are_noops() {
        let a = ThreadedArray::new(2);
        a.write_batch(vec![]);
        assert!(a.read_batch(&[]).is_empty());
    }

    #[test]
    fn batched_and_per_element_paths_agree() {
        // Same array, same addresses — including absent offsets and a
        // failed disk — must answer identically through both paths.
        let a = ThreadedArray::new(4);
        let items: Vec<(Address, Vec<u8>)> = (0..32u64)
            .map(|i| (((i % 4) as usize, i / 4), vec![i as u8; 5]))
            .collect();
        a.write_batch(items.clone());
        a.disk(2).fail();
        let mut addrs: Vec<Address> = items.iter().map(|(a, _)| *a).collect();
        addrs.push((0, 999)); // absent offset
        addrs.push((3, 777)); // absent offset
        assert_eq!(a.read_batch(&addrs), a.read_batch_per_element(&addrs));
    }

    #[test]
    fn one_job_per_touched_disk() {
        let a = ThreadedArray::new(4);
        a.write_batch(
            (0..12u64)
                .map(|i| (((i % 3) as usize, i / 3), vec![1]))
                .collect(),
        );
        // 12 elements over disks {0,1,2} → exactly 3 per-disk jobs.
        let addrs: Vec<Address> = (0..12u64).map(|i| ((i % 3) as usize, i / 3)).collect();
        let mut batch = a.read_batch_streaming(&addrs);
        assert_eq!(batch.jobs(), 3);
        let mut replies = 0;
        let mut elems = 0;
        while let Some(reply) = batch.next_reply() {
            replies += 1;
            elems += reply.items.len();
            assert!(reply.disk < 3);
        }
        assert_eq!(replies, 3);
        assert_eq!(elems, 12);
    }

    /// A backend whose reads panic, killing its worker thread — the
    /// harshest "dead worker" case the batch paths must survive.
    #[derive(Debug)]
    struct PanicDisk;
    impl DiskBackend for PanicDisk {
        fn read(&self, _offset: u64) -> Option<Vec<u8>> {
            panic!("injected backend panic");
        }
        fn write(&self, _offset: u64, _bytes: Vec<u8>) {}
        fn fail(&self) {}
        fn heal(&self) {}
        fn wipe(&self) {}
        fn len(&self) -> usize {
            0
        }
    }

    #[test]
    fn dead_worker_surfaces_as_none_not_panic() {
        let healthy = Arc::new(MemDisk::new());
        healthy.write(0, vec![9]);
        let a = ThreadedArray::from_backends(vec![
            healthy as Arc<dyn DiskBackend>,
            Arc::new(PanicDisk) as Arc<dyn DiskBackend>,
        ]);
        // First read kills disk 1's worker mid-batch; healthy disk may or
        // may not have answered first, but nothing panics on our side.
        let got = a.read_batch(&[(0, 0), (1, 0)]);
        assert_eq!(got[1], None);
        // Worker 1 is now dead (channel disconnected). Subsequent batched
        // reads and writes must still succeed without panicking, with the
        // dead disk's elements absent.
        let got = a.read_batch(&[(0, 0), (1, 0), (1, 7)]);
        assert_eq!(got[0], Some(vec![9]));
        assert_eq!(got[1], None);
        assert_eq!(got[2], None);
        let got = a.read_batch_per_element(&[(0, 0), (1, 0)]);
        assert_eq!(got[0], Some(vec![9]));
        assert_eq!(got[1], None);
        a.write_batch(vec![((0, 1), vec![4]), ((1, 1), vec![5])]);
        assert_eq!(a.read_batch(&[(0, 1)])[0], Some(vec![4]));
    }

    #[test]
    fn memdisk_read_many_matches_per_element_loop() {
        let d = MemDisk::new();
        for o in 0..8u64 {
            d.write(o, vec![o as u8; 4]);
        }
        let offsets = [3u64, 0, 100, 7, 3];
        let want: Vec<Option<Vec<u8>>> = offsets.iter().map(|&o| d.read(o)).collect();
        assert_eq!(d.read_many(&offsets), want);
        d.fail();
        assert_eq!(d.read_many(&offsets), vec![None; 5]);
    }

    #[test]
    fn dead_worker_is_marked_suspect() {
        let a = ThreadedArray::from_backends(vec![
            Arc::new(MemDisk::new()) as Arc<dyn DiskBackend>,
            Arc::new(PanicDisk) as Arc<dyn DiskBackend>,
        ]);
        assert!(a.suspects().is_empty());
        let _ = a.read_batch(&[(1, 0)]); // kills worker 1
        for _ in 0..100 {
            let _ = a.read_batch(&[(1, 0)]); // send fails → suspect
            if !a.suspects().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(a.suspects(), vec![1]);
        a.clear_suspect(1);
        assert!(a.suspects().is_empty());
    }

    #[test]
    fn restart_disk_revives_a_dead_worker() {
        use crate::fault::FaultyDisk;
        let healthy = Arc::new(MemDisk::new());
        healthy.write(0, vec![3]);
        let faulty = FaultyDisk::wrap(Arc::new(MemDisk::new()));
        faulty.write(0, vec![9]);
        let a = ThreadedArray::from_backends(vec![
            healthy as Arc<dyn DiskBackend>,
            Arc::new(PanicDisk) as Arc<dyn DiskBackend>,
        ]);
        let _ = a.read_batch(&[(1, 0)]); // worker 1 dies
                                         // The worker's channel disconnects as its panic unwinds; retry
                                         // until the failed send marks the disk suspect.
        for _ in 0..100 {
            let _ = a.read_batch(&[(1, 0)]);
            if !a.suspects().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(a.suspects(), vec![1]);
        // Re-register a usable backend in slot 1; the array serves it.
        a.replace_disk(1, faulty);
        assert!(a.suspects().is_empty());
        let got = a.read_batch(&[(0, 0), (1, 0)]);
        assert_eq!(got[0], Some(vec![3]));
        assert_eq!(got[1], Some(vec![9]));
    }

    #[test]
    fn replace_disk_swaps_backend_and_returns_old() {
        let a = ThreadedArray::new(2);
        a.write_batch(vec![((0, 0), vec![1]), ((1, 0), vec![2])]);
        let fresh = Arc::new(MemDisk::new());
        fresh.write(0, vec![42]);
        let old = a.replace_disk(1, fresh as Arc<dyn DiskBackend>);
        assert_eq!(old.read(0), Some(vec![2]), "old backend handed back");
        assert_eq!(a.read_batch(&[(1, 0)])[0], Some(vec![42]));
        // Writes land on the replacement.
        a.write_batch(vec![((1, 1), vec![7])]);
        assert_eq!(a.read_batch(&[(1, 1)])[0], Some(vec![7]));
    }

    #[test]
    fn restart_disk_keeps_backend_contents() {
        let a = ThreadedArray::new(2);
        a.write_batch(vec![((0, 0), vec![5])]);
        a.restart_disk(0);
        assert_eq!(a.read_batch(&[(0, 0)])[0], Some(vec![5]));
    }

    #[test]
    fn faulty_disk_kill_mid_batch_reads_as_absent() {
        use crate::fault::{FaultKind, FaultyDisk};
        let inner = Arc::new(MemDisk::new());
        let faulty = FaultyDisk::wrap(inner);
        let a = ThreadedArray::from_backends(vec![
            Arc::new(MemDisk::new()) as Arc<dyn DiskBackend>,
            Arc::clone(&faulty) as Arc<dyn DiskBackend>,
        ]);
        a.write_batch(vec![((0, 0), vec![1]), ((1, 0), vec![2])]);
        assert_eq!(a.read_batch(&[(1, 0)])[0], Some(vec![2]));
        faulty.arm(FaultKind::Kill, 0);
        assert_eq!(a.read_batch(&[(1, 0)])[0], None);
        assert_eq!(a.read_batch(&[(0, 0)])[0], Some(vec![1]));
    }

    #[test]
    fn load_board_tallies_served_reads_per_disk() {
        let a = ThreadedArray::new(3);
        a.write_batch(vec![
            ((0, 0), vec![1, 1]),
            ((0, 1), vec![2, 2]),
            ((1, 0), vec![3, 3]),
        ]);
        a.read_batch(&[(0, 0), (0, 1), (1, 0), (2, 0)]); // (2,0) misses
        let s = a.load_board().snapshot();
        assert_eq!(s.elements, vec![2, 1, 0]); // misses are not served
        assert_eq!(s.bytes, vec![4, 2, 0]);
        a.read_batch(&[(1, 0)]);
        assert_eq!(a.load_board().snapshot().elements, vec![2, 2, 0]);
    }
}

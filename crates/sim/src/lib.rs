//! The evaluation testbed: a disk-array simulator standing in for the
//! paper's Xeon X5472 machine with a 16-disk Seagate Savvio 10K.3 array.
//!
//! Two engines are provided:
//!
//! * [`ArraySim`] — an analytic timing model. The paper's own performance
//!   argument (§III) is that a parallel read completes when the slowest —
//!   most-loaded — disk finishes; the model computes exactly that: per
//!   disk, the sum of per-element service times (seek + rotation +
//!   transfer, calibrated to the Savvio 10K.3 datasheet), optionally with
//!   multiplicative jitter, and takes the maximum. Because every compared
//!   layout runs on identical disk parameters, *relative* speeds depend
//!   only on the load distributions — which is the result being
//!   reproduced.
//! * [`ThreadedArray`] — a real concurrent engine: a completion-driven
//!   reactor ([`reactor`]) submitting one vectored operation per disk
//!   over in-memory ([`MemDisk`]) element storage, exercising the
//!   actual parallel submit/complete code path a storage system would
//!   use.
//!
//! Plus the paper's workload generators (§VI-B/C): uniformly random start
//! element, size 1–20 elements, and (for degraded reads) a uniformly
//! random failed disk.

#![warn(missing_docs)]

pub mod array;
pub mod disk;
pub mod event;
pub mod fault;
pub mod file_disk;
pub mod metrics;
pub mod net;
pub mod reactor;
pub mod threaded;
pub mod uring;
pub mod workload;

pub use array::{ArraySim, Jitter};
pub use disk::DiskModel;
pub use event::{Completion, EventSim, Request};
pub use fault::{FaultKind, FaultyDisk};
pub use file_disk::{FileDisk, FileIoConfig, FileIoMode};
pub use metrics::{mean, speed_mb_s, stddev, NetCounters, NetStats, Summary};
pub use net::{ClusterSim, NetModel};
pub use reactor::{io_pair, IoCompleter, IoHandle, IoResults, IoSnapshot, Reactor, ReactorStats};
pub use threaded::{
    combine_status, Address, CombineOutcome, CombinePeerSpec, CombineReply, CombineSpec,
    DiskBackend, MemDisk, ThreadedArray,
};
pub use uring::UringSnapshot;
pub use workload::{
    DegradedReadWorkload, NormalReadWorkload, ReadRequest, TraceObject, TraceWorkload, Zipf,
};

//! The paper's workload generators (§VI-B, §VI-C).
//!
//! * Normal reads: 2000 trials; each picks a uniformly random start data
//!   element and a size uniform in 1–20 elements.
//! * Degraded reads: 5000 trials; additionally a uniformly random erased
//!   disk.
//!
//! Generators are deterministic given a seed, so every figure
//! regenerates bit-identically.

use ecfrm_util::Rng;

/// One read request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRequest {
    /// First data element.
    pub start: u64,
    /// Number of data elements.
    pub size: usize,
    /// Failed disk, if this is a degraded-read trial.
    pub failed_disk: Option<usize>,
}

/// §VI-B: random (start, size) pairs over a data address space.
#[derive(Debug, Clone)]
pub struct NormalReadWorkload {
    /// Number of trials (the paper uses 2000).
    pub trials: usize,
    /// Exclusive upper bound of the start-element space.
    pub address_space: u64,
    /// Minimum request size in elements (paper: 1).
    pub min_size: usize,
    /// Maximum request size in elements (paper: 20).
    pub max_size: usize,
}

impl NormalReadWorkload {
    /// The paper's §VI-B configuration over `address_space` elements.
    pub fn paper(address_space: u64) -> Self {
        Self {
            trials: 2000,
            address_space,
            min_size: 1,
            max_size: 20,
        }
    }

    /// Generate the request sequence deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Vec<ReadRequest> {
        assert!(self.address_space > 0, "empty address space");
        assert!(
            self.min_size >= 1 && self.min_size <= self.max_size,
            "invalid size range"
        );
        let mut rng = Rng::seed_from_u64(seed);
        (0..self.trials)
            .map(|_| ReadRequest {
                start: rng.random_range(0..self.address_space),
                size: rng.random_range(self.min_size..=self.max_size),
                failed_disk: None,
            })
            .collect()
    }
}

/// §VI-C: random (start, size, failed disk) triples.
#[derive(Debug, Clone)]
pub struct DegradedReadWorkload {
    /// Number of trials (the paper uses 5000).
    pub trials: usize,
    /// Exclusive upper bound of the start-element space.
    pub address_space: u64,
    /// Minimum request size in elements (paper: 1).
    pub min_size: usize,
    /// Maximum request size in elements (paper: 20).
    pub max_size: usize,
    /// Number of disks the failed disk is drawn from.
    pub n_disks: usize,
}

impl DegradedReadWorkload {
    /// The paper's §VI-C configuration.
    pub fn paper(address_space: u64, n_disks: usize) -> Self {
        Self {
            trials: 5000,
            address_space,
            min_size: 1,
            max_size: 20,
            n_disks,
        }
    }

    /// Generate the request sequence deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Vec<ReadRequest> {
        assert!(self.address_space > 0, "empty address space");
        assert!(self.n_disks > 0, "need at least one disk");
        assert!(
            self.min_size >= 1 && self.min_size <= self.max_size,
            "invalid size range"
        );
        let mut rng = Rng::seed_from_u64(seed);
        (0..self.trials)
            .map(|_| ReadRequest {
                start: rng.random_range(0..self.address_space),
                size: rng.random_range(self.min_size..=self.max_size),
                failed_disk: Some(rng.random_range(0..self.n_disks)),
            })
            .collect()
    }
}

/// A Zipf(α) sampler over ranks `0..n` via inverse-CDF lookup — the
/// standard model for object popularity in storage traces.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `alpha` (`alpha = 0`
    /// is uniform; ~0.8–1.2 is typical of storage workloads).
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Draw a rank (0 = most popular).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// An object in a synthetic trace: where it starts and how many elements
/// it spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceObject {
    /// First data element.
    pub start: u64,
    /// Size in elements.
    pub elements: usize,
}

/// A synthetic object-fetch trace: a library of variable-size objects
/// laid out append-only, fetched whole with Zipf popularity — the
/// "common files like MP3s" workload §III-A motivates EC-FRM with.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    /// Number of objects in the library.
    pub objects: usize,
    /// Zipf popularity exponent.
    pub zipf_alpha: f64,
    /// Minimum object size in elements.
    pub min_elements: usize,
    /// Maximum object size in elements.
    pub max_elements: usize,
    /// Number of fetches to generate.
    pub fetches: usize,
}

impl TraceWorkload {
    /// Generate the object library and the fetch sequence (as whole-object
    /// [`ReadRequest`]s), deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> (Vec<TraceObject>, Vec<ReadRequest>) {
        assert!(self.objects > 0, "trace needs objects");
        assert!(
            self.min_elements >= 1 && self.min_elements <= self.max_elements,
            "invalid object size range"
        );
        let mut rng = Rng::seed_from_u64(seed);
        let mut objects = Vec::with_capacity(self.objects);
        let mut cursor = 0u64;
        for _ in 0..self.objects {
            let elements = rng.random_range(self.min_elements..=self.max_elements);
            objects.push(TraceObject {
                start: cursor,
                elements,
            });
            cursor += elements as u64;
        }
        // Popularity by library order: object 0 is hottest. Shuffle ranks
        // so hot objects are not all physically adjacent.
        let mut rank_of: Vec<usize> = (0..self.objects).collect();
        for i in (1..self.objects).rev() {
            let j = rng.random_range(0..=i);
            rank_of.swap(i, j);
        }
        let zipf = Zipf::new(self.objects, self.zipf_alpha);
        let fetches = (0..self.fetches)
            .map(|_| {
                let obj = objects[rank_of[zipf.sample(&mut rng)]];
                ReadRequest {
                    start: obj.start,
                    size: obj.elements,
                    failed_disk: None,
                }
            })
            .collect();
        (objects, fetches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let w = NormalReadWorkload::paper(1000);
        assert_eq!(w.trials, 2000);
        assert_eq!((w.min_size, w.max_size), (1, 20));
        let d = DegradedReadWorkload::paper(1000, 10);
        assert_eq!(d.trials, 5000);
        assert_eq!(d.n_disks, 10);
    }

    #[test]
    fn generation_is_deterministic() {
        let w = NormalReadWorkload::paper(500);
        assert_eq!(w.generate(7), w.generate(7));
        assert_ne!(w.generate(7), w.generate(8));
    }

    #[test]
    fn requests_respect_bounds() {
        let w = DegradedReadWorkload::paper(300, 9);
        for r in w.generate(3) {
            assert!(r.start < 300);
            assert!((1..=20).contains(&r.size));
            assert!(r.failed_disk.unwrap() < 9);
        }
    }

    #[test]
    fn sizes_cover_full_range() {
        // Over 5000 trials every size 1..=20 should appear.
        let w = DegradedReadWorkload::paper(300, 9);
        let mut seen = [false; 21];
        for r in w.generate(5) {
            seen[r.size] = true;
        }
        assert!(seen[1..=20].iter().all(|&s| s), "sizes missing: {seen:?}");
    }

    #[test]
    fn failed_disks_cover_all_disks() {
        let w = DegradedReadWorkload::paper(300, 10);
        let mut seen = [false; 10];
        for r in w.generate(11) {
            seen[r.failed_disk.unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn empty_address_space_rejected() {
        NormalReadWorkload::paper(0).generate(1);
    }

    #[test]
    fn zipf_uniform_when_alpha_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng::seed_from_u64(2);
        let mut head = 0usize;
        let trials = 10_000;
        for _ in 0..trials {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With α = 1 over 100 ranks, the top 10 get ~56% of draws.
        assert!(head > trials / 2, "head share too small: {head}/{trials}");
    }

    #[test]
    fn trace_objects_are_contiguous_and_fetches_valid() {
        let t = TraceWorkload {
            objects: 50,
            zipf_alpha: 0.9,
            min_elements: 3,
            max_elements: 12,
            fetches: 500,
        };
        let (objects, fetches) = t.generate(7);
        assert_eq!(objects.len(), 50);
        let mut cursor = 0u64;
        for o in &objects {
            assert_eq!(o.start, cursor);
            assert!((3..=12).contains(&o.elements));
            cursor += o.elements as u64;
        }
        assert_eq!(fetches.len(), 500);
        for f in &fetches {
            assert!(objects
                .iter()
                .any(|o| o.start == f.start && o.elements == f.size));
        }
        // Determinism.
        assert_eq!(t.generate(7).1, fetches);
    }
}

//! Per-disk service time model.
//!
//! Calibrated to the paper's hardware: Seagate Savvio 10K.3 (model
//! ST9300603SS), 300 GB, 10 000 rpm — average read seek ≈ 4.1 ms, average
//! rotational latency = half a revolution at 10 000 rpm = 3.0 ms,
//! sustained transfer ≈ 100 MB/s mid-platter.

/// Service-time parameters of one disk.
///
/// An element read costs `seek + rotational latency + size / transfer`,
/// all divided by `speed_factor` (1.0 = nominal; < 1.0 models a slow or
/// degraded spindle for the heterogeneity ablation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Average seek time, milliseconds.
    pub seek_ms: f64,
    /// Average rotational latency, milliseconds.
    pub rotational_ms: f64,
    /// Sustained transfer rate, MB/s (1 MB = 10^6 bytes).
    pub transfer_mb_s: f64,
    /// Relative speed (1.0 nominal; 0.5 = half speed).
    pub speed_factor: f64,
    /// When set, elements after the first in a disk's queue pay only
    /// this short track-to-track reposition instead of a full
    /// seek + rotation — modelling that a read's same-disk elements sit
    /// at adjacent offsets (consecutive stripes). `None` charges full
    /// positioning per element (the conservative default used for the
    /// paper's figures).
    pub track_to_track_ms: Option<f64>,
}

impl DiskModel {
    /// The paper's testbed disk: Seagate Savvio 10K.3.
    pub fn savvio_10k3() -> Self {
        Self {
            seek_ms: 4.1,
            rotational_ms: 3.0,
            transfer_mb_s: 100.0,
            speed_factor: 1.0,
            track_to_track_ms: None,
        }
    }

    /// A generic fast SSD-ish device (for ablations: when positioning
    /// cost vanishes, layout matters less).
    pub fn ssd_like() -> Self {
        Self {
            seek_ms: 0.02,
            rotational_ms: 0.0,
            transfer_mb_s: 500.0,
            speed_factor: 1.0,
            track_to_track_ms: None,
        }
    }

    /// Same disk at a different relative speed.
    pub fn with_speed_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "speed factor must be positive");
        self.speed_factor = factor;
        self
    }

    /// Enable the sequential-queue discount (Savvio 10K.3 track-to-track
    /// is ≈ 0.4 ms).
    pub fn with_track_to_track(mut self, ms: f64) -> Self {
        assert!(ms >= 0.0, "track-to-track time cannot be negative");
        self.track_to_track_ms = Some(ms);
        self
    }

    /// Time in milliseconds to read one `bytes`-sized element (random
    /// position: full seek + rotation + transfer).
    pub fn service_time_ms(&self, bytes: usize) -> f64 {
        let transfer_ms = bytes as f64 / (self.transfer_mb_s * 1e6) * 1e3;
        (self.seek_ms + self.rotational_ms + transfer_ms) / self.speed_factor
    }

    /// Time for the `i`-th element (0-based) of one request's queue on
    /// this disk: the first pays full positioning; later ones pay the
    /// track-to-track discount when enabled.
    pub fn queued_service_time_ms(&self, i: usize, bytes: usize) -> f64 {
        match (i, self.track_to_track_ms) {
            (0, _) | (_, None) => self.service_time_ms(bytes),
            (_, Some(tt)) => {
                let transfer_ms = bytes as f64 / (self.transfer_mb_s * 1e6) * 1e3;
                (tt + transfer_ms) / self.speed_factor
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savvio_one_megabyte_element() {
        let d = DiskModel::savvio_10k3();
        // 4.1 + 3.0 + 10.0 = 17.1 ms for a 1 MB element.
        let t = d.service_time_ms(1_000_000);
        assert!((t - 17.1).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn zero_bytes_costs_positioning_only() {
        let d = DiskModel::savvio_10k3();
        assert!((d.service_time_ms(0) - 7.1).abs() < 1e-9);
    }

    #[test]
    fn speed_factor_scales_linearly() {
        let d = DiskModel::savvio_10k3();
        let slow = d.with_speed_factor(0.5);
        assert!(
            (slow.service_time_ms(1_000_000) - 2.0 * d.service_time_ms(1_000_000)).abs() < 1e-9
        );
    }

    #[test]
    fn ssd_is_much_faster() {
        let hdd = DiskModel::savvio_10k3();
        let ssd = DiskModel::ssd_like();
        assert!(ssd.service_time_ms(1_000_000) < hdd.service_time_ms(1_000_000) / 5.0);
    }

    #[test]
    fn queued_service_time_discount() {
        let d = DiskModel::savvio_10k3().with_track_to_track(0.4);
        // First element: full 17.1 ms; later ones: 0.4 + 10.0 = 10.4 ms.
        assert!((d.queued_service_time_ms(0, 1_000_000) - 17.1).abs() < 1e-9);
        assert!((d.queued_service_time_ms(3, 1_000_000) - 10.4).abs() < 1e-9);
        // Without the discount every element pays full positioning.
        let plain = DiskModel::savvio_10k3();
        assert!((plain.queued_service_time_ms(3, 1_000_000) - 17.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_speed_factor_rejected() {
        DiskModel::savvio_10k3().with_speed_factor(0.0);
    }
}

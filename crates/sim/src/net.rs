//! Cluster network model: when is bandwidth "sufficient"?
//!
//! The paper restricts itself to "cloud storage systems with sufficient
//! bandwidth (e.g., inner-enterprise cloud storage systems)" (§III) and
//! uses degraded-read *cost* as the bandwidth-usage metric (§VI-C). This
//! module adds the missing axis: each storage node has an uplink, the
//! reading client has a downlink, and a read completes when the slowest
//! of {disk service, node uplink, client downlink} finishes. Sweeping the
//! client downlink shows where the paper's regime ends: once bandwidth —
//! not the most-loaded disk — is the bottleneck, layout stops mattering
//! and only the fetch *volume* (cost) does.

use crate::disk::DiskModel;

/// Link capacities for one client reading from a cluster of storage
/// nodes (MB/s; `f64::INFINITY` = the paper's sufficient-bandwidth
/// assumption).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Per-node uplink, MB/s.
    pub node_uplink_mb_s: f64,
    /// Client downlink, MB/s (shared across all fetched elements).
    pub client_downlink_mb_s: f64,
    /// Fixed per-request round-trip overhead, ms.
    pub rtt_ms: f64,
}

impl NetModel {
    /// The paper's assumption: network never binds.
    pub fn sufficient() -> Self {
        Self {
            node_uplink_mb_s: f64::INFINITY,
            client_downlink_mb_s: f64::INFINITY,
            rtt_ms: 0.0,
        }
    }

    /// A typical inner-enterprise setup: 10 GbE client, 10 GbE nodes,
    /// 0.2 ms RTT.
    pub fn ten_gbe() -> Self {
        Self {
            node_uplink_mb_s: 1250.0,
            client_downlink_mb_s: 1250.0,
            rtt_ms: 0.2,
        }
    }
}

/// One client reading elements from disks behind a network.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    disk: DiskModel,
    net: NetModel,
    element_size: usize,
}

impl ClusterSim {
    /// A homogeneous cluster: every node has the same disk model.
    pub fn new(disk: DiskModel, net: NetModel, element_size: usize) -> Self {
        Self {
            disk,
            net,
            element_size,
        }
    }

    /// Completion time (ms) of a read that fetches `per_disk_load`
    /// elements from each node: the slowest node (disk then uplink, the
    /// stages pipeline so the max binds) or the client downlink draining
    /// every fetched element, plus RTT.
    pub fn read_time_ms(&self, per_disk_load: &[usize]) -> f64 {
        let es_mb = self.element_size as f64 / 1e6;
        let mut node_worst: f64 = 0.0;
        let mut total = 0usize;
        for &q in per_disk_load {
            if q == 0 {
                continue;
            }
            total += q;
            let disk_ms: f64 = (0..q)
                .map(|i| self.disk.queued_service_time_ms(i, self.element_size))
                .sum();
            let uplink_ms = q as f64 * es_mb / self.net.node_uplink_mb_s * 1e3;
            node_worst = node_worst.max(disk_ms.max(uplink_ms));
        }
        let downlink_ms = total as f64 * es_mb / self.net.client_downlink_mb_s * 1e3;
        node_worst.max(downlink_ms) + self.net.rtt_ms
    }

    /// Read speed (MB/s of *requested* data) for a plan.
    pub fn read_speed_mb_s(&self, requested_elements: usize, per_disk_load: &[usize]) -> f64 {
        let t = self.read_time_ms(per_disk_load);
        if t <= 0.0 {
            return 0.0;
        }
        crate::metrics::speed_mb_s(requested_elements * self.element_size, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskModel {
        DiskModel::savvio_10k3() // 17.1 ms per 1 MB element
    }

    #[test]
    fn sufficient_bandwidth_reduces_to_disk_model() {
        let c = ClusterSim::new(disk(), NetModel::sufficient(), 1_000_000);
        let t = c.read_time_ms(&[2, 1, 0]);
        assert!((t - 2.0 * 17.1).abs() < 1e-9);
    }

    #[test]
    fn slow_client_downlink_binds() {
        // 8 × 1 MB elements over a 100 MB/s downlink = 80 ms > any disk.
        let net = NetModel {
            node_uplink_mb_s: f64::INFINITY,
            client_downlink_mb_s: 100.0,
            rtt_ms: 0.0,
        };
        let c = ClusterSim::new(disk(), net, 1_000_000);
        let t = c.read_time_ms(&[1, 1, 1, 1, 1, 1, 1, 1]);
        assert!((t - 80.0).abs() < 1e-9);
        // Under a bound downlink, balance is irrelevant: a skewed plan
        // with the same volume takes the same time.
        let skew = c.read_time_ms(&[4, 4, 0, 0, 0, 0, 0, 0]);
        assert!((skew - 80.0).abs() < 1e-9);
    }

    #[test]
    fn slow_node_uplink_binds_per_node() {
        // 2 elements from one node over a 50 MB/s uplink = 40 ms > 34.2.
        let net = NetModel {
            node_uplink_mb_s: 50.0,
            client_downlink_mb_s: f64::INFINITY,
            rtt_ms: 0.0,
        };
        let c = ClusterSim::new(disk(), net, 1_000_000);
        let t = c.read_time_ms(&[2, 1]);
        assert!((t - 40.0).abs() < 1e-9);
    }

    #[test]
    fn rtt_added_once() {
        let net = NetModel {
            node_uplink_mb_s: f64::INFINITY,
            client_downlink_mb_s: f64::INFINITY,
            rtt_ms: 5.0,
        };
        let c = ClusterSim::new(disk(), net, 1_000_000);
        assert!((c.read_time_ms(&[1]) - (17.1 + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn ten_gbe_is_nearly_sufficient_for_small_reads() {
        let c10 = ClusterSim::new(disk(), NetModel::ten_gbe(), 1_000_000);
        let cinf = ClusterSim::new(disk(), NetModel::sufficient(), 1_000_000);
        let load = [1usize, 1, 1, 1, 1, 1, 1, 1, 0, 0];
        let t10 = c10.read_time_ms(&load);
        let tinf = cinf.read_time_ms(&load);
        assert!(
            t10 < tinf * 1.5,
            "10GbE should be near-sufficient: {t10} vs {tinf}"
        );
    }

    #[test]
    fn speed_accounts_only_requested_bytes() {
        let c = ClusterSim::new(disk(), NetModel::sufficient(), 1_000_000);
        // 8 requested but 12 fetched (degraded): speed uses 8 MB.
        let load = [2usize, 2, 2, 2, 2, 2];
        let s = c.read_speed_mb_s(8, &load);
        let t = c.read_time_ms(&load);
        assert!((s - 8.0 / (t / 1e3)).abs() < 1e-9);
    }
}

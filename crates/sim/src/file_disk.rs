//! A real file-backed disk: one flat file, element-indexed.
//!
//! [`FileDisk`] stores fixed-size elements at `offset × element_size`
//! within a single file, giving the object store and the CLI a
//! persistence path through the same [`DiskBackend`] interface the
//! in-memory disks use. Presence is tracked with an in-memory bitmap so
//! absent elements read as `None` rather than zeros (sparse files would
//! otherwise be indistinguishable from stored zeros).
//!
//! Vectored reads are served by one of two backends, selected per disk
//! at construction time ([`FileIoConfig`], overridable process-wide via
//! `ECFRM_FORCE_FILE_IO=blocking|uring`, mirroring the
//! `ECFRM_FORCE_KERNEL` dispatch in `ecfrm-gf`):
//!
//! * **uring** (Linux with a working io_uring, the default) — the
//!   [`crate::uring`] engine: coalesced runs become batched SQEs,
//!   `O_DIRECT` when the filesystem allows it, completions resolved
//!   asynchronously by a poller thread. [`DiskBackend::submits_async`]
//!   reports `true`, so [`ThreadedArray`](crate::threaded::ThreadedArray)
//!   submits from the driver thread and never parks a pool worker.
//! * **blocking** (the portable fallback) — present offsets sorted and
//!   grouped into maximal sequential runs, one seek + sequential reads
//!   per run, serviced inline on the submitting thread.
//!
//! I/O errors never panic a worker: a failed element read or write
//! surfaces as `None` (counted in [`io_error_count`]) and the store
//! replans around it through parity, the same contract as a failed
//! disk.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ecfrm_util::Mutex;

use crate::threaded::DiskBackend;
use crate::uring::{self, UringEngine};

/// Local file I/O errors swallowed into `None` results (failed element
/// reads/writes/truncates across every [`FileDisk`] in the process).
static FILE_IO_ERRORS: AtomicU64 = AtomicU64::new(0);

fn note_io_error() {
    FILE_IO_ERRORS.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide count of [`FileDisk`] I/O errors that were absorbed
/// into `None` results instead of panicking a worker. Recorded as the
/// `io.file_errors` gauge.
pub fn io_error_count() -> u64 {
    FILE_IO_ERRORS.load(Ordering::Relaxed)
}

/// Which backend a [`FileDisk`] uses for vectored reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileIoMode {
    /// Probe at construction: the io_uring engine when the kernel
    /// supports it, the blocking sorted-run pass otherwise.
    Auto,
    /// Always the portable blocking sorted-run pass.
    Blocking,
    /// Require the io_uring engine; construction fails where it is
    /// unavailable.
    Uring,
}

/// Construction-time I/O configuration for [`FileDisk`].
///
/// The process-wide `ECFRM_FORCE_FILE_IO` environment variable
/// (`blocking` or `uring`) overrides [`FileIoConfig::mode`] wherever it
/// is set — the same precedence rule as `ECFRM_FORCE_KERNEL` — so a CI
/// leg can pin every disk in a run to one backend.
#[derive(Clone, Copy, Debug)]
pub struct FileIoConfig {
    /// Backend selection.
    pub mode: FileIoMode,
    /// Ring depth: the maximum coalesced runs in flight at once
    /// (clamped to a power of two in `1..=4096`). Ignored by the
    /// blocking backend.
    pub depth: u32,
    /// Ask for `O_DIRECT` read descriptors; filesystems that refuse
    /// the flag (e.g. tmpfs) fall back to buffered uring reads.
    pub direct: bool,
}

impl Default for FileIoConfig {
    fn default() -> Self {
        Self {
            mode: FileIoMode::Auto,
            depth: 128,
            direct: true,
        }
    }
}

impl FileIoConfig {
    /// The portable blocking backend.
    pub fn blocking() -> Self {
        Self {
            mode: FileIoMode::Blocking,
            ..Self::default()
        }
    }

    /// Require the io_uring backend at the given queue depth.
    pub fn uring(depth: u32) -> Self {
        Self {
            mode: FileIoMode::Uring,
            depth,
            ..Self::default()
        }
    }
}

/// A disk persisted as one file of fixed-size elements.
pub struct FileDisk {
    path: PathBuf,
    file: Mutex<File>,
    element_size: usize,
    present: Mutex<HashSet<u64>>,
    failed: AtomicBool,
    engine: Option<Arc<UringEngine>>,
}

impl std::fmt::Debug for FileDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FileDisk({}, {} B elements, {})",
            self.path.display(),
            self.element_size,
            self.io_backend()
        )
    }
}

impl FileDisk {
    /// Create (or truncate) the backing file at `path` with the default
    /// I/O configuration (probe for uring, blocking fallback).
    ///
    /// # Errors
    /// I/O errors from file creation.
    pub fn create(path: impl AsRef<Path>, element_size: usize) -> std::io::Result<Self> {
        Self::create_with(path, element_size, FileIoConfig::default())
    }

    /// Create (or truncate) the backing file at `path` with an explicit
    /// I/O configuration.
    ///
    /// # Errors
    /// I/O errors from file creation, or from ring setup when `config`
    /// requires [`FileIoMode::Uring`] and the engine cannot start.
    pub fn create_with(
        path: impl AsRef<Path>,
        element_size: usize,
        config: FileIoConfig,
    ) -> std::io::Result<Self> {
        assert!(element_size > 0, "element size must be positive");
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let engine = Self::attach_engine(&path, element_size, config)?;
        Ok(Self {
            path,
            file: Mutex::new(file),
            element_size,
            present: Mutex::new(HashSet::new()),
            failed: AtomicBool::new(false),
            engine,
        })
    }

    /// Open an existing backing file with the default I/O
    /// configuration, treating every complete element slot within the
    /// current file length as present.
    ///
    /// # Errors
    /// I/O errors from opening or statting the file.
    pub fn open(path: impl AsRef<Path>, element_size: usize) -> std::io::Result<Self> {
        Self::open_with(path, element_size, FileIoConfig::default())
    }

    /// Open an existing backing file with an explicit I/O
    /// configuration.
    ///
    /// # Errors
    /// I/O errors from opening or statting the file, or from ring setup
    /// when `config` requires [`FileIoMode::Uring`] and the engine
    /// cannot start.
    pub fn open_with(
        path: impl AsRef<Path>,
        element_size: usize,
        config: FileIoConfig,
    ) -> std::io::Result<Self> {
        assert!(element_size > 0, "element size must be positive");
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        let slots = len / element_size as u64;
        let engine = Self::attach_engine(&path, element_size, config)?;
        Ok(Self {
            path,
            file: Mutex::new(file),
            element_size,
            present: Mutex::new((0..slots).collect()),
            failed: AtomicBool::new(false),
            engine,
        })
    }

    /// Resolve the configured mode against `ECFRM_FORCE_FILE_IO` and
    /// the runtime probe, then start the uring engine if called for.
    fn attach_engine(
        path: &Path,
        element_size: usize,
        config: FileIoConfig,
    ) -> std::io::Result<Option<Arc<UringEngine>>> {
        let forced = std::env::var("ECFRM_FORCE_FILE_IO").ok();
        let mode = match forced.as_deref() {
            Some("blocking") => FileIoMode::Blocking,
            Some("uring") => FileIoMode::Uring,
            Some(other) => panic!(
                "ECFRM_FORCE_FILE_IO={other:?} is not a file I/O backend \
                 (expected \"blocking\" or \"uring\")"
            ),
            None => config.mode,
        };
        match mode {
            FileIoMode::Blocking => Ok(None),
            FileIoMode::Uring => {
                match UringEngine::new(path, element_size, config.depth, config.direct) {
                    Ok(engine) => Ok(Some(engine)),
                    Err(e) if forced.is_some() => {
                        panic!("ECFRM_FORCE_FILE_IO=uring but the engine failed to start: {e}")
                    }
                    Err(e) => Err(e),
                }
            }
            FileIoMode::Auto => {
                if uring::supported() {
                    // A per-disk engine failure (fd limits, exotic fs)
                    // degrades that disk to the blocking path rather
                    // than failing construction.
                    Ok(UringEngine::new(path, element_size, config.depth, config.direct).ok())
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Name of the active read backend: `"blocking"`, `"uring"`
    /// (buffered descriptor), or `"uring-direct"` (`O_DIRECT`).
    pub fn io_backend(&self) -> &'static str {
        match &self.engine {
            None => "blocking",
            Some(e) if e.is_direct() => "uring-direct",
            Some(_) => "uring",
        }
    }

    /// Kill the async I/O engine mid-flight (the fault-injection hook
    /// used by the differential tests): every outstanding and future
    /// uring read resolves all-`None`, exactly like a failed disk.
    /// Returns `false` when this disk runs the blocking backend (which
    /// has no engine to kill).
    pub fn kill_io_engine(&self) -> bool {
        match &self.engine {
            Some(engine) => {
                engine.kill();
                true
            }
            None => false,
        }
    }

    /// Flush dirty pages and drop the kernel page cache for the backing
    /// file (Linux; a no-op after the flush elsewhere). The cold-read
    /// microbench uses this between passes so both backends pay real
    /// disk time.
    ///
    /// # Errors
    /// I/O errors from the flush or the `posix_fadvise` call.
    pub fn drop_cache(&self) -> std::io::Result<()> {
        let file = self.file.lock();
        file.sync_data()?;
        #[cfg(target_os = "linux")]
        {
            use std::os::unix::io::AsRawFd;
            extern "C" {
                fn posix_fadvise(fd: i32, offset: i64, len: i64, advice: i32) -> i32;
            }
            const POSIX_FADV_DONTNEED: i32 = 4;
            // len 0 means "to end of file" — the whole inode's pages.
            let rc = unsafe { posix_fadvise(file.as_raw_fd(), 0, 0, POSIX_FADV_DONTNEED) };
            if rc != 0 {
                return Err(std::io::Error::from_raw_os_error(rc));
            }
        }
        Ok(())
    }

    /// The sorted-run vectored read: present offsets sorted, maximal
    /// sequential runs served with one seek each.
    fn read_sorted_runs(&self, offsets: &[u64]) -> Vec<Option<Vec<u8>>> {
        if self.failed.load(Ordering::Acquire) {
            return vec![None; offsets.len()];
        }
        let mut out: Vec<Option<Vec<u8>>> = vec![None; offsets.len()];
        let mut wanted = self.wanted(offsets);
        wanted.sort_unstable();
        let es = self.element_size as u64;
        let mut file = self.file.lock();
        let mut next_pos: Option<u64> = None; // file cursor after last read
        for (offset, slot) in wanted {
            let pos = offset * es;
            if next_pos != Some(pos) && file.seek(SeekFrom::Start(pos)).is_err() {
                note_io_error();
                next_pos = None;
                continue;
            }
            let mut buf = vec![0u8; self.element_size];
            if file.read_exact(&mut buf).is_ok() {
                out[slot] = Some(buf);
                next_pos = Some(pos + es);
            } else {
                note_io_error();
                next_pos = None;
            }
        }
        out
    }

    /// `(offset, result slot)` pairs for present elements only.
    fn wanted(&self, offsets: &[u64]) -> Vec<(u64, usize)> {
        let present = self.present.lock();
        offsets
            .iter()
            .enumerate()
            .filter(|(_, o)| present.contains(o))
            .map(|(i, &o)| (o, i))
            .collect()
    }
}

impl Drop for FileDisk {
    fn drop(&mut self) {
        if let Some(engine) = &self.engine {
            engine.shutdown();
        }
    }
}

impl DiskBackend for FileDisk {
    /// Serve a whole batch in one submission. With the uring engine the
    /// present offsets are coalesced into runs, pushed as SQEs, and the
    /// returned handle completes from the poller — nothing blocks here.
    /// On the blocking backend the sorted single pass (one seek per
    /// maximal sequential run) services the batch inline.
    fn submit_read_many(&self, offsets: &[u64]) -> crate::reactor::IoHandle {
        if let Some(engine) = &self.engine {
            if self.failed.load(Ordering::Acquire) {
                return crate::reactor::IoHandle::ready(vec![None; offsets.len()]);
            }
            return engine.submit(self.wanted(offsets), offsets.len());
        }
        crate::reactor::IoHandle::ready(self.read_sorted_runs(offsets))
    }

    /// True on the uring backend: submission only stages SQEs, so
    /// `ThreadedArray` drives it from the caller's thread.
    fn submits_async(&self) -> bool {
        self.engine.is_some()
    }

    fn write(&self, offset: u64, bytes: Vec<u8>) {
        assert_eq!(
            bytes.len(),
            self.element_size,
            "FileDisk stores fixed-size elements"
        );
        let mut file = self.file.lock();
        let pos = offset * self.element_size as u64;
        let ok = file.seek(SeekFrom::Start(pos)).is_ok() && file.write_all(&bytes).is_ok();
        drop(file);
        if ok {
            self.present.lock().insert(offset);
        } else {
            // A failed write must not leave the slot readable (it may
            // hold a torn element): drop presence so reads return
            // `None` and the store replans through parity.
            note_io_error();
            self.present.lock().remove(&offset);
        }
    }

    fn fail(&self) {
        self.failed.store(true, Ordering::Release);
    }

    fn heal(&self) {
        self.failed.store(false, Ordering::Release);
    }

    fn wipe(&self) {
        let file = self.file.lock();
        if file.set_len(0).is_err() {
            note_io_error();
        }
        // Presence clears even if the truncate failed: unreadable is
        // the safe direction for a wiped disk.
        self.present.lock().clear();
    }

    fn len(&self) -> usize {
        self.present.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::ThreadedArray;

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ecfrm-filedisk-{tag}-{}", std::process::id()))
    }

    #[test]
    fn write_read_roundtrip() {
        let p = tmpfile("rw");
        let d = FileDisk::create(&p, 8).unwrap();
        assert!(d.is_empty());
        d.write(3, vec![7u8; 8]);
        d.write(0, vec![9u8; 8]);
        assert_eq!(d.read(3), Some(vec![7u8; 8]));
        assert_eq!(d.read(0), Some(vec![9u8; 8]));
        assert_eq!(d.read(1), None, "hole must not read as zeros");
        assert_eq!(d.len(), 2);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn fail_heal_wipe() {
        let p = tmpfile("fhw");
        let d = FileDisk::create(&p, 4).unwrap();
        d.write(0, vec![1, 2, 3, 4]);
        d.fail();
        assert_eq!(d.read(0), None);
        d.heal();
        assert_eq!(d.read(0), Some(vec![1, 2, 3, 4]));
        d.wipe();
        assert_eq!(d.read(0), None);
        assert_eq!(d.len(), 0);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn reopen_sees_previous_elements() {
        let p = tmpfile("reopen");
        {
            let d = FileDisk::create(&p, 16).unwrap();
            d.write(0, vec![5u8; 16]);
            d.write(1, vec![6u8; 16]);
        }
        let d = FileDisk::open(&p, 16).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.read(1), Some(vec![6u8; 16]));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn threaded_array_over_file_disks() {
        let paths: Vec<PathBuf> = (0..3).map(|i| tmpfile(&format!("arr{i}"))).collect();
        let backends: Vec<Arc<dyn DiskBackend>> = paths
            .iter()
            .map(|p| Arc::new(FileDisk::create(p, 8).unwrap()) as Arc<dyn DiskBackend>)
            .collect();
        let array = ThreadedArray::from_backends(backends);
        array.write_batch(
            (0..9u64)
                .map(|i| (((i % 3) as usize, i / 3), vec![i as u8; 8]))
                .collect(),
        );
        let got = array.read_batch(&[(0, 0), (1, 0), (2, 2)]);
        assert_eq!(got[0], Some(vec![0u8; 8]));
        assert_eq!(got[1], Some(vec![1u8; 8]));
        assert_eq!(got[2], Some(vec![8u8; 8]));
        for p in paths {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn read_many_matches_per_element_loop() {
        let p = tmpfile("many");
        let d = FileDisk::create(&p, 8).unwrap();
        for o in [0u64, 1, 2, 5, 9] {
            d.write(o, vec![o as u8; 8]);
        }
        // Unsorted, with duplicates, holes, and out-of-range offsets.
        let offsets = [9u64, 0, 3, 1, 2, 0, 100, 5];
        let want: Vec<Option<Vec<u8>>> = offsets.iter().map(|&o| d.read(o)).collect();
        assert_eq!(d.read_many(&offsets), want);
        d.fail();
        assert_eq!(d.read_many(&offsets), vec![None; offsets.len()]);
        d.heal();
        assert_eq!(d.read_many(&offsets), want);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    #[should_panic]
    fn wrong_element_size_write_panics() {
        let p = tmpfile("wrong");
        let d = FileDisk::create(&p, 8).unwrap();
        d.write(0, vec![1u8; 4]);
    }

    #[test]
    fn blocking_config_never_starts_an_engine() {
        let p = tmpfile("blk");
        let d = FileDisk::create_with(&p, 8, FileIoConfig::blocking()).unwrap();
        // Even with ECFRM_FORCE_FILE_IO unset on a uring-capable
        // kernel, explicit Blocking stays blocking.
        if std::env::var("ECFRM_FORCE_FILE_IO").is_err() {
            assert_eq!(d.io_backend(), "blocking");
        }
        assert!(!d.submits_async() || d.io_backend() != "blocking");
        d.write(0, vec![1u8; 8]);
        assert_eq!(d.read(0), Some(vec![1u8; 8]));
        let _ = std::fs::remove_file(&p);
    }

    /// Satellite regression: an element write that fails with a real
    /// I/O error (EFBIG at an absurd file position) must not panic the
    /// worker — it is counted, the slot stays absent, and reads return
    /// `None`.
    #[cfg(target_os = "linux")]
    #[test]
    fn write_io_error_is_counted_not_fatal() {
        let p = tmpfile("eio");
        let d = FileDisk::create_with(&p, 8, FileIoConfig::blocking()).unwrap();
        d.write(1, vec![3u8; 8]);
        let before = io_error_count();
        // 2^57 elements × 8 B ≈ 1.15 EB: past every filesystem's max
        // file size, so write_all fails with EFBIG instead of storing.
        let absurd = 1u64 << 57;
        d.write(absurd, vec![9u8; 8]);
        assert!(io_error_count() > before, "the failed write is counted");
        assert_eq!(d.read(absurd), None, "failed write leaves slot absent");
        assert_eq!(d.read(1), Some(vec![3u8; 8]), "other elements unharmed");
        let _ = std::fs::remove_file(&p);
    }
}

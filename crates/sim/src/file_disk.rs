//! A real file-backed disk: one flat file, element-indexed.
//!
//! [`FileDisk`] stores fixed-size elements at `offset × element_size`
//! within a single file, giving the object store and the CLI a
//! persistence path through the same [`DiskBackend`] interface the
//! in-memory disks use. Presence is tracked with an in-memory bitmap so
//! absent elements read as `None` rather than zeros (sparse files would
//! otherwise be indistinguishable from stored zeros).

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

use ecfrm_util::Mutex;

use crate::threaded::DiskBackend;

/// A disk persisted as one file of fixed-size elements.
pub struct FileDisk {
    path: PathBuf,
    file: Mutex<File>,
    element_size: usize,
    present: Mutex<HashSet<u64>>,
    failed: AtomicBool,
}

impl std::fmt::Debug for FileDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FileDisk({}, {} B elements)",
            self.path.display(),
            self.element_size
        )
    }
}

impl FileDisk {
    /// Create (or truncate) the backing file at `path`.
    ///
    /// # Errors
    /// I/O errors from file creation.
    pub fn create(path: impl AsRef<Path>, element_size: usize) -> std::io::Result<Self> {
        assert!(element_size > 0, "element size must be positive");
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(Self {
            path,
            file: Mutex::new(file),
            element_size,
            present: Mutex::new(HashSet::new()),
            failed: AtomicBool::new(false),
        })
    }

    /// Open an existing backing file, treating every complete element
    /// slot within the current file length as present.
    ///
    /// # Errors
    /// I/O errors from opening or statting the file.
    pub fn open(path: impl AsRef<Path>, element_size: usize) -> std::io::Result<Self> {
        assert!(element_size > 0, "element size must be positive");
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        let slots = len / element_size as u64;
        Ok(Self {
            path,
            file: Mutex::new(file),
            element_size,
            present: Mutex::new((0..slots).collect()),
            failed: AtomicBool::new(false),
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sorted-run vectored read: present offsets sorted, maximal
    /// sequential runs served with one seek each.
    fn read_sorted_runs(&self, offsets: &[u64]) -> Vec<Option<Vec<u8>>> {
        if self.failed.load(Ordering::Acquire) {
            return vec![None; offsets.len()];
        }
        let mut out: Vec<Option<Vec<u8>>> = vec![None; offsets.len()];
        // (offset, result slot) pairs for present elements only, sorted
        // by offset so sequential runs become sequential file access.
        let present = self.present.lock();
        let mut wanted: Vec<(u64, usize)> = offsets
            .iter()
            .enumerate()
            .filter(|(_, o)| present.contains(o))
            .map(|(i, &o)| (o, i))
            .collect();
        drop(present);
        wanted.sort_unstable();
        let es = self.element_size as u64;
        let mut file = self.file.lock();
        let mut next_pos: Option<u64> = None; // file cursor after last read
        for (offset, slot) in wanted {
            let pos = offset * es;
            if next_pos != Some(pos) && file.seek(SeekFrom::Start(pos)).is_err() {
                next_pos = None;
                continue;
            }
            let mut buf = vec![0u8; self.element_size];
            if file.read_exact(&mut buf).is_ok() {
                out[slot] = Some(buf);
                next_pos = Some(pos + es);
            } else {
                next_pos = None;
            }
        }
        out
    }
}

impl DiskBackend for FileDisk {
    /// Serve a whole batch in one pass per submission: present offsets
    /// are sorted and grouped into maximal sequential runs, each run
    /// served with one seek followed by sequential reads — under
    /// EC-FRM's sequential layout a stripe's slice of this disk usually
    /// collapses to a single run. Serviced inline (one reactor-pool
    /// wakeup drives the whole sorted pass).
    fn submit_read_many(&self, offsets: &[u64]) -> crate::reactor::IoHandle {
        crate::reactor::IoHandle::ready(self.read_sorted_runs(offsets))
    }

    fn write(&self, offset: u64, bytes: Vec<u8>) {
        assert_eq!(
            bytes.len(),
            self.element_size,
            "FileDisk stores fixed-size elements"
        );
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset * self.element_size as u64))
            .expect("seek");
        file.write_all(&bytes).expect("write element");
        self.present.lock().insert(offset);
    }

    fn fail(&self) {
        self.failed.store(true, Ordering::Release);
    }

    fn heal(&self) {
        self.failed.store(false, Ordering::Release);
    }

    fn wipe(&self) {
        let file = self.file.lock();
        file.set_len(0).expect("truncate");
        self.present.lock().clear();
    }

    fn len(&self) -> usize {
        self.present.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::ThreadedArray;
    use std::sync::Arc;

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ecfrm-filedisk-{tag}-{}", std::process::id()))
    }

    #[test]
    fn write_read_roundtrip() {
        let p = tmpfile("rw");
        let d = FileDisk::create(&p, 8).unwrap();
        assert!(d.is_empty());
        d.write(3, vec![7u8; 8]);
        d.write(0, vec![9u8; 8]);
        assert_eq!(d.read(3), Some(vec![7u8; 8]));
        assert_eq!(d.read(0), Some(vec![9u8; 8]));
        assert_eq!(d.read(1), None, "hole must not read as zeros");
        assert_eq!(d.len(), 2);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn fail_heal_wipe() {
        let p = tmpfile("fhw");
        let d = FileDisk::create(&p, 4).unwrap();
        d.write(0, vec![1, 2, 3, 4]);
        d.fail();
        assert_eq!(d.read(0), None);
        d.heal();
        assert_eq!(d.read(0), Some(vec![1, 2, 3, 4]));
        d.wipe();
        assert_eq!(d.read(0), None);
        assert_eq!(d.len(), 0);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn reopen_sees_previous_elements() {
        let p = tmpfile("reopen");
        {
            let d = FileDisk::create(&p, 16).unwrap();
            d.write(0, vec![5u8; 16]);
            d.write(1, vec![6u8; 16]);
        }
        let d = FileDisk::open(&p, 16).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.read(1), Some(vec![6u8; 16]));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn threaded_array_over_file_disks() {
        let paths: Vec<PathBuf> = (0..3).map(|i| tmpfile(&format!("arr{i}"))).collect();
        let backends: Vec<Arc<dyn DiskBackend>> = paths
            .iter()
            .map(|p| Arc::new(FileDisk::create(p, 8).unwrap()) as Arc<dyn DiskBackend>)
            .collect();
        let array = ThreadedArray::from_backends(backends);
        array.write_batch(
            (0..9u64)
                .map(|i| (((i % 3) as usize, i / 3), vec![i as u8; 8]))
                .collect(),
        );
        let got = array.read_batch(&[(0, 0), (1, 0), (2, 2)]);
        assert_eq!(got[0], Some(vec![0u8; 8]));
        assert_eq!(got[1], Some(vec![1u8; 8]));
        assert_eq!(got[2], Some(vec![8u8; 8]));
        for p in paths {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn read_many_matches_per_element_loop() {
        let p = tmpfile("many");
        let d = FileDisk::create(&p, 8).unwrap();
        for o in [0u64, 1, 2, 5, 9] {
            d.write(o, vec![o as u8; 8]);
        }
        // Unsorted, with duplicates, holes, and out-of-range offsets.
        let offsets = [9u64, 0, 3, 1, 2, 0, 100, 5];
        let want: Vec<Option<Vec<u8>>> = offsets.iter().map(|&o| d.read(o)).collect();
        assert_eq!(d.read_many(&offsets), want);
        d.fail();
        assert_eq!(d.read_many(&offsets), vec![None; offsets.len()]);
        d.heal();
        assert_eq!(d.read_many(&offsets), want);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    #[should_panic]
    fn wrong_element_size_write_panics() {
        let p = tmpfile("wrong");
        let d = FileDisk::create(&p, 8).unwrap();
        d.write(0, vec![1u8; 4]);
    }
}

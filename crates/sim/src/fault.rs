//! Fault injection for chaos-testing the array mid-workload.
//!
//! [`FaultyDisk`] decorates any [`DiskBackend`] with an armable fault
//! that fires after a configurable number of served reads — so a test or
//! benchmark can start a workload against a healthy array and have one
//! disk die, straggle, or silently corrupt *in the middle of it*, the
//! failure timing that exercises suspect detection, degraded replanning
//! and background repair rather than the easy before-the-read case.
//!
//! Three fault kinds are modelled:
//!
//! * [`FaultKind::Kill`] — the disk stops answering entirely: reads
//!   return `None`, writes are dropped, `len()` reads 0. A killed node
//!   is indistinguishable from a crashed remote shard; recovery requires
//!   re-registering a replacement backend
//!   ([`ThreadedArray::replace_disk`](crate::ThreadedArray::replace_disk)).
//! * [`FaultKind::Delay`] — every read pays an extra service delay: the
//!   straggler that trips hedged reads and suspect timeouts.
//! * [`FaultKind::FlipCorrupt`] — served bytes come back with one bit
//!   flipped (at an offset-derived position, so no fixed byte a reader
//!   could special-case): silent corruption, invisible to the
//!   transport, caught by the store's per-element checksum
//!   verification on read or by a verifying scrub.
//!
//! ```
//! use std::sync::Arc;
//! use ecfrm_sim::{DiskBackend, FaultKind, FaultyDisk, MemDisk};
//!
//! let disk = FaultyDisk::wrap(Arc::new(MemDisk::new()));
//! disk.write(0, vec![1, 2, 3]);
//! disk.arm(FaultKind::Kill, 2); // die after two served reads
//! assert!(disk.read(0).is_some());
//! assert!(disk.read(0).is_some());
//! assert!(disk.read(0).is_none()); // the fault has fired
//! assert!(disk.fired());
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ecfrm_util::Mutex;

use crate::metrics::NetStats;
use crate::threaded::DiskBackend;

/// What a [`FaultyDisk`] does once its fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Stop answering: reads return `None`, writes are dropped.
    Kill,
    /// Serve reads after an extra per-read delay (a straggler).
    Delay(Duration),
    /// Serve reads with one bit flipped in the returned bytes, at a
    /// position derived from the element's offset (silent corruption —
    /// only checksum verification or a scrub can see it).
    FlipCorrupt,
}

/// A [`DiskBackend`] decorator that injects a fault mid-workload.
///
/// The fault is *armed* with a read countdown: the first `after_reads`
/// read attempts pass through untouched, then the fault fires and stays
/// active until [`FaultyDisk::clear`]. Attempts are counted per element
/// (a vectored read of 8 elements is 8 attempts), matching how
/// [`MemDisk`](crate::MemDisk) charges service time.
#[derive(Debug)]
pub struct FaultyDisk {
    inner: Arc<dyn DiskBackend>,
    fault: Mutex<Option<FaultKind>>,
    /// Read attempts remaining before the armed fault fires; `u64::MAX`
    /// when disarmed.
    fuse: AtomicU64,
    fired: AtomicBool,
    reads: AtomicU64,
}

impl FaultyDisk {
    /// Decorate `inner`; no fault is armed yet.
    pub fn wrap(inner: Arc<dyn DiskBackend>) -> Arc<Self> {
        Arc::new(Self {
            inner,
            fault: Mutex::new(None),
            fuse: AtomicU64::new(u64::MAX),
            fired: AtomicBool::new(false),
            reads: AtomicU64::new(0),
        })
    }

    /// Arm `kind` to fire after `after_reads` further read attempts
    /// (0 = immediately). Re-arming replaces any previous fault.
    pub fn arm(&self, kind: FaultKind, after_reads: u64) {
        *self.fault.lock() = Some(kind);
        self.fired.store(after_reads == 0, Ordering::Release);
        self.fuse.store(after_reads, Ordering::Release);
    }

    /// Disarm and deactivate any fault; the disk behaves normally again.
    pub fn clear(&self) {
        *self.fault.lock() = None;
        self.fuse.store(u64::MAX, Ordering::Release);
        self.fired.store(false, Ordering::Release);
    }

    /// True once the armed fault has fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    /// Total read attempts observed (fired or not).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Acquire)
    }

    /// The wrapped backend (e.g. to inspect surviving contents after a
    /// kill).
    pub fn inner(&self) -> &Arc<dyn DiskBackend> {
        &self.inner
    }

    /// Count `n` read attempts against the fuse and return the active
    /// fault, if it has fired.
    fn tick(&self, n: u64) -> Option<FaultKind> {
        self.reads.fetch_add(n, Ordering::AcqRel);
        let fuse = self.fuse.load(Ordering::Acquire);
        if fuse == u64::MAX {
            return None;
        }
        if !self.fired.load(Ordering::Acquire) {
            // CAS decrement: a call whose attempts still fit the fuse
            // passes through whole; a call that would overrun it fires
            // the fault for the entire call (the node died mid-request).
            let mut cur = fuse;
            loop {
                if cur == u64::MAX {
                    return None; // disarmed meanwhile
                }
                if cur < n {
                    self.fired.store(true, Ordering::Release);
                    break;
                }
                match self.fuse.compare_exchange_weak(
                    cur,
                    cur - n,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return None,
                    Err(seen) => cur = seen,
                }
            }
        }
        *self.fault.lock()
    }

    /// Flip one bit of a served element. Both the byte index and the
    /// bit are derived from the offset, so a batch of elements corrupts
    /// in different positions and nothing short of an actual integrity
    /// check (not a "first byte looks odd" heuristic) can catch it.
    fn corrupt(offset: u64, bytes: Option<Vec<u8>>) -> Option<Vec<u8>> {
        bytes.map(|mut b| {
            if !b.is_empty() {
                let byte = (offset as usize).wrapping_mul(31) % b.len();
                b[byte] ^= 1 << (offset % 8);
            }
            b
        })
    }
}

impl DiskBackend for FaultyDisk {
    /// One vectored entry point covers the whole read surface: the
    /// per-element `read` shim ticks the fuse by one through here, a
    /// vectored batch ticks it by its length. Served inline (the fault
    /// decision and any delay happen on the servicing thread), so a
    /// wrapped blocking backend keeps its timing behaviour.
    fn submit_read_many(&self, offsets: &[u64]) -> crate::reactor::IoHandle {
        let results = match self.tick(offsets.len() as u64) {
            Some(FaultKind::Kill) => vec![None; offsets.len()],
            Some(FaultKind::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.read_many(offsets)
            }
            Some(FaultKind::FlipCorrupt) => self
                .inner
                .read_many(offsets)
                .into_iter()
                .zip(offsets)
                .map(|(bytes, &off)| Self::corrupt(off, bytes))
                .collect(),
            None => self.inner.read_many(offsets),
        };
        crate::reactor::IoHandle::ready(results)
    }

    fn write(&self, offset: u64, bytes: Vec<u8>) {
        // A killed node accepts nothing; other faults leave writes alone.
        if self.fired() && matches!(*self.fault.lock(), Some(FaultKind::Kill)) {
            return;
        }
        self.inner.write(offset, bytes);
    }

    fn fail(&self) {
        self.inner.fail();
    }

    fn heal(&self) {
        self.inner.heal();
    }

    fn wipe(&self) {
        self.inner.wipe();
    }

    fn len(&self) -> usize {
        if self.fired() && matches!(*self.fault.lock(), Some(FaultKind::Kill)) {
            return 0;
        }
        self.inner.len()
    }

    fn net_stats(&self) -> Option<NetStats> {
        self.inner.net_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;

    fn loaded() -> Arc<FaultyDisk> {
        let inner = Arc::new(MemDisk::new());
        for o in 0..8u64 {
            inner.write(o, vec![o as u8; 4]);
        }
        FaultyDisk::wrap(inner)
    }

    #[test]
    fn passthrough_until_armed() {
        let d = loaded();
        assert_eq!(d.read(3), Some(vec![3; 4]));
        assert_eq!(d.read_many(&[0, 1]).len(), 2);
        assert!(!d.fired());
        assert_eq!(d.reads(), 3);
    }

    #[test]
    fn kill_fires_after_countdown_and_clears() {
        let d = loaded();
        d.arm(FaultKind::Kill, 3);
        assert!(d.read(0).is_some());
        assert!(d.read(1).is_some());
        assert!(d.read(2).is_some());
        assert!(d.read(0).is_none(), "fourth read crosses the fuse");
        assert!(d.fired());
        assert_eq!(d.read_many(&[0, 1]), vec![None, None]);
        assert_eq!(d.len(), 0);
        // Writes to a killed node are dropped.
        d.write(99, vec![1]);
        d.clear();
        assert_eq!(d.read(0), Some(vec![0; 4]));
        assert!(d.read(99).is_none(), "write during kill was dropped");
    }

    #[test]
    fn kill_counts_vectored_reads_per_element() {
        let d = loaded();
        d.arm(FaultKind::Kill, 4);
        // One 6-element batch crosses the 4-read fuse: the whole batch
        // fails (the node died mid-request).
        assert_eq!(d.read_many(&[0, 1, 2, 3, 4, 5]), vec![None; 6]);
        assert!(d.fired());
    }

    #[test]
    fn delay_serves_correct_bytes_slowly() {
        let d = loaded();
        d.arm(FaultKind::Delay(Duration::from_millis(30)), 0);
        let t0 = std::time::Instant::now();
        assert_eq!(d.read(2), Some(vec![2; 4]));
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    /// Bits that differ between `a` and `b`.
    fn hamming(a: &[u8], b: &[u8]) -> u32 {
        a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
    }

    #[test]
    fn flip_corrupt_flips_exactly_one_offset_derived_bit() {
        let d = loaded();
        d.arm(FaultKind::FlipCorrupt, 0);
        let got5 = d.read(5).unwrap();
        assert_eq!(hamming(&got5, &[5; 4]), 1, "exactly one bit flipped");
        let got2 = d.read(2).unwrap();
        assert_eq!(hamming(&got2, &[2; 4]), 1);
        // Different offsets corrupt different positions: no fixed byte
        // a reader could special-case.
        let pos = |got: &[u8], clean: u8| got.iter().position(|&x| x != clean);
        assert_ne!(pos(&got5, 5), pos(&got2, 2));
        // Absent elements stay absent, not corrupted into existence.
        assert!(d.read(100).is_none());
    }

    #[test]
    fn flip_corrupt_reaches_vectored_batch_replies() {
        let inner = Arc::new(MemDisk::new());
        for o in 0..4u64 {
            inner.write(o, vec![7u8; 16]);
        }
        let d = FaultyDisk::wrap(inner);
        d.arm(FaultKind::FlipCorrupt, 0);
        let got = d.read_many(&[0, 1, 2, 100]);
        for (i, g) in got[..3].iter().enumerate() {
            let g = g.as_ref().unwrap();
            assert_eq!(hamming(g, &[7u8; 16]), 1, "element {i}: one bit flipped");
        }
        assert_eq!(got[3], None);
        // Per-offset positions differ across the batch.
        let pos = |g: &Option<Vec<u8>>| g.as_ref().unwrap().iter().position(|&x| x != 7);
        assert_ne!(pos(&got[0]), pos(&got[1]));
    }

    #[test]
    fn flip_corrupt_reaches_threaded_array_batches() {
        use crate::ThreadedArray;
        let make = || {
            let m = Arc::new(MemDisk::new());
            for o in 0..4u64 {
                m.write(o, vec![7u8; 16]);
            }
            m
        };
        let faulty = FaultyDisk::wrap(make());
        let array = ThreadedArray::from_backends(vec![
            Arc::clone(&faulty) as Arc<dyn DiskBackend>,
            make() as Arc<dyn DiskBackend>,
        ]);
        faulty.arm(FaultKind::FlipCorrupt, 0);
        let got = array.read_batch(&[(0, 0), (0, 1), (1, 0)]);
        // The faulty disk's replies are corrupted even through the
        // array's per-disk vectored read path; the clean disk's are not.
        assert_eq!(hamming(got[0].as_ref().unwrap(), &[7u8; 16]), 1);
        assert_eq!(hamming(got[1].as_ref().unwrap(), &[7u8; 16]), 1);
        assert_eq!(got[2].as_ref().unwrap(), &vec![7u8; 16]);
    }

    #[test]
    fn arm_zero_fires_immediately() {
        let d = loaded();
        d.arm(FaultKind::Kill, 0);
        assert!(d.fired());
        assert!(d.read(0).is_none());
    }
}

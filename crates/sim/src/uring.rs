//! From-scratch io_uring submission backend for [`FileDisk`].
//!
//! The workspace carries no external dependencies, so this module talks
//! to the kernel directly: raw `io_uring_setup(2)` / `io_uring_enter(2)`
//! syscalls through the `syscall` symbol the standard library already
//! links, mmap'd submission/completion rings, and hand-laid-out SQE/CQE
//! structs matching the kernel ABI. On top of the ring sits a small
//! engine shaped exactly like the rest of the I/O core:
//!
//! * **Submission** ([`UringEngine::submit`]) — the caller hands over
//!   the present `(offset, slot)` pairs of a vectored read. They are
//!   sorted and coalesced into maximal sequential runs (duplicates
//!   share a run; runs split at a 1 MiB cap), each run becomes one
//!   `IORING_OP_READ` SQE reading into an aligned buffer from a pool,
//!   and the batch is pushed into the kernel with one
//!   `io_uring_enter`. Nothing blocks: the call returns a pending
//!   [`IoHandle`] resolved through the reactor's completion contract.
//! * **Completion** — a single poller thread per engine parks in
//!   `io_uring_enter(GETEVENTS)`, reaps CQEs, slices each run's buffer
//!   back into per-element payloads, and completes the batch's
//!   [`IoCompleter`] once its last run lands. Short reads and negative
//!   `res` values surface as `None` elements — the same failure shape
//!   as an absent element or a failed disk.
//! * **`O_DIRECT`** — the engine opens its own read descriptor with
//!   `O_DIRECT` when asked (falling back to a buffered descriptor on
//!   filesystems that refuse it, e.g. tmpfs), and widens every run to
//!   the 4 KiB alignment direct I/O demands; the aligned-buffer pool
//!   absorbs the slop. Buffered writes stay coherent: Linux flushes
//!   dirty pages in the range before servicing a direct read.
//!
//! # Lifecycle invariant
//!
//! Every submitted batch completes exactly once. [`UringEngine::kill`]
//! (the `FaultyDisk`-style fault hook, also the first half of
//! [`UringEngine::shutdown`]) drops every pending batch's completer —
//! waiters resolve all-`None` immediately — while in-flight kernel
//! reads keep their buffers alive until their CQEs drain, so a killed
//! poller can neither hang a waiter nor free memory the kernel is still
//! writing into.
//!
//! Availability is probed once per process ([`supported`]); the
//! blocking sorted-run pass in [`FileDisk`] remains the portable
//! fallback on other platforms, old kernels, and
//! `ECFRM_FORCE_FILE_IO=blocking`.
//!
//! [`FileDisk`]: crate::file_disk::FileDisk
//! [`IoHandle`]: crate::reactor::IoHandle
//! [`IoCompleter`]: crate::reactor::IoCompleter

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Cumulative process-wide counters for every uring engine, plus the
/// in-flight gauge. Zero (and frozen) on platforms without io_uring.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UringSnapshot {
    /// Engines created over the process lifetime.
    pub engines: u64,
    /// Run SQEs pushed into kernel submission queues.
    pub sqes_submitted: u64,
    /// Run CQEs reaped from kernel completion queues.
    pub cqes_completed: u64,
    /// Vectored batches submitted (one per `submit_read_many`).
    pub batches: u64,
    /// `io_uring_enter` syscalls issued (submit and wait sides).
    pub enter_calls: u64,
    /// Runs whose read ended short of a requested element (the element
    /// reads as `None`).
    pub short_reads: u64,
    /// Runs completed with a negative `res` (every covered element
    /// reads as `None`).
    pub io_errors: u64,
    /// Engines that wanted `O_DIRECT` and got it.
    pub direct_opens: u64,
    /// Engines that fell back to a buffered descriptor.
    pub buffered_opens: u64,
    /// Run SQEs currently inside the kernel, across all engines.
    pub inflight: i64,
}

static ENGINES: AtomicU64 = AtomicU64::new(0);
static SQES: AtomicU64 = AtomicU64::new(0);
static CQES: AtomicU64 = AtomicU64::new(0);
static BATCHES: AtomicU64 = AtomicU64::new(0);
static ENTERS: AtomicU64 = AtomicU64::new(0);
static SHORT_READS: AtomicU64 = AtomicU64::new(0);
static IO_ERRORS: AtomicU64 = AtomicU64::new(0);
static DIRECT_OPENS: AtomicU64 = AtomicU64::new(0);
static BUFFERED_OPENS: AtomicU64 = AtomicU64::new(0);
static INFLIGHT: AtomicI64 = AtomicI64::new(0);

/// Snapshot the process-wide uring engine counters.
pub fn snapshot() -> UringSnapshot {
    UringSnapshot {
        engines: ENGINES.load(Ordering::Relaxed),
        sqes_submitted: SQES.load(Ordering::Relaxed),
        cqes_completed: CQES.load(Ordering::Relaxed),
        batches: BATCHES.load(Ordering::Relaxed),
        enter_calls: ENTERS.load(Ordering::Relaxed),
        short_reads: SHORT_READS.load(Ordering::Relaxed),
        io_errors: IO_ERRORS.load(Ordering::Relaxed),
        direct_opens: DIRECT_OPENS.load(Ordering::Relaxed),
        buffered_opens: BUFFERED_OPENS.load(Ordering::Relaxed),
        inflight: INFLIGHT.load(Ordering::Relaxed),
    }
}

impl UringSnapshot {
    /// Fold this snapshot into a recorder as `io.uring_*` gauges set to
    /// the engines' lifetime totals (`io.uring_inflight` is the live
    /// point-in-time gauge).
    pub fn record_into(&self, recorder: &ecfrm_obs::Recorder) {
        recorder.gauge("io.uring_engines").set(self.engines as i64);
        recorder
            .gauge("io.uring_sqes")
            .set(self.sqes_submitted as i64);
        recorder
            .gauge("io.uring_cqes")
            .set(self.cqes_completed as i64);
        recorder.gauge("io.uring_batches").set(self.batches as i64);
        recorder
            .gauge("io.uring_enters")
            .set(self.enter_calls as i64);
        recorder
            .gauge("io.uring_short_reads")
            .set(self.short_reads as i64);
        recorder.gauge("io.uring_errors").set(self.io_errors as i64);
        recorder
            .gauge("io.uring_direct_opens")
            .set(self.direct_opens as i64);
        recorder
            .gauge("io.uring_buffered_opens")
            .set(self.buffered_opens as i64);
        recorder.gauge("io.uring_inflight").set(self.inflight);
    }
}

#[cfg(target_os = "linux")]
pub use imp::{supported, UringEngine};

#[cfg(not(target_os = "linux"))]
pub use portable::{supported, UringEngine};

#[cfg(target_os = "linux")]
mod imp {
    use std::collections::{HashMap, VecDeque};
    use std::fs::{File, OpenOptions};
    use std::io;
    use std::os::raw::{c_int, c_long, c_void};
    use std::os::unix::fs::OpenOptionsExt;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::{Arc, OnceLock};
    use std::thread::JoinHandle;

    use ecfrm_util::Mutex;

    use super::{
        BATCHES, BUFFERED_OPENS, CQES, DIRECT_OPENS, ENGINES, ENTERS, INFLIGHT, IO_ERRORS,
        SHORT_READS, SQES,
    };
    use crate::reactor::{io_pair, IoCompleter, IoHandle, IoResults};

    const SYS_IO_URING_SETUP: c_long = 425;
    const SYS_IO_URING_ENTER: c_long = 426;

    const IORING_OFF_SQ_RING: i64 = 0;
    const IORING_OFF_CQ_RING: i64 = 0x800_0000;
    const IORING_OFF_SQES: i64 = 0x1000_0000;
    const IORING_ENTER_GETEVENTS: u32 = 1;
    const IORING_FEAT_SINGLE_MMAP: u32 = 1;
    const IORING_OP_NOP: u8 = 0;
    const IORING_OP_READ: u8 = 22;

    const PROT_READ: c_int = 1;
    const PROT_WRITE: c_int = 2;
    const MAP_SHARED: c_int = 1;
    const MAP_POPULATE: c_int = 0x8000;
    const EINTR: i32 = 4;

    /// `O_DIRECT` is architecture-dependent: octal 040000 on x86,
    /// 0200000 on the asm-generic table (aarch64, riscv, ...).
    #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
    const O_DIRECT: i32 = 0o040000;
    #[cfg(not(any(target_arch = "x86_64", target_arch = "x86")))]
    const O_DIRECT: i32 = 0o200000;

    /// Alignment direct I/O demands of offset, length, and buffer
    /// address. 4 KiB covers every logical block size in practice.
    const DIRECT_ALIGN: u64 = 4096;
    /// Cap on the aligned byte span of one run (one SQE): long
    /// sequential scans split rather than monopolising buffers.
    const MAX_RUN_BYTES: u64 = 1 << 20;
    /// Aligned buffers retained for reuse per engine.
    const POOL_KEEP: usize = 16;
    /// `user_data` of the poller-wakeup NOP; never assigned to a run.
    const NOP_ID: u64 = u64::MAX;

    extern "C" {
        fn syscall(num: c_long, ...) -> c_long;
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct SqOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        flags: u32,
        dropped: u32,
        array: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct CqOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        overflow: u32,
        cqes: u32,
        flags: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct IoUringParams {
        sq_entries: u32,
        cq_entries: u32,
        flags: u32,
        sq_thread_cpu: u32,
        sq_thread_idle: u32,
        features: u32,
        wq_fd: u32,
        resv: [u32; 3],
        sq_off: SqOffsets,
        cq_off: CqOffsets,
    }

    /// One submission queue entry, kernel ABI layout (64 bytes).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Sqe {
        opcode: u8,
        flags: u8,
        ioprio: u16,
        fd: i32,
        off: u64,
        addr: u64,
        len: u32,
        rw_flags: u32,
        user_data: u64,
        buf_index: u16,
        personality: u16,
        splice_fd_in: i32,
        addr3: u64,
        pad2: u64,
    }

    impl Sqe {
        fn read(fd: i32, file_off: u64, buf: u64, len: u32, user_data: u64) -> Self {
            let mut sqe: Sqe = unsafe { std::mem::zeroed() };
            sqe.opcode = IORING_OP_READ;
            sqe.fd = fd;
            sqe.off = file_off;
            sqe.addr = buf;
            sqe.len = len;
            sqe.user_data = user_data;
            sqe
        }

        fn nop() -> Self {
            let mut sqe: Sqe = unsafe { std::mem::zeroed() };
            sqe.opcode = IORING_OP_NOP;
            sqe.fd = -1;
            sqe.user_data = NOP_ID;
            sqe
        }
    }

    /// One completion queue entry, kernel ABI layout (16 bytes).
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    struct Cqe {
        user_data: u64,
        res: i32,
        flags: u32,
    }

    /// The mmap'd ring pair plus the ring file descriptor.
    ///
    /// SQ-side pointers (tail store, SQE array) are only touched under
    /// the engine's submission lock; CQ-side pointers only by the
    /// poller thread. Head/tail words are genuinely shared with the
    /// kernel and accessed as atomics with acquire/release ordering, as
    /// the io_uring ABI requires.
    struct Ring {
        fd: c_int,
        sq_ptr: *mut u8,
        sq_map_len: usize,
        cq_ptr: *mut u8,
        cq_map_len: usize,
        single_mmap: bool,
        sqes_ptr: *mut Sqe,
        sqes_map_len: usize,
        sq_head: *const AtomicU32,
        sq_tail: *const AtomicU32,
        sq_mask: u32,
        sq_entries: u32,
        sq_array: *mut u32,
        cq_head: *const AtomicU32,
        cq_tail: *const AtomicU32,
        cq_mask: u32,
        cqes: *const Cqe,
    }

    // SAFETY: the raw pointers address kernel-shared ring memory that
    // lives as long as the Ring; cross-thread access is disciplined as
    // described on the struct (locked SQ side, single-threaded CQ side,
    // atomic head/tail).
    unsafe impl Send for Ring {}
    unsafe impl Sync for Ring {}

    fn ring_mmap(len: usize, fd: c_int, offset: i64) -> io::Result<*mut u8> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_POPULATE,
                fd,
                offset,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(ptr as *mut u8)
    }

    impl Ring {
        /// `io_uring_setup` + the three (or two) ring mmaps.
        fn setup(entries: u32) -> io::Result<Self> {
            let mut params = IoUringParams::default();
            let fd = unsafe {
                syscall(
                    SYS_IO_URING_SETUP,
                    entries as c_long,
                    &mut params as *mut IoUringParams as c_long,
                )
            };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let fd = fd as c_int;
            let close_on_err = |e: io::Error| {
                // SAFETY: fd came from io_uring_setup above and has not
                // been handed anywhere else.
                unsafe { drop(File::from_raw_fd(fd)) };
                Err(e)
            };
            use std::os::unix::io::FromRawFd;
            let sq_len = params.sq_off.array as usize + params.sq_entries as usize * 4;
            let cq_len = params.cq_off.cqes as usize
                + params.cq_entries as usize * std::mem::size_of::<Cqe>();
            let single_mmap = params.features & IORING_FEAT_SINGLE_MMAP != 0;
            let sq_map_len = if single_mmap {
                sq_len.max(cq_len)
            } else {
                sq_len
            };
            let sq_ptr = match ring_mmap(sq_map_len, fd, IORING_OFF_SQ_RING) {
                Ok(p) => p,
                Err(e) => return close_on_err(e),
            };
            let (cq_ptr, cq_map_len) = if single_mmap {
                (sq_ptr, sq_map_len)
            } else {
                match ring_mmap(cq_len, fd, IORING_OFF_CQ_RING) {
                    Ok(p) => (p, cq_len),
                    Err(e) => {
                        unsafe { munmap(sq_ptr as *mut c_void, sq_map_len) };
                        return close_on_err(e);
                    }
                }
            };
            let sqes_map_len = params.sq_entries as usize * std::mem::size_of::<Sqe>();
            let sqes_ptr = match ring_mmap(sqes_map_len, fd, IORING_OFF_SQES) {
                Ok(p) => p as *mut Sqe,
                Err(e) => {
                    unsafe {
                        munmap(sq_ptr as *mut c_void, sq_map_len);
                        if !single_mmap {
                            munmap(cq_ptr as *mut c_void, cq_map_len);
                        }
                    }
                    return close_on_err(e);
                }
            };
            // SAFETY: all offsets come from the kernel's own params and
            // stay within the mapped lengths computed from them.
            unsafe {
                Ok(Self {
                    fd,
                    sq_ptr,
                    sq_map_len,
                    cq_ptr,
                    cq_map_len,
                    single_mmap,
                    sqes_ptr,
                    sqes_map_len,
                    sq_head: sq_ptr.add(params.sq_off.head as usize) as *const AtomicU32,
                    sq_tail: sq_ptr.add(params.sq_off.tail as usize) as *const AtomicU32,
                    sq_mask: *(sq_ptr.add(params.sq_off.ring_mask as usize) as *const u32),
                    sq_entries: params.sq_entries,
                    sq_array: sq_ptr.add(params.sq_off.array as usize) as *mut u32,
                    cq_head: cq_ptr.add(params.cq_off.head as usize) as *const AtomicU32,
                    cq_tail: cq_ptr.add(params.cq_off.tail as usize) as *const AtomicU32,
                    cq_mask: *(cq_ptr.add(params.cq_off.ring_mask as usize) as *const u32),
                    cqes: cq_ptr.add(params.cq_off.cqes as usize) as *const Cqe,
                })
            }
        }

        /// Stage one SQE; `false` when the submission ring is full.
        /// Caller must hold the engine's submission lock.
        fn sq_push(&self, sqe: &Sqe) -> bool {
            // SAFETY: ring pointers are valid for the Ring's lifetime;
            // the submission side is exclusive under the caller's lock.
            unsafe {
                let tail = (*self.sq_tail).load(Ordering::Relaxed);
                let head = (*self.sq_head).load(Ordering::Acquire);
                if tail.wrapping_sub(head) >= self.sq_entries {
                    return false;
                }
                let idx = tail & self.sq_mask;
                *self.sqes_ptr.add(idx as usize) = *sqe;
                *self.sq_array.add(idx as usize) = idx;
                (*self.sq_tail).store(tail.wrapping_add(1), Ordering::Release);
            }
            true
        }

        /// `io_uring_enter`, retrying on `EINTR`.
        fn enter(&self, to_submit: u32, min_complete: u32, flags: u32) -> io::Result<i32> {
            loop {
                let r = unsafe {
                    syscall(
                        SYS_IO_URING_ENTER,
                        self.fd as c_long,
                        to_submit as c_long,
                        min_complete as c_long,
                        flags as c_long,
                        0 as c_long,
                        0 as c_long,
                    )
                };
                ENTERS.fetch_add(1, Ordering::Relaxed);
                if r >= 0 {
                    return Ok(r as i32);
                }
                let e = io::Error::last_os_error();
                if e.raw_os_error() == Some(EINTR) {
                    continue;
                }
                return Err(e);
            }
        }

        /// Drain every available CQE into `out`. Poller thread only.
        fn reap(&self, out: &mut Vec<Cqe>) {
            // SAFETY: the completion side is exclusive to the poller;
            // the tail load synchronises with the kernel's publishes.
            unsafe {
                let mut head = (*self.cq_head).load(Ordering::Relaxed);
                let tail = (*self.cq_tail).load(Ordering::Acquire);
                while head != tail {
                    out.push(*self.cqes.add((head & self.cq_mask) as usize));
                    head = head.wrapping_add(1);
                }
                (*self.cq_head).store(head, Ordering::Release);
            }
        }
    }

    impl Drop for Ring {
        fn drop(&mut self) {
            // SAFETY: mappings and fd are owned by this Ring and not
            // referenced after drop.
            unsafe {
                munmap(self.sqes_ptr as *mut c_void, self.sqes_map_len);
                munmap(self.sq_ptr as *mut c_void, self.sq_map_len);
                if !self.single_mmap {
                    munmap(self.cq_ptr as *mut c_void, self.cq_map_len);
                }
                use std::os::unix::io::FromRawFd;
                drop(File::from_raw_fd(self.fd));
            }
        }
    }

    /// A page-aligned allocation satisfying `O_DIRECT`'s buffer-address
    /// requirement.
    struct AlignedBuf {
        ptr: std::ptr::NonNull<u8>,
        cap: usize,
    }

    // SAFETY: the buffer is uniquely owned; only one thread touches it
    // at a time (submitter fills metadata, kernel DMA, then poller).
    unsafe impl Send for AlignedBuf {}

    impl AlignedBuf {
        fn new(cap: usize) -> Self {
            let layout = std::alloc::Layout::from_size_align(cap, DIRECT_ALIGN as usize)
                .expect("aligned buffer layout");
            // SAFETY: layout has non-zero size.
            let ptr = unsafe { std::alloc::alloc(layout) };
            let Some(ptr) = std::ptr::NonNull::new(ptr) else {
                std::alloc::handle_alloc_error(layout);
            };
            Self { ptr, cap }
        }

        fn addr(&self) -> u64 {
            self.ptr.as_ptr() as u64
        }

        /// The first `len` bytes, as written by the kernel.
        fn filled(&self, len: usize) -> &[u8] {
            debug_assert!(len <= self.cap);
            // SAFETY: in bounds per the assert; the kernel has finished
            // writing (the CQE for this buffer's run was reaped).
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), len) }
        }
    }

    impl Drop for AlignedBuf {
        fn drop(&mut self) {
            let layout = std::alloc::Layout::from_size_align(self.cap, DIRECT_ALIGN as usize)
                .expect("aligned buffer layout");
            // SAFETY: allocated with this exact layout in new().
            unsafe { std::alloc::dealloc(self.ptr.as_ptr(), layout) };
        }
    }

    /// One coalesced sequential run: a single SQE's worth of file span
    /// plus the output slots it serves.
    struct Run {
        id: u64,
        batch: u64,
        buf: AlignedBuf,
        file_off: u64,
        len: u32,
        /// `(output slot, byte position within the run buffer)`.
        slots: Vec<(usize, usize)>,
    }

    /// One in-flight vectored batch being assembled from its runs.
    struct Batch {
        completer: IoCompleter,
        out: IoResults,
        remaining: usize,
    }

    #[derive(Default)]
    struct Inner {
        pending: VecDeque<Run>,
        runs: HashMap<u64, Run>,
        batches: HashMap<u64, Batch>,
        next_id: u64,
        inflight: u32,
        killed: bool,
    }

    /// Probe io_uring availability once per process: create (and
    /// immediately tear down) a tiny ring. `false` on old kernels and
    /// kernels with io_uring administratively disabled.
    pub fn supported() -> bool {
        static PROBE: OnceLock<bool> = OnceLock::new();
        *PROBE.get_or_init(|| Ring::setup(4).is_ok())
    }

    /// The per-file io_uring engine behind
    /// [`FileDisk`](crate::file_disk::FileDisk)'s async backend: its own
    /// read descriptor (direct or buffered), one ring, one poller
    /// thread, and an aligned-buffer pool.
    pub struct UringEngine {
        ring: Ring,
        /// Keeps the read descriptor alive; reads use the raw fd.
        _file: File,
        file_fd: c_int,
        direct: bool,
        element_size: u64,
        buf_cap: usize,
        max_inflight: u32,
        pool: Mutex<Vec<AlignedBuf>>,
        inner: Mutex<Inner>,
        poller: Mutex<Option<JoinHandle<()>>>,
    }

    impl std::fmt::Debug for UringEngine {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "UringEngine(depth {}, {})",
                self.max_inflight,
                if self.direct { "O_DIRECT" } else { "buffered" }
            )
        }
    }

    impl UringEngine {
        /// Open `path` for uring reads of `element_size`-byte elements
        /// with up to `depth` runs in flight. `want_direct` asks for
        /// `O_DIRECT` (falling back to a buffered descriptor where the
        /// filesystem refuses it).
        pub fn new(
            path: &Path,
            element_size: usize,
            depth: u32,
            want_direct: bool,
        ) -> io::Result<Arc<Self>> {
            assert!(element_size > 0, "element size must be positive");
            let depth = depth.clamp(1, 4096).next_power_of_two();
            let (file, direct) = if want_direct {
                match OpenOptions::new()
                    .read(true)
                    .custom_flags(O_DIRECT)
                    .open(path)
                {
                    Ok(f) => (f, true),
                    Err(_) => (OpenOptions::new().read(true).open(path)?, false),
                }
            } else {
                (OpenOptions::new().read(true).open(path)?, false)
            };
            let ring = Ring::setup(depth)?;
            let align = if direct { DIRECT_ALIGN } else { 1 };
            // Every run's aligned span fits one pool buffer: at least
            // one element plus both alignment fringes, normally the run
            // cap.
            let buf_cap = (MAX_RUN_BYTES.max(element_size as u64) + 2 * align) as usize;
            ENGINES.fetch_add(1, Ordering::Relaxed);
            if direct {
                DIRECT_OPENS.fetch_add(1, Ordering::Relaxed);
            } else {
                BUFFERED_OPENS.fetch_add(1, Ordering::Relaxed);
            }
            let engine = Arc::new(Self {
                ring,
                file_fd: file.as_raw_fd(),
                _file: file,
                direct,
                element_size: element_size as u64,
                buf_cap,
                max_inflight: depth,
                pool: Mutex::new(Vec::new()),
                inner: Mutex::new(Inner::default()),
                poller: Mutex::new(None),
            });
            let for_poller = Arc::clone(&engine);
            let handle = std::thread::Builder::new()
                .name("ecfrm-uring-poller".into())
                .spawn(move || for_poller.poller_loop())
                .expect("spawn uring poller");
            *engine.poller.lock() = Some(handle);
            Ok(engine)
        }

        /// Whether the read descriptor is `O_DIRECT`.
        pub fn is_direct(&self) -> bool {
            self.direct
        }

        fn align_down(&self, pos: u64) -> u64 {
            if self.direct {
                pos & !(DIRECT_ALIGN - 1)
            } else {
                pos
            }
        }

        fn align_up(&self, pos: u64) -> u64 {
            if self.direct {
                (pos + DIRECT_ALIGN - 1) & !(DIRECT_ALIGN - 1)
            } else {
                pos
            }
        }

        fn buf_get(&self) -> AlignedBuf {
            self.pool
                .lock()
                .pop()
                .unwrap_or_else(|| AlignedBuf::new(self.buf_cap))
        }

        fn buf_put(&self, buf: AlignedBuf) {
            let mut pool = self.pool.lock();
            if pool.len() < POOL_KEEP {
                pool.push(buf);
            }
        }

        /// Submit a vectored read: `wanted` holds the present `(element
        /// offset, output slot)` pairs of a request covering `n_out`
        /// offsets. Returns a pending handle that completes from the
        /// poller; nothing blocks. After [`Self::kill`], the handle
        /// resolves all-`None` immediately.
        pub fn submit(&self, mut wanted: Vec<(u64, usize)>, n_out: usize) -> IoHandle {
            if wanted.is_empty() {
                return IoHandle::ready(vec![None; n_out]);
            }
            wanted.sort_unstable();
            let es = self.element_size;
            // Coalesce into maximal sequential runs, splitting when the
            // aligned span would outgrow one pool buffer. Duplicate
            // offsets share their run (extra slots, same span).
            struct Pending {
                first: u64,
                last: u64,
                slots: Vec<(usize, u64)>, // (output slot, element offset)
            }
            let mut runs: Vec<Pending> = Vec::new();
            for (offset, slot) in wanted {
                match runs.last_mut() {
                    Some(run) if offset == run.last => run.slots.push((slot, offset)),
                    Some(run)
                        if offset == run.last + 1
                            && self.align_up((offset + 1) * es)
                                - self.align_down(run.first * es)
                                <= self.buf_cap as u64 =>
                    {
                        run.last = offset;
                        run.slots.push((slot, offset));
                    }
                    _ => runs.push(Pending {
                        first: offset,
                        last: offset,
                        slots: vec![(slot, offset)],
                    }),
                }
            }
            let (handle, completer) = io_pair(n_out);
            let mut inner = self.inner.lock();
            if inner.killed {
                drop(inner);
                drop(completer); // delivers all-None
                return handle;
            }
            BATCHES.fetch_add(1, Ordering::Relaxed);
            let batch_id = inner.next_id;
            inner.next_id += 1;
            inner.batches.insert(
                batch_id,
                Batch {
                    completer,
                    out: vec![None; n_out],
                    remaining: runs.len(),
                },
            );
            for run in runs {
                let file_off = self.align_down(run.first * es);
                let len = self.align_up((run.last + 1) * es) - file_off;
                debug_assert!(len <= self.buf_cap as u64);
                let id = inner.next_id;
                inner.next_id += 1;
                inner.pending.push_back(Run {
                    id,
                    batch: batch_id,
                    buf: self.buf_get(),
                    file_off,
                    len: len as u32,
                    slots: run
                        .slots
                        .into_iter()
                        .map(|(slot, offset)| (slot, (offset * es - file_off) as usize))
                        .collect(),
                });
            }
            self.flush_locked(&mut inner);
            handle
        }

        /// Push pending runs into the kernel up to the ring depth, then
        /// submit them with one `io_uring_enter`. Caller holds `inner`.
        fn flush_locked(&self, inner: &mut Inner) {
            let mut to_submit = 0u32;
            while inner.inflight < self.max_inflight {
                let Some(run) = inner.pending.pop_front() else {
                    break;
                };
                let sqe = Sqe::read(self.file_fd, run.file_off, run.buf.addr(), run.len, run.id);
                if !self.ring.sq_push(&sqe) {
                    inner.pending.push_front(run);
                    break;
                }
                inner.runs.insert(run.id, run);
                inner.inflight += 1;
                to_submit += 1;
                SQES.fetch_add(1, Ordering::Relaxed);
                INFLIGHT.fetch_add(1, Ordering::Relaxed);
            }
            if to_submit > 0 && self.ring.enter(to_submit, 0, 0).is_err() {
                // Submission failing outright means the ring is gone;
                // fail the engine rather than hang its waiters.
                self.kill_locked(inner);
            }
        }

        /// The completion side: park in the kernel until CQEs arrive,
        /// slice run buffers into elements, complete finished batches.
        fn poller_loop(self: Arc<Self>) {
            let mut cqes: Vec<Cqe> = Vec::new();
            loop {
                self.ring.reap(&mut cqes);
                if cqes.is_empty() {
                    {
                        let inner = self.inner.lock();
                        if inner.killed && inner.inflight == 0 {
                            return;
                        }
                    }
                    if self.ring.enter(0, 1, IORING_ENTER_GETEVENTS).is_err() {
                        let mut inner = self.inner.lock();
                        self.kill_locked(&mut inner);
                        if inner.inflight == 0 {
                            return;
                        }
                    }
                    continue;
                }
                let mut finished: Vec<(IoCompleter, IoResults)> = Vec::new();
                {
                    let mut inner = self.inner.lock();
                    for cqe in cqes.drain(..) {
                        let Some(run) = inner.runs.remove(&cqe.user_data) else {
                            continue; // wake-up NOP
                        };
                        inner.inflight -= 1;
                        CQES.fetch_add(1, Ordering::Relaxed);
                        INFLIGHT.fetch_add(-1, Ordering::Relaxed);
                        if let Some(batch) = inner.batches.get_mut(&run.batch) {
                            if cqe.res < 0 {
                                IO_ERRORS.fetch_add(1, Ordering::Relaxed);
                            } else {
                                let got = run.buf.filled((cqe.res as u32).min(run.len) as usize);
                                let es = self.element_size as usize;
                                for &(slot, pos) in &run.slots {
                                    if pos + es <= got.len() {
                                        batch.out[slot] = Some(got[pos..pos + es].to_vec());
                                    } else {
                                        SHORT_READS.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            batch.remaining -= 1;
                            if batch.remaining == 0 {
                                let batch = inner.batches.remove(&run.batch).expect("batch exists");
                                finished.push((batch.completer, batch.out));
                            }
                        }
                        self.buf_put(run.buf);
                    }
                    if inner.killed {
                        if inner.inflight == 0 {
                            drop(inner);
                            for (completer, out) in finished {
                                completer.complete(out);
                            }
                            return;
                        }
                    } else {
                        self.flush_locked(&mut inner);
                    }
                }
                for (completer, out) in finished {
                    completer.complete(out);
                }
            }
        }

        fn kill_locked(&self, inner: &mut Inner) {
            if inner.killed {
                return;
            }
            inner.killed = true;
            // Unsubmitted runs carry no kernel references: free now.
            inner.pending.clear();
            // Dropping the batches drops their completers — every
            // outstanding handle resolves all-None immediately.
            inner.batches.clear();
        }

        /// Kill the engine mid-flight (the `FaultyDisk`-style fault
        /// hook): every outstanding and future handle resolves
        /// all-`None`; in-flight kernel reads drain into their (still
        /// live) buffers and are discarded.
        pub fn kill(&self) {
            let mut inner = self.inner.lock();
            let was_killed = inner.killed;
            self.kill_locked(&mut inner);
            if !was_killed && inner.inflight == 0 {
                // The poller may be parked with nothing in flight; wake
                // it with a NOP so it can observe the kill and exit.
                if self.ring.sq_push(&Sqe::nop()) {
                    let _ = self.ring.enter(1, 0, 0);
                }
            }
        }

        /// Kill the engine and join its poller thread. Idempotent.
        pub fn shutdown(&self) {
            self.kill();
            if let Some(handle) = self.poller.lock().take() {
                let _ = handle.join();
            }
        }
    }

    impl Drop for UringEngine {
        fn drop(&mut self) {
            self.shutdown();
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::io::Write;

        fn tmpfile(tag: &str) -> std::path::PathBuf {
            std::env::temp_dir().join(format!("ecfrm-uring-{tag}-{}", std::process::id()))
        }

        fn write_elements(path: &Path, es: usize, n: u64) {
            let mut f = File::create(path).unwrap();
            for o in 0..n {
                let byte = (o % 251) as u8;
                f.write_all(&vec![byte; es]).unwrap();
            }
            f.sync_all().unwrap();
        }

        #[test]
        fn probe_is_stable() {
            assert_eq!(supported(), supported());
        }

        #[test]
        fn roundtrip_with_coalescing_and_duplicates() {
            if !supported() {
                eprintln!("io_uring unsupported on this kernel — skipped");
                return;
            }
            let path = tmpfile("rt");
            const ES: usize = 4097; // straddles the 4 KiB alignment
            write_elements(&path, ES, 32);
            let engine = UringEngine::new(&path, ES, 8, true).unwrap();
            // Sequential run + duplicate + isolated elements, unsorted.
            let wanted = vec![(5u64, 0), (6, 1), (7, 2), (5, 3), (0, 4), (31, 5)];
            let got = engine.submit(wanted, 7).wait();
            for (i, want_off) in [(0, 5u64), (1, 6), (2, 7), (3, 5), (4, 0), (5, 31)] {
                assert_eq!(
                    got[i].as_deref(),
                    Some(&vec![(want_off % 251) as u8; ES][..]),
                    "slot {i}"
                );
            }
            assert_eq!(got[6], None, "slot with no present offset stays None");
            engine.shutdown();
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn many_batches_in_flight_on_a_tiny_ring() {
            if !supported() {
                eprintln!("io_uring unsupported on this kernel — skipped");
                return;
            }
            let path = tmpfile("depth");
            const ES: usize = 512;
            write_elements(&path, ES, 64);
            // Depth 2 forces the pending queue to absorb the overflow.
            let engine = UringEngine::new(&path, ES, 2, true).unwrap();
            let handles: Vec<_> = (0..16)
                .map(|i| {
                    let wanted: Vec<(u64, usize)> =
                        (0..8u64).map(|o| ((o * 7 + i) % 64, o as usize)).collect();
                    (i, wanted.clone(), engine.submit(wanted, 8))
                })
                .collect();
            for (i, wanted, handle) in handles {
                let got = handle.wait();
                for (offset, slot) in wanted {
                    assert_eq!(
                        got[slot].as_deref(),
                        Some(&vec![(offset % 251) as u8; ES][..]),
                        "batch {i} slot {slot}"
                    );
                }
            }
            engine.shutdown();
            let _ = std::fs::remove_file(&path);
        }

        #[test]
        fn kill_resolves_everything_all_none() {
            if !supported() {
                eprintln!("io_uring unsupported on this kernel — skipped");
                return;
            }
            let path = tmpfile("kill");
            const ES: usize = 4096;
            write_elements(&path, ES, 128);
            let engine = UringEngine::new(&path, ES, 4, true).unwrap();
            let handles: Vec<_> = (0..32)
                .map(|_| engine.submit((0..64u64).map(|o| (o, o as usize)).collect(), 64))
                .collect();
            engine.kill();
            for handle in handles {
                let got = handle.wait(); // must not hang
                assert_eq!(got.len(), 64);
            }
            // Post-kill submissions resolve all-None immediately.
            let got = engine.submit(vec![(0, 0)], 1).wait();
            assert_eq!(got, vec![None]);
            engine.shutdown(); // idempotent with the kill
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod portable {
    use std::io;
    use std::path::Path;
    use std::sync::Arc;

    use crate::reactor::IoHandle;

    /// io_uring is Linux-only: always `false` here.
    pub fn supported() -> bool {
        false
    }

    /// Stub for platforms without io_uring; construction always fails,
    /// so [`FileDisk`](crate::file_disk::FileDisk) stays on the
    /// blocking sorted-run path.
    #[derive(Debug)]
    pub struct UringEngine {
        never: std::convert::Infallible,
    }

    impl UringEngine {
        /// Always `Err(Unsupported)` on this platform.
        pub fn new(
            _path: &Path,
            _element_size: usize,
            _depth: u32,
            _want_direct: bool,
        ) -> io::Result<Arc<Self>> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "io_uring is only available on Linux",
            ))
        }

        /// Unreachable: the stub cannot be constructed.
        pub fn is_direct(&self) -> bool {
            match self.never {}
        }

        /// Unreachable: the stub cannot be constructed.
        pub fn submit(&self, _wanted: Vec<(u64, usize)>, _n_out: usize) -> IoHandle {
            match self.never {}
        }

        /// Unreachable: the stub cannot be constructed.
        pub fn kill(&self) {
            match self.never {}
        }

        /// Unreachable: the stub cannot be constructed.
        pub fn shutdown(&self) {
            match self.never {}
        }
    }
}

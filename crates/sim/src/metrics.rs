//! Small statistics helpers for the experiment harnesses.
//!
//! The network transport counters that used to live here moved to
//! `ecfrm-obs` (the observability substrate); they are re-exported
//! under their old names so existing `ecfrm_sim::{NetCounters,
//! NetStats}` imports keep working.

pub use ecfrm_obs::{NetCounters, NetStats};

/// Bytes over milliseconds, reported as MB/s (1 MB = 10^6 bytes, matching
/// the disk model's transfer-rate convention and the paper's MB/s axes).
pub fn speed_mb_s(bytes: usize, time_ms: f64) -> f64 {
    assert!(time_ms > 0.0, "speed of an instantaneous read is undefined");
    (bytes as f64 / 1e6) / (time_ms / 1e3)
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation; 0.0 for fewer than two points.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Summary statistics of one experiment series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Summarise a series. All-zero for an empty input.
    pub fn of(xs: &[f64]) -> Self {
        Self {
            count: xs.len(),
            mean: mean(xs),
            stddev: stddev(xs),
            min: xs
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min)
                .min(f64::INFINITY),
            max: xs
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
                .max(f64::NEG_INFINITY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_conversion() {
        // 10 MB in 100 ms = 100 MB/s.
        assert!((speed_mb_s(10_000_000, 100.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((stddev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn empty_series() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn summary_of_series() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    #[should_panic]
    fn zero_time_speed_panics() {
        speed_mb_s(1, 0.0);
    }
}

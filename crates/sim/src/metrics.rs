//! Small statistics helpers for the experiment harnesses, plus the
//! network transport counters surfaced by remote disk backends.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes over milliseconds, reported as MB/s (1 MB = 10^6 bytes, matching
/// the disk model's transfer-rate convention and the paper's MB/s axes).
pub fn speed_mb_s(bytes: usize, time_ms: f64) -> f64 {
    assert!(time_ms > 0.0, "speed of an instantaneous read is undefined");
    (bytes as f64 / 1e6) / (time_ms / 1e3)
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation; 0.0 for fewer than two points.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Summary statistics of one experiment series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Summarise a series. All-zero for an empty input.
    pub fn of(xs: &[f64]) -> Self {
        Self {
            count: xs.len(),
            mean: mean(xs),
            stddev: stddev(xs),
            min: xs
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min)
                .min(f64::INFINITY),
            max: xs
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
                .max(f64::NEG_INFINITY),
        }
    }
}

/// Thread-safe network transport counters, incremented by remote disk
/// clients (`ecfrm-net`) and snapshotted into [`NetStats`] for reporting.
#[derive(Debug, Default)]
pub struct NetCounters {
    /// Requests re-sent after an error or timeout.
    pub retries: AtomicU64,
    /// Hedge requests launched against a second connection.
    pub hedges: AtomicU64,
    /// Hedge requests whose response arrived before the primary's.
    pub hedge_wins: AtomicU64,
    /// Requests that hit their per-request deadline.
    pub timeouts: AtomicU64,
    /// Connections re-established after a transport error.
    pub reconnects: AtomicU64,
    /// Requests that exhausted every retry and returned failure.
    pub failed_requests: AtomicU64,
}

impl NetCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the current values.
    pub fn snapshot(&self) -> NetStats {
        NetStats {
            retries: self.retries.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            failed_requests: self.failed_requests.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of [`NetCounters`]. Subtraction gives the
/// delta over a window (e.g. one `get_range` call).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Requests re-sent after an error or timeout.
    pub retries: u64,
    /// Hedge requests launched against a second connection.
    pub hedges: u64,
    /// Hedge requests whose response arrived before the primary's.
    pub hedge_wins: u64,
    /// Requests that hit their per-request deadline.
    pub timeouts: u64,
    /// Connections re-established after a transport error.
    pub reconnects: u64,
    /// Requests that exhausted every retry and returned failure.
    pub failed_requests: u64,
}

impl NetStats {
    /// True when every counter is zero (e.g. a purely local read).
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    /// Counter-wise sum.
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            retries: self.retries + other.retries,
            hedges: self.hedges + other.hedges,
            hedge_wins: self.hedge_wins + other.hedge_wins,
            timeouts: self.timeouts + other.timeouts,
            reconnects: self.reconnects + other.reconnects,
            failed_requests: self.failed_requests + other.failed_requests,
        }
    }

    /// Counter-wise saturating difference (`self - earlier`), for
    /// windowed deltas across a single operation.
    pub fn since(&self, earlier: &Self) -> Self {
        Self {
            retries: self.retries.saturating_sub(earlier.retries),
            hedges: self.hedges.saturating_sub(earlier.hedges),
            hedge_wins: self.hedge_wins.saturating_sub(earlier.hedge_wins),
            timeouts: self.timeouts.saturating_sub(earlier.timeouts),
            reconnects: self.reconnects.saturating_sub(earlier.reconnects),
            failed_requests: self.failed_requests.saturating_sub(earlier.failed_requests),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_conversion() {
        // 10 MB in 100 ms = 100 MB/s.
        assert!((speed_mb_s(10_000_000, 100.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((stddev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn empty_series() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn summary_of_series() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    #[should_panic]
    fn zero_time_speed_panics() {
        speed_mb_s(1, 0.0);
    }

    #[test]
    fn net_counters_snapshot_merge_since() {
        let c = NetCounters::new();
        assert!(c.snapshot().is_zero());
        c.retries.fetch_add(3, Ordering::Relaxed);
        c.timeouts.fetch_add(1, Ordering::Relaxed);
        let a = c.snapshot();
        assert_eq!((a.retries, a.timeouts), (3, 1));
        c.hedges.fetch_add(2, Ordering::Relaxed);
        c.retries.fetch_add(1, Ordering::Relaxed);
        let b = c.snapshot();
        let d = b.since(&a);
        assert_eq!((d.retries, d.hedges, d.timeouts), (1, 2, 0));
        let m = a.merge(&d);
        assert_eq!(m, b);
    }
}

//! Discrete-event queueing simulation: many outstanding requests.
//!
//! The paper evaluates one request at a time (§VI), where completion time
//! is simply the max per-disk service sum ([`crate::ArraySim`]). Real
//! frontends keep several requests in flight; under concurrency the
//! most-loaded-disk effect *compounds*, because a hot disk delays every
//! queued request behind it. This module simulates closed-loop clients
//! over FIFO per-disk queues so that effect can be measured — the
//! `figures -- concurrency` ablation.

use crate::disk::DiskModel;

/// One request: how many elements it needs from each disk.
#[derive(Debug, Clone)]
pub struct Request {
    /// Per-disk element counts (length = number of disks).
    pub loads: Vec<usize>,
    /// Elements the user asked for (for speed accounting).
    pub requested: usize,
}

/// Completion record for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// When the client issued the request (ms).
    pub issue_ms: f64,
    /// When the last element arrived (ms).
    pub finish_ms: f64,
    /// Elements requested.
    pub requested: usize,
}

impl Completion {
    /// Request latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.finish_ms - self.issue_ms
    }
}

/// A closed-loop simulation: `clients` concurrent clients each issue the
/// next request from the shared queue the moment their previous one
/// completes.
///
/// ```
/// use ecfrm_sim::{DiskModel, EventSim, Request};
///
/// let sim = EventSim::uniform(4, DiskModel::savvio_10k3(), 1_000_000);
/// let reqs = vec![
///     Request { loads: vec![1, 1, 0, 0], requested: 2 },
///     Request { loads: vec![0, 0, 1, 1], requested: 2 },
/// ];
/// // Two clients: disjoint disks, both finish in one service time.
/// let done = sim.run_closed_loop(&reqs, 2);
/// assert_eq!(done[0].finish_ms, done[1].finish_ms);
/// ```
#[derive(Debug, Clone)]
pub struct EventSim {
    disks: Vec<DiskModel>,
    element_size: usize,
}

impl EventSim {
    /// A homogeneous array of `n` copies of `model`.
    pub fn uniform(n: usize, model: DiskModel, element_size: usize) -> Self {
        assert!(n > 0, "array needs at least one disk");
        Self {
            disks: vec![model; n],
            element_size,
        }
    }

    /// Run `requests` (in order) over `clients` closed-loop clients.
    ///
    /// Each disk serves a FIFO queue: a request's accesses on a disk are
    /// appended when the request is issued, and the request completes
    /// when every disk has finished its share.
    ///
    /// # Panics
    /// Panics if `clients == 0` or any request's load vector has the
    /// wrong length.
    pub fn run_closed_loop(&self, requests: &[Request], clients: usize) -> Vec<Completion> {
        assert!(clients > 0, "need at least one client");
        let n = self.disks.len();
        let per_elem: Vec<f64> = self
            .disks
            .iter()
            .map(|d| d.service_time_ms(self.element_size))
            .collect();

        // Each client's next-available time; disks' queue-free times.
        let mut client_free = vec![0.0f64; clients];
        let mut disk_free = vec![0.0f64; n];
        let mut out = Vec::with_capacity(requests.len());

        for req in requests {
            assert_eq!(req.loads.len(), n, "request load vector length");
            // The earliest-free client issues the request.
            let (ci, issue) = client_free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, &t)| (i, t))
                .unwrap();
            // Dispatch to each disk's FIFO queue.
            let mut finish = issue;
            for (d, &q) in req.loads.iter().enumerate() {
                if q == 0 {
                    continue;
                }
                let start = disk_free[d].max(issue);
                let end = start + q as f64 * per_elem[d];
                disk_free[d] = end;
                finish = finish.max(end);
            }
            client_free[ci] = finish;
            out.push(Completion {
                issue_ms: issue,
                finish_ms: finish,
                requested: req.requested,
            });
        }
        out
    }

    /// Run `requests` open-loop: request `i` is issued at
    /// `i × interarrival_ms` regardless of completions (an arrival-rate
    /// sweep drives the array toward saturation; queueing delay shows up
    /// in the latency percentiles).
    ///
    /// # Panics
    /// Panics if `interarrival_ms` is negative or a load vector has the
    /// wrong length.
    pub fn run_open_loop(&self, requests: &[Request], interarrival_ms: f64) -> Vec<Completion> {
        assert!(interarrival_ms >= 0.0, "negative interarrival time");
        let n = self.disks.len();
        let per_elem: Vec<f64> = self
            .disks
            .iter()
            .map(|d| d.service_time_ms(self.element_size))
            .collect();
        let mut disk_free = vec![0.0f64; n];
        let mut out = Vec::with_capacity(requests.len());
        for (i, req) in requests.iter().enumerate() {
            assert_eq!(req.loads.len(), n, "request load vector length");
            let issue = i as f64 * interarrival_ms;
            let mut finish = issue;
            for (d, &q) in req.loads.iter().enumerate() {
                if q == 0 {
                    continue;
                }
                let start = disk_free[d].max(issue);
                let end = start + q as f64 * per_elem[d];
                disk_free[d] = end;
                finish = finish.max(end);
            }
            out.push(Completion {
                issue_ms: issue,
                finish_ms: finish,
                requested: req.requested,
            });
        }
        out
    }

    /// Latency percentile (e.g. `0.5`, `0.99`) over a completed run, by
    /// nearest-rank. Returns 0 for an empty run.
    pub fn latency_percentile_ms(&self, completions: &[Completion], p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if completions.is_empty() {
            return 0.0;
        }
        let mut lat: Vec<f64> = completions.iter().map(|c| c.latency_ms()).collect();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((p * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
        lat[rank - 1]
    }

    /// Aggregate throughput in MB/s over a completed run: total requested
    /// bytes / makespan.
    pub fn throughput_mb_s(&self, completions: &[Completion]) -> f64 {
        let makespan = completions
            .iter()
            .map(|c| c.finish_ms)
            .fold(0.0f64, f64::max);
        if makespan == 0.0 {
            return 0.0;
        }
        let bytes: usize = completions
            .iter()
            .map(|c| c.requested * self.element_size)
            .sum();
        crate::metrics::speed_mb_s(bytes, makespan)
    }

    /// Mean request latency in milliseconds.
    pub fn mean_latency_ms(&self, completions: &[Completion]) -> f64 {
        crate::metrics::mean(
            &completions
                .iter()
                .map(|c| c.latency_ms())
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_ms_disks(n: usize) -> EventSim {
        // A disk model whose element service time is exactly 1 ms.
        let d = DiskModel {
            seek_ms: 0.5,
            rotational_ms: 0.5,
            transfer_mb_s: 1.0,
            speed_factor: 1.0,
            track_to_track_ms: None,
        };
        EventSim::uniform(n, d, 0)
    }

    #[test]
    fn single_client_matches_analytic_model() {
        let sim = one_ms_disks(4);
        let reqs = vec![
            Request {
                loads: vec![2, 1, 0, 0],
                requested: 3,
            },
            Request {
                loads: vec![0, 0, 3, 1],
                requested: 4,
            },
        ];
        let done = sim.run_closed_loop(&reqs, 1);
        // Request 0: max(2,1) = 2 ms. Request 1 issues at 2, takes 3 ms.
        assert_eq!(done[0].finish_ms, 2.0);
        assert_eq!(done[1].issue_ms, 2.0);
        assert_eq!(done[1].finish_ms, 5.0);
        assert_eq!(done[1].latency_ms(), 3.0);
    }

    #[test]
    fn concurrency_overlaps_disjoint_requests() {
        let sim = one_ms_disks(4);
        // Two requests on disjoint disks: with 2 clients both finish at 2.
        let reqs = vec![
            Request {
                loads: vec![2, 0, 0, 0],
                requested: 2,
            },
            Request {
                loads: vec![0, 0, 2, 0],
                requested: 2,
            },
        ];
        let done = sim.run_closed_loop(&reqs, 2);
        assert_eq!(done[0].finish_ms, 2.0);
        assert_eq!(done[1].finish_ms, 2.0);
    }

    #[test]
    fn hot_disk_serialises_under_concurrency() {
        let sim = one_ms_disks(4);
        // Two requests hitting the SAME disk: even with 2 clients the
        // second queues behind the first.
        let reqs = vec![
            Request {
                loads: vec![2, 0, 0, 0],
                requested: 2,
            },
            Request {
                loads: vec![2, 0, 0, 0],
                requested: 2,
            },
        ];
        let done = sim.run_closed_loop(&reqs, 2);
        assert_eq!(done[0].finish_ms, 2.0);
        assert_eq!(done[1].finish_ms, 4.0, "queued behind the hot disk");
    }

    #[test]
    fn throughput_and_latency_aggregates() {
        let d = DiskModel {
            seek_ms: 0.0,
            rotational_ms: 0.0,
            transfer_mb_s: 1.0, // 1 MB element = 1000 ms
            speed_factor: 1.0,
            track_to_track_ms: None,
        };
        let sim = EventSim::uniform(2, d, 1_000_000);
        let reqs = vec![Request {
            loads: vec![1, 1],
            requested: 2,
        }];
        let done = sim.run_closed_loop(&reqs, 1);
        // 2 MB in 1000 ms = 2 MB/s.
        assert!((sim.throughput_mb_s(&done) - 2.0).abs() < 1e-9);
        assert!((sim.mean_latency_ms(&done) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn open_loop_arrivals_are_clocked() {
        let sim = one_ms_disks(2);
        let reqs = vec![
            Request {
                loads: vec![1, 0],
                requested: 1,
            },
            Request {
                loads: vec![1, 0],
                requested: 1,
            },
            Request {
                loads: vec![1, 0],
                requested: 1,
            },
        ];
        // Arrivals every 0.5 ms on a 1 ms/element disk: queue builds up.
        let done = sim.run_open_loop(&reqs, 0.5);
        assert_eq!(done[0].issue_ms, 0.0);
        assert_eq!(done[1].issue_ms, 0.5);
        assert_eq!(done[0].finish_ms, 1.0);
        assert_eq!(done[1].finish_ms, 2.0); // queued behind request 0
        assert_eq!(done[2].finish_ms, 3.0);
        assert!((done[2].latency_ms() - 2.0).abs() < 1e-12);
        // Slower arrivals than service: no queueing.
        let relaxed = sim.run_open_loop(&reqs, 2.0);
        assert!(relaxed.iter().all(|c| (c.latency_ms() - 1.0).abs() < 1e-12));
    }

    #[test]
    fn latency_percentiles() {
        let sim = one_ms_disks(1);
        let done: Vec<Completion> = (0..100)
            .map(|i| Completion {
                issue_ms: 0.0,
                finish_ms: (i + 1) as f64,
                requested: 1,
            })
            .collect();
        assert_eq!(sim.latency_percentile_ms(&done, 0.5), 50.0);
        assert_eq!(sim.latency_percentile_ms(&done, 0.99), 99.0);
        assert_eq!(sim.latency_percentile_ms(&done, 1.0), 100.0);
        assert_eq!(sim.latency_percentile_ms(&[], 0.5), 0.0);
    }

    #[test]
    fn empty_run_is_zero() {
        let sim = one_ms_disks(2);
        let done = sim.run_closed_loop(&[], 3);
        assert!(done.is_empty());
        assert_eq!(sim.throughput_mb_s(&done), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_clients_rejected() {
        one_ms_disks(2).run_closed_loop(&[], 0);
    }
}

//! Completion-driven I/O core: submission/completion queues without an
//! async runtime.
//!
//! The engine has two halves:
//!
//! * [`IoHandle`] / [`IoCompleter`] — a one-shot completion slot created
//!   by [`io_pair`]. The submitter keeps the handle; whoever services
//!   the operation keeps the completer. Completion can be consumed
//!   blocking ([`IoHandle::wait`]), polled ([`IoHandle::try_take`]), or
//!   delivered as a callback ([`IoHandle::on_complete`]) the moment the
//!   result lands — the shape `ThreadedArray`'s streaming reads use so
//!   decode starts while slower disks are still working.
//! * [`Reactor`] — a bounded worker pool draining a shared submission
//!   queue of vectored backend operations. Blocking backends (memory,
//!   files) are serviced here; backends that are themselves
//!   completion-driven (a multiplexed remote client) bypass the pool
//!   entirely and complete their handles from their own demux thread.
//!
//! Everything is built from `std` primitives (`Mutex`, `Condvar`,
//! `VecDeque`) in the `ecfrm-util` spirit: no external async runtime,
//! no dependency.
//!
//! # Lifecycle invariant
//!
//! Every submission completes exactly once. If the servicing side dies —
//! the backend panics, the reactor shuts down with ops still queued, the
//! remote connection drops — the [`IoCompleter`] is dropped and the slot
//! completes as all-`None` ("every element absent"), which is the same
//! failure surface as a failed disk. Waiters therefore never deadlock on
//! a lost operation.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;

use ecfrm_util::Mutex;

use crate::threaded::DiskBackend;

/// The payload of a completed vectored read: one entry per submitted
/// offset, in submission order (`None` = absent or failed element).
pub type IoResults = Vec<Option<Vec<u8>>>;

/// Callback invoked when a submission completes.
type IoCallback = Box<dyn FnOnce(IoResults) + Send + 'static>;

struct IoSlot {
    outcome: Option<IoResults>,
    callback: Option<IoCallback>,
}

struct IoShared {
    slot: Mutex<IoSlot>,
    cv: Condvar,
}

/// The submitter's half of a one-shot completion slot: redeem it for the
/// operation's results by blocking, polling, or registering a callback.
///
/// Obtained from [`DiskBackend::submit_read_many`] or [`io_pair`].
pub struct IoHandle {
    shared: Arc<IoShared>,
}

/// The servicing half of a one-shot completion slot. Call
/// [`IoCompleter::complete`] with the results; dropping it without
/// completing delivers all-`None` for the `expected` submitted offsets,
/// so an abandoned operation still completes (see module docs).
pub struct IoCompleter {
    shared: Arc<IoShared>,
    expected: usize,
    done: bool,
}

impl std::fmt::Debug for IoHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IoHandle(done: {})", self.is_done())
    }
}

impl std::fmt::Debug for IoCompleter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IoCompleter(expected: {})", self.expected)
    }
}

/// Create a linked handle/completer pair for an operation covering
/// `expected` offsets. The completer guarantees completion: dropped
/// without a result, it delivers `vec![None; expected]`.
pub fn io_pair(expected: usize) -> (IoHandle, IoCompleter) {
    let shared = Arc::new(IoShared {
        slot: Mutex::new(IoSlot {
            outcome: None,
            callback: None,
        }),
        cv: Condvar::new(),
    });
    (
        IoHandle {
            shared: Arc::clone(&shared),
        },
        IoCompleter {
            shared,
            expected,
            done: false,
        },
    )
}

impl IoHandle {
    /// A handle that is already complete — for backends that service the
    /// request inline (memory, files) and only need the completion
    /// *shape*, not actual asynchrony.
    pub fn ready(results: IoResults) -> Self {
        let (handle, completer) = io_pair(results.len());
        completer.complete(results);
        handle
    }

    /// True once the result has landed (and has not been taken).
    pub fn is_done(&self) -> bool {
        self.shared.slot.lock().outcome.is_some()
    }

    /// Take the results if the operation has completed, without
    /// blocking.
    pub fn try_take(&mut self) -> Option<IoResults> {
        self.shared.slot.lock().outcome.take()
    }

    /// Block until the operation completes and return its results.
    pub fn wait(self) -> IoResults {
        let mut slot = self.shared.slot.lock();
        loop {
            if let Some(results) = slot.outcome.take() {
                return results;
            }
            slot = self
                .shared
                .cv
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Deliver the results to `f` as soon as they land — immediately if
    /// the operation already completed, otherwise from the thread that
    /// completes it. Consumes the handle; exactly one delivery happens.
    pub fn on_complete<F>(self, f: F)
    where
        F: FnOnce(IoResults) + Send + 'static,
    {
        let ready = {
            let mut slot = self.shared.slot.lock();
            match slot.outcome.take() {
                Some(results) => Some(results),
                None => {
                    slot.callback = Some(Box::new(f));
                    return;
                }
            }
        };
        if let Some(results) = ready {
            f(results);
        }
    }
}

impl IoCompleter {
    /// Deliver the operation's results, waking waiters and firing any
    /// registered callback (outside the slot lock).
    pub fn complete(mut self, results: IoResults) {
        self.done = true;
        self.deliver(results);
    }

    fn deliver(&self, results: IoResults) {
        let callback = {
            let mut slot = self.shared.slot.lock();
            match slot.callback.take() {
                Some(cb) => Some(cb),
                None => {
                    slot.outcome = Some(results);
                    self.shared.cv.notify_all();
                    return;
                }
            }
        };
        if let Some(cb) = callback {
            cb(results);
        }
    }
}

impl Drop for IoCompleter {
    fn drop(&mut self) {
        if !self.done {
            self.deliver(vec![None; self.expected]);
        }
    }
}

/// Live counters for the I/O engine: submissions, completions, panics,
/// plus queue-depth / in-flight gauges. Cheap to clone (all handles
/// share the same atomics); snapshot with [`ReactorStats::snapshot`].
#[derive(Debug, Default)]
pub struct ReactorStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    panics: AtomicU64,
    queue_depth: AtomicI64,
    inflight: AtomicI64,
}

/// A point-in-time snapshot of [`ReactorStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Vectored operations submitted (pool and async paths).
    pub submitted: u64,
    /// Operations whose completion has been delivered.
    pub completed: u64,
    /// Operations whose backend panicked (completed as all-`None`).
    pub panics: u64,
    /// Operations queued, waiting for a pool worker.
    pub queue_depth: i64,
    /// Operations currently being serviced (pool + async in flight).
    pub inflight: i64,
}

impl ReactorStats {
    /// Snapshot the current values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inflight_add(&self, delta: i64) {
        self.inflight.fetch_add(delta, Ordering::Relaxed);
    }

    fn depth_add(&self, delta: i64) {
        self.queue_depth.fetch_add(delta, Ordering::Relaxed);
    }
}

impl IoSnapshot {
    /// Fold this snapshot into a recorder: `io.queue_depth` /
    /// `io.inflight` gauges (point-in-time) and `io.submitted` /
    /// `io.completed` / `io.panics` cumulative counters, set to the
    /// engine's lifetime totals.
    pub fn record_into(&self, recorder: &ecfrm_obs::Recorder) {
        recorder.gauge("io.queue_depth").set(self.queue_depth);
        recorder.gauge("io.inflight").set(self.inflight);
        recorder.gauge("io.submitted").set(self.submitted as i64);
        recorder.gauge("io.completed").set(self.completed as i64);
        recorder.gauge("io.panics").set(self.panics as i64);
    }
}

enum OpKind {
    Read(Vec<u64>),
    Write(Vec<(u64, Vec<u8>)>),
}

/// One queued submission: the backend to drive, what to do, where to
/// complete, and an optional hook fired if the backend panics (used by
/// `ThreadedArray` to mark the disk suspect).
struct Op {
    backend: Arc<dyn DiskBackend>,
    kind: OpKind,
    completer: IoCompleter,
    panic_hook: Option<Box<dyn FnOnce() + Send + 'static>>,
}

struct SubmitQueue {
    ops: Mutex<QueueInner>,
    cv: Condvar,
}

struct QueueInner {
    ops: VecDeque<Op>,
    shutdown: bool,
}

impl SubmitQueue {
    fn push(&self, op: Op) -> bool {
        let mut inner = self.ops.lock();
        if inner.shutdown {
            return false; // op dropped → completer delivers all-None
        }
        inner.ops.push_back(op);
        self.cv.notify_one();
        true
    }

    fn pop(&self) -> Option<Op> {
        let mut inner = self.ops.lock();
        loop {
            if let Some(op) = inner.ops.pop_front() {
                return Some(op);
            }
            if inner.shutdown {
                return None;
            }
            inner = self
                .cv
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Flip to shutdown and drain unserviced ops (their completers
    /// deliver all-`None` as they drop).
    fn close(&self) -> VecDeque<Op> {
        let mut inner = self.ops.lock();
        inner.shutdown = true;
        self.cv.notify_all();
        std::mem::take(&mut inner.ops)
    }
}

/// A bounded worker pool servicing vectored backend operations from a
/// shared submission queue, delivering each result through its
/// [`IoCompleter`] as it lands.
///
/// A panicking backend does **not** kill its worker: the panic is
/// caught, the op completes as all-`None`, the per-op panic hook fires
/// (suspect marking), and the worker moves on to the next submission.
pub struct Reactor {
    queue: Arc<SubmitQueue>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    stats: Arc<ReactorStats>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Reactor({} workers)", self.workers.lock().len())
    }
}

impl Reactor {
    /// Spawn a reactor with `workers` pool threads (at least one).
    pub fn new(workers: usize) -> Self {
        let queue = Arc::new(SubmitQueue {
            ops: Mutex::new(QueueInner {
                ops: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let stats = Arc::new(ReactorStats::default());
        let handles = (0..workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || Self::worker_loop(&queue, &stats))
            })
            .collect();
        Self {
            queue,
            workers: Mutex::new(handles),
            stats,
        }
    }

    fn worker_loop(queue: &SubmitQueue, stats: &ReactorStats) {
        while let Some(op) = queue.pop() {
            stats.depth_add(-1);
            stats.inflight_add(1);
            let Op {
                backend,
                kind,
                completer,
                panic_hook,
            } = op;
            let outcome = catch_unwind(AssertUnwindSafe(|| match kind {
                OpKind::Read(offsets) => backend.read_many(&offsets),
                OpKind::Write(items) => {
                    for (offset, bytes) in items {
                        backend.write(offset, bytes);
                    }
                    Vec::new()
                }
            }));
            stats.inflight_add(-1);
            stats.note_completed();
            match outcome {
                Ok(results) => completer.complete(results),
                Err(_) => {
                    stats.note_panic();
                    if let Some(hook) = panic_hook {
                        // The hook is engine code (suspect marking), but
                        // isolate it anyway: a worker must not die.
                        let _ = catch_unwind(AssertUnwindSafe(hook));
                    }
                    drop(completer); // delivers all-None
                }
            }
        }
    }

    /// Shared counters/gauges for this engine.
    pub fn stats(&self) -> Arc<ReactorStats> {
        Arc::clone(&self.stats)
    }

    /// Queue a vectored read against `backend`; the returned handle
    /// completes when a pool worker has serviced it. `panic_hook` fires
    /// (once, from the worker) if the backend panics.
    pub fn submit_read(
        &self,
        backend: Arc<dyn DiskBackend>,
        offsets: Vec<u64>,
        panic_hook: Option<Box<dyn FnOnce() + Send + 'static>>,
    ) -> IoHandle {
        let (handle, completer) = io_pair(offsets.len());
        self.submit(Op {
            backend,
            kind: OpKind::Read(offsets),
            completer,
            panic_hook,
        });
        handle
    }

    /// Queue a vectored write against `backend`; the returned handle
    /// completes (with an empty result vector) once every element has
    /// been written.
    pub fn submit_write(
        &self,
        backend: Arc<dyn DiskBackend>,
        items: Vec<(u64, Vec<u8>)>,
        panic_hook: Option<Box<dyn FnOnce() + Send + 'static>>,
    ) -> IoHandle {
        let (handle, completer) = io_pair(0);
        self.submit(Op {
            backend,
            kind: OpKind::Write(items),
            completer,
            panic_hook,
        });
        handle
    }

    fn submit(&self, op: Op) {
        self.stats.note_submitted();
        self.stats.depth_add(1);
        if !self.queue.push(op) {
            self.stats.depth_add(-1); // dropped: completer → all-None
        }
    }

    /// Stop accepting submissions, complete queued-but-unserviced ops as
    /// all-`None`, and join the pool. Idempotent.
    pub fn shutdown(&self) {
        let abandoned = self.queue.close();
        for op in abandoned {
            self.stats.depth_add(-1);
            self.stats.note_completed();
            drop(op); // completer delivers all-None
        }
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::MemDisk;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn ready_handle_completes_immediately() {
        let h = IoHandle::ready(vec![Some(vec![1]), None]);
        assert!(h.is_done());
        assert_eq!(h.wait(), vec![Some(vec![1]), None]);
    }

    #[test]
    fn wait_blocks_until_completion() {
        let (h, c) = io_pair(1);
        let waiter = std::thread::spawn(move || h.wait());
        std::thread::sleep(Duration::from_millis(10));
        c.complete(vec![Some(vec![7])]);
        assert_eq!(waiter.join().unwrap(), vec![Some(vec![7])]);
    }

    #[test]
    fn try_take_polls_without_blocking() {
        let (mut h, c) = io_pair(1);
        assert_eq!(h.try_take(), None);
        c.complete(vec![None]);
        assert_eq!(h.try_take(), Some(vec![None]));
        assert_eq!(h.try_take(), None, "results are taken once");
    }

    #[test]
    fn dropped_completer_delivers_all_none() {
        let (h, c) = io_pair(3);
        drop(c);
        assert_eq!(h.wait(), vec![None, None, None]);
    }

    #[test]
    fn callback_fires_on_late_and_early_completion() {
        // Early: already complete when the callback is registered.
        let (tx, rx) = channel();
        let tx2 = tx.clone();
        IoHandle::ready(vec![Some(vec![1])]).on_complete(move |r| tx2.send(r).unwrap());
        assert_eq!(rx.recv().unwrap(), vec![Some(vec![1])]);
        // Late: callback registered first, completion arrives after.
        let (h, c) = io_pair(1);
        h.on_complete(move |r| tx.send(r).unwrap());
        c.complete(vec![Some(vec![2])]);
        assert_eq!(rx.recv().unwrap(), vec![Some(vec![2])]);
    }

    #[test]
    fn reactor_services_reads_and_writes() {
        let reactor = Reactor::new(2);
        let disk: Arc<dyn DiskBackend> = Arc::new(MemDisk::new());
        reactor
            .submit_write(Arc::clone(&disk), vec![(0, vec![1]), (1, vec![2])], None)
            .wait();
        let got = reactor
            .submit_read(Arc::clone(&disk), vec![0, 1, 9], None)
            .wait();
        assert_eq!(got, vec![Some(vec![1]), Some(vec![2]), None]);
        let snap = reactor.stats().snapshot();
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.completed, 2);
        assert_eq!((snap.queue_depth, snap.inflight), (0, 0));
    }

    #[derive(Debug)]
    struct PanicBackend;
    impl DiskBackend for PanicBackend {
        fn submit_read_many(&self, _offsets: &[u64]) -> IoHandle {
            panic!("injected backend panic");
        }
        fn write(&self, _offset: u64, _bytes: Vec<u8>) {
            panic!("injected backend panic");
        }
        fn fail(&self) {}
        fn heal(&self) {}
        fn wipe(&self) {}
        fn len(&self) -> usize {
            0
        }
    }

    #[test]
    fn panicking_backend_completes_all_none_and_fires_hook() {
        let reactor = Reactor::new(1);
        let (tx, rx) = channel();
        let got = reactor
            .submit_read(
                Arc::new(PanicBackend),
                vec![0, 1],
                Some(Box::new(move || tx.send(()).unwrap())),
            )
            .wait();
        assert_eq!(got, vec![None, None]);
        rx.recv().unwrap();
        // The worker survived the panic and serves the next op.
        let disk: Arc<dyn DiskBackend> = Arc::new(MemDisk::new());
        disk.write(0, vec![5]);
        assert_eq!(
            reactor.submit_read(disk, vec![0], None).wait(),
            vec![Some(vec![5])]
        );
        assert_eq!(reactor.stats().snapshot().panics, 1);
    }

    #[test]
    fn shutdown_completes_queued_ops_as_all_none() {
        // One worker, blocked on a slow op; queued ops behind it are
        // abandoned by shutdown and must still complete.
        let reactor = Reactor::new(1);
        let slow: Arc<dyn DiskBackend> = Arc::new(MemDisk::with_latency(Duration::from_millis(30)));
        slow.write(0, vec![1]);
        let first = reactor.submit_read(Arc::clone(&slow), vec![0], None);
        // Wait for the worker to dequeue `first` (queue_depth drops to
        // zero) — otherwise shutdown races the dequeue and may abandon
        // it too.
        while reactor.stats().snapshot().queue_depth > 0 {
            std::thread::yield_now();
        }
        let queued = reactor.submit_read(Arc::clone(&slow), vec![0, 0], None);
        reactor.shutdown();
        assert_eq!(first.wait(), vec![Some(vec![1])]);
        assert_eq!(queued.wait(), vec![None, None]);
    }
}

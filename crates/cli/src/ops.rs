//! The CLI operations: encode / decode / repair / info / plan.

use std::collections::HashMap;
use std::path::Path;

use ecfrm_core::{DiskRecovery, ReadCtx, Scheme};
use ecfrm_layout::Loc;

use crate::args::{parse_scheme, Options};
use crate::error::CliError;
use crate::manifest::{chunk_name, Manifest};

/// Split a padded stripe block into element refs.
fn element_refs(block: &[u8], element_size: usize) -> Vec<&[u8]> {
    block.chunks_exact(element_size).collect()
}

/// Read the chunk files that exist: `None` for missing disks.
fn read_chunks(dir: &Path, n: usize) -> Vec<Option<Vec<u8>>> {
    (0..n)
        .map(|d| std::fs::read(dir.join(chunk_name(d))).ok())
        .collect()
}

/// Element bytes of `loc` within a per-disk chunk buffer.
fn element_of(chunks: &[Option<Vec<u8>>], loc: Loc, element_size: usize) -> Option<&[u8]> {
    let chunk = chunks[loc.disk].as_ref()?;
    let start = loc.offset as usize * element_size;
    chunk.get(start..start + element_size)
}

/// `ecfrm encode`: erasure code a file into per-disk chunk files.
pub fn encode(opts: &Options) -> Result<(), CliError> {
    let code = Options::require(&opts.code, "code")?;
    let layout = Options::require(&opts.layout, "layout")?;
    let element_size = *Options::require(&opts.element_size, "element-size")?;
    let input = Options::require(&opts.input, "input")?;
    let dir = Path::new(Options::require(&opts.dir, "dir")?);
    if element_size == 0 {
        return Err(CliError::Usage("--element-size must be positive".into()));
    }

    let scheme = parse_scheme(code, layout, opts.seed, opts.racks)?;
    let data = std::fs::read(input).map_err(|e| CliError::io(format!("reading {input}"), e))?;
    let data_len = data.len() as u64;
    let dps = scheme.data_per_stripe();
    let stripe_bytes = dps * element_size;
    let mut padded = data;
    let pad = (stripe_bytes - padded.len() % stripe_bytes) % stripe_bytes;
    let pad = if padded.is_empty() { stripe_bytes } else { pad };
    padded.resize(padded.len() + pad, 0);
    let stripes = (padded.len() / stripe_bytes) as u64;

    let ops = scheme.layout().offsets_per_stripe();
    let n = scheme.n_disks();
    let mut disks: Vec<Vec<u8>> = vec![vec![0u8; (stripes * ops) as usize * element_size]; n];
    for s in 0..stripes {
        let block = &padded[s as usize * stripe_bytes..(s as usize + 1) * stripe_bytes];
        let refs = element_refs(block, element_size);
        let img = scheme.encode_stripe(s, &refs);
        for (loc, bytes) in img.iter() {
            let at = loc.offset as usize * element_size;
            disks[loc.disk][at..at + element_size].copy_from_slice(bytes);
        }
    }

    std::fs::create_dir_all(dir)
        .map_err(|e| CliError::io(format!("creating {}", dir.display()), e))?;
    for (d, buf) in disks.iter().enumerate() {
        std::fs::write(dir.join(chunk_name(d)), buf)
            .map_err(|e| CliError::io(format!("writing chunk {d}"), e))?;
    }
    Manifest {
        code: code.clone(),
        layout: layout.clone(),
        seed: opts.seed,
        element_size,
        data_len,
        stripes,
    }
    .save(dir)?;
    println!(
        "encoded {data_len} bytes as {} over {n} chunks ({stripes} stripes, {element_size} B elements)",
        scheme.name()
    );
    Ok(())
}

/// Build the scheme recorded in a manifest.
fn scheme_of(m: &Manifest) -> Result<Scheme, CliError> {
    Ok(parse_scheme(&m.code, &m.layout, m.seed, None)?)
}

/// `ecfrm decode`: restore the original file, reconstructing around any
/// missing chunk files.
pub fn decode(opts: &Options) -> Result<(), CliError> {
    let dir = Path::new(Options::require(&opts.dir, "dir")?);
    let output = Options::require(&opts.output, "output")?;
    let m = Manifest::load(dir)?;
    let scheme = scheme_of(&m)?;
    let chunks = read_chunks(dir, scheme.n_disks());
    let missing: Vec<usize> = (0..scheme.n_disks())
        .filter(|&d| chunks[d].is_none())
        .collect();
    if !missing.is_empty() {
        eprintln!("note: reconstructing around missing chunks {missing:?}");
    }

    let dps = scheme.data_per_stripe();
    let mut out = Vec::with_capacity((m.stripes as usize) * dps * m.element_size);
    for s in 0..m.stripes {
        // Offer every available element of this stripe to the assembler.
        let mut fetched: HashMap<Loc, Vec<u8>> = HashMap::new();
        for row in 0..scheme.layout().rows_per_stripe() {
            for loc in scheme.layout().row_locations(s, row) {
                if let Some(bytes) = element_of(&chunks, loc, m.element_size) {
                    fetched.insert(loc, bytes.to_vec());
                }
            }
        }
        let elements = scheme
            .assemble_read(s * dps as u64, dps, &fetched, ReadCtx::default())
            .map_err(|e| CliError::Store(ecfrm_store::StoreError::Code(e)))?;
        for e in elements {
            out.extend_from_slice(&e);
        }
    }
    out.truncate(m.data_len as usize);
    std::fs::write(output, &out).map_err(|e| CliError::io(format!("writing {output}"), e))?;
    println!("decoded {} bytes to {output}", m.data_len);
    Ok(())
}

/// `ecfrm repair`: regenerate one chunk file from the survivors.
pub fn repair(opts: &Options) -> Result<(), CliError> {
    let dir = Path::new(Options::require(&opts.dir, "dir")?);
    let disk = *Options::require(&opts.disk, "disk")?;
    let m = Manifest::load(dir)?;
    let scheme = scheme_of(&m)?;
    if disk >= scheme.n_disks() {
        return Err(CliError::Store(ecfrm_store::StoreError::NoSuchDisk(disk)));
    }
    let chunks = read_chunks(dir, scheme.n_disks());
    let recovery = DiskRecovery::plan(&scheme, disk, m.stripes);

    let mut fetched: HashMap<Loc, Vec<u8>> = HashMap::new();
    for task in &recovery.tasks {
        for (_, loc) in &task.sources {
            if !fetched.contains_key(loc) {
                let bytes = element_of(&chunks, *loc, m.element_size).ok_or_else(|| {
                    CliError::Store(ecfrm_store::StoreError::DataLoss(format!(
                        "repair source chunk {} missing too",
                        loc.disk
                    )))
                })?;
                fetched.insert(*loc, bytes.to_vec());
            }
        }
    }

    let ops = scheme.layout().offsets_per_stripe();
    let mut buf = vec![0u8; (m.stripes * ops) as usize * m.element_size];
    for task in &recovery.tasks {
        let bytes = DiskRecovery::rebuild_one(&scheme, task, &fetched, m.element_size).ok_or_else(
            || {
                CliError::Store(ecfrm_store::StoreError::DataLoss(format!(
                    "cannot rebuild element at offset {}",
                    task.target.offset
                )))
            },
        )?;
        let at = task.target.offset as usize * m.element_size;
        buf[at..at + m.element_size].copy_from_slice(&bytes);
    }
    std::fs::write(dir.join(chunk_name(disk)), &buf)
        .map_err(|e| CliError::io(format!("writing chunk {disk}"), e))?;
    println!(
        "rebuilt chunk {disk} ({} elements) from {} source reads",
        recovery.total_rebuilt(),
        recovery.total_reads()
    );
    Ok(())
}

/// `ecfrm info`: describe a chunk directory.
pub fn info(opts: &Options) -> Result<(), CliError> {
    let dir = Path::new(Options::require(&opts.dir, "dir")?);
    let m = Manifest::load(dir)?;
    let scheme = scheme_of(&m)?;
    let chunks = read_chunks(dir, scheme.n_disks());
    let present = chunks.iter().filter(|c| c.is_some()).count();
    println!("scheme          {}", scheme.name());
    println!(
        "disks           {} ({present} chunk files present)",
        scheme.n_disks()
    );
    println!("element size    {} B", m.element_size);
    println!("stripes         {}", m.stripes);
    println!("rows per stripe {}", scheme.layout().rows_per_stripe());
    println!("data bytes      {}", m.data_len);
    println!(
        "fault tolerance any {} disks",
        scheme.code().fault_tolerance()
    );
    let missing: Vec<usize> = (0..scheme.n_disks())
        .filter(|&d| chunks[d].is_none())
        .collect();
    if !missing.is_empty() {
        println!("missing chunks  {missing:?}");
    }
    Ok(())
}

/// `ecfrm serve`: expose a shard (one disk's elements) over TCP so
/// remote `ecfrm bench --remote` / `RemoteDisk` clients can read it.
/// Backed by a `FileDisk` under `--dir` when given (persistent), else an
/// in-memory disk. Runs until killed.
///
/// With `--front` the node also hosts the multi-tenant object front
/// door (opcodes 11–15): it builds a full `--code`/`--layout` store —
/// over `--remote` shard servers when given, else over local disks —
/// and answers object create/write/read/stat/delete with QoS admission
/// and the parity-aware read cache in the path. `--tenant
/// name:class[:rate]` registers tenants, `--cache-bytes` sizes the
/// cache, `--no-admission` turns QoS off.
pub fn serve(opts: &Options) -> Result<(), CliError> {
    use ecfrm_net::ShardServer;
    use ecfrm_sim::{DiskBackend, FileDisk, MemDisk};
    use std::sync::Arc;

    let listen = Options::require(&opts.listen, "listen")?;
    let element_size = opts.element_size.unwrap_or(64 * 1024);
    let file_io = opts.file_io_config().map_err(CliError::Usage)?;
    let mut storage = "in-memory".to_string();
    let backend: Arc<dyn DiskBackend> = match &opts.dir {
        Some(dir) => {
            let dir = Path::new(dir);
            std::fs::create_dir_all(dir)
                .map_err(|e| CliError::io(format!("creating {}", dir.display()), e))?;
            let path = dir.join("shard.bin");
            // Shard files hold whole cells: element payload plus the
            // store's checksum footer.
            let disk =
                FileDisk::create_with(&path, element_size + ecfrm_integrity::FOOTER_LEN, file_io)
                    .map_err(|e| CliError::io("creating shard file", e))?;
            storage = format!("file-backed, {} reads", disk.io_backend());
            Arc::new(disk)
        }
        None => Arc::new(MemDisk::new()),
    };
    let server = if opts.front {
        let front = build_front(opts, element_size)?;
        let mode = if opts.no_admission {
            "admission off"
        } else {
            "admission on"
        };
        println!(
            "front door up: {} tenants, {mode}, {} B cache",
            opts.tenant.len(),
            opts.cache_bytes.unwrap_or(32 << 20),
        );
        ShardServer::spawn_with_front(backend, front, listen)
    } else {
        ShardServer::spawn(backend, listen)
    }
    .map_err(|e| CliError::io(format!("bind {listen}"), e))?;
    println!("serving shard on {} ({storage})", server.addr());
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Build the `serve --front` object front door: a full store over
/// `--remote` shard servers (one address per disk) or local disks
/// (file-backed under `--dir`, else in-memory), with `--tenant` /
/// `--cache-bytes` / `--no-admission` applied.
fn build_front(
    opts: &Options,
    element_size: usize,
) -> Result<std::sync::Arc<ecfrm_store::FrontDoor>, CliError> {
    use ecfrm_net::{RemoteDisk, RemoteDiskConfig};
    use ecfrm_sim::{DiskBackend, FileDisk, MemDisk, ThreadedArray};
    use ecfrm_store::{FrontConfig, FrontDoor, ObjectStore, TenantSpec};
    use std::sync::Arc;

    let code = Options::require(&opts.code, "code")?;
    let layout = Options::require(&opts.layout, "layout")?;
    let scheme = parse_scheme(code, layout, opts.seed, opts.racks)?;
    let file_io = opts.file_io_config().map_err(CliError::Usage)?;

    let backends: Vec<Arc<dyn DiskBackend>> = if opts.remote.is_empty() {
        (0..scheme.n_disks())
            .map(|d| match &opts.dir {
                Some(dir) => {
                    let disk = FileDisk::create_with(
                        Path::new(dir).join(format!("front-d{d}.bin")),
                        element_size + ecfrm_integrity::FOOTER_LEN,
                        file_io,
                    )
                    .map_err(|e| CliError::io(format!("creating front disk {d}"), e))?;
                    Ok(Arc::new(disk) as Arc<dyn DiskBackend>)
                }
                None => Ok(Arc::new(MemDisk::new()) as Arc<dyn DiskBackend>),
            })
            .collect::<Result<_, CliError>>()?
    } else {
        if opts.remote.len() != scheme.n_disks() {
            return Err(CliError::Usage(format!(
                "--front over --remote needs exactly {} shard addresses (one per disk), got {}",
                scheme.n_disks(),
                opts.remote.len()
            )));
        }
        let cfg = RemoteDiskConfig::builder().build();
        opts.remote
            .iter()
            .map(|addr| {
                let addr = addr
                    .parse()
                    .map_err(|e| CliError::Usage(format!("bad --remote address `{addr}`: {e}")))?;
                Ok(Arc::new(RemoteDisk::new(addr, cfg.clone())) as Arc<dyn DiskBackend>)
            })
            .collect::<Result<_, CliError>>()?
    };

    let store = Arc::new(ObjectStore::with_array(
        scheme,
        element_size,
        ThreadedArray::from_backends(backends),
    ));
    let front = FrontDoor::new(
        store,
        FrontConfig::builder()
            .cache_bytes(opts.cache_bytes.unwrap_or(32 << 20))
            .admission(!opts.no_admission)
            .build(),
    );
    for spec in &opts.tenant {
        front.register_tenant(TenantSpec::parse(spec).map_err(CliError::Usage)?);
    }
    Ok(front)
}

/// `ecfrm bench`: a quick real-I/O microbenchmark — build a store over
/// file-backed disks in a temp directory (or over `--remote` shard
/// servers), ingest data, and replay the paper's random-read workload,
/// reporting actual wall-clock speeds for normal and degraded reads.
pub fn bench(opts: &Options) -> Result<(), CliError> {
    use ecfrm_net::{RemoteDisk, RemoteDiskConfig};
    use ecfrm_sim::{DiskBackend, FileDisk, ThreadedArray};
    use std::sync::Arc;
    use std::time::Instant;

    let code = Options::require(&opts.code, "code")?;
    let layout = Options::require(&opts.layout, "layout")?;
    let element_size = opts.element_size.unwrap_or(64 * 1024);
    let scheme = parse_scheme(code, layout, opts.seed, opts.racks)?;
    let trials = opts.count.unwrap_or(200);
    let stripes = opts.stripe_count()?;

    let dir = std::env::temp_dir().join(format!("ecfrm-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| CliError::io("creating bench tmp dir", e))?;
    let file_io = opts.file_io_config().map_err(CliError::Usage)?;
    let mut remotes: Vec<Arc<RemoteDisk>> = Vec::new();
    let backends: Vec<Arc<dyn DiskBackend>> = if opts.remote.is_empty() {
        let disks = (0..scheme.n_disks())
            .map(|d| {
                FileDisk::create_with(
                    dir.join(format!("bench-d{d}.bin")),
                    element_size + ecfrm_integrity::FOOTER_LEN,
                    file_io,
                )
                .map_err(|e| CliError::io(format!("creating bench disk {d}"), e))
            })
            .collect::<Result<Vec<_>, _>>()?;
        println!("local disks     {} reads", disks[0].io_backend());
        disks
            .into_iter()
            .map(|d| Arc::new(d) as Arc<dyn DiskBackend>)
            .collect()
    } else {
        if opts.remote.len() != scheme.n_disks() {
            return Err(CliError::Usage(format!(
                "--remote needs exactly n = {} addresses, got {}",
                scheme.n_disks(),
                opts.remote.len()
            )));
        }
        for a in &opts.remote {
            let addr = a
                .parse()
                .map_err(|e| CliError::Usage(format!("bad --remote address `{a}`: {e}")))?;
            // Ship the store's integrity key: contiguous runs verify at
            // the shard (`RangeChecked`), with automatic fallback on
            // shards that predate the opcode.
            let key = ecfrm_integrity::HashKey::DEFAULT;
            let disk = Arc::new(RemoteDisk::new(
                addr,
                RemoteDiskConfig::builder()
                    .integrity_key(key.k0, key.k1)
                    .build(),
            ));
            // Health-check up front so a dead shard fails the bench with
            // a clear message instead of silently running degraded.
            disk.health()
                .map_err(|e| CliError::Usage(format!("shard {a} unhealthy: {e}")))?;
            remotes.push(disk);
        }
        remotes
            .iter()
            .map(|d| Arc::clone(d) as Arc<dyn DiskBackend>)
            .collect()
    };
    let store = ecfrm_store::ObjectStore::with_array(
        scheme.clone(),
        element_size,
        ThreadedArray::from_backends(backends),
    );

    // Ingest `stripes` stripes worth of data.
    let dps = scheme.data_per_stripe();
    let total_elements = stripes * dps;
    let payload: Vec<u8> = (0..total_elements * element_size)
        .map(|i| (i % 251) as u8)
        .collect();
    let t0 = Instant::now();
    store.put("bench", &payload)?;
    store.flush();
    let ingest = t0.elapsed();
    println!(
        "{}: ingested {:.1} MB in {:.2}s ({:.1} MB/s encode+write)",
        scheme.name(),
        payload.len() as f64 / 1e6,
        ingest.as_secs_f64(),
        payload.len() as f64 / 1e6 / ingest.as_secs_f64()
    );

    // Replay random reads (sizes 1..=20 elements).
    let mut x = opts.seed | 1;
    let mut next = move |m: u64| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x % m
    };
    let mut run = |label: &str, failed: Option<usize>| -> Result<(), CliError> {
        if let Some(d) = failed {
            store.fail_disk(d)?;
        }
        let mut bytes = 0usize;
        let t0 = Instant::now();
        for _ in 0..trials {
            let size = 1 + next(20) as usize;
            let start = next((total_elements - size) as u64) * element_size as u64;
            let len = (size * element_size) as u64;
            let got = store.get_range("bench", start, len)?;
            bytes += got.len();
        }
        let dt = t0.elapsed();
        println!(
            "{label}: {trials} reads, {:.1} MB in {:.2}s ({:.1} MB/s)",
            bytes as f64 / 1e6,
            dt.as_secs_f64(),
            bytes as f64 / 1e6 / dt.as_secs_f64()
        );
        if let Some(d) = failed {
            store.heal_disk(d)?;
        }
        Ok(())
    };
    run("normal reads  ", None)?;
    run("degraded reads", Some(0))?;
    if !remotes.is_empty() {
        let net = remotes
            .iter()
            .fold(ecfrm_sim::NetStats::default(), |acc, d| {
                acc.merge(&d.counters().snapshot())
            });
        println!(
            "network: {} retries, {} hedges ({} won), {} timeouts, {} reconnects, {} failed",
            net.retries,
            net.hedges,
            net.hedge_wins,
            net.timeouts,
            net.reconnects,
            net.failed_requests
        );
    }
    if opts.stats {
        let snap = store.recorder().snapshot();
        println!("\n-- store metrics ({}) --", scheme.name());
        print!("{}", snap.render());
        if !remotes.is_empty() {
            println!("-- per-shard request latency (client side) --");
            for disk in &remotes {
                let lat = disk.request_latency();
                println!("  {}: {}", disk.addr(), lat.summary("us"));
            }
        }
    }
    if let Some(path) = &opts.json {
        let snap = store.recorder().snapshot();
        std::fs::write(path, snap.to_json())
            .map_err(|e| CliError::io(format!("writing {path}"), e))?;
        println!("metrics JSON written to {path}");
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// `ecfrm drill`: a kill-and-repair fire drill on an in-memory store.
///
/// Ingests `--stripes` worth of data, wipes one disk for real
/// (`--disk`, default 0), and lets a background
/// [`RepairManager`](ecfrm_store::RepairManager) restore full
/// redundancy — `--workers` parallel reconstruction workers under an
/// optional `--rate` bytes/second token-bucket limit — while a
/// foreground reader keeps hammering the store. Reports foreground
/// latency during repair (the paper's degraded-read service quality)
/// against repair throughput and time-to-full-redundancy.
pub fn drill(opts: &Options) -> Result<(), CliError> {
    use ecfrm_sim::{DiskBackend, FaultKind, FaultyDisk, MemDisk, ThreadedArray};
    use ecfrm_store::{ObjectStore, RepairConfig, RepairManager};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let code = opts.code.as_deref().unwrap_or("rs:6,3");
    let layout = opts.layout.as_deref().unwrap_or("ecfrm");
    let element_size = opts.element_size.unwrap_or(16 * 1024);
    let scheme = parse_scheme(code, layout, opts.seed, opts.racks)?;
    let stripes = opts.stripe_count()?;
    let victim = opts.disk.unwrap_or(0);
    if victim >= scheme.n_disks() {
        return Err(CliError::Usage(format!(
            "--disk {victim} out of range (scheme has {} disks)",
            scheme.n_disks()
        )));
    }

    // Every disk gets a fault-injection wrapper so `--corrupt` can arm
    // silent bit-rot on the victim mid-workload; disarmed wrappers are
    // pure pass-through.
    let faulty: Vec<Arc<FaultyDisk>> = (0..scheme.n_disks())
        .map(|_| FaultyDisk::wrap(Arc::new(MemDisk::new())))
        .collect();
    let store = Arc::new(ObjectStore::with_array(
        scheme.clone(),
        element_size,
        ThreadedArray::from_backends(
            faulty
                .iter()
                .map(|f| Arc::clone(f) as Arc<dyn DiskBackend>)
                .collect(),
        ),
    ));
    let total_elements = stripes * scheme.data_per_stripe();
    let payload: Vec<u8> = (0..total_elements * element_size)
        .map(|i| (i % 251) as u8)
        .collect();
    store.put("drill", &payload)?;
    store.flush();
    println!(
        "{}: ingested {:.1} MB over {} disks ({} stripes)",
        scheme.name(),
        payload.len() as f64 / 1e6,
        scheme.n_disks(),
        store.stats().stripes,
    );

    if opts.corrupt {
        // Silent bit-rot: the victim keeps answering but every served
        // element comes back with one bit flipped. Nothing at the
        // transport notices; verify-on-read must catch each lie before
        // it reaches a caller and escalate the disk to repair.
        faulty[victim].arm(FaultKind::FlipCorrupt, 0);
        println!("disk {victim} now silently corrupting every read; starting verify-on-read drill");
    } else {
        // Lose the victim for real: contents gone, reads plan around it.
        store.fail_disk(victim)?;
        store.array().disk(victim).wipe();
        println!("disk {victim} wiped; starting background repair");
    }

    let t0 = Instant::now();
    let mgr = RepairManager::spawn(
        Arc::clone(&store),
        RepairConfig {
            workers: opts.workers.unwrap_or(2),
            rate_limit: opts.rate,
            poll: Duration::from_millis(1),
            replacer: None,
        },
    );

    // Foreground load while repair runs: random small reads, latency
    // sampled per read and every answer compared byte-for-byte against
    // the known payload — a single leaked lie fails the drill.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let expected = payload.clone();
        let mut x = opts.seed | 1;
        let len = payload.len() as u64;
        let es = element_size as u64;
        std::thread::spawn(
            move || -> Result<(Vec<u64>, u64), ecfrm_store::StoreError> {
                let mut lat_us = Vec::new();
                let mut wrong = 0u64;
                while !stop.load(Ordering::Acquire) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let size = (1 + x % 8) * es;
                    let start = x % (len - size);
                    let t = Instant::now();
                    let bytes = store.get_range("drill", start, size)?;
                    lat_us.push(t.elapsed().as_micros() as u64);
                    if bytes != expected[start as usize..(start + size) as usize] {
                        wrong += 1;
                    }
                }
                Ok((lat_us, wrong))
            },
        )
    };

    if opts.corrupt {
        // Wait for the escalation chain: verify-on-read flags the lying
        // disk suspect, the detector's footer-verifying probe confirms,
        // and the disk is promoted to failed.
        let deadline = Instant::now() + Duration::from_secs(120);
        while !store.stats().failed_disks.contains(&victim) {
            if Instant::now() > deadline {
                return Err(CliError::Usage(
                    "verify-on-read never escalated the corrupting disk to failed".into(),
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        println!(
            "verify-on-read caught the corruption; disk {victim} failed after {:.0} ms",
            t0.elapsed().as_secs_f64() * 1e3
        );
        // The fuse corrupts the read path, not the media. Model the
        // operator swapping the bad disk: clear the fault so the
        // repair pipeline's rewrites verify and the disk re-enters
        // service with fresh checksums.
        faulty[victim].clear();
    }

    let finished = mgr.wait_idle(Duration::from_secs(600));
    let elapsed = t0.elapsed();
    stop.store(true, Ordering::Release);
    let (mut lat, wrong_reads) = reader
        .join()
        .map_err(|_| CliError::Usage("foreground reader panicked".into()))??;
    if wrong_reads > 0 {
        return Err(CliError::Usage(format!(
            "{wrong_reads} foreground reads returned corrupted bytes"
        )));
    }
    if !finished {
        return Err(CliError::Usage(format!(
            "repair did not converge: {:?}",
            mgr.progress()
        )));
    }

    let progress = mgr.progress();
    let snap = store.recorder().snapshot();
    let repaired_bytes = snap.counters.get("repair.bytes").copied().unwrap_or(0);
    println!(
        "repair: {} stripes ({:.1} MB rebuilt) in {:.2}s ({:.1} MB/s){}",
        progress.stripes_done,
        repaired_bytes as f64 / 1e6,
        elapsed.as_secs_f64(),
        repaired_bytes as f64 / 1e6 / elapsed.as_secs_f64(),
        match opts.rate {
            Some(r) => format!(", rate limit {:.1} MB/s", r as f64 / 1e6),
            None => String::new(),
        },
    );
    if let Some(ms) = snap.gauges.get("repair.time_to_redundancy_ms") {
        println!("time to full redundancy: {:.2}s", *ms as f64 / 1e3);
    }
    lat.sort_unstable();
    if !lat.is_empty() {
        let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
        println!(
            "foreground during repair: {} reads, p50 {} us, p99 {} us, max {} us",
            lat.len(),
            pct(0.50),
            pct(0.99),
            lat[lat.len() - 1],
        );
    }

    // Prove the drill ended healthy: full redundancy, correct bytes.
    if !store.stats().failed_disks.is_empty() {
        return Err(CliError::Usage("disk still failed after repair".into()));
    }
    let (bytes, stats) = store.get_with_stats("drill")?;
    if bytes != payload || stats.degraded || stats.repair_elements != 0 {
        return Err(CliError::Usage(
            "post-repair read was degraded or corrupt".into(),
        ));
    }
    println!("post-repair read: normal plan, zero decodes, bytes verified");

    if opts.corrupt {
        // The drill only counts if verification actually fired, and the
        // re-sealed stripes must pass a full merkle scrub.
        let caught = snap
            .counters
            .get("integrity.verify_fail")
            .copied()
            .unwrap_or(0);
        if caught == 0 {
            return Err(CliError::Usage(
                "drill ran but integrity.verify_fail never incremented".into(),
            ));
        }
        let report = store.scrub()?;
        if !report.is_clean() {
            return Err(CliError::Usage(format!(
                "final merkle scrub found damage: {report:?}"
            )));
        }
        println!(
            "final merkle scrub clean ({} stripes); {caught} lies caught in-flight",
            report.stripes_checked
        );
    }

    if opts.stats {
        println!("\n-- store metrics ({}) --", scheme.name());
        print!("{}", snap.render());
    }
    if let Some(path) = &opts.json {
        std::fs::write(path, snap.to_json())
            .map_err(|e| CliError::io(format!("writing {path}"), e))?;
        println!("metrics JSON written to {path}");
    }
    Ok(())
}

/// `ecfrm scrub`: integrity-scrub exercise and microbenchmark. Builds
/// an in-memory store, ingests `--stripes` worth of data, and times the
/// merkle scrub (checksum + manifest verification, no decoding) against
/// the decode scrub (recompute every parity). With `--corrupt`, first
/// plants one flipped byte on a disk behind the store's back and proves
/// the merkle scrub localizes it to the exact element, then heals
/// through the repair pipeline and finishes with a clean re-scrub.
pub fn scrub(opts: &Options) -> Result<(), CliError> {
    use ecfrm_sim::ThreadedArray;
    use ecfrm_store::{ObjectStore, RepairConfig, RepairManager};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let code = opts.code.as_deref().unwrap_or("rs:6,3");
    let layout = opts.layout.as_deref().unwrap_or("ecfrm");
    let element_size = opts.element_size.unwrap_or(16 * 1024);
    let scheme = parse_scheme(code, layout, opts.seed, opts.racks)?;
    let stripes = opts.stripe_count()?;

    let store = Arc::new(ObjectStore::with_array(
        scheme.clone(),
        element_size,
        ThreadedArray::new(scheme.n_disks()),
    ));
    let total_elements = stripes * scheme.data_per_stripe();
    let payload: Vec<u8> = (0..total_elements * element_size)
        .map(|i| (i % 251) as u8)
        .collect();
    store.put("scrub", &payload)?;
    store.flush();
    let sealed = store.stats().stripes;
    let cells_per_stripe = store
        .manifest(0)
        .map_or(scheme.data_per_stripe(), |m| m.n_elements());
    let scrubbed_bytes = (sealed as usize * cells_per_stripe * element_size) as f64;
    println!(
        "{}: ingested {:.1} MB over {} disks ({sealed} stripes)",
        scheme.name(),
        payload.len() as f64 / 1e6,
        scheme.n_disks(),
    );

    if opts.corrupt {
        // One flipped byte on disk 0, behind the store's back: media
        // bit-rot that no read has touched yet.
        let victim_disk = 0usize;
        let disk = store.array().disk(victim_disk);
        let mut cell = disk
            .read(0)
            .ok_or_else(|| CliError::Usage("disk 0 offset 0 holds no element".into()))?;
        cell[element_size / 2] ^= 0x10;
        disk.write(0, cell);

        let report = store.scrub()?;
        if report.corrupt_elements.len() != 1 {
            return Err(CliError::Usage(format!(
                "merkle scrub should localize exactly 1 corrupt element, found {:?}",
                report.corrupt_elements
            )));
        }
        let (stripe, element) = report.corrupt_elements[0];
        println!(
            "planted bit-rot on disk {victim_disk}; merkle scrub localized it to \
             stripe {stripe}, element {element} ({} groups flagged)",
            report.corrupt_groups.len()
        );

        // Heal through the normal pipeline: fail the disk, let repair
        // rebuild it from survivors with fresh checksums.
        store.fail_disk(victim_disk)?;
        let mgr = RepairManager::spawn(
            Arc::clone(&store),
            RepairConfig {
                workers: opts.workers.unwrap_or(2),
                rate_limit: None,
                poll: Duration::from_millis(1),
                replacer: None,
            },
        );
        if !mgr.wait_idle(Duration::from_secs(600)) {
            return Err(CliError::Usage("repair did not converge".into()));
        }
        mgr.shutdown();
        let report = store.scrub()?;
        if !report.is_clean() {
            return Err(CliError::Usage(format!(
                "re-scrub after repair still dirty: {report:?}"
            )));
        }
        println!("healed through repair; re-scrub clean");
    }

    // Timed comparison: merkle scrub (footer + manifest verification,
    // O(elements) hashing, no decode) vs decode scrub (recompute every
    // parity through the code).
    let t = Instant::now();
    let merkle_report = store.scrub()?;
    let merkle_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let decode_report = store.scrub_decode()?;
    let decode_s = t.elapsed().as_secs_f64();
    if !merkle_report.is_clean() || !decode_report.is_clean() {
        return Err(CliError::Usage("scrub found unexpected damage".into()));
    }
    println!(
        "merkle scrub: {sealed} stripes in {:.1} ms ({:.0} MB/s)",
        merkle_s * 1e3,
        scrubbed_bytes / 1e6 / merkle_s
    );
    println!(
        "decode scrub: {sealed} stripes in {:.1} ms ({:.0} MB/s)  [decode/merkle time ratio {:.2}]",
        decode_s * 1e3,
        scrubbed_bytes / 1e6 / decode_s,
        decode_s / merkle_s.max(1e-9)
    );

    let snap = store.recorder().snapshot();
    if opts.stats {
        println!("\n-- store metrics ({}) --", scheme.name());
        print!("{}", snap.render());
    }
    if let Some(path) = &opts.json {
        std::fs::write(path, snap.to_json())
            .map_err(|e| CliError::io(format!("writing {path}"), e))?;
        println!("metrics JSON written to {path}");
    }
    Ok(())
}

/// `ecfrm stats`: fetch and print the metrics registry of one or more
/// shard servers (`--remote host:port,...`) over the wire.
pub fn stats(opts: &Options) -> Result<(), CliError> {
    use ecfrm_net::{RemoteDisk, RemoteDiskConfig};

    if opts.remote.is_empty() {
        return Err(CliError::Usage(
            "stats needs --remote host:port[,host:port,...]".into(),
        ));
    }
    let mut json_shards: Vec<(String, String)> = Vec::new();
    for a in &opts.remote {
        let addr = a
            .parse()
            .map_err(|e| CliError::Usage(format!("bad --remote address `{a}`: {e}")))?;
        let disk = RemoteDisk::new(addr, RemoteDiskConfig::builder().build());
        let pairs = disk.stats()?;
        println!("shard {a}:");
        if pairs.is_empty() {
            println!("  (no activity)");
        }
        let width = pairs.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &pairs {
            println!("  {name:<width$} {value}");
        }
        if opts.json.is_some() {
            let fields: Vec<(String, String)> = pairs
                .iter()
                .map(|(n, v)| (n.clone(), v.to_string()))
                .collect();
            json_shards.push((a.clone(), ecfrm_obs::json::object(&fields)));
        }
    }
    if let Some(path) = &opts.json {
        std::fs::write(path, ecfrm_obs::json::object(&json_shards))
            .map_err(|e| CliError::io(format!("writing {path}"), e))?;
        println!("metrics JSON written to {path}");
    }
    Ok(())
}

/// `ecfrm verify`: scrub a chunk directory — recompute every group's
/// parities from the stored data and report mismatches and missing
/// chunks. Exit is an `Err` when corruption is found, so scripts can
/// gate on it.
pub fn verify(opts: &Options) -> Result<(), CliError> {
    let dir = Path::new(Options::require(&opts.dir, "dir")?);
    let m = Manifest::load(dir)?;
    let scheme = scheme_of(&m)?;
    let chunks = read_chunks(dir, scheme.n_disks());
    let missing: Vec<usize> = (0..scheme.n_disks())
        .filter(|&d| chunks[d].is_none())
        .collect();
    let k = scheme.code().k();
    let n = scheme.code().n();
    let mut corrupt: Vec<(u64, usize)> = Vec::new();
    let mut skipped = 0u64;
    for s in 0..m.stripes {
        for row in 0..scheme.layout().rows_per_stripe() {
            let locs = scheme.layout().row_locations(s, row);
            let cells: Vec<Option<&[u8]>> = locs
                .iter()
                .map(|&loc| element_of(&chunks, loc, m.element_size))
                .collect();
            if cells.iter().any(|c| c.is_none()) {
                skipped += 1;
                continue;
            }
            let data: Vec<&[u8]> = cells[..k].iter().map(|c| c.unwrap()).collect();
            let mut parity = vec![vec![0u8; m.element_size]; n - k];
            scheme.code().encode(&data, &mut parity);
            let stored: Vec<&[u8]> = cells[k..].iter().map(|c| c.unwrap()).collect();
            if parity
                .iter()
                .zip(&stored)
                .any(|(want, got)| want.as_slice() != *got)
            {
                corrupt.push((s, row));
            }
        }
    }
    if !missing.is_empty() {
        println!("missing chunks: {missing:?} ({skipped} groups skipped)");
    }
    if corrupt.is_empty() {
        println!(
            "verify OK: {} stripes, {} groups checked",
            m.stripes,
            m.stripes * scheme.layout().rows_per_stripe() as u64 - skipped
        );
        Ok(())
    } else {
        Err(CliError::Store(ecfrm_store::StoreError::DataLoss(format!(
            "corruption detected in {} group(s): {corrupt:?}",
            corrupt.len()
        ))))
    }
}

/// `ecfrm plan`: print the per-disk load distribution of a read — the
/// paper's Figure 3 / Figure 7 views.
pub fn plan(opts: &Options) -> Result<(), CliError> {
    let code = Options::require(&opts.code, "code")?;
    let layout = Options::require(&opts.layout, "layout")?;
    let start = *Options::require(&opts.start, "start")?;
    let count = *Options::require(&opts.count, "count")?;
    let scheme = parse_scheme(code, layout, opts.seed, opts.racks)?;
    let plan = if opts.failed.is_empty() {
        scheme.normal_read_plan(start, count)
    } else {
        scheme.degraded_read_plan(start, count, &opts.failed)
    };
    println!(
        "{}: read {count} elements from {start}{}",
        scheme.name(),
        if opts.failed.is_empty() {
            String::new()
        } else {
            format!(" with failed disks {:?}", opts.failed)
        }
    );
    let loads = plan.per_disk_load();
    for (d, &l) in loads.iter().enumerate() {
        let marker = if opts.failed.contains(&d) {
            " (failed)"
        } else {
            ""
        };
        println!("  disk {d:>2}: {:<20} {l}{marker}", "#".repeat(l.min(20)));
    }
    println!(
        "  max load {} | total fetched {} | repair fetched {} | cost {:.3}",
        plan.max_load(),
        plan.total_fetched(),
        plan.repair_fetched(),
        plan.cost()
    );
    if !plan.unreadable.is_empty() {
        println!("  UNREADABLE elements: {:?}", plan.unreadable);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ecfrm-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts_encode(dir: &Path, input: &Path) -> Options {
        Options {
            code: Some("lrc:6,2,2".into()),
            layout: Some("ecfrm".into()),
            element_size: Some(512),
            input: Some(input.to_string_lossy().into_owned()),
            dir: Some(dir.to_string_lossy().into_owned()),
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn encode_decode_roundtrip_with_missing_chunks() {
        let dir = tmpdir("roundtrip");
        let input = dir.join("input.bin");
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&input, &data).unwrap();

        encode(&opts_encode(&dir, &input)).unwrap();
        assert!(dir.join("manifest.txt").exists());
        assert!(dir.join(chunk_name(9)).exists());

        // Delete three chunks — (6,2,2) LRC tolerates any 3.
        for d in [0usize, 4, 8] {
            std::fs::remove_file(dir.join(chunk_name(d))).unwrap();
        }
        let out = dir.join("restored.bin");
        let dopts = Options {
            dir: Some(dir.to_string_lossy().into_owned()),
            output: Some(out.to_string_lossy().into_owned()),
            ..Default::default()
        };
        decode(&dopts).unwrap();
        assert_eq!(std::fs::read(&out).unwrap(), data);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repair_regenerates_identical_chunk() {
        let dir = tmpdir("repair");
        let input = dir.join("input.bin");
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();
        std::fs::write(&input, &data).unwrap();
        encode(&opts_encode(&dir, &input)).unwrap();

        let original = std::fs::read(dir.join(chunk_name(3))).unwrap();
        std::fs::remove_file(dir.join(chunk_name(3))).unwrap();
        let ropts = Options {
            dir: Some(dir.to_string_lossy().into_owned()),
            disk: Some(3),
            ..Default::default()
        };
        repair(&ropts).unwrap();
        assert_eq!(std::fs::read(dir.join(chunk_name(3))).unwrap(), original);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn decode_fails_cleanly_beyond_tolerance() {
        let dir = tmpdir("beyond");
        let input = dir.join("input.bin");
        std::fs::write(&input, vec![9u8; 10_000]).unwrap();
        encode(&opts_encode(&dir, &input)).unwrap();
        for d in [0usize, 1, 2, 6] {
            std::fs::remove_file(dir.join(chunk_name(d))).unwrap();
        }
        let dopts = Options {
            dir: Some(dir.to_string_lossy().into_owned()),
            output: Some(dir.join("x.bin").to_string_lossy().into_owned()),
            ..Default::default()
        };
        assert!(decode(&dopts).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_input_still_roundtrips() {
        let dir = tmpdir("empty");
        let input = dir.join("input.bin");
        std::fs::write(&input, b"").unwrap();
        encode(&opts_encode(&dir, &input)).unwrap();
        let out = dir.join("restored.bin");
        let dopts = Options {
            dir: Some(dir.to_string_lossy().into_owned()),
            output: Some(out.to_string_lossy().into_owned()),
            ..Default::default()
        };
        decode(&dopts).unwrap();
        assert_eq!(std::fs::read(&out).unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_subcommand_runs_end_to_end() {
        let opts = Options {
            code: Some("rs:4,2".into()),
            layout: Some("ecfrm".into()),
            element_size: Some(1024),
            count: Some(20),
            seed: 5,
            ..Default::default()
        };
        bench(&opts).unwrap();
    }

    #[test]
    fn bench_subcommand_runs_over_loopback_remotes() {
        use ecfrm_net::ShardServer;
        use ecfrm_sim::MemDisk;
        use std::sync::Arc;
        // rs:4,2 → n = 6 shards, one loopback server each.
        let servers: Vec<ShardServer> = (0..6)
            .map(|_| ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap())
            .collect();
        let opts = Options {
            code: Some("rs:4,2".into()),
            layout: Some("ecfrm".into()),
            element_size: Some(512),
            count: Some(10),
            seed: 5,
            remote: servers.iter().map(|s| s.addr().to_string()).collect(),
            ..Default::default()
        };
        bench(&opts).unwrap();
    }

    #[test]
    fn bench_with_stats_and_json_dump() {
        let dir = tmpdir("bench-stats");
        let json = dir.join("metrics.json");
        let opts = Options {
            code: Some("rs:4,2".into()),
            layout: Some("ecfrm".into()),
            element_size: Some(512),
            count: Some(10),
            seed: 5,
            stats: true,
            stripes: Some("small".into()),
            json: Some(json.to_string_lossy().into_owned()),
            ..Default::default()
        };
        bench(&opts).unwrap();
        let dumped = std::fs::read_to_string(&json).unwrap();
        assert!(dumped.contains("\"disk_load\""), "{dumped}");
        assert!(dumped.contains("\"read_us\""), "{dumped}");
        assert!(dumped.contains("\"imbalance\""), "{dumped}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_subcommand_queries_remote_shards() {
        use ecfrm_net::ShardServer;
        use ecfrm_sim::MemDisk;
        use std::sync::Arc;
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let opts = Options {
            remote: vec![server.addr().to_string()],
            ..Default::default()
        };
        stats(&opts).unwrap();
        // No --remote is a usage error.
        assert!(stats(&Options::default()).is_err());
    }

    #[test]
    fn bench_rejects_wrong_remote_count() {
        let opts = Options {
            code: Some("rs:4,2".into()),
            layout: Some("ecfrm".into()),
            remote: vec!["127.0.0.1:1".into()],
            ..Default::default()
        };
        let err = bench(&opts).unwrap_err();
        assert!(err.to_string().contains("exactly n = 6"), "{err}");
    }

    #[test]
    fn verify_detects_corruption_and_passes_clean() {
        let dir = tmpdir("verify");
        let input = dir.join("input.bin");
        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 253) as u8).collect();
        std::fs::write(&input, &data).unwrap();
        encode(&opts_encode(&dir, &input)).unwrap();
        let vopts = Options {
            dir: Some(dir.to_string_lossy().into_owned()),
            ..Default::default()
        };
        verify(&vopts).unwrap();

        // Flip one byte in one chunk.
        let chunk = dir.join(chunk_name(4));
        let mut bytes = std::fs::read(&chunk).unwrap();
        bytes[100] ^= 0x55;
        std::fs::write(&chunk, &bytes).unwrap();
        let err = verify(&vopts).unwrap_err();
        assert!(err.to_string().contains("corruption"), "{err}");

        // Repairing the corrupt chunk from survivors restores it.
        std::fs::remove_file(&chunk).unwrap();
        let ropts = Options {
            dir: Some(dir.to_string_lossy().into_owned()),
            disk: Some(4),
            ..Default::default()
        };
        repair(&ropts).unwrap();
        verify(&vopts).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_runs_for_normal_and_degraded() {
        let p = Options {
            code: Some("lrc:6,2,2".into()),
            layout: Some("ecfrm".into()),
            start: Some(0),
            count: Some(8),
            ..Default::default()
        };
        plan(&p).unwrap();
        let mut pd = p;
        pd.failed = vec![2];
        plan(&pd).unwrap();
    }

    #[test]
    fn info_reports_missing() {
        let dir = tmpdir("info");
        let input = dir.join("input.bin");
        std::fs::write(&input, vec![1u8; 5000]).unwrap();
        encode(&opts_encode(&dir, &input)).unwrap();
        std::fs::remove_file(dir.join(chunk_name(2))).unwrap();
        let iopts = Options {
            dir: Some(dir.to_string_lossy().into_owned()),
            ..Default::default()
        };
        info(&iopts).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

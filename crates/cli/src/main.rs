//! `ecfrm` — command-line front end for the EC-FRM framework.
//!
//! ```text
//! ecfrm encode  --code rs:6,3 --layout ecfrm --element-size 65536 \
//!               --input data.bin --dir ./chunks
//! ecfrm decode  --dir ./chunks --output restored.bin
//! ecfrm repair  --dir ./chunks --disk 3
//! ecfrm info    --dir ./chunks
//! ecfrm plan    --code lrc:6,2,2 --layout ecfrm --start 0 --count 8 [--failed 2]
//! ```
//!
//! ```text
//! ecfrm serve   --listen 127.0.0.1:7000 --dir ./shard0
//! ecfrm serve   --listen 127.0.0.1:7100 --front --code rs:6,3 --layout ecfrm \
//!               --tenant web:latency --tenant scan:bulk:8000000 \
//!               --remote 127.0.0.1:7000,...   # front node over shard nodes
//! ecfrm bench   --code rs:4,2 --layout ecfrm \
//!               --remote 127.0.0.1:7000,...   # one address per disk
//! ecfrm drill   --code rs:6,3 --layout ecfrm --disk 3 --rate 20000000
//! ```
//!
//! `encode` splits a file into elements, erasure codes it stripe by
//! stripe under the chosen scheme, and writes one chunk file per disk
//! plus a plain-text manifest. `decode` restores the original file even
//! when up to `fault-tolerance` chunk files are deleted. `repair`
//! regenerates one missing/corrupt chunk file. `plan` prints the per-disk
//! access distribution of a read — the paper's Figures 3 and 7 as a
//! command. `serve` exposes one shard over TCP and `bench --remote`
//! drives the full put→encode→network→decode path against such shards.
//! `serve --front` additionally hosts the multi-tenant object front
//! door on the same listener: named objects, per-tenant QoS admission
//! (`--tenant name:class[:rate]`), and the parity-aware read cache
//! (`--cache-bytes`), over local disks or `--remote` shard nodes.
//! `drill` is a kill-and-repair fire drill: wipe a disk, restore full
//! redundancy with the background repair pipeline under foreground
//! load, and report both sides' performance. With `--corrupt` the
//! victim disk silently flips bits instead of dying: verify-on-read
//! must catch every lie before it reaches a caller, heal the disk, and
//! finish with a clean merkle scrub. `scrub` times the merkle scrub
//! against the decode scrub and (with `--corrupt`) proves a planted
//! flip is localized to the exact element.

mod args;
mod error;
mod manifest;
mod ops;

use error::CliError;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let Some(cmd) = argv.first() else {
        return Err(CliError::Usage(usage()));
    };
    let opts = args::Options::parse(&argv[1..])?;
    match cmd.as_str() {
        "encode" => ops::encode(&opts),
        "decode" => ops::decode(&opts),
        "repair" => ops::repair(&opts),
        "info" => ops::info(&opts),
        "verify" => ops::verify(&opts),
        "plan" => ops::plan(&opts),
        "bench" => ops::bench(&opts),
        "drill" => ops::drill(&opts),
        "scrub" => ops::scrub(&opts),
        "serve" => ops::serve(&opts),
        "stats" => ops::stats(&opts),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n{}",
            usage()
        ))),
    }
}

fn usage() -> String {
    "usage: ecfrm <command> [options]\n\
     commands:\n\
     \x20 encode  --code <rs:K,M|crs:K,M|lrc:K,L,M|xor:K> --layout <standard|rotated|ecfrm|shuffled>\n\
     \x20         --element-size <bytes> --input <file> --dir <chunk dir>\n\
     \x20 decode  --dir <chunk dir> --output <file>\n\
     \x20 repair  --dir <chunk dir> --disk <index>\n\
     \x20 info    --dir <chunk dir>\n\
     \x20 verify  --dir <chunk dir>\n\
     \x20 plan    --code <spec> --layout <name> --start <elem> --count <elems> [--failed <disk>]\n\
     \x20 bench   --code <spec> --layout <name> [--element-size <bytes>] [--count <trials>]\n\
     \x20         [--stripes small|full|<n>] [--stats] [--json <file>]\n\
     \x20         [--file-io auto|blocking|uring[:depth]]   (local disk read backend)\n\
     \x20         [--remote host:port,host:port,...]   (one address per disk)\n\
     \x20 drill   [--code <spec>] [--layout <name>] [--disk <victim>] [--stripes small|full|<n>]\n\
     \x20         [--workers <n>] [--rate <bytes/s>] [--corrupt] [--stats] [--json <file>]\n\
     \x20         (kill-and-repair fire drill: background repair under foreground load;\n\
     \x20          --corrupt injects silent bit-rot instead of a clean kill)\n\
     \x20 every scheme command also takes [--racks <n>]: contiguous failure domains;\n\
     \x20         repair and degraded reads prefer same-rack helpers\n\
     \x20 scrub   [--code <spec>] [--layout <name>] [--stripes small|full|<n>] [--corrupt]\n\
     \x20         [--stats] [--json <file>]\n\
     \x20         (merkle vs decode scrub timing; --corrupt plants bit-rot and checks localization)\n\
     \x20 serve   --listen <host:port> [--dir <shard dir>] [--element-size <bytes>]\n\
     \x20         [--file-io auto|blocking|uring[:depth]]\n\
     \x20         [--front --code <spec> --layout <name>]   (object front door: opcodes 11-15)\n\
     \x20         [--tenant name:latency|bulk|repair[:rate_bytes_per_s]]...\n\
     \x20         [--cache-bytes <n>] [--no-admission]\n\
     \x20         [--remote host:port,...]   (front store over remote shards, one per disk)\n\
     \x20 stats   --remote host:port[,host:port,...] [--json <file>]\n\
     layouts: standard | rotated | krotated | shuffled | ecfrm"
        .to_string()
}

//! Minimal `--flag value` argument parsing (no external dependency) and
//! code/layout specification strings.

use std::sync::Arc;

use ecfrm_codes::{CandidateCode, LrcCode, RsCode, XorCode};
use ecfrm_core::{LayoutKind, Scheme};
use ecfrm_sim::FileIoConfig;

/// Parsed command options.
#[derive(Debug, Default)]
pub struct Options {
    /// `--code rs:6,3` etc.
    pub code: Option<String>,
    /// `--layout ecfrm` etc.
    pub layout: Option<String>,
    /// `--element-size 65536`.
    pub element_size: Option<usize>,
    /// `--input file`.
    pub input: Option<String>,
    /// `--output file`.
    pub output: Option<String>,
    /// `--dir chunkdir`.
    pub dir: Option<String>,
    /// `--disk 3`.
    pub disk: Option<usize>,
    /// `--start 0`.
    pub start: Option<u64>,
    /// `--count 8`.
    pub count: Option<usize>,
    /// `--failed 2` (repeatable).
    pub failed: Vec<usize>,
    /// `--seed 7` (shuffled layout).
    pub seed: u64,
    /// `--listen 127.0.0.1:7000` (serve).
    pub listen: Option<String>,
    /// `--remote host:port,host:port,...` (bench over the wire).
    pub remote: Vec<String>,
    /// `--stats`: print the metrics registry after the command.
    pub stats: bool,
    /// `--json file`: also dump the metrics registry as JSON.
    pub json: Option<String>,
    /// `--stripes small|full|<n>` (bench ingest size).
    pub stripes: Option<String>,
    /// `--rate 5000000`: repair rate limit in bytes/second (drill).
    pub rate: Option<u64>,
    /// `--workers 2`: repair worker threads (drill).
    pub workers: Option<usize>,
    /// `--corrupt`: inject silent bit-rot instead of (drill) or in
    /// addition to (scrub) the clean-loss fault.
    pub corrupt: bool,
    /// `--file-io auto|blocking|uring[:depth]` (serve/bench local
    /// disks).
    pub file_io: Option<String>,
    /// `--racks 3`: split the disks into that many contiguous failure
    /// domains; repair and degraded reads prefer same-rack helpers.
    pub racks: Option<usize>,
    /// `--front`: serve the multi-tenant object front door (namespace +
    /// QoS admission + read cache) on top of the shard, not just raw
    /// shard ops. Requires `--code`/`--layout` so the node can build
    /// its store.
    pub front: bool,
    /// `--tenant name:class[:rate]` (repeatable): register a tenant on
    /// the front door, e.g. `web:latency` or `scan:bulk:8000000`.
    pub tenant: Vec<String>,
    /// `--cache-bytes 33554432`: front-door element cache capacity
    /// (`0` disables caching).
    pub cache_bytes: Option<usize>,
    /// `--no-admission`: admit every front-door request immediately
    /// (QoS off — the A/B baseline).
    pub no_admission: bool,
}

impl Options {
    /// Parse `--flag value` pairs.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut o = Options {
            seed: 7,
            ..Default::default()
        };
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {flag} needs a value"))
            };
            match flag.as_str() {
                "--code" => o.code = Some(value()?),
                "--layout" => o.layout = Some(value()?),
                "--element-size" => {
                    o.element_size = Some(
                        value()?
                            .parse()
                            .map_err(|e| format!("bad --element-size: {e}"))?,
                    )
                }
                "--input" => o.input = Some(value()?),
                "--output" => o.output = Some(value()?),
                "--dir" => o.dir = Some(value()?),
                "--disk" => {
                    o.disk = Some(value()?.parse().map_err(|e| format!("bad --disk: {e}"))?)
                }
                "--start" => {
                    o.start = Some(value()?.parse().map_err(|e| format!("bad --start: {e}"))?)
                }
                "--count" => {
                    o.count = Some(value()?.parse().map_err(|e| format!("bad --count: {e}"))?)
                }
                "--failed" => o
                    .failed
                    .push(value()?.parse().map_err(|e| format!("bad --failed: {e}"))?),
                "--seed" => o.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?,
                "--listen" => o.listen = Some(value()?),
                "--remote" => o
                    .remote
                    .extend(value()?.split(',').map(|a| a.trim().to_string())),
                // Boolean flags take no value.
                "--stats" => o.stats = true,
                "--corrupt" => o.corrupt = true,
                "--front" => o.front = true,
                "--no-admission" => o.no_admission = true,
                "--tenant" => o.tenant.push(value()?),
                "--cache-bytes" => {
                    o.cache_bytes = Some(
                        value()?
                            .parse()
                            .map_err(|e| format!("bad --cache-bytes: {e}"))?,
                    )
                }
                "--json" => o.json = Some(value()?),
                "--stripes" => o.stripes = Some(value()?),
                "--rate" => {
                    o.rate = Some(value()?.parse().map_err(|e| format!("bad --rate: {e}"))?)
                }
                "--file-io" => o.file_io = Some(value()?),
                "--racks" => {
                    o.racks = Some(value()?.parse().map_err(|e| format!("bad --racks: {e}"))?)
                }
                "--workers" => {
                    o.workers = Some(
                        value()?
                            .parse()
                            .map_err(|e| format!("bad --workers: {e}"))?,
                    )
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(o)
    }

    /// Required-flag accessor with a friendly error.
    pub fn require<'a, T>(v: &'a Option<T>, name: &str) -> Result<&'a T, String> {
        v.as_ref()
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Resolve `--file-io` to a [`FileIoConfig`]: `auto` (probe, the
    /// default), `blocking`, `uring`, or `uring:<depth>` for an
    /// explicit queue depth. The `ECFRM_FORCE_FILE_IO` environment
    /// variable still overrides whatever is chosen here.
    pub fn file_io_config(&self) -> Result<FileIoConfig, String> {
        let spec = self.file_io.as_deref().unwrap_or("auto");
        match spec {
            "auto" => Ok(FileIoConfig::default()),
            "blocking" => Ok(FileIoConfig::blocking()),
            "uring" => Ok(FileIoConfig::uring(FileIoConfig::default().depth)),
            _ => {
                if let Some(depth) = spec.strip_prefix("uring:") {
                    let depth = depth
                        .parse::<u32>()
                        .ok()
                        .filter(|&d| d > 0)
                        .ok_or_else(|| format!("bad --file-io depth `{depth}`"))?;
                    Ok(FileIoConfig::uring(depth))
                } else {
                    Err(format!(
                        "bad --file-io `{spec}` (use auto|blocking|uring[:depth])"
                    ))
                }
            }
        }
    }

    /// Resolve `--stripes` to an ingest size: `small` = 8 stripes (the
    /// CI smoke size), `full` = 64 (the default), or a literal count.
    pub fn stripe_count(&self) -> Result<usize, String> {
        match self.stripes.as_deref() {
            None | Some("full") => Ok(64),
            Some("small") => Ok(8),
            Some(n) => n
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("bad --stripes `{n}` (use small|full|<positive count>)")),
        }
    }
}

/// Parse a code spec: `rs:6,3`, `crs:8,4`, `lrc:6,2,2`, `xor:4`.
pub fn parse_code(spec: &str) -> Result<Arc<dyn CandidateCode>, String> {
    let (kind, params) = spec
        .split_once(':')
        .ok_or_else(|| format!("bad code spec `{spec}` (expected kind:params)"))?;
    let nums: Vec<usize> = params
        .split(',')
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|e| format!("bad code params: {e}"))
        })
        .collect::<Result<_, _>>()?;
    match (kind, nums.as_slice()) {
        ("rs", [k, m]) => Ok(Arc::new(RsCode::vandermonde(*k, *m))),
        ("crs", [k, m]) => Ok(Arc::new(RsCode::cauchy(*k, *m))),
        ("lrc", [k, l, m]) => Ok(Arc::new(LrcCode::new(*k, *l, *m))),
        ("xor", [k]) => Ok(Arc::new(XorCode::new(*k))),
        _ => Err(format!(
            "bad code spec `{spec}` (use rs:K,M | crs:K,M | lrc:K,L,M | xor:K)"
        )),
    }
}

/// Build a scheme from spec strings. Layout names are whatever
/// [`LayoutKind`]'s `FromStr` accepts (`standard`, `rotated`,
/// `krotated`, `shuffled`, `ecfrm`, case-insensitive). `racks`
/// partitions the disks into that many contiguous failure domains
/// (helper selection prefers the failed disk's domain); `None` leaves
/// the scheme domain-blind.
pub fn parse_scheme(
    code: &str,
    layout: &str,
    seed: u64,
    racks: Option<usize>,
) -> Result<Scheme, String> {
    let code = parse_code(code)?;
    let n = code.n();
    let kind: LayoutKind = layout.parse()?;
    let mut builder = Scheme::builder(code).layout(kind).seed(seed);
    if let Some(r) = racks {
        if r == 0 || r > n {
            return Err(format!("bad --racks {r}: need between 1 and {n} racks"));
        }
        builder = builder.racks(r);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_basic_flags() {
        let o = Options::parse(&sv(&[
            "--code",
            "rs:6,3",
            "--layout",
            "ecfrm",
            "--element-size",
            "1024",
            "--failed",
            "2",
            "--failed",
            "5",
        ]))
        .unwrap();
        assert_eq!(o.code.as_deref(), Some("rs:6,3"));
        assert_eq!(o.element_size, Some(1024));
        assert_eq!(o.failed, vec![2, 5]);
    }

    #[test]
    fn parse_network_flags() {
        let o = Options::parse(&sv(&[
            "--listen",
            "127.0.0.1:7000",
            "--remote",
            "10.0.0.1:7000,10.0.0.2:7000",
            "--remote",
            "10.0.0.3:7000",
        ]))
        .unwrap();
        assert_eq!(o.listen.as_deref(), Some("127.0.0.1:7000"));
        assert_eq!(
            o.remote,
            vec!["10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"]
        );
    }

    #[test]
    fn missing_value_is_error() {
        assert!(Options::parse(&sv(&["--code"])).is_err());
        assert!(Options::parse(&sv(&["--bogus", "1"])).is_err());
    }

    #[test]
    fn code_specs() {
        assert_eq!(parse_code("rs:6,3").unwrap().n(), 9);
        assert_eq!(parse_code("crs:8,4").unwrap().n(), 12);
        assert_eq!(parse_code("lrc:6,2,2").unwrap().n(), 10);
        assert_eq!(parse_code("xor:4").unwrap().n(), 5);
        assert!(parse_code("rs:6").is_err());
        assert!(parse_code("nope:1,2").is_err());
        assert!(parse_code("rs").is_err());
    }

    #[test]
    fn scheme_specs() {
        assert_eq!(
            parse_scheme("rs:6,3", "ecfrm", 0, None).unwrap().name(),
            "EC-FRM-RS(6,3)"
        );
        assert_eq!(
            parse_scheme("lrc:6,2,2", "standard", 0, None)
                .unwrap()
                .name(),
            "LRC(6,2,2)"
        );
        assert!(parse_scheme("rs:6,3", "diagonal", 0, None).is_err());
        // Layout names route through LayoutKind::from_str, so every
        // registered layout — including krotated — parses.
        assert_eq!(
            parse_scheme("rs:6,3", "krotated", 0, None).unwrap().name(),
            "KROTATED-RS(6,3)"
        );
        assert!(parse_scheme("rs:6,3", "shuffled", 9, None).is_ok());
    }

    #[test]
    fn racks_flag_partitions_failure_domains() {
        let o = Options::parse(&sv(&["--racks", "3"])).unwrap();
        assert_eq!(o.racks, Some(3));
        // RS(6,3) has 9 disks: 3 contiguous racks of 3.
        let scheme = parse_scheme("rs:6,3", "ecfrm", 0, Some(3)).unwrap();
        assert_eq!(scheme.domains().n_domains(), 3);
        assert!(scheme.domains().same_domain(0, 2));
        assert!(!scheme.domains().same_domain(2, 3));
        // Domain-blind by default, and bad counts are caught before the
        // builder can panic.
        assert_eq!(
            parse_scheme("rs:6,3", "ecfrm", 0, None)
                .unwrap()
                .domains()
                .n_domains(),
            1
        );
        assert!(parse_scheme("rs:6,3", "ecfrm", 0, Some(0)).is_err());
        assert!(parse_scheme("rs:6,3", "ecfrm", 0, Some(10)).is_err());
        assert!(Options::parse(&sv(&["--racks", "many"])).is_err());
    }

    #[test]
    fn repair_drill_flags() {
        let o = Options::parse(&sv(&[
            "--rate",
            "5000000",
            "--workers",
            "4",
            "--disk",
            "3",
            "--corrupt",
        ]))
        .unwrap();
        assert_eq!(o.rate, Some(5_000_000));
        assert_eq!(o.workers, Some(4));
        assert_eq!(o.disk, Some(3));
        assert!(o.corrupt);
        assert!(!Options::default().corrupt);
        assert!(Options::parse(&sv(&["--rate", "fast"])).is_err());
        assert!(Options::parse(&sv(&["--workers", "-1"])).is_err());
    }

    #[test]
    fn file_io_flag() {
        use ecfrm_sim::FileIoMode;
        let with = |s: &str| Options {
            file_io: Some(s.into()),
            ..Default::default()
        };
        let o = Options::parse(&sv(&["--file-io", "uring:32"])).unwrap();
        assert_eq!(o.file_io.as_deref(), Some("uring:32"));
        let cfg = o.file_io_config().unwrap();
        assert_eq!(cfg.mode, FileIoMode::Uring);
        assert_eq!(cfg.depth, 32);
        assert_eq!(
            Options::default().file_io_config().unwrap().mode,
            FileIoMode::Auto
        );
        assert_eq!(
            with("blocking").file_io_config().unwrap().mode,
            FileIoMode::Blocking
        );
        assert_eq!(
            with("uring").file_io_config().unwrap().mode,
            FileIoMode::Uring
        );
        assert!(with("uring:0").file_io_config().is_err());
        assert!(with("uring:lots").file_io_config().is_err());
        assert!(with("mmap").file_io_config().is_err());
    }

    #[test]
    fn front_door_flags() {
        let o = Options::parse(&sv(&[
            "--front",
            "--tenant",
            "web:latency",
            "--tenant",
            "scan:bulk:8000000",
            "--cache-bytes",
            "1048576",
            "--no-admission",
        ]))
        .unwrap();
        assert!(o.front);
        assert_eq!(o.tenant, vec!["web:latency", "scan:bulk:8000000"]);
        assert_eq!(o.cache_bytes, Some(1_048_576));
        assert!(o.no_admission);
        // Off by default: a plain shard server has no front door.
        let d = Options::default();
        assert!(!d.front && !d.no_admission && d.tenant.is_empty());
        assert!(Options::parse(&sv(&["--cache-bytes", "lots"])).is_err());
        assert!(Options::parse(&sv(&["--tenant"])).is_err());
    }

    #[test]
    fn stats_json_and_stripes_flags() {
        let o = Options::parse(&sv(&[
            "--stats",
            "--json",
            "out.json",
            "--stripes",
            "small",
        ]))
        .unwrap();
        assert!(o.stats);
        assert_eq!(o.json.as_deref(), Some("out.json"));
        assert_eq!(o.stripe_count().unwrap(), 8);
        assert_eq!(Options::default().stripe_count().unwrap(), 64);
        let with = |s: &str| Options {
            stripes: Some(s.into()),
            ..Default::default()
        };
        assert_eq!(with("full").stripe_count().unwrap(), 64);
        assert_eq!(with("12").stripe_count().unwrap(), 12);
        assert!(with("0").stripe_count().is_err());
        assert!(with("lots").stripe_count().is_err());
    }
}

//! placeholder

//! The CLI's error type: one enum every subcommand returns, so store,
//! network, and usage failures all flow through `?` without being
//! flattened to strings at each call site.

use ecfrm_net::NetError;
use ecfrm_store::StoreError;

/// Any failure a subcommand can surface.
#[derive(Debug)]
pub enum CliError {
    /// Bad flags, specs, or input shapes — the user's mistake.
    Usage(String),
    /// The object store failed (not found, data loss, decode, …).
    Store(StoreError),
    /// The network layer failed (timeouts, resets, remote errors).
    Net(NetError),
    /// A filesystem operation failed, with what we were doing.
    Io {
        /// What the CLI was doing when the error hit.
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl CliError {
    /// Wrap an I/O error with a short description of the operation.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        CliError::Io {
            context: context.into(),
            source,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Store(e) => write!(f, "{e}"),
            CliError::Net(e) => write!(f, "{e}"),
            CliError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Store(e) => Some(e),
            CliError::Net(e) => Some(e),
            CliError::Io { source, .. } => Some(source),
            CliError::Usage(_) => None,
        }
    }
}

impl From<StoreError> for CliError {
    fn from(e: StoreError) -> Self {
        CliError::Store(e)
    }
}

impl From<NetError> for CliError {
    fn from(e: NetError) -> Self {
        CliError::Net(e)
    }
}

/// Parse-layer errors (`Options::parse`, spec parsing) are usage errors.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_and_sources() {
        let e: CliError = StoreError::NoSuchDisk(3).into();
        assert!(e.to_string().contains("no such disk"));
        assert!(e.source().is_some());

        let e: CliError = NetError::Timeout.into();
        assert!(e.to_string().contains("timed out"));
        assert!(e.source().is_some());

        let e: CliError = String::from("missing required flag --dir").into();
        assert_eq!(e.to_string(), "missing required flag --dir");
        assert!(e.source().is_none());

        let e = CliError::io(
            "reading input.bin",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().starts_with("reading input.bin:"));
        assert!(e.source().is_some());
    }

    #[test]
    fn store_and_net_errors_convert_into_each_other() {
        // The From impls live in ecfrm-net; exercise them from the
        // consumer side so a future cycle break is caught here.
        let s: StoreError = NetError::Timeout.into();
        assert!(matches!(s, StoreError::Net(_)));
        let n: NetError = StoreError::NotFound("x".into()).into();
        assert!(matches!(n, NetError::Remote(_)));
    }
}

//! Plain-text chunk-directory manifest (`manifest.txt`): enough metadata
//! to rebuild the scheme and the original file.

use std::collections::HashMap;
use std::path::Path;

/// Manifest of an encoded chunk directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Code spec string, e.g. `rs:6,3`.
    pub code: String,
    /// Layout name, e.g. `ecfrm`.
    pub layout: String,
    /// Shuffled-layout seed (ignored otherwise).
    pub seed: u64,
    /// Element size in bytes.
    pub element_size: usize,
    /// Original file length in bytes.
    pub data_len: u64,
    /// Number of stripes written.
    pub stripes: u64,
}

impl Manifest {
    /// Serialise as `key = value` lines.
    pub fn to_text(&self) -> String {
        format!(
            "format = ecfrm-chunks-v1\ncode = {}\nlayout = {}\nseed = {}\nelement_size = {}\ndata_len = {}\nstripes = {}\n",
            self.code, self.layout, self.seed, self.element_size, self.data_len, self.stripes
        )
    }

    /// Parse from `key = value` lines.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut kv = HashMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("bad manifest line: {line}"))?;
            kv.insert(k.trim().to_string(), v.trim().to_string());
        }
        if kv.get("format").map(String::as_str) != Some("ecfrm-chunks-v1") {
            return Err("not an ecfrm chunk manifest (format line missing)".into());
        }
        let get = |k: &str| {
            kv.get(k)
                .cloned()
                .ok_or_else(|| format!("manifest missing key `{k}`"))
        };
        Ok(Self {
            code: get("code")?,
            layout: get("layout")?,
            seed: get("seed")?.parse().map_err(|e| format!("bad seed: {e}"))?,
            element_size: get("element_size")?
                .parse()
                .map_err(|e| format!("bad element_size: {e}"))?,
            data_len: get("data_len")?
                .parse()
                .map_err(|e| format!("bad data_len: {e}"))?,
            stripes: get("stripes")?
                .parse()
                .map_err(|e| format!("bad stripes: {e}"))?,
        })
    }

    /// Write to `<dir>/manifest.txt`.
    pub fn save(&self, dir: &Path) -> Result<(), String> {
        std::fs::write(dir.join("manifest.txt"), self.to_text())
            .map_err(|e| format!("writing manifest: {e}"))
    }

    /// Load from `<dir>/manifest.txt`.
    pub fn load(dir: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(dir.join("manifest.txt"))
            .map_err(|e| format!("reading manifest: {e}"))?;
        Self::from_text(&text)
    }
}

/// Chunk file name for disk `d`.
pub fn chunk_name(d: usize) -> String {
    format!("disk_{d:03}.bin")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            code: "lrc:6,2,2".into(),
            layout: "ecfrm".into(),
            seed: 7,
            element_size: 4096,
            data_len: 123456,
            stripes: 2,
        }
    }

    #[test]
    fn text_roundtrip() {
        let m = sample();
        assert_eq!(Manifest::from_text(&m.to_text()).unwrap(), m);
    }

    #[test]
    fn rejects_foreign_files() {
        assert!(Manifest::from_text("hello\nworld").is_err());
        assert!(Manifest::from_text("format = something-else\n").is_err());
    }

    #[test]
    fn missing_keys_detected() {
        let text = "format = ecfrm-chunks-v1\ncode = rs:6,3\n";
        let err = Manifest::from_text(text).unwrap_err();
        assert!(err.contains("missing key"));
    }

    #[test]
    fn chunk_names_are_stable() {
        assert_eq!(chunk_name(0), "disk_000.bin");
        assert_eq!(chunk_name(42), "disk_042.bin");
    }
}

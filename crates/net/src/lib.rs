//! ecfrm-net: a real networked shard service for EC-FRM.
//!
//! The crate turns any [`ecfrm_sim::DiskBackend`] into a TCP shard server
//! and gives the client side a [`RemoteDisk`] adapter that implements the
//! same trait over the wire — so `ThreadedArray` and `ObjectStore` run
//! unmodified against remote shards, including degraded-read fallback
//! when a node times out or dies mid-read.
//!
//! Layers:
//! * [`protocol`] — versioned, length-prefixed binary framing with
//!   `GetElement` / `PutElement` / `BatchGet` / `Health` / `InjectFault`.
//! * [`server`] — [`ShardServer`], a thread-per-connection server
//!   wrapping a `DiskBackend`.
//! * [`client`] — [`RemoteDisk`], connection-pooled client with
//!   per-request timeouts, bounded retries with exponential backoff and
//!   jitter, and optional hedged reads.
//! * [`cluster`] — [`Cluster`], an n-node loopback harness for tests,
//!   benches, and the CLI.

pub mod client;
pub mod cluster;
pub mod protocol;
pub mod server;

pub use client::{RemoteDisk, RemoteDiskConfig};
pub use cluster::Cluster;
pub use protocol::{Fault, NetError, Request, Response};
pub use server::ShardServer;

//! ecfrm-net: a real networked shard service for EC-FRM.
//!
//! The crate turns any [`ecfrm_sim::DiskBackend`] into a TCP shard server
//! and gives the client side a [`RemoteDisk`] adapter that implements the
//! same trait over the wire — so `ThreadedArray` and `ObjectStore` run
//! unmodified against remote shards, including degraded-read fallback
//! when a node times out or dies mid-read.
//!
//! Layers:
//! * [`protocol`] — versioned, length-prefixed binary framing with
//!   `GetElement` / `PutElement` / `BatchGet` / `Health` / `InjectFault`.
//! * [`server`] — [`ShardServer`], a thread-per-connection server
//!   wrapping a `DiskBackend`, with a per-connection demux pool for
//!   multiplexed (`Mux`-framed) requests.
//! * [`client`] — [`RemoteDisk`]: multiplexed by default (one
//!   connection per shard carrying many id-tagged in-flight requests,
//!   negotiated with old-server fallback), with a pooled blocking path
//!   behind it carrying per-request timeouts, bounded retries with
//!   exponential backoff and jitter, and optional hedged reads.
//! * [`cluster`] — [`Cluster`], an n-node loopback harness for tests,
//!   benches, and the CLI.
//!
//! # Example
//!
//! Boot a three-node loopback cluster and round-trip an element over
//! real TCP sockets:
//!
//! ```
//! use ecfrm_net::Cluster;
//! use ecfrm_sim::DiskBackend;
//!
//! let mut cluster = Cluster::spawn(3).unwrap();
//! let shard0 = &cluster.backends()[0];
//! shard0.write(0, b"hello over the wire".to_vec());
//! assert_eq!(shard0.read(0).as_deref(), Some(&b"hello over the wire"[..]));
//!
//! // Kill a node: reads fail cleanly instead of hanging, which is what
//! // lets the store fall back to a degraded-read plan.
//! cluster.kill(0);
//! assert!(cluster.backends()[0].read(0).is_none());
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod front;
pub mod protocol;
pub mod server;

pub use client::{RemoteDisk, RemoteDiskConfig};
pub use cluster::Cluster;
pub use front::FrontClient;
pub use protocol::{CheckedElement, Fault, NetError, Request, Response};
pub use server::ShardServer;

//! [`ShardServer`]: serve any [`DiskBackend`] over TCP.
//!
//! Thread-per-connection, with short socket timeouts so every thread
//! notices the stop flag quickly. A connection that speaks the
//! multiplexed framing ([`Request::Mux`]) additionally gets a small
//! demux worker pool: wrapped requests are handled concurrently and
//! their responses written back, id-tagged, in completion order through
//! one shared writer — so one connection can carry many in-flight
//! requests. [`ShardServer::kill`] models a node crash: the accept loop
//! and all connection handlers exit without draining in-flight
//! requests, so clients see resets/timeouts — the stimulus the store's
//! degraded-read fallback exists for.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

use ecfrm_obs::{Counter, Histogram, Recorder};
use ecfrm_sim::DiskBackend;
use ecfrm_util::Mutex;

use ecfrm_integrity::{verify_footer, HashKey};

use crate::protocol::{
    read_request_polling, write_response, CheckedElement, Fault, PolledRequest, Request, Response,
};

/// How often blocked accept/read loops wake to check the stop flag.
const POLL: Duration = Duration::from_millis(20);

/// Longest `GetRange` run a server will serve (element count).
const MAX_RANGE: u32 = 1 << 20;

/// Demux workers per multiplexed connection: how many wrapped requests
/// one connection services concurrently. Small and fixed — the client
/// may queue thousands of submissions, but per-connection handler
/// parallelism beyond a few threads only buys writer-lock contention.
const MUX_WORKERS: usize = 4;

/// Bound on a blocked socket write, so a stalled client cannot wedge a
/// handler (and therefore `kill`) forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Pre-resolved metric handles so the request loop never touches the
/// registry maps.
struct ServerMetrics {
    get: Counter,
    put: Counter,
    batch: Counter,
    range: Counter,
    checked: Counter,
    checked_corrupt: Counter,
    health: Counter,
    inject: Counter,
    stats: Counter,
    mux: Counter,
    serve_us: Histogram,
}

impl ServerMetrics {
    fn new(recorder: &Recorder) -> Self {
        Self {
            get: recorder.counter("serve.get"),
            put: recorder.counter("serve.put"),
            batch: recorder.counter("serve.batch"),
            range: recorder.counter("serve.range"),
            checked: recorder.counter("serve.checked"),
            checked_corrupt: recorder.counter("serve.checked_corrupt"),
            health: recorder.counter("serve.health"),
            inject: recorder.counter("serve.inject"),
            stats: recorder.counter("serve.stats"),
            mux: recorder.counter("serve.mux"),
            serve_us: recorder.histogram("serve_us"),
        }
    }

    fn count(&self, req: &Request) {
        match req {
            Request::GetElement { .. } => self.get.inc(),
            Request::PutElement { .. } => self.put.inc(),
            Request::BatchGet { .. } => self.batch.inc(),
            Request::GetRange { .. } => self.range.inc(),
            Request::RangeChecked { .. } => self.checked.inc(),
            Request::Health => self.health.inc(),
            Request::InjectFault(_) => self.inject.inc(),
            Request::Stats => self.stats.inc(),
            // A mux frame counts its envelope *and* the request inside,
            // so per-op counters stay comparable across transports.
            Request::Mux { inner, .. } => {
                self.mux.inc();
                self.count(inner);
            }
        }
    }
}

struct Shared {
    backend: Arc<dyn DiskBackend>,
    stop: AtomicBool,
    /// Injected per-read delay in ms (straggler simulation).
    read_delay_ms: AtomicU64,
    recorder: Recorder,
    metrics: ServerMetrics,
}

/// A TCP server exposing one disk shard.
pub struct ShardServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardServer({})", self.addr)
    }
}

impl ShardServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `backend`.
    ///
    /// # Errors
    /// Socket bind errors.
    pub fn spawn(backend: Arc<dyn DiskBackend>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let recorder = Recorder::new();
        let metrics = ServerMetrics::new(&recorder);
        let shared = Arc::new(Shared {
            backend,
            stop: AtomicBool::new(false),
            read_delay_ms: AtomicU64::new(0),
            recorder,
            metrics,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(Self {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry: per-op counters (`serve.get`,
    /// `serve.put`, `serve.batch`, `serve.range`, `serve.checked`,
    /// `serve.health`, `serve.inject`, `serve.stats`), the `serve.mux`
    /// count of multiplexed envelopes (each also counts its inner op),
    /// the `serve.checked_corrupt` count of cells that failed
    /// server-side footer verification, and the `serve_us`
    /// request-service histogram.
    /// Remote clients can fetch the same data with [`Request::Stats`].
    pub fn recorder(&self) -> &Recorder {
        &self.shared.recorder
    }

    /// Stop serving: accept loop and every connection handler exit at
    /// their next poll tick, dropping in-flight connections. Blocks
    /// until the accept loop has exited.
    pub fn kill(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// True once [`Self::kill`] has run.
    pub fn is_dead(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }
}

impl Drop for ShardServer {
    fn drop(&mut self) {
        self.kill();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    // Connection handler threads park their handles here so the accept
    // loop can join them on shutdown.
    let handlers: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                handlers.lock().push(std::thread::spawn(move || {
                    serve_connection(stream, &shared)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => break,
        }
    }
    for h in handlers.into_inner() {
        let _ = h.join();
    }
}

/// The writer half of a connection, shared between the inline request
/// loop and any mux demux workers so id-tagged responses interleave
/// without tearing frames.
type SharedWriter = Arc<Mutex<std::io::BufWriter<TcpStream>>>;

/// Count, time, handle, and write one request's response. Returns
/// `false` if the response could not be written (connection is dead).
///
/// A panicking backend (e.g. an element-size mismatch on a file-backed
/// shard) must surface as a wire-level error the client can count and
/// report — not kill the connection and masquerade as a network fault.
fn serve_one(req: &Request, mux_id: Option<u64>, shared: &Shared, writer: &SharedWriter) -> bool {
    shared.metrics.count(req);
    let t0 = std::time::Instant::now();
    let resp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle(req, shared)))
        .unwrap_or_else(|payload| Response::Error(panic_message(payload.as_ref())));
    shared.metrics.serve_us.record_duration(t0.elapsed());
    let resp = match mux_id {
        Some(id) => Response::Mux {
            id,
            inner: Box::new(resp),
        },
        None => resp,
    };
    write_response(&mut *writer.lock(), &resp).is_ok()
}

/// The demux worker pool a connection grows on its first mux frame.
///
/// Workers share one receiver: whoever holds the lock blocks in `recv`,
/// the rest queue on the mutex, so dequeue is serialized but handling —
/// the expensive part, including injected straggle delays — overlaps up
/// to [`MUX_WORKERS`] deep. Dropping the pool closes the channel; each
/// worker drains out and is joined.
struct MuxPool {
    tx: Option<Sender<Request>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl MuxPool {
    fn spawn(shared: &Arc<Shared>, writer: &SharedWriter) -> Self {
        let (tx, rx) = channel::<Request>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..MUX_WORKERS)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(shared);
                let writer = Arc::clone(writer);
                std::thread::spawn(move || mux_worker(&rx, &shared, &writer))
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
        }
    }

    fn submit(&self, req: Request) -> bool {
        self.tx.as_ref().is_some_and(|tx| tx.send(req).is_ok())
    }
}

impl Drop for MuxPool {
    fn drop(&mut self) {
        self.tx = None; // close the channel so workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn mux_worker(rx: &Mutex<Receiver<Request>>, shared: &Arc<Shared>, writer: &SharedWriter) {
    loop {
        // Hold the receiver lock only while dequeuing, never while
        // handling, so a slow request doesn't starve the pool.
        let req = match rx.lock().recv() {
            Ok(req) => req,
            Err(_) => return, // channel closed: connection loop exited
        };
        if shared.stop.load(Ordering::Acquire) {
            return; // hard kill: abandon the in-flight request
        }
        let (id, inner) = match req {
            Request::Mux { id, inner } => (id, inner),
            _ => unreachable!("only mux frames are submitted to the pool"),
        };
        // The envelope is counted here; `serve_one` counts the inner op
        // (it only ever sees the unwrapped request).
        shared.metrics.mux.inc();
        if !serve_one(&inner, Some(id), shared, writer) {
            return; // dead socket: stop servicing this connection
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let writer: SharedWriter = Arc::new(Mutex::new(std::io::BufWriter::new(stream)));
    // Spawned lazily on the first mux frame: plain sequential clients
    // never pay for the pool.
    let mut mux_pool: Option<MuxPool> = None;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return; // hard kill: drop the connection mid-stream
        }
        let req = match read_request_polling(&mut reader, &shared.stop) {
            PolledRequest::Frame(req) => req,
            PolledRequest::Idle => continue, // poll tick, check stop
            PolledRequest::Closed => return, // peer gone, kill, or garbage
        };
        match req {
            // Mux frames fan out to the pool so many can be in flight;
            // responses come back id-tagged in completion order.
            req @ Request::Mux { .. } => {
                let pool = mux_pool.get_or_insert_with(|| MuxPool::spawn(shared, &writer));
                if !pool.submit(req) {
                    return;
                }
            }
            // Everything else keeps the one-at-a-time path: response
            // written before the next frame is read.
            req => {
                if !serve_one(&req, None, shared, &writer) {
                    return;
                }
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("shard panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("shard panicked: {s}")
    } else {
        "shard panicked handling request".to_string()
    }
}

/// Sleep the injected read delay in small slices so a kill interrupts it.
fn straggle(shared: &Shared) {
    let total = shared.read_delay_ms.load(Ordering::Acquire);
    let mut slept = 0u64;
    while slept < total && !shared.stop.load(Ordering::Acquire) {
        let step = (total - slept).min(10);
        std::thread::sleep(Duration::from_millis(step));
        slept += step;
    }
}

fn handle(req: &Request, shared: &Shared) -> Response {
    match req {
        Request::GetElement { offset } => {
            straggle(shared);
            Response::Element(shared.backend.read(*offset))
        }
        Request::PutElement { offset, bytes } => {
            shared.backend.write(*offset, bytes.clone());
            Response::Put
        }
        Request::BatchGet { offsets } => {
            straggle(shared);
            Response::Batch(shared.backend.read_many(offsets))
        }
        Request::GetRange { offset, count } => {
            // Even an all-absent answer allocates per requested slot, so
            // bound the run length before touching the backend (a run
            // longer than this could not fit a reply frame anyway).
            if *count > MAX_RANGE {
                return Response::Error(format!(
                    "range of {count} elements exceeds the {MAX_RANGE}-element cap"
                ));
            }
            straggle(shared);
            let offsets: Vec<u64> = (0..u64::from(*count)).map(|i| offset + i).collect();
            Response::Range(shared.backend.read_many(&offsets))
        }
        Request::RangeChecked {
            offset,
            count,
            k0,
            k1,
        } => {
            if *count > MAX_RANGE {
                return Response::Error(format!(
                    "range of {count} elements exceeds the {MAX_RANGE}-element cap"
                ));
            }
            straggle(shared);
            let key = HashKey { k0: *k0, k1: *k1 };
            let offsets: Vec<u64> = (0..u64::from(*count)).map(|i| offset + i).collect();
            let items = shared
                .backend
                .read_many(&offsets)
                .into_iter()
                .zip(&offsets)
                .map(|(cell, &off)| match cell {
                    None => CheckedElement::Missing,
                    // Verify at the source: a corrupt cell costs a
                    // status byte on the wire, not a payload transfer
                    // the client would throw away anyway.
                    Some(cell) if verify_footer(&key, off, &cell).is_some() => {
                        CheckedElement::Valid(cell)
                    }
                    Some(_) => {
                        shared.metrics.checked_corrupt.inc();
                        CheckedElement::Corrupt
                    }
                })
                .collect();
            Response::Checked(items)
        }
        Request::Health => Response::Health {
            elements: shared.backend.len() as u64,
        },
        Request::InjectFault(fault) => {
            match fault {
                Fault::Fail => shared.backend.fail(),
                Fault::Heal => shared.backend.heal(),
                Fault::Wipe => shared.backend.wipe(),
                Fault::DelayMs(ms) => shared.read_delay_ms.store(*ms, Ordering::Release),
            }
            Response::FaultInjected
        }
        Request::Stats => Response::Stats(shared.recorder.snapshot().flatten()),
        // Unreachable through serve_connection (mux frames are unwrapped
        // before dispatch) and the decoder rejects nesting, but the match
        // must be total and the answer must be a wire error, not a panic.
        Request::Mux { .. } => Response::Error("nested mux not supported".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::write_request;
    use ecfrm_sim::MemDisk;

    fn dial(server: &ShardServer) -> TcpStream {
        let s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        s
    }

    fn rpc(stream: &mut TcpStream, req: &Request) -> Response {
        write_request(stream, req).unwrap();
        crate::protocol::read_response(stream).unwrap()
    }

    #[test]
    fn serves_put_get_health() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        assert_eq!(
            rpc(
                &mut c,
                &Request::PutElement {
                    offset: 3,
                    bytes: vec![1, 2, 3]
                }
            ),
            Response::Put
        );
        assert_eq!(
            rpc(&mut c, &Request::GetElement { offset: 3 }),
            Response::Element(Some(vec![1, 2, 3]))
        );
        assert_eq!(
            rpc(&mut c, &Request::GetElement { offset: 99 }),
            Response::Element(None)
        );
        assert_eq!(
            rpc(&mut c, &Request::Health),
            Response::Health { elements: 1 }
        );
    }

    #[test]
    fn batch_get_preserves_order() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        for o in 0..4u64 {
            rpc(
                &mut c,
                &Request::PutElement {
                    offset: o,
                    bytes: vec![o as u8; 2],
                },
            );
        }
        assert_eq!(
            rpc(
                &mut c,
                &Request::BatchGet {
                    offsets: vec![2, 9, 0]
                }
            ),
            Response::Batch(vec![Some(vec![2, 2]), None, Some(vec![0, 0])])
        );
    }

    #[test]
    fn get_range_serves_contiguous_run_with_holes() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        for o in [2u64, 3, 5] {
            rpc(
                &mut c,
                &Request::PutElement {
                    offset: o,
                    bytes: vec![o as u8; 2],
                },
            );
        }
        assert_eq!(
            rpc(
                &mut c,
                &Request::GetRange {
                    offset: 2,
                    count: 4
                }
            ),
            Response::Range(vec![
                Some(vec![2, 2]),
                Some(vec![3, 3]),
                None,
                Some(vec![5, 5])
            ])
        );
        assert_eq!(
            rpc(
                &mut c,
                &Request::GetRange {
                    offset: 100,
                    count: 2
                }
            ),
            Response::Range(vec![None, None])
        );
        let snap = server.recorder().snapshot();
        assert_eq!(snap.counters.get("serve.range").copied(), Some(2));
    }

    #[test]
    fn range_checked_classifies_valid_missing_and_corrupt() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        let key = HashKey::DEFAULT.derive(0x454C_454D, 0);
        // Offsets 0 and 2 hold properly footered cells; offset 1 is a
        // hole; offset 3 holds a cell whose payload was flipped after
        // sealing.
        for off in [0u64, 2, 3] {
            let mut cell = vec![off as u8; 16];
            ecfrm_integrity::append_footer(&key, off, &mut cell);
            if off == 3 {
                cell[4] ^= 0x40;
            }
            rpc(
                &mut c,
                &Request::PutElement {
                    offset: off,
                    bytes: cell,
                },
            );
        }
        let mut good0 = vec![0u8; 16];
        ecfrm_integrity::append_footer(&key, 0, &mut good0);
        let mut good2 = vec![2u8; 16];
        ecfrm_integrity::append_footer(&key, 2, &mut good2);
        assert_eq!(
            rpc(
                &mut c,
                &Request::RangeChecked {
                    offset: 0,
                    count: 4,
                    k0: key.k0,
                    k1: key.k1,
                }
            ),
            Response::Checked(vec![
                CheckedElement::Valid(good0),
                CheckedElement::Missing,
                CheckedElement::Valid(good2),
                CheckedElement::Corrupt,
            ])
        );
        let snap = server.recorder().snapshot();
        assert_eq!(snap.counters.get("serve.checked").copied(), Some(1));
        assert_eq!(snap.counters.get("serve.checked_corrupt").copied(), Some(1));
        // The cap applies to the checked variant too.
        match rpc(
            &mut c,
            &Request::RangeChecked {
                offset: 0,
                count: u32::MAX,
                k0: key.k0,
                k1: key.k1,
            },
        ) {
            Response::Error(msg) => assert!(msg.contains("cap"), "got: {msg}"),
            other => panic!("expected Response::Error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_range_rejected_with_error() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        match rpc(
            &mut c,
            &Request::GetRange {
                offset: 0,
                count: u32::MAX,
            },
        ) {
            Response::Error(msg) => assert!(msg.contains("cap"), "got: {msg}"),
            other => panic!("expected Response::Error, got {other:?}"),
        }
        // Connection survives the rejection.
        assert_eq!(
            rpc(&mut c, &Request::Health),
            Response::Health { elements: 0 }
        );
    }

    #[test]
    fn fault_injection_controls_backend() {
        let disk = Arc::new(MemDisk::new());
        let server =
            ShardServer::spawn(Arc::clone(&disk) as Arc<dyn DiskBackend>, "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        rpc(
            &mut c,
            &Request::PutElement {
                offset: 0,
                bytes: vec![7],
            },
        );
        rpc(&mut c, &Request::InjectFault(Fault::Fail));
        assert_eq!(
            rpc(&mut c, &Request::GetElement { offset: 0 }),
            Response::Element(None)
        );
        rpc(&mut c, &Request::InjectFault(Fault::Heal));
        assert_eq!(
            rpc(&mut c, &Request::GetElement { offset: 0 }),
            Response::Element(Some(vec![7]))
        );
        rpc(&mut c, &Request::InjectFault(Fault::Wipe));
        assert_eq!(
            rpc(&mut c, &Request::GetElement { offset: 0 }),
            Response::Element(None)
        );
    }

    #[test]
    fn injected_delay_slows_reads() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        rpc(
            &mut c,
            &Request::PutElement {
                offset: 0,
                bytes: vec![1],
            },
        );
        rpc(&mut c, &Request::InjectFault(Fault::DelayMs(80)));
        let t0 = std::time::Instant::now();
        rpc(&mut c, &Request::GetElement { offset: 0 });
        assert!(t0.elapsed() >= Duration::from_millis(70));
        rpc(&mut c, &Request::InjectFault(Fault::DelayMs(0)));
        let t0 = std::time::Instant::now();
        rpc(&mut c, &Request::GetElement { offset: 0 });
        assert!(t0.elapsed() < Duration::from_millis(70));
    }

    /// A backend that panics on writes, like `FileDisk` does when the
    /// served element size disagrees with what the client sends.
    #[derive(Debug)]
    struct SizeCheckedDisk {
        inner: MemDisk,
        element_size: usize,
    }

    impl DiskBackend for SizeCheckedDisk {
        fn submit_read_many(&self, offsets: &[u64]) -> ecfrm_sim::IoHandle {
            self.inner.submit_read_many(offsets)
        }
        fn write(&self, offset: u64, bytes: Vec<u8>) {
            assert_eq!(bytes.len(), self.element_size, "element size mismatch");
            self.inner.write(offset, bytes);
        }
        fn fail(&self) {
            self.inner.fail();
        }
        fn heal(&self) {
            self.inner.heal();
        }
        fn wipe(&self) {
            self.inner.wipe();
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
    }

    #[test]
    fn backend_panic_becomes_wire_error_not_dead_connection() {
        let server = ShardServer::spawn(
            Arc::new(SizeCheckedDisk {
                inner: MemDisk::new(),
                element_size: 8,
            }),
            "127.0.0.1:0",
        )
        .unwrap();
        let mut c = dial(&server);
        // Wrong-sized write: the handler panics, but the client must get
        // a structured error back instead of a dropped connection.
        match rpc(
            &mut c,
            &Request::PutElement {
                offset: 0,
                bytes: vec![1; 3],
            },
        ) {
            Response::Error(msg) => assert!(msg.contains("panicked"), "got: {msg}"),
            other => panic!("expected Response::Error, got {other:?}"),
        }
        // Same connection still serves well-formed requests.
        assert_eq!(
            rpc(
                &mut c,
                &Request::PutElement {
                    offset: 0,
                    bytes: vec![2; 8],
                }
            ),
            Response::Put
        );
        assert_eq!(
            rpc(&mut c, &Request::GetElement { offset: 0 }),
            Response::Element(Some(vec![2; 8]))
        );
    }

    #[test]
    fn kill_drops_connections_and_stops_accepting() {
        let mut server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let mut c = dial(&server);
        rpc(&mut c, &Request::Health);
        server.kill();
        assert!(server.is_dead());
        // In-flight connection dies: the next RPC fails (EOF/reset) or
        // times out rather than answering.
        write_request(&mut c, &Request::Health).ok();
        assert!(crate::protocol::read_response(&mut c).is_err());
        // New connections are not served (a refused connect — the bind
        // already released — is also fine).
        if let Ok(mut s) = TcpStream::connect(addr) {
            s.set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            write_request(&mut s, &Request::Health).ok();
            assert!(crate::protocol::read_response(&mut s).is_err());
        }
    }

    #[test]
    fn mux_frames_pipeline_on_one_connection() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        for o in 0..6u64 {
            rpc(
                &mut c,
                &Request::PutElement {
                    offset: o,
                    bytes: vec![o as u8; 4],
                },
            );
        }
        // Fire a burst of id-tagged reads without waiting for replies,
        // then collect: every id must come back with its own element,
        // whatever order the pool finished in.
        for id in 0..6u64 {
            write_request(
                &mut c,
                &Request::Mux {
                    id: 100 + id,
                    inner: Box::new(Request::GetElement { offset: id }),
                },
            )
            .unwrap();
        }
        let mut seen = std::collections::BTreeMap::new();
        for _ in 0..6 {
            match crate::protocol::read_response(&mut c).unwrap() {
                Response::Mux { id, inner } => {
                    seen.insert(id, *inner);
                }
                other => panic!("expected Response::Mux, got {other:?}"),
            }
        }
        for id in 0..6u64 {
            assert_eq!(
                seen.get(&(100 + id)),
                Some(&Response::Element(Some(vec![id as u8; 4]))),
                "id {id}"
            );
        }
        // Envelope and inner op both counted; plain path still works on
        // the same connection after mux traffic.
        let snap = server.recorder().snapshot();
        assert_eq!(snap.counters.get("serve.mux").copied(), Some(6));
        assert_eq!(snap.counters.get("serve.get").copied(), Some(6));
        assert_eq!(
            rpc(&mut c, &Request::Health),
            Response::Health { elements: 6 }
        );
    }

    #[test]
    fn mux_requests_are_served_concurrently() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        rpc(
            &mut c,
            &Request::PutElement {
                offset: 0,
                bytes: vec![1],
            },
        );
        rpc(&mut c, &Request::InjectFault(Fault::DelayMs(80)));
        // Four delayed reads in flight at once: if the pool overlaps
        // them they finish in ~1 delay, not 4 back-to-back.
        let t0 = std::time::Instant::now();
        for id in 0..4u64 {
            write_request(
                &mut c,
                &Request::Mux {
                    id,
                    inner: Box::new(Request::GetElement { offset: 0 }),
                },
            )
            .unwrap();
        }
        for _ in 0..4 {
            match crate::protocol::read_response(&mut c).unwrap() {
                Response::Mux { inner, .. } => {
                    assert_eq!(*inner, Response::Element(Some(vec![1])));
                }
                other => panic!("expected Response::Mux, got {other:?}"),
            }
        }
        assert!(
            t0.elapsed() < Duration::from_millis(240),
            "4×80 ms requests took {:?} — pool is not overlapping them",
            t0.elapsed()
        );
    }

    #[test]
    fn concurrent_connections_are_served() {
        let server = Arc::new(ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap());
        let threads: Vec<_> = (0..8u64)
            .map(|i| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let mut c = dial(&server);
                    rpc(
                        &mut c,
                        &Request::PutElement {
                            offset: i,
                            bytes: vec![i as u8; 16],
                        },
                    );
                    assert_eq!(
                        rpc(&mut c, &Request::GetElement { offset: i }),
                        Response::Element(Some(vec![i as u8; 16]))
                    );
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut c = dial(&server);
        assert_eq!(
            rpc(&mut c, &Request::Health),
            Response::Health { elements: 8 }
        );
    }
}

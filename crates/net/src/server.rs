//! [`ShardServer`]: serve any [`DiskBackend`] over TCP.
//!
//! Thread-per-connection, with short socket timeouts so every thread
//! notices the stop flag quickly. A connection that speaks the
//! multiplexed framing ([`Request::Mux`]) additionally gets a small
//! demux worker pool: wrapped requests are handled concurrently and
//! their responses written back, id-tagged, in completion order through
//! one shared writer — so one connection can carry many in-flight
//! requests. [`ShardServer::kill`] models a node crash: the accept loop
//! and all connection handlers exit without draining in-flight
//! requests, so clients see resets/timeouts — the stimulus the store's
//! degraded-read fallback exists for.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

use ecfrm_obs::{Counter, Histogram, Recorder};
use ecfrm_sim::DiskBackend;
use ecfrm_util::Mutex;

use ecfrm_integrity::{verify_footer, HashKey};

use crate::protocol::{
    read_request_polling, write_response, CheckedElement, Fault, PolledRequest, Request, Response,
};

/// How often blocked accept/read loops wake to check the stop flag.
const POLL: Duration = Duration::from_millis(20);

/// Longest `GetRange` run a server will serve (element count).
const MAX_RANGE: u32 = 1 << 20;

/// Most output lanes one `CombineRange` may request. Lanes are sized by
/// the caller's rows-per-stripe (single digits in practice); the cap
/// only exists so a hostile request cannot make the server allocate
/// `outputs` full regions unboundedly.
const MAX_COMBINE_OUTPUTS: u32 = 256;

/// Most peers one `CombineRange` may fan out to (one thread + one
/// connection each).
const MAX_COMBINE_PEERS: usize = 32;

/// Dial timeout for a combined-read peer fetch.
const PEER_CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// Socket timeout while waiting for a peer's partial sums.
const PEER_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Idle connections kept per combine peer. Dialing a shard costs a TCP
/// handshake plus up to one accept-poll tick on the far side, so a root
/// that aggregates every stripe of a rebuild reuses its peer links.
const MAX_POOLED_PEER_CONNS: usize = 4;

/// Reusable connections to combine peers, keyed by address. Behind an
/// `Arc` so the per-request fetch threads can share it with the server.
type PeerPool = Arc<Mutex<HashMap<String, Vec<TcpStream>>>>;

/// Demux workers per multiplexed connection: how many wrapped requests
/// one connection services concurrently. Small and fixed — the client
/// may queue thousands of submissions, but per-connection handler
/// parallelism beyond a few threads only buys writer-lock contention.
const MUX_WORKERS: usize = 4;

/// Bound on a blocked socket write, so a stalled client cannot wedge a
/// handler (and therefore `kill`) forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Pre-resolved metric handles so the request loop never touches the
/// registry maps.
struct ServerMetrics {
    get: Counter,
    put: Counter,
    batch: Counter,
    range: Counter,
    checked: Counter,
    checked_corrupt: Counter,
    combine: Counter,
    combine_corrupt: Counter,
    obj: Counter,
    health: Counter,
    inject: Counter,
    stats: Counter,
    mux: Counter,
    serve_us: Histogram,
}

impl ServerMetrics {
    fn new(recorder: &Recorder) -> Self {
        Self {
            get: recorder.counter("serve.get"),
            put: recorder.counter("serve.put"),
            batch: recorder.counter("serve.batch"),
            range: recorder.counter("serve.range"),
            checked: recorder.counter("serve.checked"),
            checked_corrupt: recorder.counter("serve.checked_corrupt"),
            combine: recorder.counter("serve.combine"),
            combine_corrupt: recorder.counter("serve.combine_corrupt"),
            obj: recorder.counter("serve.obj"),
            health: recorder.counter("serve.health"),
            inject: recorder.counter("serve.inject"),
            stats: recorder.counter("serve.stats"),
            mux: recorder.counter("serve.mux"),
            serve_us: recorder.histogram("serve_us"),
        }
    }

    fn count(&self, req: &Request) {
        match req {
            Request::GetElement { .. } => self.get.inc(),
            Request::PutElement { .. } => self.put.inc(),
            Request::BatchGet { .. } => self.batch.inc(),
            Request::GetRange { .. } => self.range.inc(),
            Request::RangeChecked { .. } => self.checked.inc(),
            Request::CombineRange { .. } => self.combine.inc(),
            Request::ObjCreate { .. }
            | Request::ObjWrite { .. }
            | Request::ObjGet { .. }
            | Request::ObjStat { .. }
            | Request::ObjDelete { .. } => self.obj.inc(),
            Request::Health => self.health.inc(),
            Request::InjectFault(_) => self.inject.inc(),
            Request::Stats => self.stats.inc(),
            // A mux frame counts its envelope *and* the request inside,
            // so per-op counters stay comparable across transports.
            Request::Mux { inner, .. } => {
                self.mux.inc();
                self.count(inner);
            }
        }
    }
}

struct Shared {
    backend: Arc<dyn DiskBackend>,
    /// Object front door served by opcodes 11–15, when this node is a
    /// front node and not just a raw shard. `None` answers object ops
    /// with a wire error instead of rejecting the opcode, so new
    /// clients can tell "server too old" (decode error, connection
    /// drop) from "server has no front door" (typed error).
    front: Option<Arc<ecfrm_store::FrontDoor>>,
    stop: AtomicBool,
    /// Injected per-read delay in ms (straggler simulation).
    read_delay_ms: AtomicU64,
    recorder: Recorder,
    metrics: ServerMetrics,
    peer_pool: PeerPool,
}

/// A TCP server exposing one disk shard.
pub struct ShardServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardServer({})", self.addr)
    }
}

impl ShardServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `backend`.
    ///
    /// # Errors
    /// Socket bind errors.
    pub fn spawn(backend: Arc<dyn DiskBackend>, addr: &str) -> std::io::Result<Self> {
        Self::spawn_inner(backend, None, addr)
    }

    /// Like [`Self::spawn`], but also attach an object front door: this
    /// node serves the object namespace ops (opcodes 11–15) through
    /// `front` in addition to the raw shard ops on `backend`. Plain
    /// [`Self::spawn`] servers answer object ops with a typed
    /// `"no front door attached"` error.
    ///
    /// # Errors
    /// Socket bind errors.
    pub fn spawn_with_front(
        backend: Arc<dyn DiskBackend>,
        front: Arc<ecfrm_store::FrontDoor>,
        addr: &str,
    ) -> std::io::Result<Self> {
        Self::spawn_inner(backend, Some(front), addr)
    }

    fn spawn_inner(
        backend: Arc<dyn DiskBackend>,
        front: Option<Arc<ecfrm_store::FrontDoor>>,
        addr: &str,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let recorder = Recorder::new();
        let metrics = ServerMetrics::new(&recorder);
        let shared = Arc::new(Shared {
            backend,
            front,
            stop: AtomicBool::new(false),
            read_delay_ms: AtomicU64::new(0),
            recorder,
            metrics,
            peer_pool: Arc::new(Mutex::new(HashMap::new())),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(Self {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry: per-op counters (`serve.get`,
    /// `serve.put`, `serve.batch`, `serve.range`, `serve.checked`,
    /// `serve.health`, `serve.inject`, `serve.stats`), the `serve.mux`
    /// count of multiplexed envelopes (each also counts its inner op),
    /// the `serve.checked_corrupt` count of cells that failed
    /// server-side footer verification, and the `serve_us`
    /// request-service histogram.
    /// Remote clients can fetch the same data with [`Request::Stats`].
    pub fn recorder(&self) -> &Recorder {
        &self.shared.recorder
    }

    /// Stop serving: accept loop and every connection handler exit at
    /// their next poll tick, dropping in-flight connections. Blocks
    /// until the accept loop has exited. An attached front door is shut
    /// down first so connection threads queued in QoS admission unpark
    /// and can be joined instead of sleeping out their delay.
    pub fn kill(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(front) = &self.shared.front {
            front.shutdown();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// True once [`Self::kill`] has run.
    pub fn is_dead(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }
}

impl Drop for ShardServer {
    fn drop(&mut self) {
        self.kill();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    // Connection handler threads park their handles here so the accept
    // loop can join them on shutdown.
    let handlers: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                handlers.lock().push(std::thread::spawn(move || {
                    serve_connection(stream, &shared)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => break,
        }
    }
    for h in handlers.into_inner() {
        let _ = h.join();
    }
}

/// The writer half of a connection, shared between the inline request
/// loop and any mux demux workers so id-tagged responses interleave
/// without tearing frames.
type SharedWriter = Arc<Mutex<std::io::BufWriter<TcpStream>>>;

/// Count, time, handle, and write one request's response. Returns
/// `false` if the response could not be written (connection is dead).
///
/// A panicking backend (e.g. an element-size mismatch on a file-backed
/// shard) must surface as a wire-level error the client can count and
/// report — not kill the connection and masquerade as a network fault.
fn serve_one(req: &Request, mux_id: Option<u64>, shared: &Shared, writer: &SharedWriter) -> bool {
    shared.metrics.count(req);
    let t0 = std::time::Instant::now();
    let resp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle(req, shared)))
        .unwrap_or_else(|payload| Response::Error(panic_message(payload.as_ref())));
    shared.metrics.serve_us.record_duration(t0.elapsed());
    let resp = match mux_id {
        Some(id) => Response::Mux {
            id,
            inner: Box::new(resp),
        },
        None => resp,
    };
    write_response(&mut *writer.lock(), &resp).is_ok()
}

/// The demux worker pool a connection grows on its first mux frame.
///
/// Workers share one receiver: whoever holds the lock blocks in `recv`,
/// the rest queue on the mutex, so dequeue is serialized but handling —
/// the expensive part, including injected straggle delays — overlaps up
/// to [`MUX_WORKERS`] deep. Dropping the pool closes the channel; each
/// worker drains out and is joined.
struct MuxPool {
    tx: Option<Sender<Request>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl MuxPool {
    fn spawn(shared: &Arc<Shared>, writer: &SharedWriter) -> Self {
        let (tx, rx) = channel::<Request>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..MUX_WORKERS)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(shared);
                let writer = Arc::clone(writer);
                std::thread::spawn(move || mux_worker(&rx, &shared, &writer))
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
        }
    }

    fn submit(&self, req: Request) -> bool {
        self.tx.as_ref().is_some_and(|tx| tx.send(req).is_ok())
    }
}

impl Drop for MuxPool {
    fn drop(&mut self) {
        self.tx = None; // close the channel so workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn mux_worker(rx: &Mutex<Receiver<Request>>, shared: &Arc<Shared>, writer: &SharedWriter) {
    loop {
        // Hold the receiver lock only while dequeuing, never while
        // handling, so a slow request doesn't starve the pool.
        let req = match rx.lock().recv() {
            Ok(req) => req,
            Err(_) => return, // channel closed: connection loop exited
        };
        if shared.stop.load(Ordering::Acquire) {
            return; // hard kill: abandon the in-flight request
        }
        let (id, inner) = match req {
            Request::Mux { id, inner } => (id, inner),
            _ => unreachable!("only mux frames are submitted to the pool"),
        };
        // The envelope is counted here; `serve_one` counts the inner op
        // (it only ever sees the unwrapped request).
        shared.metrics.mux.inc();
        if !serve_one(&inner, Some(id), shared, writer) {
            return; // dead socket: stop servicing this connection
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let writer: SharedWriter = Arc::new(Mutex::new(std::io::BufWriter::new(stream)));
    // Spawned lazily on the first mux frame: plain sequential clients
    // never pay for the pool.
    let mut mux_pool: Option<MuxPool> = None;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return; // hard kill: drop the connection mid-stream
        }
        let req = match read_request_polling(&mut reader, &shared.stop) {
            PolledRequest::Frame(req) => req,
            PolledRequest::Idle => continue, // poll tick, check stop
            PolledRequest::Closed => return, // peer gone, kill, or garbage
        };
        match req {
            // Mux frames fan out to the pool so many can be in flight;
            // responses come back id-tagged in completion order.
            req @ Request::Mux { .. } => {
                let pool = mux_pool.get_or_insert_with(|| MuxPool::spawn(shared, &writer));
                if !pool.submit(req) {
                    return;
                }
            }
            // Everything else keeps the one-at-a-time path: response
            // written before the next frame is read.
            req => {
                if !serve_one(&req, None, shared, &writer) {
                    return;
                }
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("shard panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("shard panicked: {s}")
    } else {
        "shard panicked handling request".to_string()
    }
}

/// Sleep the injected read delay in small slices so a kill interrupts it.
fn straggle(shared: &Shared) {
    let total = shared.read_delay_ms.load(Ordering::Acquire);
    let mut slept = 0u64;
    while slept < total && !shared.stop.load(Ordering::Acquire) {
        let step = (total - slept).min(10);
        std::thread::sleep(Duration::from_millis(step));
        slept += step;
    }
}

/// Dispatch one object op to the attached front door, mapping store
/// errors to the typed wire strings [`crate::front::unwire_error`]
/// re-types client-side. A front-less server answers every object op
/// with the same typed error — distinguishable from an *old* server,
/// which rejects the opcode at decode and drops the connection.
fn obj_result(
    shared: &Shared,
    f: impl FnOnce(&ecfrm_store::FrontDoor) -> Result<Response, ecfrm_store::StoreError>,
) -> Response {
    match &shared.front {
        Some(front) => f(front).unwrap_or_else(|e| Response::Error(crate::front::wire_error(&e))),
        None => Response::Error(crate::front::NO_FRONT.to_string()),
    }
}

fn handle(req: &Request, shared: &Shared) -> Response {
    match req {
        Request::GetElement { offset } => {
            straggle(shared);
            Response::Element(shared.backend.read(*offset))
        }
        Request::PutElement { offset, bytes } => {
            shared.backend.write(*offset, bytes.clone());
            Response::Put
        }
        Request::BatchGet { offsets } => {
            straggle(shared);
            Response::Batch(shared.backend.read_many(offsets))
        }
        Request::GetRange { offset, count } => {
            // Even an all-absent answer allocates per requested slot, so
            // bound the run length before touching the backend (a run
            // longer than this could not fit a reply frame anyway).
            if *count > MAX_RANGE {
                return Response::Error(format!(
                    "range of {count} elements exceeds the {MAX_RANGE}-element cap"
                ));
            }
            straggle(shared);
            let offsets: Vec<u64> = (0..u64::from(*count)).map(|i| offset + i).collect();
            Response::Range(shared.backend.read_many(&offsets))
        }
        Request::RangeChecked {
            offset,
            count,
            k0,
            k1,
        } => {
            if *count > MAX_RANGE {
                return Response::Error(format!(
                    "range of {count} elements exceeds the {MAX_RANGE}-element cap"
                ));
            }
            straggle(shared);
            let key = HashKey { k0: *k0, k1: *k1 };
            let offsets: Vec<u64> = (0..u64::from(*count)).map(|i| offset + i).collect();
            let items = shared
                .backend
                .read_many(&offsets)
                .into_iter()
                .zip(&offsets)
                .map(|(cell, &off)| match cell {
                    None => CheckedElement::Missing,
                    // Verify at the source: a corrupt cell costs a
                    // status byte on the wire, not a payload transfer
                    // the client would throw away anyway.
                    Some(cell) if verify_footer(&key, off, &cell).is_some() => {
                        CheckedElement::Valid(cell)
                    }
                    Some(_) => {
                        shared.metrics.checked_corrupt.inc();
                        CheckedElement::Corrupt
                    }
                })
                .collect();
            Response::Checked(items)
        }
        Request::CombineRange {
            offset,
            count,
            outputs,
            coeffs,
            k0,
            k1,
            peers,
        } => handle_combine(*offset, *count, *outputs, coeffs, *k0, *k1, peers, shared),
        Request::ObjCreate { tenant, object } => obj_result(shared, |f| {
            f.create(tenant, object).map(|()| Response::ObjAck)
        }),
        Request::ObjWrite {
            tenant,
            object,
            bytes,
        } => obj_result(shared, |f| {
            f.write(tenant, object, bytes).map(|()| Response::ObjAck)
        }),
        Request::ObjGet {
            tenant,
            object,
            start,
            len,
        } => obj_result(shared, |f| {
            // `u64::MAX` is the wire encoding of "to the end": resolve
            // it against the current length so the range check passes.
            let len = if *len == u64::MAX {
                f.stat(tenant, object)?.len.saturating_sub(*start)
            } else {
                *len
            };
            f.read_range(tenant, object, *start, len)
                .map(Response::ObjData)
        }),
        Request::ObjStat { tenant, object } => obj_result(shared, |f| {
            f.stat(tenant, object).map(|s| Response::ObjStat {
                len: s.len,
                version: s.version,
                extents: s.extents as u32,
            })
        }),
        Request::ObjDelete { tenant, object } => obj_result(shared, |f| {
            f.delete(tenant, object).map(|()| Response::ObjAck)
        }),
        Request::Health => Response::Health {
            elements: shared.backend.len() as u64,
        },
        Request::InjectFault(fault) => {
            match fault {
                Fault::Fail => shared.backend.fail(),
                Fault::Heal => shared.backend.heal(),
                Fault::Wipe => shared.backend.wipe(),
                Fault::DelayMs(ms) => shared.read_delay_ms.store(*ms, Ordering::Release),
            }
            Response::FaultInjected
        }
        Request::Stats => Response::Stats(shared.recorder.snapshot().flatten()),
        // Unreachable through serve_connection (mux frames are unwrapped
        // before dispatch) and the decoder rejects nesting, but the match
        // must be total and the answer must be a wire error, not a panic.
        Request::Mux { .. } => Response::Error("nested mux not supported".to_string()),
    }
}

/// Serve one [`Request::CombineRange`]: multiply the local contiguous
/// run by the caller's coefficient matrix (footer-verified, SIMD
/// dot-product kernels), fetch and XOR-merge any peers' partial sums,
/// and seal each output region with a footer salted by `offset + lane`.
///
/// Sums are only returned when every *used* local element (one whose
/// coefficient column is not all-zero) verified and every peer
/// contributed; otherwise `regions` is empty and the per-element /
/// per-peer verdicts tell the rebuilder whom to exclude.
#[allow(clippy::too_many_arguments)]
fn handle_combine(
    offset: u64,
    count: u32,
    outputs: u32,
    coeffs: &[u8],
    k0: u64,
    k1: u64,
    peers: &[crate::protocol::CombinePeer],
    shared: &Shared,
) -> Response {
    use ecfrm_sim::combine_status as cstat;

    // Bound the work before touching the backend (the hostile-vector
    // guard): run length like `GetRange`, plus lane count, matrix
    // shape, and fan-out caps.
    if count > MAX_RANGE {
        return Response::Error(format!(
            "range of {count} elements exceeds the {MAX_RANGE}-element cap"
        ));
    }
    if outputs == 0 || outputs > MAX_COMBINE_OUTPUTS {
        return Response::Error(format!(
            "{outputs} output lanes outside the 1..={MAX_COMBINE_OUTPUTS} cap"
        ));
    }
    if coeffs.len() as u64 != u64::from(outputs) * u64::from(count) {
        return Response::Error(format!(
            "coefficient matrix of {} bytes does not match {outputs}\u{d7}{count} elements",
            coeffs.len()
        ));
    }
    if peers.len() > MAX_COMBINE_PEERS {
        return Response::Error(format!(
            "{} peers exceeds the {MAX_COMBINE_PEERS}-peer fan-out cap",
            peers.len()
        ));
    }
    for p in peers {
        if p.count > MAX_RANGE {
            return Response::Error(format!(
                "peer range of {} elements exceeds the {MAX_RANGE}-element cap",
                p.count
            ));
        }
        if p.coeffs.len() as u64 != u64::from(outputs) * u64::from(p.count) {
            return Response::Error(format!(
                "peer coefficient matrix of {} bytes does not match {outputs}\u{d7}{} elements",
                p.coeffs.len(),
                p.count
            ));
        }
    }

    straggle(shared);
    let key = HashKey { k0, k1 };
    let lanes = outputs as usize;
    let n = count as usize;

    // Fetch peers' partial sums while the local read + math runs.
    let peer_handles: Vec<std::thread::JoinHandle<(u8, Vec<Vec<u8>>)>> = peers
        .iter()
        .map(|p| {
            let p = p.clone();
            let pool = Arc::clone(&shared.peer_pool);
            std::thread::spawn(move || fetch_peer_partial(&pool, &p, outputs, k0, k1))
        })
        .collect();

    // Local partial: verify every cell's footer at the data, before it
    // can contribute to a sum.
    let offsets: Vec<u64> = (0..u64::from(count)).map(|i| offset + i).collect();
    let cells = shared.backend.read_many(&offsets);
    let mut local_status = vec![cstat::OK; n];
    let mut payloads: Vec<Option<Vec<u8>>> = Vec::with_capacity(n);
    for (i, cell) in cells.into_iter().enumerate() {
        match cell {
            None => {
                local_status[i] = cstat::MISSING;
                payloads.push(None);
            }
            Some(mut cell) => match verify_footer(&key, offsets[i], &cell) {
                Some(payload) => {
                    let len = payload.len();
                    cell.truncate(len);
                    payloads.push(Some(cell));
                }
                None => {
                    shared.metrics.combine_corrupt.inc();
                    local_status[i] = cstat::CORRUPT;
                    payloads.push(None);
                }
            },
        }
    }
    // An element only matters if some lane gives it a nonzero
    // coefficient; a hole in an unused column must not veto the sum.
    let used = |i: usize| (0..lanes).any(|r| coeffs[r * n + i] != 0);
    let local_ok = (0..n).all(|i| local_status[i] == cstat::OK || !used(i));
    let lens: Vec<usize> = payloads.iter().flatten().map(Vec::len).collect();
    if lens.windows(2).any(|w| w[0] != w[1]) {
        for h in peer_handles {
            let _ = h.join();
        }
        return Response::Error("element size mismatch across combined range".into());
    }

    let peer_results: Vec<(u8, Vec<Vec<u8>>)> = peer_handles
        .into_iter()
        .map(|h| h.join().unwrap_or_else(|_| (cstat::MISSING, Vec::new())))
        .collect();
    let peer_status: Vec<u8> = peer_results.iter().map(|(s, _)| *s).collect();

    let mut regions: Vec<Vec<u8>> = Vec::new();
    if local_ok && peer_status.iter().all(|&s| s == cstat::OK) {
        // Region length: from the local cells, else from a peer (a
        // pure-aggregator request may carry no local coefficients).
        let len = lens.first().copied().or_else(|| {
            peer_results
                .iter()
                .find_map(|(_, rs)| rs.first().map(Vec::len))
        });
        if let Some(len) = len {
            if peer_results
                .iter()
                .flat_map(|(_, rs)| rs.iter())
                .any(|r| r.len() != len)
            {
                return Response::Error("element size mismatch across combined peers".into());
            }
            let mut outs: Vec<Vec<u8>> = (0..lanes).map(|_| vec![0u8; len]).collect();
            // srcs = the valid cells; rows = their coefficient columns.
            let srcs: Vec<&[u8]> = payloads.iter().flatten().map(Vec::as_slice).collect();
            if !srcs.is_empty() {
                let rows: Vec<Vec<u8>> = (0..lanes)
                    .map(|r| {
                        (0..n)
                            .filter(|&i| payloads[i].is_some())
                            .map(|i| coeffs[r * n + i])
                            .collect()
                    })
                    .collect();
                let row_refs: Vec<&[u8]> = rows.iter().map(Vec::as_slice).collect();
                let mut out_refs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
                ecfrm_gf::region::dot_region_multi(&row_refs, &srcs, &mut out_refs);
            }
            for (_, peer_regions) in &peer_results {
                for (out, pr) in outs.iter_mut().zip(peer_regions) {
                    ecfrm_gf::region::xor_region(out, pr);
                }
            }
            for (r, out) in outs.iter_mut().enumerate() {
                ecfrm_integrity::append_footer(&key, offset + r as u64, out);
            }
            regions = outs;
        }
    }
    Response::Combined {
        regions,
        local_status,
        peer_status,
    }
}

/// Dial one combined-read peer, request its partial sums (never
/// forwarding further — aggregation is one level deep), and verify each
/// returned region's footer before it may be merged. Returns the peer's
/// [`ecfrm_sim::combine_status`] verdict plus the verified, stripped
/// regions (empty unless OK).
fn dial_peer(addr: &str) -> Option<TcpStream> {
    let stream = match addr.parse::<SocketAddr>() {
        Ok(a) => TcpStream::connect_timeout(&a, PEER_CONNECT_TIMEOUT),
        Err(_) => TcpStream::connect(addr),
    }
    .ok()?;
    let _ = stream.set_read_timeout(Some(PEER_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(PEER_IO_TIMEOUT));
    let _ = stream.set_nodelay(true);
    Some(stream)
}

fn fetch_peer_partial(
    pool: &PeerPool,
    p: &crate::protocol::CombinePeer,
    outputs: u32,
    k0: u64,
    k1: u64,
) -> (u8, Vec<Vec<u8>>) {
    use crate::protocol::{read_response, write_request};
    use ecfrm_sim::combine_status as cstat;

    let key = HashKey { k0, k1 };
    let req = Request::CombineRange {
        offset: p.offset,
        count: p.count,
        outputs,
        coeffs: p.coeffs.clone(),
        k0,
        k1,
        peers: Vec::new(),
    };
    let exchange = |stream: &mut TcpStream| -> Option<Response> {
        write_request(stream, &req).ok()?;
        read_response(stream).ok()
    };
    // A pooled connection may have been closed since its last use, so a
    // failed exchange on one falls back to a fresh dial before the peer
    // is declared missing (CombineRange is read-only; a retry is safe).
    let pooled = pool.lock().get_mut(&p.addr).and_then(Vec::pop);
    let mut conn = pooled.and_then(|mut s| exchange(&mut s).map(|r| (r, s)));
    if conn.is_none() {
        conn = dial_peer(&p.addr).and_then(|mut s| exchange(&mut s).map(|r| (r, s)));
    }
    let Some((resp, stream)) = conn else {
        return (cstat::MISSING, Vec::new());
    };
    {
        let mut pool = pool.lock();
        let conns = pool.entry(p.addr.clone()).or_default();
        if conns.len() < MAX_POOLED_PEER_CONNS {
            conns.push(stream);
        }
    }
    match resp {
        Response::Combined {
            regions,
            local_status,
            ..
        } => {
            if regions.len() == outputs as usize {
                let mut stripped = Vec::with_capacity(regions.len());
                for (r, region) in regions.into_iter().enumerate() {
                    match verify_footer(&key, p.offset + r as u64, &region) {
                        Some(payload) => stripped.push(payload.to_vec()),
                        None => return (cstat::CORRUPT, Vec::new()),
                    }
                }
                if stripped.windows(2).any(|w| w[0].len() != w[1].len()) {
                    return (cstat::CORRUPT, Vec::new());
                }
                (cstat::OK, stripped)
            } else if local_status.contains(&cstat::CORRUPT) {
                (cstat::CORRUPT, Vec::new())
            } else if local_status.iter().any(|&s| s != cstat::OK) {
                (cstat::MISSING, Vec::new())
            } else {
                (cstat::DECLINED, Vec::new())
            }
        }
        // An old server drops the connection on the unknown opcode; the
        // failed exchange above already answered MISSING for that, so
        // anything else decodable-but-unexpected is a decline.
        _ => (cstat::DECLINED, Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::write_request;
    use ecfrm_sim::MemDisk;

    fn dial(server: &ShardServer) -> TcpStream {
        let s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        s
    }

    fn rpc(stream: &mut TcpStream, req: &Request) -> Response {
        write_request(stream, req).unwrap();
        crate::protocol::read_response(stream).unwrap()
    }

    #[test]
    fn serves_put_get_health() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        assert_eq!(
            rpc(
                &mut c,
                &Request::PutElement {
                    offset: 3,
                    bytes: vec![1, 2, 3]
                }
            ),
            Response::Put
        );
        assert_eq!(
            rpc(&mut c, &Request::GetElement { offset: 3 }),
            Response::Element(Some(vec![1, 2, 3]))
        );
        assert_eq!(
            rpc(&mut c, &Request::GetElement { offset: 99 }),
            Response::Element(None)
        );
        assert_eq!(
            rpc(&mut c, &Request::Health),
            Response::Health { elements: 1 }
        );
    }

    #[test]
    fn batch_get_preserves_order() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        for o in 0..4u64 {
            rpc(
                &mut c,
                &Request::PutElement {
                    offset: o,
                    bytes: vec![o as u8; 2],
                },
            );
        }
        assert_eq!(
            rpc(
                &mut c,
                &Request::BatchGet {
                    offsets: vec![2, 9, 0]
                }
            ),
            Response::Batch(vec![Some(vec![2, 2]), None, Some(vec![0, 0])])
        );
    }

    #[test]
    fn get_range_serves_contiguous_run_with_holes() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        for o in [2u64, 3, 5] {
            rpc(
                &mut c,
                &Request::PutElement {
                    offset: o,
                    bytes: vec![o as u8; 2],
                },
            );
        }
        assert_eq!(
            rpc(
                &mut c,
                &Request::GetRange {
                    offset: 2,
                    count: 4
                }
            ),
            Response::Range(vec![
                Some(vec![2, 2]),
                Some(vec![3, 3]),
                None,
                Some(vec![5, 5])
            ])
        );
        assert_eq!(
            rpc(
                &mut c,
                &Request::GetRange {
                    offset: 100,
                    count: 2
                }
            ),
            Response::Range(vec![None, None])
        );
        let snap = server.recorder().snapshot();
        assert_eq!(snap.counters.get("serve.range").copied(), Some(2));
    }

    #[test]
    fn range_checked_classifies_valid_missing_and_corrupt() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        let key = HashKey::DEFAULT.derive(0x454C_454D, 0);
        // Offsets 0 and 2 hold properly footered cells; offset 1 is a
        // hole; offset 3 holds a cell whose payload was flipped after
        // sealing.
        for off in [0u64, 2, 3] {
            let mut cell = vec![off as u8; 16];
            ecfrm_integrity::append_footer(&key, off, &mut cell);
            if off == 3 {
                cell[4] ^= 0x40;
            }
            rpc(
                &mut c,
                &Request::PutElement {
                    offset: off,
                    bytes: cell,
                },
            );
        }
        let mut good0 = vec![0u8; 16];
        ecfrm_integrity::append_footer(&key, 0, &mut good0);
        let mut good2 = vec![2u8; 16];
        ecfrm_integrity::append_footer(&key, 2, &mut good2);
        assert_eq!(
            rpc(
                &mut c,
                &Request::RangeChecked {
                    offset: 0,
                    count: 4,
                    k0: key.k0,
                    k1: key.k1,
                }
            ),
            Response::Checked(vec![
                CheckedElement::Valid(good0),
                CheckedElement::Missing,
                CheckedElement::Valid(good2),
                CheckedElement::Corrupt,
            ])
        );
        let snap = server.recorder().snapshot();
        assert_eq!(snap.counters.get("serve.checked").copied(), Some(1));
        assert_eq!(snap.counters.get("serve.checked_corrupt").copied(), Some(1));
        // The cap applies to the checked variant too.
        match rpc(
            &mut c,
            &Request::RangeChecked {
                offset: 0,
                count: u32::MAX,
                k0: key.k0,
                k1: key.k1,
            },
        ) {
            Response::Error(msg) => assert!(msg.contains("cap"), "got: {msg}"),
            other => panic!("expected Response::Error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_range_rejected_with_error() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        match rpc(
            &mut c,
            &Request::GetRange {
                offset: 0,
                count: u32::MAX,
            },
        ) {
            Response::Error(msg) => assert!(msg.contains("cap"), "got: {msg}"),
            other => panic!("expected Response::Error, got {other:?}"),
        }
        // Connection survives the rejection.
        assert_eq!(
            rpc(&mut c, &Request::Health),
            Response::Health { elements: 0 }
        );
    }

    #[test]
    fn fault_injection_controls_backend() {
        let disk = Arc::new(MemDisk::new());
        let server =
            ShardServer::spawn(Arc::clone(&disk) as Arc<dyn DiskBackend>, "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        rpc(
            &mut c,
            &Request::PutElement {
                offset: 0,
                bytes: vec![7],
            },
        );
        rpc(&mut c, &Request::InjectFault(Fault::Fail));
        assert_eq!(
            rpc(&mut c, &Request::GetElement { offset: 0 }),
            Response::Element(None)
        );
        rpc(&mut c, &Request::InjectFault(Fault::Heal));
        assert_eq!(
            rpc(&mut c, &Request::GetElement { offset: 0 }),
            Response::Element(Some(vec![7]))
        );
        rpc(&mut c, &Request::InjectFault(Fault::Wipe));
        assert_eq!(
            rpc(&mut c, &Request::GetElement { offset: 0 }),
            Response::Element(None)
        );
    }

    #[test]
    fn injected_delay_slows_reads() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        rpc(
            &mut c,
            &Request::PutElement {
                offset: 0,
                bytes: vec![1],
            },
        );
        rpc(&mut c, &Request::InjectFault(Fault::DelayMs(80)));
        let t0 = std::time::Instant::now();
        rpc(&mut c, &Request::GetElement { offset: 0 });
        assert!(t0.elapsed() >= Duration::from_millis(70));
        rpc(&mut c, &Request::InjectFault(Fault::DelayMs(0)));
        let t0 = std::time::Instant::now();
        rpc(&mut c, &Request::GetElement { offset: 0 });
        assert!(t0.elapsed() < Duration::from_millis(70));
    }

    /// A backend that panics on writes, like `FileDisk` does when the
    /// served element size disagrees with what the client sends.
    #[derive(Debug)]
    struct SizeCheckedDisk {
        inner: MemDisk,
        element_size: usize,
    }

    impl DiskBackend for SizeCheckedDisk {
        fn submit_read_many(&self, offsets: &[u64]) -> ecfrm_sim::IoHandle {
            self.inner.submit_read_many(offsets)
        }
        fn write(&self, offset: u64, bytes: Vec<u8>) {
            assert_eq!(bytes.len(), self.element_size, "element size mismatch");
            self.inner.write(offset, bytes);
        }
        fn fail(&self) {
            self.inner.fail();
        }
        fn heal(&self) {
            self.inner.heal();
        }
        fn wipe(&self) {
            self.inner.wipe();
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
    }

    #[test]
    fn backend_panic_becomes_wire_error_not_dead_connection() {
        let server = ShardServer::spawn(
            Arc::new(SizeCheckedDisk {
                inner: MemDisk::new(),
                element_size: 8,
            }),
            "127.0.0.1:0",
        )
        .unwrap();
        let mut c = dial(&server);
        // Wrong-sized write: the handler panics, but the client must get
        // a structured error back instead of a dropped connection.
        match rpc(
            &mut c,
            &Request::PutElement {
                offset: 0,
                bytes: vec![1; 3],
            },
        ) {
            Response::Error(msg) => assert!(msg.contains("panicked"), "got: {msg}"),
            other => panic!("expected Response::Error, got {other:?}"),
        }
        // Same connection still serves well-formed requests.
        assert_eq!(
            rpc(
                &mut c,
                &Request::PutElement {
                    offset: 0,
                    bytes: vec![2; 8],
                }
            ),
            Response::Put
        );
        assert_eq!(
            rpc(&mut c, &Request::GetElement { offset: 0 }),
            Response::Element(Some(vec![2; 8]))
        );
    }

    #[test]
    fn kill_drops_connections_and_stops_accepting() {
        let mut server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let mut c = dial(&server);
        rpc(&mut c, &Request::Health);
        server.kill();
        assert!(server.is_dead());
        // In-flight connection dies: the next RPC fails (EOF/reset) or
        // times out rather than answering.
        write_request(&mut c, &Request::Health).ok();
        assert!(crate::protocol::read_response(&mut c).is_err());
        // New connections are not served (a refused connect — the bind
        // already released — is also fine).
        if let Ok(mut s) = TcpStream::connect(addr) {
            s.set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            write_request(&mut s, &Request::Health).ok();
            assert!(crate::protocol::read_response(&mut s).is_err());
        }
    }

    #[test]
    fn mux_frames_pipeline_on_one_connection() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        for o in 0..6u64 {
            rpc(
                &mut c,
                &Request::PutElement {
                    offset: o,
                    bytes: vec![o as u8; 4],
                },
            );
        }
        // Fire a burst of id-tagged reads without waiting for replies,
        // then collect: every id must come back with its own element,
        // whatever order the pool finished in.
        for id in 0..6u64 {
            write_request(
                &mut c,
                &Request::Mux {
                    id: 100 + id,
                    inner: Box::new(Request::GetElement { offset: id }),
                },
            )
            .unwrap();
        }
        let mut seen = std::collections::BTreeMap::new();
        for _ in 0..6 {
            match crate::protocol::read_response(&mut c).unwrap() {
                Response::Mux { id, inner } => {
                    seen.insert(id, *inner);
                }
                other => panic!("expected Response::Mux, got {other:?}"),
            }
        }
        for id in 0..6u64 {
            assert_eq!(
                seen.get(&(100 + id)),
                Some(&Response::Element(Some(vec![id as u8; 4]))),
                "id {id}"
            );
        }
        // Envelope and inner op both counted; plain path still works on
        // the same connection after mux traffic.
        let snap = server.recorder().snapshot();
        assert_eq!(snap.counters.get("serve.mux").copied(), Some(6));
        assert_eq!(snap.counters.get("serve.get").copied(), Some(6));
        assert_eq!(
            rpc(&mut c, &Request::Health),
            Response::Health { elements: 6 }
        );
    }

    #[test]
    fn mux_requests_are_served_concurrently() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        rpc(
            &mut c,
            &Request::PutElement {
                offset: 0,
                bytes: vec![1],
            },
        );
        rpc(&mut c, &Request::InjectFault(Fault::DelayMs(80)));
        // Four delayed reads in flight at once: if the pool overlaps
        // them they finish in ~1 delay, not 4 back-to-back.
        let t0 = std::time::Instant::now();
        for id in 0..4u64 {
            write_request(
                &mut c,
                &Request::Mux {
                    id,
                    inner: Box::new(Request::GetElement { offset: 0 }),
                },
            )
            .unwrap();
        }
        for _ in 0..4 {
            match crate::protocol::read_response(&mut c).unwrap() {
                Response::Mux { inner, .. } => {
                    assert_eq!(*inner, Response::Element(Some(vec![1])));
                }
                other => panic!("expected Response::Mux, got {other:?}"),
            }
        }
        assert!(
            t0.elapsed() < Duration::from_millis(240),
            "4×80 ms requests took {:?} — pool is not overlapping them",
            t0.elapsed()
        );
    }

    /// Seed a server's disk with footered cells at `offsets` under `key`
    /// (payload = `[off; 16]`), via the wire like a real client.
    fn seed_cells(c: &mut TcpStream, key: &HashKey, offsets: &[u64]) {
        for &off in offsets {
            let mut cell = vec![off as u8; 16];
            ecfrm_integrity::append_footer(key, off, &mut cell);
            rpc(
                c,
                &Request::PutElement {
                    offset: off,
                    bytes: cell,
                },
            );
        }
    }

    /// GF dot product of `[off; 16]` payload cells under `coeffs`, the
    /// oracle the combine handler's SIMD path is checked against.
    fn expected_sum(coeffs: &[(u8, u64)]) -> Vec<u8> {
        let mut out = vec![0u8; 16];
        for &(c, off) in coeffs {
            ecfrm_gf::region::mul_add_region(c, &[off as u8; 16], &mut out);
        }
        out
    }

    #[test]
    fn combine_range_sums_verified_local_elements() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        let key = HashKey::DEFAULT.derive(0xC0_4B1E, 0);
        seed_cells(&mut c, &key, &[0, 1, 2]);
        // Two output lanes over three local elements.
        let resp = rpc(
            &mut c,
            &Request::CombineRange {
                offset: 0,
                count: 3,
                outputs: 2,
                coeffs: vec![1, 2, 3, 0, 5, 7],
                k0: key.k0,
                k1: key.k1,
                peers: vec![],
            },
        );
        let Response::Combined {
            regions,
            local_status,
            peer_status,
        } = resp
        else {
            panic!("expected Combined, got {resp:?}");
        };
        assert_eq!(local_status, vec![0, 0, 0]);
        assert!(peer_status.is_empty());
        assert_eq!(regions.len(), 2);
        for (r, want) in [
            expected_sum(&[(1, 0), (2, 1), (3, 2)]),
            expected_sum(&[(5, 1), (7, 2)]),
        ]
        .iter()
        .enumerate()
        {
            // Each region is sealed with a footer salted by offset+lane.
            let payload = verify_footer(&key, r as u64, &regions[r])
                .unwrap_or_else(|| panic!("lane {r} footer"));
            assert_eq!(payload, &want[..], "lane {r}");
        }
        let snap = server.recorder().snapshot();
        assert_eq!(snap.counters.get("serve.combine").copied(), Some(1));
    }

    #[test]
    fn combine_range_vetoes_on_used_corrupt_cell_but_ignores_unused_holes() {
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        let key = HashKey::DEFAULT.derive(0xC0_4B1E, 1);
        seed_cells(&mut c, &key, &[0, 2]);
        // Corrupt offset 2 after sealing.
        let mut bad = vec![2u8; 16];
        ecfrm_integrity::append_footer(&key, 2, &mut bad);
        bad[5] ^= 0x10;
        rpc(
            &mut c,
            &Request::PutElement {
                offset: 2,
                bytes: bad,
            },
        );
        // Lane uses the corrupt cell: no sums, verdicts localize it
        // (offset 1 is a hole).
        let resp = rpc(
            &mut c,
            &Request::CombineRange {
                offset: 0,
                count: 3,
                outputs: 1,
                coeffs: vec![1, 1, 1],
                k0: key.k0,
                k1: key.k1,
                peers: vec![],
            },
        );
        assert_eq!(
            resp,
            Response::Combined {
                regions: vec![],
                local_status: vec![0, 1, 2],
                peer_status: vec![],
            }
        );
        // Zero coefficients on the hole and the corrupt cell: the sum
        // goes through, built from the one clean element.
        let resp = rpc(
            &mut c,
            &Request::CombineRange {
                offset: 0,
                count: 3,
                outputs: 1,
                coeffs: vec![9, 0, 0],
                k0: key.k0,
                k1: key.k1,
                peers: vec![],
            },
        );
        let Response::Combined { regions, .. } = resp else {
            panic!("expected Combined, got {resp:?}");
        };
        assert_eq!(
            verify_footer(&key, 0, &regions[0]).unwrap(),
            &expected_sum(&[(9, 0)])[..]
        );
        let snap = server.recorder().snapshot();
        assert_eq!(snap.counters.get("serve.combine_corrupt").copied(), Some(2));
    }

    #[test]
    fn combine_range_caps_hostile_vectors() {
        // Satellite guard: a hostile request is answered with a
        // structured error before any allocation or backend touch —
        // and the connection stays serviceable.
        let server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut c = dial(&server);
        let err = |resp: Response| match resp {
            Response::Error(msg) => msg,
            other => panic!("expected Error, got {other:?}"),
        };
        let msg = err(rpc(
            &mut c,
            &Request::CombineRange {
                offset: 0,
                count: MAX_RANGE + 1,
                outputs: 1,
                coeffs: vec![],
                k0: 0,
                k1: 0,
                peers: vec![],
            },
        ));
        assert!(msg.contains("cap"), "{msg}");
        let msg = err(rpc(
            &mut c,
            &Request::CombineRange {
                offset: 0,
                count: 1,
                outputs: 0,
                coeffs: vec![],
                k0: 0,
                k1: 0,
                peers: vec![],
            },
        ));
        assert!(msg.contains("output lanes"), "{msg}");
        // A coefficient matrix that lies about its shape must not drive
        // allocations: 3 claimed elements, 1 byte of coefficients.
        let msg = err(rpc(
            &mut c,
            &Request::CombineRange {
                offset: 0,
                count: 3,
                outputs: 1,
                coeffs: vec![1],
                k0: 0,
                k1: 0,
                peers: vec![],
            },
        ));
        assert!(msg.contains("does not match"), "{msg}");
        let peer = crate::protocol::CombinePeer {
            addr: "127.0.0.1:1".into(),
            offset: 0,
            count: 1,
            coeffs: vec![0],
        };
        let msg = err(rpc(
            &mut c,
            &Request::CombineRange {
                offset: 0,
                count: 1,
                outputs: 1,
                coeffs: vec![1],
                k0: 0,
                k1: 0,
                peers: vec![peer; MAX_COMBINE_PEERS + 1],
            },
        ));
        assert!(msg.contains("fan-out cap"), "{msg}");
        // The connection survived every rejection.
        assert_eq!(
            rpc(&mut c, &Request::Health),
            Response::Health { elements: 0 }
        );
    }

    #[test]
    fn combine_range_merges_peer_partial_sums() {
        let key = HashKey::DEFAULT.derive(0xC0_4B1E, 2);
        let root = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let helper = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
        let mut rc = dial(&root);
        let mut hc = dial(&helper);
        seed_cells(&mut rc, &key, &[0, 1]);
        seed_cells(&mut hc, &key, &[0, 1]);
        let resp = rpc(
            &mut rc,
            &Request::CombineRange {
                offset: 0,
                count: 2,
                outputs: 2,
                coeffs: vec![1, 2, 3, 4],
                k0: key.k0,
                k1: key.k1,
                peers: vec![crate::protocol::CombinePeer {
                    addr: helper.addr().to_string(),
                    offset: 0,
                    count: 2,
                    coeffs: vec![5, 6, 7, 8],
                }],
            },
        );
        let Response::Combined {
            regions,
            local_status,
            peer_status,
        } = resp
        else {
            panic!("expected Combined, got {resp:?}");
        };
        assert_eq!(local_status, vec![0, 0]);
        assert_eq!(peer_status, vec![0]);
        assert_eq!(regions.len(), 2);
        // Lane r = root's partial XOR the helper's partial: GF addition
        // is XOR, so merging near the data equals decoding centrally.
        for (r, want) in [
            expected_sum(&[(1, 0), (2, 1), (5, 0), (6, 1)]),
            expected_sum(&[(3, 0), (4, 1), (7, 0), (8, 1)]),
        ]
        .iter()
        .enumerate()
        {
            let payload = verify_footer(&key, r as u64, &regions[r]).unwrap();
            assert_eq!(payload, &want[..], "lane {r}");
        }
        // An unreachable peer: verdict reported, no sums fabricated.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let resp = rpc(
            &mut rc,
            &Request::CombineRange {
                offset: 0,
                count: 2,
                outputs: 1,
                coeffs: vec![1, 1],
                k0: key.k0,
                k1: key.k1,
                peers: vec![crate::protocol::CombinePeer {
                    addr: dead.to_string(),
                    offset: 0,
                    count: 2,
                    coeffs: vec![1, 1],
                }],
            },
        );
        assert_eq!(
            resp,
            Response::Combined {
                regions: vec![],
                local_status: vec![0, 0],
                peer_status: vec![1],
            }
        );
    }

    #[test]
    fn concurrent_connections_are_served() {
        let server = Arc::new(ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap());
        let threads: Vec<_> = (0..8u64)
            .map(|i| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let mut c = dial(&server);
                    rpc(
                        &mut c,
                        &Request::PutElement {
                            offset: i,
                            bytes: vec![i as u8; 16],
                        },
                    );
                    assert_eq!(
                        rpc(&mut c, &Request::GetElement { offset: i }),
                        Response::Element(Some(vec![i as u8; 16]))
                    );
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut c = dial(&server);
        assert_eq!(
            rpc(&mut c, &Request::Health),
            Response::Health { elements: 8 }
        );
    }
}

//! [`Cluster`]: an n-node loopback cluster in one process.
//!
//! Spawns one [`ShardServer`] per disk on an ephemeral `127.0.0.1` port
//! and pairs each with a [`RemoteDisk`] client. Handing
//! [`Cluster::backends`] to a `ThreadedArray` makes the whole EC-FRM
//! stack — put → encode → **network** → decode — run over real TCP
//! sockets, and [`Cluster::kill`] turns a node into a crashed server so
//! degraded-read fallback can be exercised end to end.

use std::net::SocketAddr;
use std::sync::Arc;

use ecfrm_sim::{DiskBackend, MemDisk};

use crate::client::{RemoteDisk, RemoteDiskConfig};
use crate::server::ShardServer;

/// `n` loopback shard servers plus one connected client per shard.
pub struct Cluster {
    servers: Vec<ShardServer>,
    clients: Vec<Arc<RemoteDisk>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cluster(n={})", self.servers.len())
    }
}

impl Cluster {
    /// Boot `n` servers over fresh [`MemDisk`]s with the given client
    /// config.
    ///
    /// # Errors
    /// Socket bind errors.
    pub fn spawn_with(n: usize, cfg: &RemoteDiskConfig) -> std::io::Result<Self> {
        let backends: Vec<Arc<dyn DiskBackend>> = (0..n)
            .map(|_| Arc::new(MemDisk::new()) as Arc<dyn DiskBackend>)
            .collect();
        Self::spawn_over(backends, cfg)
    }

    /// Boot `n` servers with test-friendly fast timeouts.
    ///
    /// # Errors
    /// Socket bind errors.
    pub fn spawn(n: usize) -> std::io::Result<Self> {
        Self::spawn_with(n, &RemoteDiskConfig::builder().low_latency().build())
    }

    /// Boot one server per provided backend (e.g. `FileDisk`s for a
    /// persistent cluster).
    ///
    /// # Errors
    /// Socket bind errors.
    pub fn spawn_over(
        backends: Vec<Arc<dyn DiskBackend>>,
        cfg: &RemoteDiskConfig,
    ) -> std::io::Result<Self> {
        let mut servers = Vec::with_capacity(backends.len());
        let mut clients = Vec::with_capacity(backends.len());
        for backend in backends {
            let server = ShardServer::spawn(backend, "127.0.0.1:0")?;
            clients.push(Arc::new(RemoteDisk::new(server.addr(), cfg.clone())));
            servers.push(server);
        }
        Ok(Self { servers, clients })
    }

    /// Number of nodes (alive or killed).
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True for a zero-node cluster.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The address node `i` listens on.
    pub fn addr(&self, i: usize) -> SocketAddr {
        self.servers[i].addr()
    }

    /// The client for node `i`.
    pub fn client(&self, i: usize) -> &Arc<RemoteDisk> {
        &self.clients[i]
    }

    /// One `DiskBackend` handle per node, for `ThreadedArray::new`.
    pub fn backends(&self) -> Vec<Arc<dyn DiskBackend>> {
        self.clients
            .iter()
            .map(|c| Arc::clone(c) as Arc<dyn DiskBackend>)
            .collect()
    }

    /// Crash node `i`: its server stops serving and in-flight
    /// connections drop. The paired client stays — its requests now
    /// time out / fail, which is the point.
    pub fn kill(&mut self, i: usize) {
        self.servers[i].kill();
    }

    /// True once [`Self::kill`] has run for node `i`.
    pub fn is_dead(&self, i: usize) -> bool {
        self.servers[i].is_dead()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_spawns_distinct_nodes() {
        let cluster = Cluster::spawn(4).unwrap();
        assert_eq!(cluster.len(), 4);
        let addrs: std::collections::BTreeSet<_> = (0..4).map(|i| cluster.addr(i)).collect();
        assert_eq!(addrs.len(), 4, "each node gets its own port");
    }

    #[test]
    fn backends_route_to_their_own_shard() {
        let cluster = Cluster::spawn(3).unwrap();
        let disks = cluster.backends();
        for (i, d) in disks.iter().enumerate() {
            d.write(0, vec![i as u8; 4]);
        }
        for (i, d) in disks.iter().enumerate() {
            assert_eq!(d.read(0), Some(vec![i as u8; 4]));
            assert_eq!(d.len(), 1);
        }
    }

    #[test]
    fn killed_node_reads_absent_others_unaffected() {
        let mut cluster = Cluster::spawn(3).unwrap();
        let disks = cluster.backends();
        for d in &disks {
            d.write(0, vec![9; 8]);
        }
        cluster.kill(1);
        assert!(cluster.is_dead(1));
        assert_eq!(disks[1].read(0), None);
        assert_eq!(disks[0].read(0), Some(vec![9; 8]));
        assert_eq!(disks[2].read(0), Some(vec![9; 8]));
        let stats = disks[1].net_stats().unwrap();
        assert!(stats.failed_requests >= 1);
    }
}

//! [`RemoteDisk`]: a [`DiskBackend`] that speaks the wire protocol.
//!
//! Drop-in client for a [`ShardServer`](crate::server::ShardServer):
//! `ThreadedArray` and `ObjectStore` run unmodified over it. Two
//! transports are layered behind the one trait:
//!
//! * **multiplexed** (preferred) — one connection per shard carries many
//!   in-flight requests, id-tagged with [`Request::Mux`] framing. A
//!   demux thread matches responses to completion callbacks, so
//!   [`DiskBackend::submit_read_many`] is truly non-blocking and the
//!   store's reactor can keep thousands of stripe reads in flight.
//!   Support is negotiated on first use with a `Mux(Health)` probe; a
//!   shard that predates the opcode permanently demotes this client to
//!   the legacy transport (the PR-4-style additive-negotiation rule: an
//!   *answering* shard demotes, a transient outage does not).
//! * **legacy pooled** — one blocking request per pooled connection,
//!   with the full resilience stack: per-request timeouts, bounded
//!   retries with exponential backoff, and optional hedged reads
//!   (`hedge_after` — a tail-latency tool for the blocking path; the
//!   multiplexed path gets its tail protection from the store's
//!   replanning instead).
//!
//! On either path, a read that ultimately fails returns *absent*
//! (`None`) — the store treats it as a suspect disk and replans the
//! read degraded, so the network failure domain degrades into the
//! erasure-code failure domain instead of erroring.
//!
//! Every event increments the shared [`NetCounters`], surfaced through
//! [`DiskBackend::net_stats`] into the store's `ReadStats`.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ecfrm_obs::{Histogram, HistogramSnapshot};
use ecfrm_sim::{
    io_pair, CombineOutcome, CombineReply, CombineSpec, DiskBackend, IoHandle, NetCounters,
    NetStats,
};
use ecfrm_util::{Mutex, Rng};

use crate::protocol::{
    read_response, read_response_polling, write_request, CheckedElement, CombinePeer, Fault,
    NetError, PolledResponse, Request, Response,
};

/// Client-side resilience knobs. Build one with
/// [`RemoteDiskConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteDiskConfig {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-request response deadline.
    pub request_timeout: Duration,
    /// Re-sends after the first attempt (0 = one attempt only). Applies
    /// to the legacy blocking path; multiplexed submissions are
    /// single-attempt (a failure completes as absent and the store
    /// replans).
    pub max_retries: u32,
    /// First backoff step; doubles each retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Launch a duplicate read on a second connection if the primary
    /// has not answered within this window. `None` disables hedging.
    /// Legacy-path only: hedging and multiplexing are alternative
    /// tail-latency strategies, so configs that hedge usually also set
    /// `multiplex: false`.
    pub hedge_after: Option<Duration>,
    /// Idle connections kept for reuse.
    pub pool_size: usize,
    /// Emit coalesced `GetRange` requests when a batch forms one
    /// contiguous ascending run. Disabled, every batch goes out as
    /// `BatchGet`. Even when enabled, the client auto-falls-back (and
    /// stops asking) if the server predates the opcode.
    pub use_range: bool,
    /// The store's integrity key `(k0, k1)`. When set (and `use_range`
    /// allows coalescing), contiguous runs go out as `RangeChecked`:
    /// the server verifies each cell's checksum footer at the source
    /// and corrupt cells come back as a one-byte verdict instead of a
    /// payload. `None` keeps all verification client-side. As with
    /// `GetRange`, an old server that rejects the opcode demotes the
    /// client to the unchecked path permanently.
    pub integrity_key: Option<(u64, u64)>,
    /// Allow the multiplexed transport (one connection, many in-flight
    /// requests). Disabled, every request takes the legacy pooled path
    /// — the shape of a pre-mux client, kept for wire compatibility
    /// tests and for hedging configs.
    pub multiplex: bool,
}

impl Default for RemoteDiskConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(1),
            max_retries: 2,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            hedge_after: None,
            pool_size: 2,
            use_range: true,
            integrity_key: None,
            multiplex: true,
        }
    }
}

impl RemoteDiskConfig {
    /// Start building a config from the defaults, in the
    /// `Scheme::builder` style:
    ///
    /// ```
    /// use std::time::Duration;
    /// use ecfrm_net::RemoteDiskConfig;
    ///
    /// let cfg = RemoteDiskConfig::builder()
    ///     .request_timeout(Duration::from_millis(500))
    ///     .pool_size(4)
    ///     .build();
    /// assert_eq!(cfg.pool_size, 4);
    /// ```
    pub fn builder() -> RemoteDiskConfigBuilder {
        RemoteDiskConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Enable server-side footer verification with the given key: the
    /// store's `(k0, k1)` integrity key words, shipped on every
    /// `RangeChecked` request.
    #[must_use]
    pub fn with_integrity(mut self, k0: u64, k1: u64) -> Self {
        self.integrity_key = Some((k0, k1));
        self
    }
}

/// Fluent constructor for [`RemoteDiskConfig`]: chain knob setters
/// and/or a preset, then [`build`](Self::build).
#[derive(Debug, Clone)]
pub struct RemoteDiskConfigBuilder {
    cfg: RemoteDiskConfig,
}

impl RemoteDiskConfigBuilder {
    /// TCP connect deadline.
    #[must_use]
    pub fn connect_timeout(mut self, d: Duration) -> Self {
        self.cfg.connect_timeout = d;
        self
    }

    /// Per-request response deadline.
    #[must_use]
    pub fn request_timeout(mut self, d: Duration) -> Self {
        self.cfg.request_timeout = d;
        self
    }

    /// Re-sends after the first attempt (0 = one attempt only).
    #[must_use]
    pub fn max_retries(mut self, n: u32) -> Self {
        self.cfg.max_retries = n;
        self
    }

    /// Exponential backoff: first step and ceiling.
    #[must_use]
    pub fn backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.cfg.backoff_base = base;
        self.cfg.backoff_cap = cap;
        self
    }

    /// Hedge window for the legacy read path (`None` disables hedging).
    #[must_use]
    pub fn hedge_after(mut self, d: Option<Duration>) -> Self {
        self.cfg.hedge_after = d;
        self
    }

    /// Idle connections kept for reuse.
    #[must_use]
    pub fn pool_size(mut self, n: usize) -> Self {
        self.cfg.pool_size = n;
        self
    }

    /// Allow coalesced `GetRange` requests for contiguous runs.
    #[must_use]
    pub fn use_range(mut self, yes: bool) -> Self {
        self.cfg.use_range = yes;
        self
    }

    /// The store's `(k0, k1)` integrity key, enabling server-side
    /// footer verification via `RangeChecked`.
    #[must_use]
    pub fn integrity_key(mut self, k0: u64, k1: u64) -> Self {
        self.cfg.integrity_key = Some((k0, k1));
        self
    }

    /// Allow the multiplexed transport.
    #[must_use]
    pub fn multiplex(mut self, yes: bool) -> Self {
        self.cfg.multiplex = yes;
        self
    }

    /// Preset: tight timeouts for tests and latency-sensitive callers —
    /// failures are detected in tens of milliseconds instead of
    /// seconds.
    #[must_use]
    pub fn low_latency(mut self) -> Self {
        self.cfg.connect_timeout = Duration::from_millis(200);
        self.cfg.request_timeout = Duration::from_millis(200);
        self.cfg.max_retries = 1;
        self.cfg.backoff_base = Duration::from_millis(2);
        self.cfg.backoff_cap = Duration::from_millis(10);
        self
    }

    /// Preset: low-priority profile for background repair traffic — no
    /// hedging (hedges exist to cut foreground tail latency; repair has
    /// no tail-latency SLO and duplicate reads would double its load on
    /// the survivors), relaxed timeouts with patient backoff (a busy
    /// shard serving foreground reads is the expected case, not a
    /// failure), and a single pooled connection per shard.
    #[must_use]
    pub fn repair_profile(mut self) -> Self {
        self.cfg.connect_timeout = Duration::from_secs(2);
        self.cfg.request_timeout = Duration::from_secs(5);
        self.cfg.max_retries = 3;
        self.cfg.backoff_base = Duration::from_millis(50);
        self.cfg.backoff_cap = Duration::from_secs(1);
        self.cfg.hedge_after = None;
        self.cfg.pool_size = 1;
        self
    }

    /// Finish: the assembled config.
    #[must_use]
    pub fn build(self) -> RemoteDiskConfig {
        self.cfg
    }
}

/// How often the demux reader wakes when idle, to check liveness and
/// sweep request deadlines.
const MUX_POLL: Duration = Duration::from_millis(10);

/// Mux negotiation has not run yet (first data request triggers it).
const MUX_UNKNOWN: u8 = 0;
/// The shard answered the `Mux(Health)` probe: multiplex everything.
const MUX_ON: u8 = 1;
/// The shard answered legacy but not mux: never ask again.
const MUX_OFF: u8 = 2;

/// Completion callback for one multiplexed request — guaranteed to run
/// exactly once: with the response, a timeout, or a transport error.
type MuxCallback = Box<dyn FnOnce(Result<Response, NetError>) + Send>;

struct MuxPending {
    deadline: Instant,
    done: MuxCallback,
}

/// State shared between submitters and the demux reader thread.
struct MuxShared {
    pending: Mutex<HashMap<u64, MuxPending>>,
    /// Set on any unclean event (EOF, garbage frame, failed write) and
    /// on intentional shutdown; the reader polls it as its stop flag.
    dead: AtomicBool,
    counters: Arc<NetCounters>,
}

impl MuxShared {
    /// Complete every outstanding request with a transport error
    /// (callbacks run outside the lock).
    fn fail_all(&self) {
        let drained: Vec<MuxPending> = self.pending.lock().drain().map(|(_, p)| p).collect();
        for p in drained {
            (p.done)(Err(NetError::Protocol("mux connection lost".into())));
        }
    }

    /// Time out every request past its deadline (callbacks run outside
    /// the lock). The connection itself stays up; a late response for a
    /// swept id is dropped on arrival.
    fn sweep(&self) {
        let now = Instant::now();
        let expired: Vec<MuxPending> = {
            let mut pending = self.pending.lock();
            let ids: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| p.deadline <= now)
                .map(|(&id, _)| id)
                .collect();
            ids.iter().filter_map(|id| pending.remove(id)).collect()
        };
        for p in expired {
            self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            (p.done)(Err(NetError::Timeout));
        }
    }
}

/// One multiplexed connection to a shard: submitters write id-tagged
/// frames under the writer lock; a demux thread reads responses and
/// fires the matching callbacks as they land, whatever the order.
struct MuxConn {
    writer: Mutex<BufWriter<TcpStream>>,
    shared: Arc<MuxShared>,
    next_id: AtomicU64,
}

/// Why a multiplexed connection could not be established.
#[derive(Debug)]
enum MuxProbe {
    /// The shard answered the probe with a *plain* response: it is alive
    /// but predates the mux opcode. Carries the still-clean connection
    /// so the caller can recycle it into the legacy pool.
    Unsupported(TcpStream),
    /// Transport-level failure: an old server dropping the unknown
    /// opcode, or an outage — indistinguishable without a legacy probe.
    /// The error is carried for `Debug` output only; negotiation cares
    /// about the *kind* of failure, not its detail.
    Transport(#[allow(dead_code)] NetError),
}

impl MuxConn {
    /// Dial a fresh connection and negotiate: one `Mux(Health)` probe,
    /// answered in kind, promotes the connection to a demuxed transport.
    fn establish(
        addr: SocketAddr,
        cfg: &RemoteDiskConfig,
        counters: &Arc<NetCounters>,
    ) -> Result<Self, MuxProbe> {
        let dial = || -> Result<TcpStream, NetError> {
            let stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)?;
            stream.set_read_timeout(Some(cfg.request_timeout))?;
            stream.set_write_timeout(Some(cfg.request_timeout))?;
            stream.set_nodelay(true).ok();
            Ok(stream)
        };
        let mut stream = dial().map_err(MuxProbe::Transport)?;
        let probe = Request::Mux {
            id: 0,
            inner: Box::new(Request::Health),
        };
        match write_request(&mut stream, &probe).and_then(|()| read_response(&mut stream)) {
            Ok(Response::Mux { .. }) => {}
            Ok(_) => return Err(MuxProbe::Unsupported(stream)),
            Err(e) => {
                if matches!(e, NetError::Timeout) {
                    counters.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                counters.conns_discarded.fetch_add(1, Ordering::Relaxed);
                return Err(MuxProbe::Transport(e));
            }
        }
        // Promoted: the reader needs a short timeout so it can poll the
        // stop flag and sweep deadlines while idle.
        if stream.set_read_timeout(Some(MUX_POLL)).is_err() {
            counters.conns_discarded.fetch_add(1, Ordering::Relaxed);
            return Err(MuxProbe::Transport(NetError::Protocol(
                "could not re-arm read timeout".into(),
            )));
        }
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(e) => {
                counters.conns_discarded.fetch_add(1, Ordering::Relaxed);
                return Err(MuxProbe::Transport(e.into()));
            }
        };
        let shared = Arc::new(MuxShared {
            pending: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            counters: Arc::clone(counters),
        });
        let reader_shared = Arc::clone(&shared);
        std::thread::spawn(move || demux_loop(BufReader::new(reader), &reader_shared));
        Ok(Self {
            writer: Mutex::new(BufWriter::new(stream)),
            shared,
            next_id: AtomicU64::new(1),
        })
    }

    fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::Acquire)
    }

    /// Send `req` id-tagged. `done` runs exactly once — with the
    /// response, with `Timeout` after the deadline, or with a transport
    /// error if the connection dies first.
    fn submit(&self, req: Request, timeout: Duration, done: MuxCallback) {
        if self.is_dead() {
            return done(Err(NetError::Protocol("mux connection dead".into())));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared.pending.lock().insert(
            id,
            MuxPending {
                deadline: Instant::now() + timeout,
                done,
            },
        );
        let framed = Request::Mux {
            id,
            inner: Box::new(req),
        };
        let wrote = write_request(&mut *self.writer.lock(), &framed).is_ok();
        if !wrote && !self.shared.dead.swap(true, Ordering::AcqRel) {
            // First to notice the death: account the discard (the reader
            // will see the stop flag and exit without double-counting).
            self.shared
                .counters
                .conns_discarded
                .fetch_add(1, Ordering::Relaxed);
        }
        if !wrote || self.is_dead() {
            // Either our write failed, or the reader died and drained
            // `pending` while we were inserting. Whoever still finds the
            // entry completes it; a missing entry means the reader beat
            // us to it.
            if let Some(p) = self.shared.pending.lock().remove(&id) {
                (p.done)(Err(NetError::Protocol("mux connection lost".into())));
            }
        }
    }
}

impl Drop for MuxConn {
    fn drop(&mut self) {
        // Intentional shutdown: stop the reader (it exits at its next
        // poll tick) without counting a discarded connection.
        self.shared.dead.store(true, Ordering::Release);
    }
}

/// The demux reader: matches id-tagged responses to pending callbacks,
/// sweeps deadlines while idle, and on connection death fails every
/// outstanding request.
fn demux_loop(mut reader: BufReader<TcpStream>, shared: &Arc<MuxShared>) {
    loop {
        match read_response_polling(&mut reader, &shared.dead) {
            PolledResponse::Frame(Response::Mux { id, inner }) => {
                let entry = shared.pending.lock().remove(&id);
                if let Some(p) = entry {
                    (p.done)(match *inner {
                        Response::Error(msg) => Err(NetError::Remote(msg)),
                        ok => Ok(ok),
                    });
                }
                // else: a late response for a swept id — drop it.
                shared.sweep();
            }
            PolledResponse::Frame(_) => {
                // A plain response on a mux connection: framing
                // confusion, the stream is unusable.
                if !shared.dead.swap(true, Ordering::AcqRel) {
                    shared
                        .counters
                        .conns_discarded
                        .fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
            PolledResponse::Idle => shared.sweep(),
            PolledResponse::Closed => {
                // EOF/garbage — or the stop flag raised by an intentional
                // shutdown, which must not count as a discard.
                if !shared.dead.swap(true, Ordering::AcqRel) {
                    shared
                        .counters
                        .conns_discarded
                        .fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
        }
    }
    shared.fail_all();
}

/// Which read shape went out, for decoding the mux reply.
enum ReadShape {
    Element,
    Batch,
    Range,
    Checked,
}

/// Map a read response back onto per-offset cells. `None` on any
/// shape/length mismatch (the caller treats it as a failed request).
fn map_read_response(
    resp: Response,
    shape: &ReadShape,
    n: usize,
    remote_verify_fails: &AtomicU64,
) -> Option<Vec<Option<Vec<u8>>>> {
    let items = match (shape, resp) {
        (ReadShape::Element, Response::Element(v)) => vec![v],
        (ReadShape::Batch, Response::Batch(items)) => items,
        (ReadShape::Range, Response::Range(items)) => items,
        (ReadShape::Checked, Response::Checked(items)) => items
            .into_iter()
            .map(|item| match item {
                CheckedElement::Valid(bytes) => Some(bytes),
                CheckedElement::Missing => None,
                CheckedElement::Corrupt => {
                    remote_verify_fails.fetch_add(1, Ordering::Relaxed);
                    None
                }
            })
            .collect(),
        _ => return None,
    };
    (items.len() == n).then_some(items)
}

/// A remote shard, presented as a local [`DiskBackend`].
pub struct RemoteDisk {
    addr: SocketAddr,
    cfg: RemoteDiskConfig,
    pool: Mutex<Vec<TcpStream>>,
    counters: Arc<NetCounters>,
    /// End-to-end latency of data-path requests (read / write / batch),
    /// including retries and hedges, in microseconds.
    request_us: Histogram,
    ever_connected: AtomicBool,
    /// Cleared the first time a `GetRange` fails but a `BatchGet` of the
    /// same offsets succeeds — the shard is alive but predates the
    /// opcode, so stop asking (forward compatibility with old servers).
    range_supported: AtomicBool,
    /// Same demotion latch for `RangeChecked`: cleared the first time
    /// the checked opcode fails but a `BatchGet` of the same offsets
    /// succeeds.
    checked_supported: AtomicBool,
    /// Same demotion latch for `CombineRange`: cleared the first time
    /// the combine opcode fails but a `BatchGet` of the same offsets
    /// succeeds (the shard is alive but predates server-side
    /// combining — the repair planner falls back to raw elements).
    combine_supported: AtomicBool,
    /// Three-state mux negotiation latch: [`MUX_UNKNOWN`] until the
    /// first data request probes, then [`MUX_ON`] or [`MUX_OFF`].
    mux_state: AtomicU8,
    /// The live multiplexed connection, when negotiated on. Also serves
    /// as the negotiation/re-dial critical section.
    mux: Mutex<Option<Arc<MuxConn>>>,
    /// Cells the server reported as failing footer verification
    /// (`CheckedElement::Corrupt`). Surfaced via
    /// [`RemoteDisk::remote_verify_fails`].
    remote_verify_fails: Arc<AtomicU64>,
    rng: Mutex<Rng>,
}

impl std::fmt::Debug for RemoteDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RemoteDisk({})", self.addr)
    }
}

impl RemoteDisk {
    /// A client for the shard at `addr`. No connection is made until the
    /// first request.
    pub fn new(addr: SocketAddr, cfg: RemoteDiskConfig) -> Self {
        Self {
            addr,
            cfg,
            pool: Mutex::new(Vec::new()),
            counters: Arc::new(NetCounters::new()),
            request_us: Histogram::new(),
            ever_connected: AtomicBool::new(false),
            range_supported: AtomicBool::new(true),
            checked_supported: AtomicBool::new(true),
            combine_supported: AtomicBool::new(true),
            mux_state: AtomicU8::new(MUX_UNKNOWN),
            mux: Mutex::new(None),
            remote_verify_fails: Arc::new(AtomicU64::new(0)),
            rng: Mutex::new(Rng::seed_from_u64(addr.port() as u64 ^ 0xD15C)),
        }
    }

    /// The shard address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live handle to the transport counters.
    pub fn counters(&self) -> Arc<NetCounters> {
        Arc::clone(&self.counters)
    }

    /// Snapshot of the end-to-end data-path request latency histogram
    /// (microseconds, including retries and hedges).
    pub fn request_latency(&self) -> HistogramSnapshot {
        self.request_us.snapshot()
    }

    /// Fetch the server's metrics registry as flat `(name, value)`
    /// pairs — per-op serve counters plus the `serve_us` histogram
    /// summary.
    ///
    /// # Errors
    /// Transport failure after the full retry budget.
    pub fn stats(&self) -> Result<Vec<(String, u64)>, NetError> {
        match self.rpc(&Request::Stats)? {
            Response::Stats(pairs) => Ok(pairs),
            other => Err(NetError::Protocol(format!(
                "unexpected response to stats request: {other:?}"
            ))),
        }
    }

    /// Run `f` and record its wall-clock in the request histogram.
    fn timed<T>(&self, f: impl FnOnce() -> T) -> T {
        let t0 = std::time::Instant::now();
        let out = f();
        self.request_us.record_duration(t0.elapsed());
        out
    }

    /// Pop a pooled connection or dial a fresh one.
    fn connection(&self) -> Result<TcpStream, NetError> {
        if let Some(s) = self.pool.lock().pop() {
            return Ok(s);
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
        stream.set_read_timeout(Some(self.cfg.request_timeout))?;
        stream.set_write_timeout(Some(self.cfg.request_timeout))?;
        stream.set_nodelay(true).ok();
        if self.ever_connected.swap(true, Ordering::AcqRel) {
            self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        Ok(stream)
    }

    /// Return a connection to the pool — only ever called after a clean
    /// request/response exchange, so its framing state is known-good.
    fn recycle(&self, stream: TcpStream) {
        let mut pool = self.pool.lock();
        if pool.len() < self.cfg.pool_size {
            pool.push(stream);
        }
    }

    /// One attempt: dial/reuse, send, await the response.
    fn rpc_once(&self, req: &Request) -> Result<Response, NetError> {
        let mut stream = self.connection()?;
        match write_request(&mut stream, req).and_then(|()| read_response(&mut stream)) {
            Ok(resp) => {
                self.recycle(stream);
                match resp {
                    Response::Error(msg) => Err(NetError::Remote(msg)),
                    ok => Ok(ok),
                }
            }
            Err(e) => {
                // The connection's framing state is unknown — drop it
                // (and account the drop) rather than recycling.
                self.counters
                    .conns_discarded
                    .fetch_add(1, Ordering::Relaxed);
                if matches!(e, NetError::Timeout) {
                    self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    /// Backoff before retry `attempt` (1-based): `base × 2^(attempt-1)`
    /// capped, scaled by uniform jitter in [0.5, 1.5).
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .cfg
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.cfg.backoff_cap);
        let jitter = self.rng.lock().random_range(0.5f64..1.5);
        exp.mul_f64(jitter)
    }

    /// Full resilience stack: attempts with backoff until one succeeds
    /// or the retry budget is spent.
    fn rpc(&self, req: &Request) -> Result<Response, NetError> {
        let attempts = 1 + self.cfg.max_retries;
        let mut last = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.backoff(attempt - 1));
            }
            match self.rpc_once(req) {
                Ok(resp) => return Ok(resp),
                Err(e) => last = Some(e),
            }
        }
        self.counters
            .failed_requests
            .fetch_add(1, Ordering::Relaxed);
        Err(last.expect("at least one attempt ran"))
    }

    /// A read with hedging: if the primary attempt has not answered
    /// within `hedge_after`, race a duplicate on a second connection and
    /// take whichever answers first. Loser responses are discarded (the
    /// connections are not recycled into each other's streams, so no
    /// frame mixing is possible).
    fn hedged_read(&self, req: &Request, hedge_after: Duration) -> Result<Response, NetError> {
        let (tx, rx) = mpsc::channel::<(bool, Result<Response, NetError>)>();
        std::thread::scope(|scope| {
            let primary_tx = tx.clone();
            scope.spawn(move || {
                let _ = primary_tx.send((false, self.rpc_once(req)));
            });
            let first = match rx.recv_timeout(hedge_after) {
                Ok(result) => Some(result),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(NetError::Protocol("hedge channel broke".into()))
                }
            };
            let (from_hedge, result) = match first {
                Some(r) => r,
                None => {
                    // Primary is slow: launch the hedge and take the
                    // first answer from either.
                    self.counters.hedges.fetch_add(1, Ordering::Relaxed);
                    let hedge_tx = tx.clone();
                    scope.spawn(move || {
                        let _ = hedge_tx.send((true, self.rpc_once(req)));
                    });
                    // Prefer the first *successful* answer; fall back to
                    // the second result if the first errored.
                    match rx.recv() {
                        Ok((who, Ok(resp))) => (who, Ok(resp)),
                        Ok((_, Err(_))) => match rx.recv() {
                            Ok(r) => r,
                            Err(_) => return Err(NetError::Protocol("hedge channel broke".into())),
                        },
                        Err(_) => return Err(NetError::Protocol("hedge channel broke".into())),
                    }
                }
            };
            if from_hedge && result.is_ok() {
                self.counters.hedge_wins.fetch_add(1, Ordering::Relaxed);
            }
            result
        })
    }

    /// Read with the full stack: hedging (if enabled) inside the retry
    /// loop.
    fn read_rpc(&self, req: &Request) -> Result<Response, NetError> {
        match self.cfg.hedge_after {
            None => self.rpc(req),
            Some(hedge_after) => {
                let attempts = 1 + self.cfg.max_retries;
                let mut last = None;
                for attempt in 1..=attempts {
                    if attempt > 1 {
                        self.counters.retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(self.backoff(attempt - 1));
                    }
                    match self.hedged_read(req, hedge_after) {
                        Ok(resp) => return Ok(resp),
                        Err(e) => last = Some(e),
                    }
                }
                self.counters
                    .failed_requests
                    .fetch_add(1, Ordering::Relaxed);
                Err(last.expect("at least one attempt ran"))
            }
        }
    }

    /// Send a fault-injection command to the shard, with retries.
    ///
    /// # Errors
    /// Transport failure after the full retry budget.
    pub fn inject(&self, fault: Fault) -> Result<(), NetError> {
        match self.rpc(&Request::InjectFault(fault))? {
            Response::FaultInjected => Ok(()),
            other => Err(NetError::Protocol(format!(
                "unexpected response to fault injection: {other:?}"
            ))),
        }
    }

    /// Liveness probe: stored element count, or an error if the shard is
    /// unreachable.
    ///
    /// # Errors
    /// Transport failure after the full retry budget.
    pub fn health(&self) -> Result<u64, NetError> {
        match self.rpc(&Request::Health)? {
            Response::Health { elements } => Ok(elements),
            other => Err(NetError::Protocol(format!(
                "unexpected response to health probe: {other:?}"
            ))),
        }
    }

    /// Fetch several elements in one round trip. `None` entries are
    /// absent/failed elements; a transport failure after all retries
    /// yields all-`None`.
    pub fn read_batch(&self, offsets: &[u64]) -> Vec<Option<Vec<u8>>> {
        match self.timed(|| {
            self.read_rpc(&Request::BatchGet {
                offsets: offsets.to_vec(),
            })
        }) {
            Ok(Response::Batch(items)) if items.len() == offsets.len() => items,
            _ => vec![None; offsets.len()],
        }
    }

    /// True while this client will still emit `GetRange` (config allows
    /// it and the server has not demonstrated it predates the opcode).
    pub fn range_enabled(&self) -> bool {
        self.cfg.use_range && self.range_supported.load(Ordering::Acquire)
    }

    /// True while this client will still emit `RangeChecked` (an
    /// integrity key is configured, coalescing is allowed, and the
    /// server has not demonstrated it predates the opcode).
    pub fn checked_enabled(&self) -> bool {
        self.cfg.integrity_key.is_some()
            && self.cfg.use_range
            && self.checked_supported.load(Ordering::Acquire)
    }

    /// Cells the server has reported as corrupt (footer verification
    /// failed at the source) over this client's lifetime.
    pub fn remote_verify_fails(&self) -> u64 {
        self.remote_verify_fails.load(Ordering::Relaxed)
    }

    /// True while requests go over the multiplexed transport (config
    /// allows it and negotiation latched it on).
    pub fn mux_enabled(&self) -> bool {
        self.cfg.multiplex && self.mux_state.load(Ordering::Acquire) == MUX_ON
    }

    /// Whether to take the mux path, negotiating on first use.
    fn use_mux(&self) -> bool {
        if !self.cfg.multiplex {
            return false;
        }
        match self.mux_state.load(Ordering::Acquire) {
            MUX_ON => true,
            MUX_OFF => false,
            _ => self.negotiate_mux(),
        }
    }

    /// First-use negotiation, serialized on the mux slot lock: probe
    /// with `Mux(Health)`; an in-kind answer latches mux on, a *plain*
    /// answer (or an answering legacy path after a dropped probe)
    /// latches it off permanently, and a total outage leaves the state
    /// unknown so a later request re-probes.
    fn negotiate_mux(&self) -> bool {
        let mut slot = self.mux.lock();
        match self.mux_state.load(Ordering::Acquire) {
            MUX_ON => return true,
            MUX_OFF => return false,
            _ => {}
        }
        match MuxConn::establish(self.addr, &self.cfg, &self.counters) {
            Ok(conn) => {
                *slot = Some(Arc::new(conn));
                self.mux_state.store(MUX_ON, Ordering::Release);
                true
            }
            Err(MuxProbe::Unsupported(stream)) => {
                // The shard answered without demuxing: it predates the
                // opcode. The exchange was clean, so the connection is
                // reusable by the legacy path.
                self.recycle(stream);
                self.mux_state.store(MUX_OFF, Ordering::Release);
                false
            }
            Err(MuxProbe::Transport(_)) => {
                // Ambiguous: an old server dropping the unknown opcode
                // looks exactly like an outage. Ask on the legacy path;
                // only an *answering* shard demotes (a transient outage
                // must not latch mux off).
                if self.health().is_ok() {
                    self.mux_state.store(MUX_OFF, Ordering::Release);
                }
                false
            }
        }
    }

    /// The live mux connection, re-dialing if the previous one died.
    /// `None` means the transport is unavailable right now (caller
    /// falls back to the blocking path, which carries the retry
    /// budget).
    fn mux_conn(&self) -> Option<Arc<MuxConn>> {
        let mut slot = self.mux.lock();
        if let Some(conn) = slot.as_ref() {
            if !conn.is_dead() {
                return Some(Arc::clone(conn));
            }
            *slot = None;
        }
        // Mux was negotiated on, so the server speaks it: this is an
        // outage or restart, not a protocol question.
        self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
        match MuxConn::establish(self.addr, &self.cfg, &self.counters) {
            Ok(conn) => {
                let conn = Arc::new(conn);
                *slot = Some(Arc::clone(&conn));
                Some(conn)
            }
            Err(MuxProbe::Unsupported(stream)) => {
                // The shard came back *older* (rollback): demote.
                self.recycle(stream);
                self.mux_state.store(MUX_OFF, Ordering::Release);
                None
            }
            Err(MuxProbe::Transport(_)) => None,
        }
    }

    /// Pick the wire shape for a batch of offsets: single element,
    /// coalesced (checked) range for one contiguous ascending run, or
    /// order-preserving batch.
    fn plan_read(&self, offsets: &[u64]) -> (Request, ReadShape) {
        if offsets.len() == 1 {
            return (
                Request::GetElement { offset: offsets[0] },
                ReadShape::Element,
            );
        }
        if let Some(count) = contiguous_run(offsets) {
            if self.checked_enabled() {
                let (k0, k1) = self
                    .cfg
                    .integrity_key
                    .expect("checked_enabled implies a key");
                return (
                    Request::RangeChecked {
                        offset: offsets[0],
                        count,
                        k0,
                        k1,
                    },
                    ReadShape::Checked,
                );
            }
            if self.range_enabled() {
                return (
                    Request::GetRange {
                        offset: offsets[0],
                        count,
                    },
                    ReadShape::Range,
                );
            }
        }
        (
            Request::BatchGet {
                offsets: offsets.to_vec(),
            },
            ReadShape::Batch,
        )
    }

    /// The blocking read path: retries, backoff, hedging, and the
    /// range/checked opcode negotiation. Used when multiplexing is off
    /// (old servers, hedging configs) and as the fallback when the mux
    /// transport cannot be (re-)established.
    fn read_many_blocking(&self, offsets: &[u64]) -> Vec<Option<Vec<u8>>> {
        if offsets.is_empty() {
            return Vec::new();
        }
        if offsets.len() == 1 {
            let got =
                match self.timed(|| self.read_rpc(&Request::GetElement { offset: offsets[0] })) {
                    Ok(Response::Element(v)) => v,
                    _ => None,
                };
            return vec![got];
        }
        if self.checked_enabled() {
            if let Some(count) = contiguous_run(offsets) {
                if let Some(items) = self.read_checked(offsets[0], count) {
                    return items;
                }
                // Transient fault or an old server. Retry unchecked
                // (GetRange negotiates its own fallback below); if the
                // shard answers, it is alive but checked-less —
                // remember and stop asking.
                let items = self.read_many_unchecked(offsets);
                if items.iter().any(Option::is_some) {
                    self.checked_supported.store(false, Ordering::Release);
                }
                return items;
            }
        }
        self.read_many_unchecked(offsets)
    }

    /// One `RangeChecked` attempt for a contiguous run, or `None` if
    /// the checked path is unavailable/failed (caller falls back).
    /// Corrupt cells map to absent entries — the store's verify-on-read
    /// treats both as erasures — after bumping the corrupt counter.
    fn read_checked(&self, offset: u64, count: u32) -> Option<Vec<Option<Vec<u8>>>> {
        let (k0, k1) = self.cfg.integrity_key?;
        match self.timed(|| {
            self.read_rpc(&Request::RangeChecked {
                offset,
                count,
                k0,
                k1,
            })
        }) {
            Ok(Response::Checked(items)) if items.len() == count as usize => Some(
                items
                    .into_iter()
                    .map(|item| match item {
                        CheckedElement::Valid(bytes) => Some(bytes),
                        CheckedElement::Missing => None,
                        CheckedElement::Corrupt => {
                            self.remote_verify_fails.fetch_add(1, Ordering::Relaxed);
                            None
                        }
                    })
                    .collect(),
            ),
            _ => None,
        }
    }

    /// The unchecked multi-element path: coalesced `GetRange` for a
    /// contiguous run (with its own old-server fallback), `BatchGet`
    /// otherwise.
    fn read_many_unchecked(&self, offsets: &[u64]) -> Vec<Option<Vec<u8>>> {
        if self.range_enabled() {
            if let Some(count) = contiguous_run(offsets) {
                match self.timed(|| {
                    self.read_rpc(&Request::GetRange {
                        offset: offsets[0],
                        count,
                    })
                }) {
                    Ok(Response::Range(items)) if items.len() == offsets.len() => return items,
                    _ => {
                        // Either a transient fault or an old server (which
                        // drops the connection on the unknown opcode). Retry
                        // the batch as BatchGet; if *that* works, the shard
                        // is alive but range-less — remember and stop asking.
                        match self.timed(|| {
                            self.read_rpc(&Request::BatchGet {
                                offsets: offsets.to_vec(),
                            })
                        }) {
                            Ok(Response::Batch(items)) if items.len() == offsets.len() => {
                                self.range_supported.store(false, Ordering::Release);
                                return items;
                            }
                            _ => return vec![None; offsets.len()],
                        }
                    }
                }
            }
        }
        self.read_batch(offsets)
    }
}

/// `Some(count)` when `offsets` is one contiguous ascending run
/// (`o, o+1, …, o+len-1`) — the shape `GetRange` carries.
fn contiguous_run(offsets: &[u64]) -> Option<u32> {
    if offsets.is_empty() || offsets.len() > u32::MAX as usize {
        return None;
    }
    let contiguous = offsets.windows(2).all(|w| w[1] == w[0].wrapping_add(1));
    contiguous.then_some(offsets.len() as u32)
}

impl DiskBackend for RemoteDisk {
    /// Submit a batch read. Over the multiplexed transport this is
    /// truly non-blocking: the request goes out id-tagged on the shared
    /// connection and the handle completes when the demux thread
    /// delivers the response (or its deadline passes — mux submissions
    /// are single-attempt; a failure completes as all-absent and the
    /// store replans degraded). When multiplexing is off or
    /// unavailable, the blocking path — with its full retry/hedge
    /// budget — runs inline and the handle returns already complete.
    fn submit_read_many(&self, offsets: &[u64]) -> IoHandle {
        if offsets.is_empty() {
            return IoHandle::ready(Vec::new());
        }
        if !self.use_mux() {
            return IoHandle::ready(self.read_many_blocking(offsets));
        }
        let Some(conn) = self.mux_conn() else {
            // Transport down right now: the blocking path carries the
            // retry budget and the failure accounting.
            return IoHandle::ready(self.read_many_blocking(offsets));
        };
        let (handle, completer) = io_pair(offsets.len());
        let (req, shape) = self.plan_read(offsets);
        let n = offsets.len();
        let counters = Arc::clone(&self.counters);
        let request_us = self.request_us.clone();
        let verify_fails = Arc::clone(&self.remote_verify_fails);
        let t0 = Instant::now();
        conn.submit(
            req,
            self.cfg.request_timeout,
            Box::new(move |res| {
                request_us.record_duration(t0.elapsed());
                let results = res
                    .ok()
                    .and_then(|resp| map_read_response(resp, &shape, n, &verify_fails))
                    .unwrap_or_else(|| {
                        counters.failed_requests.fetch_add(1, Ordering::Relaxed);
                        vec![None; n]
                    });
                completer.complete(results);
            }),
        );
        handle
    }

    /// True once mux negotiation has latched on: submissions return
    /// un-completed handles, so the array drives this backend from the
    /// reactor's completion side instead of parking a pool worker on it.
    fn submits_async(&self) -> bool {
        self.mux_enabled()
    }

    fn write(&self, offset: u64, bytes: Vec<u8>) {
        // DiskBackend writes are infallible by contract; a write that
        // exhausts its retries is recorded in the counters (and the
        // element will read back as absent).
        let _ = self.timed(|| self.rpc(&Request::PutElement { offset, bytes }));
    }

    /// Remote failure injection: flips the *server's* backend, so every
    /// client of that shard sees the failure.
    fn fail(&self) {
        let _ = self.inject(Fault::Fail);
    }

    fn heal(&self) {
        let _ = self.inject(Fault::Heal);
    }

    fn wipe(&self) {
        let _ = self.inject(Fault::Wipe);
    }

    fn len(&self) -> usize {
        self.health().map_or(0, |n| n as usize)
    }

    fn net_stats(&self) -> Option<NetStats> {
        Some(self.counters.snapshot())
    }

    /// Ship decode coefficients to the shard and receive pre-summed
    /// regions back (the repair-traffic-optimal path). An old server
    /// drops the connection on the unknown opcode; like the range
    /// latches, a `BatchGet` probe of the same offsets distinguishes
    /// "combine-less but alive" (latch off, caller falls back to raw
    /// elements) from "shard down" (report the failure).
    fn combine(&self, spec: &CombineSpec) -> CombineOutcome {
        if !self.combine_supported.load(Ordering::Acquire) {
            return CombineOutcome::Unsupported;
        }
        let req = Request::CombineRange {
            offset: spec.offset,
            count: spec.count,
            outputs: spec.outputs,
            coeffs: spec.coeffs.clone(),
            k0: spec.key.0,
            k1: spec.key.1,
            peers: spec
                .peers
                .iter()
                .map(|p| CombinePeer {
                    addr: p.addr.clone(),
                    offset: p.offset,
                    count: p.count,
                    coeffs: p.coeffs.clone(),
                })
                .collect(),
        };
        match self.timed(|| self.rpc(&req)) {
            Ok(Response::Combined {
                regions,
                local_status,
                peer_status,
            }) => CombineOutcome::Combined(CombineReply {
                regions,
                local_status,
                peer_status,
            }),
            Ok(other) => CombineOutcome::Failed(format!("unexpected response: {other:?}")),
            // A structured Error came back over the wire: the server
            // speaks the opcode (it rejected this *request*), so the
            // latch stays on.
            Err(NetError::Remote(msg)) => CombineOutcome::Failed(msg),
            Err(e) => {
                let offsets: Vec<u64> = (0..u64::from(spec.count))
                    .map(|i| spec.offset + i)
                    .collect();
                let probe = self.read_batch(&offsets);
                if probe.iter().any(Option::is_some) {
                    self.combine_supported.store(false, Ordering::Release);
                    return CombineOutcome::Unsupported;
                }
                CombineOutcome::Failed(e.to_string())
            }
        }
    }

    fn supports_combine(&self) -> bool {
        self.combine_supported.load(Ordering::Acquire)
    }

    fn peer_addr(&self) -> Option<String> {
        Some(self.addr.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ShardServer;
    use ecfrm_sim::MemDisk;

    fn server() -> ShardServer {
        ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap()
    }

    /// The test profile: tight timeouts via the builder.
    fn fast() -> RemoteDiskConfig {
        RemoteDiskConfig::builder().low_latency().build()
    }

    #[test]
    fn builder_default_matches_config_default() {
        assert_eq!(
            RemoteDiskConfig::builder().build(),
            RemoteDiskConfig::default()
        );
    }

    #[test]
    fn builder_sets_individual_knobs() {
        let cfg = RemoteDiskConfig::builder()
            .connect_timeout(Duration::from_millis(10))
            .request_timeout(Duration::from_millis(20))
            .max_retries(7)
            .backoff(Duration::from_millis(1), Duration::from_millis(2))
            .hedge_after(Some(Duration::from_millis(30)))
            .pool_size(9)
            .use_range(false)
            .integrity_key(3, 4)
            .multiplex(false)
            .build();
        assert_eq!(cfg.connect_timeout, Duration::from_millis(10));
        assert_eq!(cfg.request_timeout, Duration::from_millis(20));
        assert_eq!(cfg.max_retries, 7);
        assert_eq!(cfg.backoff_base, Duration::from_millis(1));
        assert_eq!(cfg.backoff_cap, Duration::from_millis(2));
        assert_eq!(cfg.hedge_after, Some(Duration::from_millis(30)));
        assert_eq!(cfg.pool_size, 9);
        assert!(!cfg.use_range);
        assert_eq!(cfg.integrity_key, Some((3, 4)));
        assert!(!cfg.multiplex);
    }

    #[test]
    fn read_write_roundtrip_over_wire() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), fast());
        assert!(disk.is_empty());
        disk.write(7, vec![1, 2, 3]);
        assert_eq!(disk.read(7), Some(vec![1, 2, 3]));
        assert_eq!(disk.read(8), None);
        assert_eq!(disk.len(), 1);
        let stats = disk.net_stats().unwrap();
        assert_eq!(stats.failed_requests, 0);
        assert_eq!(stats.timeouts, 0);
        assert!(disk.mux_enabled(), "a live new server negotiates mux on");
        assert!(disk.submits_async());
    }

    #[test]
    fn batch_get_roundtrip() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), fast());
        for o in 0..3u64 {
            disk.write(o, vec![o as u8; 4]);
        }
        let got = disk.read_batch(&[1, 5, 2]);
        assert_eq!(got, vec![Some(vec![1u8; 4]), None, Some(vec![2u8; 4])]);
    }

    #[test]
    fn read_many_coalesces_contiguous_run_into_one_range_rpc() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), fast());
        for o in 0..6u64 {
            disk.write(o, vec![o as u8; 4]);
        }
        let got = disk.read_many(&[2, 3, 4, 5]);
        assert_eq!(
            got,
            (2..6u64)
                .map(|o| Some(vec![o as u8; 4]))
                .collect::<Vec<_>>()
        );
        let stats = disk.stats().unwrap();
        let get = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(get("serve.range"), Some(1), "one coalesced RPC");
        assert_eq!(get("serve.batch"), Some(0), "no per-batch fallback used");
    }

    #[test]
    fn read_many_non_contiguous_uses_batch_get() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), fast());
        for o in 0..8u64 {
            disk.write(o, vec![o as u8]);
        }
        let got = disk.read_many(&[7, 0, 3, 100]);
        assert_eq!(got, vec![Some(vec![7]), Some(vec![0]), Some(vec![3]), None]);
        let stats = disk.stats().unwrap();
        let get = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(get("serve.batch"), Some(1));
        assert_eq!(get("serve.range"), Some(0));
        assert!(disk.range_enabled(), "fallback must not disable range");
    }

    #[test]
    fn read_many_matches_per_element_loop() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), fast());
        for o in [0u64, 1, 2, 3, 7] {
            disk.write(o, vec![o as u8; 2]);
        }
        for offsets in [
            vec![0u64, 1, 2, 3],
            vec![3, 7, 1],
            vec![5, 6],
            vec![],
            vec![7],
        ] {
            let want: Vec<Option<Vec<u8>>> = offsets.iter().map(|&o| disk.read(o)).collect();
            assert_eq!(disk.read_many(&offsets), want, "offsets {offsets:?}");
        }
    }

    #[test]
    fn mux_path_serves_many_concurrent_submissions() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), fast());
        for o in 0..64u64 {
            disk.write(o, vec![o as u8; 8]);
        }
        // Trigger negotiation, then pile up in-flight submissions on
        // the one connection before collecting any of them.
        assert_eq!(disk.read(0), Some(vec![0u8; 8]));
        assert!(disk.submits_async());
        let handles: Vec<IoHandle> = (0..64u64).map(|o| disk.submit_read_many(&[o])).collect();
        for (o, h) in handles.into_iter().enumerate() {
            assert_eq!(h.wait(), vec![Some(vec![o as u8; 8])], "offset {o}");
        }
        let stats = disk.stats().unwrap();
        let get = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert!(get("serve.mux").unwrap() >= 65, "{stats:?}");
        assert_eq!(disk.net_stats().unwrap().failed_requests, 0);
    }

    #[test]
    fn read_many_on_dead_server_is_all_absent() {
        let mut server = server();
        let disk = RemoteDisk::new(server.addr(), fast());
        disk.write(0, vec![1]);
        server.kill();
        assert_eq!(disk.read_many(&[0, 1, 2]), vec![None, None, None]);
        // A transient outage must not permanently disable coalescing —
        // or multiplexing.
        assert!(disk.range_enabled());
        assert!(!disk.mux_enabled(), "outage leaves mux undetermined");
    }

    #[test]
    fn read_many_checked_maps_corrupt_to_absent_and_counts() {
        use ecfrm_integrity::{append_footer, HashKey};
        let backend = Arc::new(MemDisk::new());
        let server =
            ShardServer::spawn(Arc::clone(&backend) as Arc<dyn DiskBackend>, "127.0.0.1:0")
                .unwrap();
        let key = HashKey::DEFAULT.derive(0x454C_454D, 7);
        let disk = RemoteDisk::new(server.addr(), fast().with_integrity(key.k0, key.k1));
        for off in 0..4u64 {
            let mut cell = vec![off as u8; 8];
            append_footer(&key, off, &mut cell);
            disk.write(off, cell);
        }
        // Flip a payload byte behind the server's back: bit rot.
        let mut rotted = backend.read(2).unwrap();
        rotted[3] ^= 0x80;
        backend.write(2, rotted);

        let got = disk.read_many(&[0, 1, 2, 3]);
        assert!(got[0].is_some() && got[1].is_some() && got[3].is_some());
        assert_eq!(got[2], None, "corrupt cell reads as absent");
        assert_eq!(disk.remote_verify_fails(), 1);
        assert!(disk.checked_enabled(), "corruption must not demote the op");
        let stats = disk.stats().unwrap();
        let get = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(get("serve.checked"), Some(1));
        assert_eq!(get("serve.checked_corrupt"), Some(1));
        assert_eq!(get("serve.batch"), Some(0), "no fallback was needed");
    }

    #[test]
    fn old_server_demotes_checked_to_unchecked_path() {
        // A hand-rolled shard that predates `RangeChecked`: it drops the
        // connection on the unknown opcode (exactly what an old
        // `read_request` does with an unparseable frame) but serves
        // `BatchGet`/`GetRange` fine. It answers a `Mux` probe with a
        // plain error, so mux negotiation latches off first.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let backend = Arc::new(MemDisk::new());
        for off in 0..4u64 {
            backend.write(off, vec![off as u8; 4]);
        }
        let serve_backend = Arc::clone(&backend);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { return };
                let disk = Arc::clone(&serve_backend);
                std::thread::spawn(move || loop {
                    let req = match crate::protocol::read_request(&mut stream) {
                        Ok(r) => r,
                        Err(_) => return,
                    };
                    let resp = match req {
                        Request::RangeChecked { .. } => return, // "unknown opcode"
                        Request::BatchGet { offsets } => Response::Batch(disk.read_many(&offsets)),
                        Request::GetRange { offset, count } => {
                            let offsets: Vec<u64> =
                                (0..u64::from(count)).map(|i| offset + i).collect();
                            Response::Range(disk.read_many(&offsets))
                        }
                        Request::GetElement { offset } => Response::Element(disk.read(offset)),
                        _ => Response::Error("unsupported".into()),
                    };
                    if crate::protocol::write_response(&mut stream, &resp).is_err() {
                        return;
                    }
                });
            }
        });

        let disk = RemoteDisk::new(addr, fast().with_integrity(1, 2));
        assert!(disk.checked_enabled());
        let want: Vec<Option<Vec<u8>>> = (0..4u64).map(|o| Some(vec![o as u8; 4])).collect();
        assert_eq!(disk.read_many(&[0, 1, 2, 3]), want);
        assert!(
            !disk.checked_enabled(),
            "an answering but checked-less shard demotes the op permanently"
        );
        assert!(disk.range_enabled(), "range negotiation is independent");
        assert!(!disk.mux_enabled(), "plain probe answer demotes mux");
        // Subsequent batches skip the checked attempt entirely.
        assert_eq!(disk.read_many(&[0, 1, 2, 3]), want);
    }

    #[test]
    fn combine_roundtrip_over_wire_matches_local_oracle() {
        use ecfrm_integrity::{append_footer, verify_footer, HashKey};
        let server = server();
        let disk = RemoteDisk::new(server.addr(), fast());
        let key = HashKey::DEFAULT.derive(0x434F_4D42, 1);
        for off in 0..3u64 {
            let mut cell = vec![off as u8 + 1; 16];
            append_footer(&key, off, &mut cell);
            disk.write(off, cell);
        }
        let spec = CombineSpec {
            offset: 0,
            count: 3,
            outputs: 1,
            coeffs: vec![3, 5, 7],
            key: (key.k0, key.k1),
            peers: Vec::new(),
        };
        let CombineOutcome::Combined(reply) = disk.combine(&spec) else {
            panic!("live new server must combine");
        };
        assert!(disk.supports_combine());
        assert_eq!(reply.local_status, vec![0, 0, 0]);
        let region = verify_footer(&key, 0, &reply.regions[0]).expect("region sealed");
        let mut want = vec![0u8; 16];
        for (c, off) in [(3u8, 0u64), (5, 1), (7, 2)] {
            ecfrm_gf::region::mul_add_region(c, &[off as u8 + 1; 16], &mut want);
        }
        assert_eq!(region, &want[..]);
    }

    #[test]
    fn old_server_latches_combine_off_after_one_probe() {
        // A pre-combine shard: drops the connection on the unknown
        // opcode but answers `BatchGet` — the probe that tells the
        // client "alive but combine-less". The latch must be permanent
        // and must not disturb the other negotiations.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let combine_frames = Arc::new(AtomicU64::new(0));
        let backend = Arc::new(MemDisk::new());
        for off in 0..3u64 {
            backend.write(off, vec![off as u8; 4]);
        }
        let serve_backend = Arc::clone(&backend);
        let serve_frames = Arc::clone(&combine_frames);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { return };
                let disk = Arc::clone(&serve_backend);
                let frames = Arc::clone(&serve_frames);
                std::thread::spawn(move || loop {
                    let req = match crate::protocol::read_request(&mut stream) {
                        Ok(r) => r,
                        Err(_) => return,
                    };
                    let resp = match req {
                        Request::CombineRange { .. } => {
                            frames.fetch_add(1, Ordering::Relaxed);
                            return; // "unknown opcode"
                        }
                        Request::BatchGet { offsets } => Response::Batch(disk.read_many(&offsets)),
                        Request::GetElement { offset } => Response::Element(disk.read(offset)),
                        _ => Response::Error("unsupported".into()),
                    };
                    if crate::protocol::write_response(&mut stream, &resp).is_err() {
                        return;
                    }
                });
            }
        });

        let disk = RemoteDisk::new(addr, fast());
        assert!(disk.supports_combine(), "optimistic until proven otherwise");
        let spec = CombineSpec {
            offset: 0,
            count: 3,
            outputs: 1,
            coeffs: vec![1, 1, 1],
            key: (0, 0),
            peers: Vec::new(),
        };
        assert!(matches!(disk.combine(&spec), CombineOutcome::Unsupported));
        assert!(
            !disk.supports_combine(),
            "an answering but combine-less shard latches the op off"
        );
        let after_first = combine_frames.load(Ordering::Relaxed);
        assert!(after_first >= 1);
        // The latch is permanent: no further combine frames on the wire.
        assert!(matches!(disk.combine(&spec), CombineOutcome::Unsupported));
        assert_eq!(combine_frames.load(Ordering::Relaxed), after_first);
    }

    #[test]
    fn old_server_dropping_mux_frames_latches_mux_off() {
        // A pre-mux shard as it actually behaves: an unknown opcode is
        // an unparseable frame, so the connection is dropped. The
        // legacy path answers fine — the client must latch mux off
        // after one probe and never ask again.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let probes = Arc::new(AtomicU64::new(0));
        let backend = Arc::new(MemDisk::new());
        backend.write(0, vec![9; 4]);
        let serve_backend = Arc::clone(&backend);
        let serve_probes = Arc::clone(&probes);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { return };
                let disk = Arc::clone(&serve_backend);
                let probes = Arc::clone(&serve_probes);
                std::thread::spawn(move || loop {
                    let req = match crate::protocol::read_request(&mut stream) {
                        Ok(r) => r,
                        Err(_) => return,
                    };
                    let resp = match req {
                        Request::Mux { .. } => {
                            probes.fetch_add(1, Ordering::Relaxed);
                            return; // old server: drop on unknown opcode
                        }
                        Request::Health => Response::Health {
                            elements: disk.len() as u64,
                        },
                        Request::GetElement { offset } => Response::Element(disk.read(offset)),
                        Request::BatchGet { offsets } => Response::Batch(disk.read_many(&offsets)),
                        Request::GetRange { offset, count } => {
                            let offsets: Vec<u64> =
                                (0..u64::from(count)).map(|i| offset + i).collect();
                            Response::Range(disk.read_many(&offsets))
                        }
                        _ => Response::Error("unsupported".into()),
                    };
                    if crate::protocol::write_response(&mut stream, &resp).is_err() {
                        return;
                    }
                });
            }
        });

        let disk = RemoteDisk::new(addr, fast());
        assert_eq!(disk.read(0), Some(vec![9; 4]));
        assert!(!disk.mux_enabled());
        assert!(!disk.submits_async());
        assert_eq!(disk.read(0), Some(vec![9; 4]));
        assert_eq!(
            probes.load(Ordering::Relaxed),
            1,
            "exactly one probe, then never again"
        );
        assert!(
            disk.net_stats().unwrap().conns_discarded >= 1,
            "the dropped probe connection is accounted"
        );
    }

    #[test]
    fn legacy_client_against_new_server_stays_plain() {
        // Old-client wire compatibility: a client configured like a
        // pre-mux build (no multiplex) must work against a new server
        // without ever emitting the new opcode.
        let server = server();
        let cfg = RemoteDiskConfig::builder()
            .low_latency()
            .multiplex(false)
            .build();
        let disk = RemoteDisk::new(server.addr(), cfg);
        for o in 0..4u64 {
            disk.write(o, vec![o as u8; 4]);
        }
        let want: Vec<Option<Vec<u8>>> = (0..4u64).map(|o| Some(vec![o as u8; 4])).collect();
        assert_eq!(disk.read_many(&[0, 1, 2, 3]), want);
        assert!(!disk.submits_async());
        let stats = disk.stats().unwrap();
        let get = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(get("serve.mux"), Some(0), "no mux frames on the wire");
        assert_eq!(get("serve.range"), Some(1));
    }

    #[test]
    fn contiguous_run_detection() {
        assert_eq!(contiguous_run(&[]), None);
        assert_eq!(contiguous_run(&[5]), Some(1));
        assert_eq!(contiguous_run(&[5, 6, 7]), Some(3));
        assert_eq!(contiguous_run(&[5, 7]), None);
        assert_eq!(contiguous_run(&[6, 5]), None);
        assert_eq!(contiguous_run(&[5, 5]), None);
    }

    #[test]
    fn fault_injection_via_backend_trait() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), fast());
        disk.write(0, vec![9]);
        disk.fail();
        assert_eq!(disk.read(0), None);
        disk.heal();
        assert_eq!(disk.read(0), Some(vec![9]));
        disk.wipe();
        assert_eq!(disk.read(0), None);
        assert_eq!(disk.len(), 0);
    }

    #[test]
    fn two_clients_share_one_shard() {
        let server = server();
        let a = RemoteDisk::new(server.addr(), fast());
        let b = RemoteDisk::new(server.addr(), fast());
        a.write(0, vec![5; 8]);
        assert_eq!(b.read(0), Some(vec![5; 8]));
        b.fail();
        assert_eq!(a.read(0), None, "failure is server-side state");
        b.heal();
    }

    #[test]
    fn dead_server_reads_as_absent_with_counters() {
        let mut server = server();
        let disk = RemoteDisk::new(server.addr(), fast());
        disk.write(0, vec![1]);
        assert_eq!(disk.read(0), Some(vec![1]));
        assert!(disk.mux_enabled());
        server.kill();
        let t0 = std::time::Instant::now();
        assert_eq!(disk.read(0), None, "dead shard reads as absent");
        // Bounded failure detection: the low-latency profile allows
        // ~(1+1) × 200ms plus backoff; it must not hang for seconds.
        assert!(t0.elapsed() < Duration::from_secs(2));
        let stats = disk.net_stats().unwrap();
        assert!(stats.failed_requests >= 1, "{stats:?}");
        assert!(stats.retries >= 1, "{stats:?}");
        assert!(stats.conns_discarded >= 1, "{stats:?}");
    }

    #[test]
    fn in_flight_mux_submissions_complete_when_server_dies() {
        let mut server = server();
        let disk = RemoteDisk::new(server.addr(), fast());
        disk.write(0, vec![7; 4]);
        assert_eq!(disk.read(0), Some(vec![7; 4]));
        assert!(disk.submits_async());
        // Make the server a straggler so submissions are still in
        // flight when it dies mid-request.
        disk.inject(Fault::DelayMs(150)).unwrap();
        let handles: Vec<IoHandle> = (0..8u64).map(|_| disk.submit_read_many(&[0])).collect();
        server.kill();
        // Every handle must complete, not hang: the demux thread fails
        // outstanding requests when the connection dies. A request the
        // server answered in the instant before the kill legitimately
        // resolves to its real bytes; everything else is absent —
        // never torn, never wrong.
        let mut absent = 0;
        for h in handles {
            match h.wait().as_slice() {
                [None] => absent += 1,
                [Some(bytes)] => assert_eq!(bytes, &vec![7u8; 4]),
                other => panic!("batch kept its shape: {other:?}"),
            }
        }
        // With an extra 150 ms of service delay per request, the kill
        // always beats most of the 8 outstanding requests.
        assert!(absent >= 1, "kill left no request unanswered");
        assert!(disk.net_stats().unwrap().conns_discarded >= 1);
    }

    #[test]
    fn unreachable_address_fails_fast_and_counts() {
        // A port from the ephemeral range with no listener.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let disk = RemoteDisk::new(addr, fast());
        assert_eq!(disk.read(0), None);
        assert!(disk.net_stats().unwrap().failed_requests >= 1);
    }

    #[test]
    fn retry_recovers_after_restart_on_same_port() {
        let mut server = server();
        let addr = server.addr();
        let disk = RemoteDisk::new(addr, fast());
        disk.write(0, vec![3]);
        server.kill();
        assert_eq!(disk.read(0), None);
        // Rebind the same port (data is gone — fresh MemDisk — but the
        // transport must reconnect transparently).
        let server2 = match ShardServer::spawn(Arc::new(MemDisk::new()), &addr.to_string()) {
            Ok(s) => s,
            Err(_) => return, // port taken by another process: skip
        };
        assert_eq!(server2.addr(), addr);
        disk.write(1, vec![4]);
        assert_eq!(disk.read(1), Some(vec![4]));
        assert!(disk.net_stats().unwrap().reconnects >= 1);
        assert!(disk.mux_enabled(), "mux comes back with the server");
    }

    #[test]
    fn hedged_read_beats_straggler() {
        let server = server();
        let cfg = RemoteDiskConfig::builder()
            .low_latency()
            .request_timeout(Duration::from_secs(2))
            .hedge_after(Some(Duration::from_millis(30)))
            .multiplex(false) // hedging is a legacy-path strategy
            .build();
        let disk = RemoteDisk::new(server.addr(), cfg);
        disk.write(0, vec![7; 16]);

        // Make the server a straggler: every read sleeps 150 ms. The
        // hedge fires at 30 ms and (also delayed) still answers; the
        // counters must show hedges were launched.
        disk.inject(Fault::DelayMs(150)).unwrap();
        let got = disk.read(0);
        disk.inject(Fault::DelayMs(0)).unwrap();
        assert_eq!(got, Some(vec![7; 16]));
        let stats = disk.net_stats().unwrap();
        assert!(stats.hedges >= 1, "{stats:?}");
    }

    #[test]
    fn fast_reads_do_not_hedge() {
        let server = server();
        let cfg = RemoteDiskConfig::builder()
            .low_latency()
            .hedge_after(Some(Duration::from_millis(150)))
            .multiplex(false)
            .build();
        let disk = RemoteDisk::new(server.addr(), cfg);
        disk.write(0, vec![1]);
        for _ in 0..20 {
            assert_eq!(disk.read(0), Some(vec![1]));
        }
        assert_eq!(disk.net_stats().unwrap().hedges, 0);
    }

    #[test]
    fn request_latency_histogram_counts_data_requests() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), fast());
        disk.write(0, vec![1; 8]);
        for _ in 0..5 {
            assert_eq!(disk.read(0), Some(vec![1; 8]));
        }
        disk.read_batch(&[0, 1]);
        let lat = disk.request_latency();
        assert_eq!(lat.count, 7, "1 write + 5 reads + 1 batch");
        assert!(lat.p99() >= lat.p50());
    }

    #[test]
    fn stats_rpc_reports_server_side_counters() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), fast());
        disk.write(0, vec![2; 4]);
        for _ in 0..3 {
            disk.read(0);
        }
        let stats = disk.stats().unwrap();
        let get = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(get("serve.get"), Some(3));
        assert_eq!(get("serve.put"), Some(1));
        // 1 put + the Mux(Health) negotiation probe + 3 gets.
        assert_eq!(get("serve_us.count"), Some(5));
        assert_eq!(get("serve.mux"), Some(4), "probe + 3 mux'd reads");
        // The same registry is visible locally on the server handle.
        let local = server.recorder().snapshot();
        assert_eq!(local.counters.get("serve.get"), Some(&3));
    }

    #[test]
    fn backoff_grows_and_respects_cap() {
        let server = server();
        let cfg = RemoteDiskConfig::builder()
            .low_latency()
            .backoff(Duration::from_millis(8), Duration::from_millis(20))
            .build();
        let disk = RemoteDisk::new(server.addr(), cfg);
        // attempt 1: 8ms × jitter ∈ [4, 12); attempt 4+: capped 20 × jitter < 30.
        for attempt in 1..=8 {
            let d = disk.backoff(attempt);
            assert!(d >= Duration::from_millis(4), "attempt {attempt}: {d:?}");
            assert!(d < Duration::from_millis(30), "attempt {attempt}: {d:?}");
        }
    }
}

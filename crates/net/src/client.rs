//! [`RemoteDisk`]: a [`DiskBackend`] that speaks the wire protocol.
//!
//! Drop-in client for a [`ShardServer`](crate::server::ShardServer):
//! `ThreadedArray` and `ObjectStore` run unmodified over it. Failure
//! handling is layered the way a production client would be:
//!
//! * **per-request timeouts** — a stuck server costs a bounded wait;
//! * **bounded retries** with exponential backoff and jitter — transient
//!   hiccups are absorbed;
//! * **optional hedged reads** — after `hedge_after`, a duplicate
//!   request races on a second connection and the first answer wins;
//! * **absent-on-failure** — a request that exhausts every retry
//!   returns `None`, which the store treats as a suspect disk and
//!   replans the read degraded. The network failure domain degrades
//!   into the erasure-code failure domain instead of erroring.
//!
//! Every event increments the shared [`NetCounters`], surfaced through
//! [`DiskBackend::net_stats`] into the store's `ReadStats`.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use ecfrm_obs::{Histogram, HistogramSnapshot};
use ecfrm_sim::{DiskBackend, NetCounters, NetStats};
use ecfrm_util::{Mutex, Rng};

use crate::protocol::{
    read_response, write_request, CheckedElement, Fault, NetError, Request, Response,
};

/// Client-side resilience knobs.
#[derive(Debug, Clone)]
pub struct RemoteDiskConfig {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-request response deadline.
    pub request_timeout: Duration,
    /// Re-sends after the first attempt (0 = one attempt only).
    pub max_retries: u32,
    /// First backoff step; doubles each retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Launch a duplicate read on a second connection if the primary
    /// has not answered within this window. `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Idle connections kept for reuse.
    pub pool_size: usize,
    /// Emit coalesced `GetRange` requests when a batch forms one
    /// contiguous ascending run. Disabled, every batch goes out as
    /// `BatchGet`. Even when enabled, the client auto-falls-back (and
    /// stops asking) if the server predates the opcode.
    pub use_range: bool,
    /// The store's integrity key `(k0, k1)`. When set (and `use_range`
    /// allows coalescing), contiguous runs go out as `RangeChecked`:
    /// the server verifies each cell's checksum footer at the source
    /// and corrupt cells come back as a one-byte verdict instead of a
    /// payload. `None` keeps all verification client-side. As with
    /// `GetRange`, an old server that rejects the opcode demotes the
    /// client to the unchecked path permanently.
    pub integrity_key: Option<(u64, u64)>,
}

impl Default for RemoteDiskConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(1),
            max_retries: 2,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            hedge_after: None,
            pool_size: 2,
            use_range: true,
            integrity_key: None,
        }
    }
}

impl RemoteDiskConfig {
    /// Enable server-side footer verification with the given key: the
    /// store's `(k0, k1)` integrity key words, shipped on every
    /// `RangeChecked` request.
    #[must_use]
    pub fn with_integrity(mut self, k0: u64, k1: u64) -> Self {
        self.integrity_key = Some((k0, k1));
        self
    }

    /// Tight timeouts for tests: failures are detected in tens of
    /// milliseconds instead of seconds.
    pub fn fast() -> Self {
        Self {
            connect_timeout: Duration::from_millis(200),
            request_timeout: Duration::from_millis(200),
            max_retries: 1,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(10),
            hedge_after: None,
            pool_size: 2,
            use_range: true,
            integrity_key: None,
        }
    }

    /// Low-priority profile for background repair traffic: no hedging
    /// (hedges exist to cut foreground tail latency; repair has no
    /// tail-latency SLO and duplicate reads would double its load on
    /// the survivors), relaxed timeouts with patient backoff (a busy
    /// shard serving foreground reads is the expected case, not a
    /// failure), a single pooled connection per shard, and coalesced
    /// `GetRange` on (repair source batches are contiguous runs more
    /// often than foreground ones).
    pub fn repair() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(5),
            max_retries: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
            hedge_after: None,
            pool_size: 1,
            use_range: true,
            integrity_key: None,
        }
    }
}

/// A remote shard, presented as a local [`DiskBackend`].
pub struct RemoteDisk {
    addr: SocketAddr,
    cfg: RemoteDiskConfig,
    pool: Mutex<Vec<TcpStream>>,
    counters: Arc<NetCounters>,
    /// End-to-end latency of data-path requests (read / write / batch),
    /// including retries and hedges, in microseconds.
    request_us: Histogram,
    ever_connected: AtomicBool,
    /// Cleared the first time a `GetRange` fails but a `BatchGet` of the
    /// same offsets succeeds — the shard is alive but predates the
    /// opcode, so stop asking (forward compatibility with old servers).
    range_supported: AtomicBool,
    /// Same demotion latch for `RangeChecked`: cleared the first time
    /// the checked opcode fails but a `BatchGet` of the same offsets
    /// succeeds.
    checked_supported: AtomicBool,
    /// Cells the server reported as failing footer verification
    /// (`CheckedElement::Corrupt`). Surfaced via
    /// [`RemoteDisk::remote_verify_fails`].
    remote_verify_fails: AtomicU64,
    rng: Mutex<Rng>,
}

impl std::fmt::Debug for RemoteDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RemoteDisk({})", self.addr)
    }
}

impl RemoteDisk {
    /// A client for the shard at `addr`. No connection is made until the
    /// first request.
    pub fn new(addr: SocketAddr, cfg: RemoteDiskConfig) -> Self {
        Self {
            addr,
            cfg,
            pool: Mutex::new(Vec::new()),
            counters: Arc::new(NetCounters::new()),
            request_us: Histogram::new(),
            ever_connected: AtomicBool::new(false),
            range_supported: AtomicBool::new(true),
            checked_supported: AtomicBool::new(true),
            remote_verify_fails: AtomicU64::new(0),
            rng: Mutex::new(Rng::seed_from_u64(addr.port() as u64 ^ 0xD15C)),
        }
    }

    /// The shard address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live handle to the transport counters.
    pub fn counters(&self) -> Arc<NetCounters> {
        Arc::clone(&self.counters)
    }

    /// Snapshot of the end-to-end data-path request latency histogram
    /// (microseconds, including retries and hedges).
    pub fn request_latency(&self) -> HistogramSnapshot {
        self.request_us.snapshot()
    }

    /// Fetch the server's metrics registry as flat `(name, value)`
    /// pairs — per-op serve counters plus the `serve_us` histogram
    /// summary.
    ///
    /// # Errors
    /// Transport failure after the full retry budget.
    pub fn stats(&self) -> Result<Vec<(String, u64)>, NetError> {
        match self.rpc(&Request::Stats)? {
            Response::Stats(pairs) => Ok(pairs),
            other => Err(NetError::Protocol(format!(
                "unexpected response to stats request: {other:?}"
            ))),
        }
    }

    /// Run `f` and record its wall-clock in the request histogram.
    fn timed<T>(&self, f: impl FnOnce() -> T) -> T {
        let t0 = std::time::Instant::now();
        let out = f();
        self.request_us.record_duration(t0.elapsed());
        out
    }

    /// Pop a pooled connection or dial a fresh one.
    fn connection(&self) -> Result<TcpStream, NetError> {
        if let Some(s) = self.pool.lock().pop() {
            return Ok(s);
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
        stream.set_read_timeout(Some(self.cfg.request_timeout))?;
        stream.set_write_timeout(Some(self.cfg.request_timeout))?;
        stream.set_nodelay(true).ok();
        if self.ever_connected.swap(true, Ordering::AcqRel) {
            self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        Ok(stream)
    }

    fn recycle(&self, stream: TcpStream) {
        let mut pool = self.pool.lock();
        if pool.len() < self.cfg.pool_size {
            pool.push(stream);
        }
    }

    /// One attempt: dial/reuse, send, await the response.
    fn rpc_once(&self, req: &Request) -> Result<Response, NetError> {
        let mut stream = self.connection()?;
        match write_request(&mut stream, req).and_then(|()| read_response(&mut stream)) {
            Ok(resp) => {
                self.recycle(stream);
                match resp {
                    Response::Error(msg) => Err(NetError::Remote(msg)),
                    ok => Ok(ok),
                }
            }
            Err(e) => {
                // The connection's framing state is unknown — drop it.
                if matches!(e, NetError::Timeout) {
                    self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    /// Backoff before retry `attempt` (1-based): `base × 2^(attempt-1)`
    /// capped, scaled by uniform jitter in [0.5, 1.5).
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .cfg
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.cfg.backoff_cap);
        let jitter = self.rng.lock().random_range(0.5f64..1.5);
        exp.mul_f64(jitter)
    }

    /// Full resilience stack: attempts with backoff until one succeeds
    /// or the retry budget is spent.
    fn rpc(&self, req: &Request) -> Result<Response, NetError> {
        let attempts = 1 + self.cfg.max_retries;
        let mut last = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.backoff(attempt - 1));
            }
            match self.rpc_once(req) {
                Ok(resp) => return Ok(resp),
                Err(e) => last = Some(e),
            }
        }
        self.counters
            .failed_requests
            .fetch_add(1, Ordering::Relaxed);
        Err(last.expect("at least one attempt ran"))
    }

    /// A read with hedging: if the primary attempt has not answered
    /// within `hedge_after`, race a duplicate on a second connection and
    /// take whichever answers first. Loser responses are discarded (the
    /// connections are not recycled into each other's streams, so no
    /// frame mixing is possible).
    fn hedged_read(&self, req: &Request, hedge_after: Duration) -> Result<Response, NetError> {
        let (tx, rx) = mpsc::channel::<(bool, Result<Response, NetError>)>();
        std::thread::scope(|scope| {
            let primary_tx = tx.clone();
            scope.spawn(move || {
                let _ = primary_tx.send((false, self.rpc_once(req)));
            });
            let first = match rx.recv_timeout(hedge_after) {
                Ok(result) => Some(result),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(NetError::Protocol("hedge channel broke".into()))
                }
            };
            let (from_hedge, result) = match first {
                Some(r) => r,
                None => {
                    // Primary is slow: launch the hedge and take the
                    // first answer from either.
                    self.counters.hedges.fetch_add(1, Ordering::Relaxed);
                    let hedge_tx = tx.clone();
                    scope.spawn(move || {
                        let _ = hedge_tx.send((true, self.rpc_once(req)));
                    });
                    // Prefer the first *successful* answer; fall back to
                    // the second result if the first errored.
                    match rx.recv() {
                        Ok((who, Ok(resp))) => (who, Ok(resp)),
                        Ok((_, Err(_))) => match rx.recv() {
                            Ok(r) => r,
                            Err(_) => return Err(NetError::Protocol("hedge channel broke".into())),
                        },
                        Err(_) => return Err(NetError::Protocol("hedge channel broke".into())),
                    }
                }
            };
            if from_hedge && result.is_ok() {
                self.counters.hedge_wins.fetch_add(1, Ordering::Relaxed);
            }
            result
        })
    }

    /// Read with the full stack: hedging (if enabled) inside the retry
    /// loop.
    fn read_rpc(&self, req: &Request) -> Result<Response, NetError> {
        match self.cfg.hedge_after {
            None => self.rpc(req),
            Some(hedge_after) => {
                let attempts = 1 + self.cfg.max_retries;
                let mut last = None;
                for attempt in 1..=attempts {
                    if attempt > 1 {
                        self.counters.retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(self.backoff(attempt - 1));
                    }
                    match self.hedged_read(req, hedge_after) {
                        Ok(resp) => return Ok(resp),
                        Err(e) => last = Some(e),
                    }
                }
                self.counters
                    .failed_requests
                    .fetch_add(1, Ordering::Relaxed);
                Err(last.expect("at least one attempt ran"))
            }
        }
    }

    /// Send a fault-injection command to the shard, with retries.
    ///
    /// # Errors
    /// Transport failure after the full retry budget.
    pub fn inject(&self, fault: Fault) -> Result<(), NetError> {
        match self.rpc(&Request::InjectFault(fault))? {
            Response::FaultInjected => Ok(()),
            other => Err(NetError::Protocol(format!(
                "unexpected response to fault injection: {other:?}"
            ))),
        }
    }

    /// Liveness probe: stored element count, or an error if the shard is
    /// unreachable.
    ///
    /// # Errors
    /// Transport failure after the full retry budget.
    pub fn health(&self) -> Result<u64, NetError> {
        match self.rpc(&Request::Health)? {
            Response::Health { elements } => Ok(elements),
            other => Err(NetError::Protocol(format!(
                "unexpected response to health probe: {other:?}"
            ))),
        }
    }

    /// Fetch several elements in one round trip. `None` entries are
    /// absent/failed elements; a transport failure after all retries
    /// yields all-`None`.
    pub fn read_batch(&self, offsets: &[u64]) -> Vec<Option<Vec<u8>>> {
        match self.timed(|| {
            self.read_rpc(&Request::BatchGet {
                offsets: offsets.to_vec(),
            })
        }) {
            Ok(Response::Batch(items)) if items.len() == offsets.len() => items,
            _ => vec![None; offsets.len()],
        }
    }

    /// True while this client will still emit `GetRange` (config allows
    /// it and the server has not demonstrated it predates the opcode).
    pub fn range_enabled(&self) -> bool {
        self.cfg.use_range && self.range_supported.load(Ordering::Acquire)
    }

    /// True while this client will still emit `RangeChecked` (an
    /// integrity key is configured, coalescing is allowed, and the
    /// server has not demonstrated it predates the opcode).
    pub fn checked_enabled(&self) -> bool {
        self.cfg.integrity_key.is_some()
            && self.cfg.use_range
            && self.checked_supported.load(Ordering::Acquire)
    }

    /// Cells the server has reported as corrupt (footer verification
    /// failed at the source) over this client's lifetime.
    pub fn remote_verify_fails(&self) -> u64 {
        self.remote_verify_fails.load(Ordering::Relaxed)
    }

    /// One `RangeChecked` attempt for a contiguous run, or `None` if
    /// the checked path is unavailable/failed (caller falls back).
    /// Corrupt cells map to absent entries — the store's verify-on-read
    /// treats both as erasures — after bumping the corrupt counter.
    fn read_checked(&self, offset: u64, count: u32) -> Option<Vec<Option<Vec<u8>>>> {
        let (k0, k1) = self.cfg.integrity_key?;
        match self.timed(|| {
            self.read_rpc(&Request::RangeChecked {
                offset,
                count,
                k0,
                k1,
            })
        }) {
            Ok(Response::Checked(items)) if items.len() == count as usize => Some(
                items
                    .into_iter()
                    .map(|item| match item {
                        CheckedElement::Valid(bytes) => Some(bytes),
                        CheckedElement::Missing => None,
                        CheckedElement::Corrupt => {
                            self.remote_verify_fails.fetch_add(1, Ordering::Relaxed);
                            None
                        }
                    })
                    .collect(),
            ),
            _ => None,
        }
    }

    /// The unchecked multi-element path: coalesced `GetRange` for a
    /// contiguous run (with its own old-server fallback), `BatchGet`
    /// otherwise.
    fn read_many_unchecked(&self, offsets: &[u64]) -> Vec<Option<Vec<u8>>> {
        if self.range_enabled() {
            if let Some(count) = contiguous_run(offsets) {
                match self.timed(|| {
                    self.read_rpc(&Request::GetRange {
                        offset: offsets[0],
                        count,
                    })
                }) {
                    Ok(Response::Range(items)) if items.len() == offsets.len() => return items,
                    _ => {
                        // Either a transient fault or an old server (which
                        // drops the connection on the unknown opcode). Retry
                        // the batch as BatchGet; if *that* works, the shard
                        // is alive but range-less — remember and stop asking.
                        match self.timed(|| {
                            self.read_rpc(&Request::BatchGet {
                                offsets: offsets.to_vec(),
                            })
                        }) {
                            Ok(Response::Batch(items)) if items.len() == offsets.len() => {
                                self.range_supported.store(false, Ordering::Release);
                                return items;
                            }
                            _ => return vec![None; offsets.len()],
                        }
                    }
                }
            }
        }
        self.read_batch(offsets)
    }
}

/// `Some(count)` when `offsets` is one contiguous ascending run
/// (`o, o+1, …, o+len-1`) — the shape `GetRange` carries.
fn contiguous_run(offsets: &[u64]) -> Option<u32> {
    if offsets.is_empty() || offsets.len() > u32::MAX as usize {
        return None;
    }
    let contiguous = offsets.windows(2).all(|w| w[1] == w[0].wrapping_add(1));
    contiguous.then_some(offsets.len() as u32)
}

impl DiskBackend for RemoteDisk {
    /// Fetch one element over the wire. Transport failure after the
    /// full retry/hedge budget reads as *absent* — the caller's
    /// degraded-read machinery takes it from there.
    fn read(&self, offset: u64) -> Option<Vec<u8>> {
        match self.timed(|| self.read_rpc(&Request::GetElement { offset })) {
            Ok(Response::Element(v)) => v,
            _ => None,
        }
    }

    /// Fetch a whole batch in **one** RPC, with the retry/hedge stack
    /// applied once per batch instead of once per element. A batch that
    /// forms one contiguous ascending run goes out as the coalesced
    /// `RangeChecked` (when an integrity key is configured) or
    /// `GetRange`; anything else (or a server that predates the
    /// opcodes) as `BatchGet`.
    fn read_many(&self, offsets: &[u64]) -> Vec<Option<Vec<u8>>> {
        if offsets.is_empty() {
            return Vec::new();
        }
        if offsets.len() == 1 {
            return vec![self.read(offsets[0])];
        }
        if self.checked_enabled() {
            if let Some(count) = contiguous_run(offsets) {
                if let Some(items) = self.read_checked(offsets[0], count) {
                    return items;
                }
                // Transient fault or an old server. Retry unchecked
                // (GetRange negotiates its own fallback below); if the
                // shard answers, it is alive but checked-less —
                // remember and stop asking.
                let items = self.read_many_unchecked(offsets);
                if items.iter().any(Option::is_some) {
                    self.checked_supported.store(false, Ordering::Release);
                }
                return items;
            }
        }
        self.read_many_unchecked(offsets)
    }

    fn write(&self, offset: u64, bytes: Vec<u8>) {
        // DiskBackend writes are infallible by contract; a write that
        // exhausts its retries is recorded in the counters (and the
        // element will read back as absent).
        let _ = self.timed(|| self.rpc(&Request::PutElement { offset, bytes }));
    }

    /// Remote failure injection: flips the *server's* backend, so every
    /// client of that shard sees the failure.
    fn fail(&self) {
        let _ = self.inject(Fault::Fail);
    }

    fn heal(&self) {
        let _ = self.inject(Fault::Heal);
    }

    fn wipe(&self) {
        let _ = self.inject(Fault::Wipe);
    }

    fn len(&self) -> usize {
        self.health().map_or(0, |n| n as usize)
    }

    fn net_stats(&self) -> Option<NetStats> {
        Some(self.counters.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ShardServer;
    use ecfrm_sim::MemDisk;

    fn server() -> ShardServer {
        ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap()
    }

    #[test]
    fn read_write_roundtrip_over_wire() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), RemoteDiskConfig::fast());
        assert!(disk.is_empty());
        disk.write(7, vec![1, 2, 3]);
        assert_eq!(disk.read(7), Some(vec![1, 2, 3]));
        assert_eq!(disk.read(8), None);
        assert_eq!(disk.len(), 1);
        let stats = disk.net_stats().unwrap();
        assert_eq!(stats.failed_requests, 0);
        assert_eq!(stats.timeouts, 0);
    }

    #[test]
    fn batch_get_roundtrip() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), RemoteDiskConfig::fast());
        for o in 0..3u64 {
            disk.write(o, vec![o as u8; 4]);
        }
        let got = disk.read_batch(&[1, 5, 2]);
        assert_eq!(got, vec![Some(vec![1u8; 4]), None, Some(vec![2u8; 4])]);
    }

    #[test]
    fn read_many_coalesces_contiguous_run_into_one_range_rpc() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), RemoteDiskConfig::fast());
        for o in 0..6u64 {
            disk.write(o, vec![o as u8; 4]);
        }
        let got = disk.read_many(&[2, 3, 4, 5]);
        assert_eq!(
            got,
            (2..6u64)
                .map(|o| Some(vec![o as u8; 4]))
                .collect::<Vec<_>>()
        );
        let stats = disk.stats().unwrap();
        let get = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(get("serve.range"), Some(1), "one coalesced RPC");
        assert_eq!(get("serve.batch"), Some(0), "no per-batch fallback used");
    }

    #[test]
    fn read_many_non_contiguous_uses_batch_get() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), RemoteDiskConfig::fast());
        for o in 0..8u64 {
            disk.write(o, vec![o as u8]);
        }
        let got = disk.read_many(&[7, 0, 3, 100]);
        assert_eq!(got, vec![Some(vec![7]), Some(vec![0]), Some(vec![3]), None]);
        let stats = disk.stats().unwrap();
        let get = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(get("serve.batch"), Some(1));
        assert_eq!(get("serve.range"), Some(0));
        assert!(disk.range_enabled(), "fallback must not disable range");
    }

    #[test]
    fn read_many_matches_per_element_loop() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), RemoteDiskConfig::fast());
        for o in [0u64, 1, 2, 3, 7] {
            disk.write(o, vec![o as u8; 2]);
        }
        for offsets in [
            vec![0u64, 1, 2, 3],
            vec![3, 7, 1],
            vec![5, 6],
            vec![],
            vec![7],
        ] {
            let want: Vec<Option<Vec<u8>>> = offsets.iter().map(|&o| disk.read(o)).collect();
            assert_eq!(disk.read_many(&offsets), want, "offsets {offsets:?}");
        }
    }

    #[test]
    fn read_many_on_dead_server_is_all_absent() {
        let mut server = server();
        let disk = RemoteDisk::new(server.addr(), RemoteDiskConfig::fast());
        disk.write(0, vec![1]);
        server.kill();
        assert_eq!(disk.read_many(&[0, 1, 2]), vec![None, None, None]);
        // A transient outage must not permanently disable coalescing.
        assert!(disk.range_enabled());
    }

    #[test]
    fn read_many_checked_maps_corrupt_to_absent_and_counts() {
        use ecfrm_integrity::{append_footer, HashKey};
        let backend = Arc::new(MemDisk::new());
        let server =
            ShardServer::spawn(Arc::clone(&backend) as Arc<dyn DiskBackend>, "127.0.0.1:0")
                .unwrap();
        let key = HashKey::DEFAULT.derive(0x454C_454D, 7);
        let disk = RemoteDisk::new(
            server.addr(),
            RemoteDiskConfig::fast().with_integrity(key.k0, key.k1),
        );
        for off in 0..4u64 {
            let mut cell = vec![off as u8; 8];
            append_footer(&key, off, &mut cell);
            disk.write(off, cell);
        }
        // Flip a payload byte behind the server's back: bit rot.
        let mut rotted = backend.read(2).unwrap();
        rotted[3] ^= 0x80;
        backend.write(2, rotted);

        let got = disk.read_many(&[0, 1, 2, 3]);
        assert!(got[0].is_some() && got[1].is_some() && got[3].is_some());
        assert_eq!(got[2], None, "corrupt cell reads as absent");
        assert_eq!(disk.remote_verify_fails(), 1);
        assert!(disk.checked_enabled(), "corruption must not demote the op");
        let stats = disk.stats().unwrap();
        let get = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(get("serve.checked"), Some(1));
        assert_eq!(get("serve.checked_corrupt"), Some(1));
        assert_eq!(get("serve.batch"), Some(0), "no fallback was needed");
    }

    #[test]
    fn old_server_demotes_checked_to_unchecked_path() {
        // A hand-rolled shard that predates `RangeChecked`: it drops the
        // connection on the unknown opcode (exactly what an old
        // `read_request` does with an unparseable frame) but serves
        // `BatchGet`/`GetRange` fine.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let backend = Arc::new(MemDisk::new());
        for off in 0..4u64 {
            backend.write(off, vec![off as u8; 4]);
        }
        let serve_backend = Arc::clone(&backend);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { return };
                let disk = Arc::clone(&serve_backend);
                std::thread::spawn(move || loop {
                    let req = match crate::protocol::read_request(&mut stream) {
                        Ok(r) => r,
                        Err(_) => return,
                    };
                    let resp = match req {
                        Request::RangeChecked { .. } => return, // "unknown opcode"
                        Request::BatchGet { offsets } => Response::Batch(disk.read_many(&offsets)),
                        Request::GetRange { offset, count } => {
                            let offsets: Vec<u64> =
                                (0..u64::from(count)).map(|i| offset + i).collect();
                            Response::Range(disk.read_many(&offsets))
                        }
                        Request::GetElement { offset } => Response::Element(disk.read(offset)),
                        _ => Response::Error("unsupported".into()),
                    };
                    if crate::protocol::write_response(&mut stream, &resp).is_err() {
                        return;
                    }
                });
            }
        });

        let disk = RemoteDisk::new(addr, RemoteDiskConfig::fast().with_integrity(1, 2));
        assert!(disk.checked_enabled());
        let want: Vec<Option<Vec<u8>>> = (0..4u64).map(|o| Some(vec![o as u8; 4])).collect();
        assert_eq!(disk.read_many(&[0, 1, 2, 3]), want);
        assert!(
            !disk.checked_enabled(),
            "an answering but checked-less shard demotes the op permanently"
        );
        assert!(disk.range_enabled(), "range negotiation is independent");
        // Subsequent batches skip the checked attempt entirely.
        assert_eq!(disk.read_many(&[0, 1, 2, 3]), want);
    }

    #[test]
    fn contiguous_run_detection() {
        assert_eq!(contiguous_run(&[]), None);
        assert_eq!(contiguous_run(&[5]), Some(1));
        assert_eq!(contiguous_run(&[5, 6, 7]), Some(3));
        assert_eq!(contiguous_run(&[5, 7]), None);
        assert_eq!(contiguous_run(&[6, 5]), None);
        assert_eq!(contiguous_run(&[5, 5]), None);
    }

    #[test]
    fn fault_injection_via_backend_trait() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), RemoteDiskConfig::fast());
        disk.write(0, vec![9]);
        disk.fail();
        assert_eq!(disk.read(0), None);
        disk.heal();
        assert_eq!(disk.read(0), Some(vec![9]));
        disk.wipe();
        assert_eq!(disk.read(0), None);
        assert_eq!(disk.len(), 0);
    }

    #[test]
    fn two_clients_share_one_shard() {
        let server = server();
        let a = RemoteDisk::new(server.addr(), RemoteDiskConfig::fast());
        let b = RemoteDisk::new(server.addr(), RemoteDiskConfig::fast());
        a.write(0, vec![5; 8]);
        assert_eq!(b.read(0), Some(vec![5; 8]));
        b.fail();
        assert_eq!(a.read(0), None, "failure is server-side state");
        b.heal();
    }

    #[test]
    fn dead_server_reads_as_absent_with_counters() {
        let mut server = server();
        let disk = RemoteDisk::new(server.addr(), RemoteDiskConfig::fast());
        disk.write(0, vec![1]);
        assert_eq!(disk.read(0), Some(vec![1]));
        server.kill();
        let t0 = std::time::Instant::now();
        assert_eq!(disk.read(0), None, "dead shard reads as absent");
        // Bounded failure detection: fast() config allows ~(1+1) × 200ms
        // plus backoff; it must not hang for seconds.
        assert!(t0.elapsed() < Duration::from_secs(2));
        let stats = disk.net_stats().unwrap();
        assert!(stats.failed_requests >= 1, "{stats:?}");
        assert!(stats.retries >= 1, "{stats:?}");
    }

    #[test]
    fn unreachable_address_fails_fast_and_counts() {
        // A port from the ephemeral range with no listener.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let disk = RemoteDisk::new(addr, RemoteDiskConfig::fast());
        assert_eq!(disk.read(0), None);
        assert!(disk.net_stats().unwrap().failed_requests >= 1);
    }

    #[test]
    fn retry_recovers_after_restart_on_same_port() {
        let mut server = server();
        let addr = server.addr();
        let disk = RemoteDisk::new(addr, RemoteDiskConfig::fast());
        disk.write(0, vec![3]);
        server.kill();
        assert_eq!(disk.read(0), None);
        // Rebind the same port (data is gone — fresh MemDisk — but the
        // transport must reconnect transparently).
        let server2 = match ShardServer::spawn(Arc::new(MemDisk::new()), &addr.to_string()) {
            Ok(s) => s,
            Err(_) => return, // port taken by another process: skip
        };
        assert_eq!(server2.addr(), addr);
        disk.write(1, vec![4]);
        assert_eq!(disk.read(1), Some(vec![4]));
        assert!(disk.net_stats().unwrap().reconnects >= 1);
    }

    #[test]
    fn hedged_read_beats_straggler() {
        let server = server();
        let mut cfg = RemoteDiskConfig::fast();
        cfg.request_timeout = Duration::from_secs(2);
        cfg.hedge_after = Some(Duration::from_millis(30));
        let disk = RemoteDisk::new(server.addr(), cfg);
        disk.write(0, vec![7; 16]);

        // Make the server a straggler: every read sleeps 150 ms. The
        // hedge fires at 30 ms and (also delayed) still answers; the
        // counters must show hedges were launched.
        disk.inject(Fault::DelayMs(150)).unwrap();
        let got = disk.read(0);
        disk.inject(Fault::DelayMs(0)).unwrap();
        assert_eq!(got, Some(vec![7; 16]));
        let stats = disk.net_stats().unwrap();
        assert!(stats.hedges >= 1, "{stats:?}");
    }

    #[test]
    fn fast_reads_do_not_hedge() {
        let server = server();
        let mut cfg = RemoteDiskConfig::fast();
        cfg.hedge_after = Some(Duration::from_millis(150));
        let disk = RemoteDisk::new(server.addr(), cfg);
        disk.write(0, vec![1]);
        for _ in 0..20 {
            assert_eq!(disk.read(0), Some(vec![1]));
        }
        assert_eq!(disk.net_stats().unwrap().hedges, 0);
    }

    #[test]
    fn request_latency_histogram_counts_data_requests() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), RemoteDiskConfig::fast());
        disk.write(0, vec![1; 8]);
        for _ in 0..5 {
            assert_eq!(disk.read(0), Some(vec![1; 8]));
        }
        disk.read_batch(&[0, 1]);
        let lat = disk.request_latency();
        assert_eq!(lat.count, 7, "1 write + 5 reads + 1 batch");
        assert!(lat.p99() >= lat.p50());
    }

    #[test]
    fn stats_rpc_reports_server_side_counters() {
        let server = server();
        let disk = RemoteDisk::new(server.addr(), RemoteDiskConfig::fast());
        disk.write(0, vec![2; 4]);
        for _ in 0..3 {
            disk.read(0);
        }
        let stats = disk.stats().unwrap();
        let get = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(get("serve.get"), Some(3));
        assert_eq!(get("serve.put"), Some(1));
        assert_eq!(get("serve_us.count"), Some(4));
        // The same registry is visible locally on the server handle.
        let local = server.recorder().snapshot();
        assert_eq!(local.counters.get("serve.get"), Some(&3));
    }

    #[test]
    fn backoff_grows_and_respects_cap() {
        let server = server();
        let mut cfg = RemoteDiskConfig::fast();
        cfg.backoff_base = Duration::from_millis(8);
        cfg.backoff_cap = Duration::from_millis(20);
        let disk = RemoteDisk::new(server.addr(), cfg);
        // attempt 1: 8ms × jitter ∈ [4, 12); attempt 4+: capped 20 × jitter < 30.
        for attempt in 1..=8 {
            let d = disk.backoff(attempt);
            assert!(d >= Duration::from_millis(4), "attempt {attempt}: {d:?}");
            assert!(d < Duration::from_millis(30), "attempt {attempt}: {d:?}");
        }
    }
}

//! [`FrontClient`]: the object front door over the wire, with
//! old-server fallback.
//!
//! A front node serves the object namespace ops (opcodes 11–15) through
//! a [`FrontDoor`] attached with
//! [`ShardServer::spawn_with_front`](crate::ShardServer::spawn_with_front).
//! `FrontClient` is the matching client: typed errors instead of
//! strings, and the additive-opcode negotiation rule the rest of the
//! protocol follows (PR-4 style, same as `GetRange` / `CombineRange`):
//!
//! * An **old server** rejects the opcode at decode and drops the
//!   connection. From the caller's side that is just a dead connection
//!   — the same face an outage or a flaky link wears — so the client
//!   never latches on the failure alone. It probes a fresh connection
//!   with a read-only *object op* ([`Request::ObjStat`]): a server
//!   that answers the probe frame (even with a typed `not_found`
//!   error) provably decodes object ops, so the failure was transient.
//!   Only the unknown-opcode rejection signature — the probe
//!   connection killed on the object opcode while [`Request::Health`]
//!   still answers — latches object ops **off permanently**, after
//!   which every call is served through the local fallback
//!   [`FrontDoor`] (when configured) over the raw shard data path.
//! * A **new but front-less server** answers with the typed
//!   [`NO_FRONT`] error — an *answering* server telling us it cannot
//!   serve object ops — which demotes the client the same way, without
//!   needing a probe.
//! * A **transient failure** — a request timeout (slow server, queued
//!   admission delay, large transfer), an outage (both probes fail),
//!   or a mid-op connection drop against a live new server — never
//!   latches: the call errors with [`StoreError::Net`] and the next
//!   call retries the wire.
//!
//! Retries follow an at-most-once discipline: a pooled connection that
//! fails mid-round-trip is retried on a fresh dial only when the
//! request provably did not execute — either the request frame never
//! fully left this host, or the op is idempotent ([`Request::ObjGet`] /
//! [`Request::ObjStat`]). A lost *response* to [`Request::ObjWrite`]
//! surfaces as an error instead: the write may have landed server-side,
//! and a blind retry would append the extent twice.
//!
//! Store errors cross the wire as prefixed strings ([`wire_error`]) and
//! are re-typed client-side ([`unwire_error`]), so `match`ing on
//! [`StoreError::NotFound`] vs [`StoreError::Throttled`] works
//! identically against a local or remote front door.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ecfrm_obs::{Counter, Recorder};
use ecfrm_store::{FrontDoor, ObjectStat, StoreError};
use ecfrm_util::Mutex;

use crate::client::RemoteDiskConfig;
use crate::protocol::{read_response, write_request, NetError, Request, Response};

/// The typed error a front-less (but object-op-aware) server answers
/// every object op with. Receiving it demotes a [`FrontClient`] to its
/// local fallback, exactly like an old server failing the probe.
pub const NO_FRONT: &str = "no_front: this node serves raw shard ops only";

/// Encode a [`StoreError`] as the prefixed wire string carried in
/// [`Response::Error`], so [`unwire_error`] can re-type it client-side.
pub fn wire_error(e: &StoreError) -> String {
    match e {
        StoreError::NotFound(n) => format!("not_found: {n}"),
        StoreError::AlreadyExists(n) => format!("already_exists: {n}"),
        StoreError::RangeOutOfBounds { name, len } => format!("range: {len} {name}"),
        StoreError::Throttled(m) => format!("throttled: {m}"),
        other => format!("store: {other}"),
    }
}

/// Re-type a wire error string produced by [`wire_error`]. Unknown
/// shapes become [`StoreError::Net`] so nothing is silently dropped.
pub fn unwire_error(msg: &str) -> StoreError {
    if let Some(n) = msg.strip_prefix("not_found: ") {
        return StoreError::NotFound(n.to_string());
    }
    if let Some(n) = msg.strip_prefix("already_exists: ") {
        return StoreError::AlreadyExists(n.to_string());
    }
    if let Some(rest) = msg.strip_prefix("range: ") {
        if let Some((len, name)) = rest.split_once(' ') {
            if let Ok(len) = len.parse() {
                return StoreError::RangeOutOfBounds {
                    name: name.to_string(),
                    len,
                };
            }
        }
    }
    if let Some(m) = msg.strip_prefix("throttled: ") {
        return StoreError::Throttled(m.to_string());
    }
    StoreError::Net(msg.to_string())
}

/// Object front door client: speaks opcodes 11–15 to a front node, and
/// transparently demotes to a local [`FrontDoor`] when the server
/// predates them (see the [module docs](self) for the negotiation
/// rule).
pub struct FrontClient {
    addr: SocketAddr,
    cfg: RemoteDiskConfig,
    /// Pooled idle connections (object ops are strictly one-at-a-time
    /// per connection; concurrency comes from pooling).
    pool: Mutex<Vec<TcpStream>>,
    /// Cleared permanently the first time an *answering* server proves
    /// it cannot serve object ops.
    supported: AtomicBool,
    /// Where latched-off calls go. Without one, a demoted client
    /// errors instead.
    fallback: Option<Arc<FrontDoor>>,
    recorder: Recorder,
    remote_ops: Counter,
    fallback_ops: Counter,
    demotions: Counter,
}

impl std::fmt::Debug for FrontClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FrontClient({}, supported={})",
            self.addr,
            self.supported.load(Ordering::Acquire)
        )
    }
}

impl FrontClient {
    /// Client for the front node at `addr` (timeouts and pool size come
    /// from `cfg`), with no local fallback: a server that cannot serve
    /// object ops makes every call error.
    pub fn new(addr: SocketAddr, cfg: RemoteDiskConfig) -> Self {
        let recorder = Recorder::new();
        let remote_ops = recorder.counter("front.remote");
        let fallback_ops = recorder.counter("front.fallback");
        let demotions = recorder.counter("front.demoted");
        Self {
            addr,
            cfg,
            pool: Mutex::new(Vec::new()),
            supported: AtomicBool::new(true),
            fallback: None,
            recorder,
            remote_ops,
            fallback_ops,
            demotions,
        }
    }

    /// Attach the local [`FrontDoor`] a demoted client serves through —
    /// typically built over [`RemoteDisk`](crate::RemoteDisk) backends
    /// pointing at the same cluster's shard nodes, so a mixed-version
    /// deployment stays byte-correct: new shard nodes do the data path,
    /// the old front node is simply bypassed.
    #[must_use]
    pub fn with_fallback(mut self, front: Arc<FrontDoor>) -> Self {
        self.fallback = Some(front);
        self
    }

    /// True until the server proves it cannot serve object ops; once
    /// false, every call goes to the fallback (the latch is permanent —
    /// servers do not upgrade mid-flight).
    pub fn remote_enabled(&self) -> bool {
        self.supported.load(Ordering::Acquire)
    }

    /// This client's metrics registry: `front.remote` / `front.fallback`
    /// ops served on each path, and the `front.demoted` latch count
    /// (0 or 1).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Create an empty object. See [`FrontDoor::create`].
    ///
    /// # Errors
    /// [`StoreError::AlreadyExists`] / [`StoreError::Net`].
    pub fn create(&self, tenant: &str, object: &str) -> Result<(), StoreError> {
        let req = Request::ObjCreate {
            tenant: tenant.to_string(),
            object: object.to_string(),
        };
        self.dispatch(&req, ack, |f| f.create(tenant, object))
    }

    /// Append `bytes` to an object as one extent. See
    /// [`FrontDoor::write`].
    ///
    /// # Errors
    /// [`StoreError::NotFound`], [`StoreError::Throttled`], or any
    /// store/transport error.
    pub fn write(&self, tenant: &str, object: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let req = Request::ObjWrite {
            tenant: tenant.to_string(),
            object: object.to_string(),
            bytes: bytes.to_vec(),
        };
        self.dispatch(&req, ack, |f| f.write(tenant, object, bytes))
    }

    /// Create + first write in one call. See [`FrontDoor::put`].
    ///
    /// # Errors
    /// [`StoreError::AlreadyExists`], [`StoreError::Throttled`], or any
    /// store/transport error.
    pub fn put(&self, tenant: &str, object: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.create(tenant, object)?;
        self.write(tenant, object, bytes)
    }

    /// Read a whole object. See [`FrontDoor::read`].
    ///
    /// # Errors
    /// [`StoreError::NotFound`], [`StoreError::Throttled`], or any
    /// store/transport error.
    pub fn read(&self, tenant: &str, object: &str) -> Result<Vec<u8>, StoreError> {
        // `u64::MAX` is the wire encoding of "to the end".
        self.read_range(tenant, object, 0, u64::MAX)
    }

    /// Read `len` bytes from byte `start` (`len == u64::MAX` reads to
    /// the end). See [`FrontDoor::read_range`].
    ///
    /// # Errors
    /// [`StoreError::NotFound`], [`StoreError::RangeOutOfBounds`],
    /// [`StoreError::Throttled`], or any store/transport error.
    pub fn read_range(
        &self,
        tenant: &str,
        object: &str,
        start: u64,
        len: u64,
    ) -> Result<Vec<u8>, StoreError> {
        let req = Request::ObjGet {
            tenant: tenant.to_string(),
            object: object.to_string(),
            start,
            len,
        };
        self.dispatch(
            &req,
            |resp| match resp {
                Response::ObjData(bytes) => Ok(bytes),
                other => Err(unexpected(&other)),
            },
            |f| {
                let len = if len == u64::MAX {
                    f.stat(tenant, object)?.len.saturating_sub(start)
                } else {
                    len
                };
                f.read_range(tenant, object, start, len)
            },
        )
    }

    /// Object metadata. See [`FrontDoor::stat`].
    ///
    /// # Errors
    /// [`StoreError::NotFound`] / [`StoreError::Net`].
    pub fn stat(&self, tenant: &str, object: &str) -> Result<ObjectStat, StoreError> {
        let req = Request::ObjStat {
            tenant: tenant.to_string(),
            object: object.to_string(),
        };
        self.dispatch(
            &req,
            |resp| match resp {
                Response::ObjStat {
                    len,
                    version,
                    extents,
                } => Ok(ObjectStat {
                    len,
                    version,
                    extents: extents as usize,
                }),
                other => Err(unexpected(&other)),
            },
            |f| f.stat(tenant, object),
        )
    }

    /// Drop an object's namespace record. See [`FrontDoor::delete`].
    ///
    /// # Errors
    /// [`StoreError::NotFound`] / [`StoreError::Net`].
    pub fn delete(&self, tenant: &str, object: &str) -> Result<(), StoreError> {
        let req = Request::ObjDelete {
            tenant: tenant.to_string(),
            object: object.to_string(),
        };
        self.dispatch(&req, ack, |f| f.delete(tenant, object))
    }

    /// One op, either path: remote while the latch holds, local
    /// fallback once demoted.
    fn dispatch<T>(
        &self,
        req: &Request,
        decode: impl FnOnce(Response) -> Result<T, StoreError>,
        local: impl Fn(&FrontDoor) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        if !self.remote_enabled() {
            return self.local(&local);
        }
        match self.request(req) {
            Ok(Response::Error(msg)) if msg == NO_FRONT => {
                // An answering, object-op-aware server with no front
                // door: demote, same as an old server.
                self.demote();
                self.local(&local)
            }
            Ok(Response::Error(msg)) => Err(unwire_error(&msg)),
            Ok(resp) => {
                self.remote_ops.inc();
                decode(resp)
            }
            Err(NetError::Timeout) => {
                // A slow answer is not evidence of an old server: a
                // repair tenant's admission delay, a bulk deadline
                // above our request timeout, or a large ObjGet all
                // blow the deadline on a perfectly object-op-capable
                // node. Never latch on a timeout.
                Err(StoreError::Net(
                    "front op timed out (server slow or queueing, not demoting)".to_string(),
                ))
            }
            Err(e) => {
                // The connection died mid-op. An old server kills the
                // connection on the unknown opcode, which looks exactly
                // like an outage or a flaky link — only the failure
                // signature of unknown-opcode rejection (a fresh
                // connection killed on an object op while Health still
                // answers) demotes.
                match self.probe() {
                    Probe::NoObjectOps => {
                        self.demote();
                        self.local(&local)
                    }
                    Probe::Inconclusive => Err(StoreError::Net(format!("front op failed: {e}"))),
                }
            }
        }
    }

    fn local<T>(
        &self,
        local: &impl Fn(&FrontDoor) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        match &self.fallback {
            Some(f) => {
                self.fallback_ops.inc();
                local(f)
            }
            None => Err(StoreError::Net(
                "server does not serve object ops and no local fallback is configured".to_string(),
            )),
        }
    }

    fn demote(&self) {
        if self.supported.swap(false, Ordering::AcqRel) {
            self.demotions.inc();
        }
    }

    /// One request/response round trip on a pooled connection. A stale
    /// pooled connection gets one retry on a fresh dial only when the
    /// request provably did not execute server-side (the frame never
    /// fully left, or the op is idempotent); a fresh-dial failure is
    /// final.
    fn request(&self, req: &Request) -> Result<Response, NetError> {
        // Pop in its own statement: an `if let` scrutinee's lock guard
        // would live for the whole block and deadlock against `park`.
        let pooled = self.pool.lock().pop();
        if let Some(mut stream) = pooled {
            match round_trip(&mut stream, req) {
                Ok(resp) => {
                    self.park(stream);
                    return Ok(resp);
                }
                // The request frame never fully left this host: the
                // server cannot have decoded it, so any op may retry
                // on a fresh dial.
                Err(TripError::Send(_)) => {}
                // The request may have executed with only the response
                // lost. Retrying a non-idempotent op here could run it
                // twice (an ObjWrite would append its extent again) —
                // surface the failure instead.
                Err(TripError::Recv(e)) if !idempotent(req) => return Err(e),
                Err(TripError::Recv(_)) => {}
            }
        }
        let mut stream = self.dial()?;
        let resp = round_trip(&mut stream, req).map_err(TripError::into_inner)?;
        self.park(stream);
        Ok(resp)
    }

    /// Can this server serve object ops? Dials fresh and asks a
    /// read-only *object op* ([`Request::ObjStat`]): any answered frame
    /// — even a typed `not_found` error — proves the server decodes the
    /// opcode family, while an old server kills the connection at
    /// decode. [`Request::Health`] (which every protocol generation
    /// speaks) then separates "old server" from "nobody home".
    fn probe(&self) -> Probe {
        let req = Request::ObjStat {
            tenant: String::new(),
            object: String::new(),
        };
        let Ok(mut stream) = self.dial() else {
            return Probe::Inconclusive; // outage, not evidence of age
        };
        match round_trip(&mut stream, &req) {
            // An answering front-less server cannot serve object ops,
            // same verdict as the typed-error path in `dispatch`.
            Ok(Response::Error(msg)) if msg == NO_FRONT => Probe::NoObjectOps,
            Ok(_) => Probe::Inconclusive,
            // A slow probe is a slow server, not an old one.
            Err(e) if matches!(e.inner(), NetError::Timeout) => Probe::Inconclusive,
            // The object opcode killed a fresh connection — the old-
            // server signature, if anyone is home at all.
            Err(_) => {
                if self.probe_alive() {
                    Probe::NoObjectOps
                } else {
                    Probe::Inconclusive
                }
            }
        }
    }

    /// Is anyone home? Dials fresh and asks [`Request::Health`] —
    /// deliberately *not* an object op, so every protocol generation
    /// can answer it.
    fn probe_alive(&self) -> bool {
        let Ok(mut stream) = self.dial() else {
            return false;
        };
        round_trip(&mut stream, &Request::Health).is_ok()
    }

    fn dial(&self) -> Result<TcpStream, NetError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
        stream.set_read_timeout(Some(self.cfg.request_timeout))?;
        stream.set_write_timeout(Some(self.cfg.request_timeout))?;
        stream.set_nodelay(true).ok();
        Ok(stream)
    }

    fn park(&self, stream: TcpStream) {
        let mut pool = self.pool.lock();
        if pool.len() < self.cfg.pool_size {
            pool.push(stream);
        }
    }
}

/// The verdict of a [`FrontClient::probe`]: demote only on proof.
enum Probe {
    /// The server provably cannot serve object ops: it killed a fresh
    /// connection on an object opcode while still answering `Health`
    /// (old server), or it answered the typed [`NO_FRONT`] error.
    NoObjectOps,
    /// Everything else — the probe answered (transient failure), timed
    /// out (slow, not old), or nothing answered (outage). Never latch.
    Inconclusive,
}

/// Which phase of a round trip failed. After a `Send`-phase failure
/// the request frame never fully left this host, so the server cannot
/// have decoded (let alone executed) it; after a `Recv`-phase failure
/// it may have executed with only the response lost.
enum TripError {
    /// `write_request` failed: the request was not fully transmitted.
    Send(NetError),
    /// `read_response` failed: the request may have executed.
    Recv(NetError),
}

impl TripError {
    fn inner(&self) -> &NetError {
        match self {
            TripError::Send(e) | TripError::Recv(e) => e,
        }
    }

    fn into_inner(self) -> NetError {
        match self {
            TripError::Send(e) | TripError::Recv(e) => e,
        }
    }
}

/// May this request be retried after a `Recv`-phase failure, when the
/// server may already have executed it? Only reads with no server-side
/// effects qualify — a replayed `ObjWrite` would append its extent a
/// second time, and a replayed `ObjCreate`/`ObjDelete` would flip a
/// success into a spurious `already_exists`/`not_found`.
fn idempotent(req: &Request) -> bool {
    matches!(
        req,
        Request::ObjGet { .. } | Request::ObjStat { .. } | Request::Health
    )
}

fn round_trip(stream: &mut TcpStream, req: &Request) -> Result<Response, TripError> {
    write_request(stream, req).map_err(TripError::Send)?;
    read_response(stream).map_err(TripError::Recv)
}

/// Shared decode for the three ops whose success is a bare
/// [`Response::ObjAck`].
fn ack(resp: Response) -> Result<(), StoreError> {
    match resp {
        Response::ObjAck => Ok(()),
        other => Err(unexpected(&other)),
    }
}

fn unexpected(resp: &Response) -> StoreError {
    StoreError::Net(format!("unexpected response to object op: {resp:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_errors_round_trip_typed() {
        let cases = vec![
            StoreError::NotFound("t/a".into()),
            StoreError::AlreadyExists("t/a b c".into()),
            StoreError::RangeOutOfBounds {
                name: "t/obj with spaces".into(),
                len: 12345,
            },
            StoreError::Throttled("bulk over budget".into()),
        ];
        for e in cases {
            assert_eq!(unwire_error(&wire_error(&e)), e, "round-tripping {e}");
        }
        // Errors without a dedicated prefix degrade to Net, never panic.
        let e = wire_error(&StoreError::DataLoss("stripe 7".into()));
        assert!(matches!(unwire_error(&e), StoreError::Net(_)));
        assert!(matches!(unwire_error("garbage"), StoreError::Net(_)));
        assert!(matches!(unwire_error("range: xyz abc"), StoreError::Net(_)));
    }
}

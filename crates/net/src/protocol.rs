//! The wire protocol: a small, versioned, length-prefixed binary frame.
//!
//! Every frame is
//!
//! ```text
//! [ magic "EFRM" : 4 ][ version : 1 ][ opcode : 1 ][ payload len : u32 LE ][ payload ]
//! ```
//!
//! Integers inside payloads are little-endian. Eight operations exist:
//! `GetElement`, `PutElement`, `BatchGet`, `Health`, `InjectFault`
//! (the fault-injection side channel that lets a client drive a remote
//! shard's failure state exactly like a local disk's), `Stats`
//! (dump the server's metrics registry as flat name/value pairs),
//! `GetRange` (the coalesced batch form: one contiguous run of
//! elements, answered in a single bitmap-framed payload), and
//! `RangeChecked` (a `GetRange` that carries the store's integrity key
//! so the server verifies each element's checksum footer before
//! shipping it, answering with a per-element verdict). Both range ops
//! are additive: old servers reject the opcode and clients fall back.
//!
//! A ninth operation, `Mux`, wraps any other request together with a
//! client-chosen 64-bit request id; the matching [`Response::Mux`]
//! echoes the id, letting a client keep many requests in flight over
//! **one** connection and match completions as they land in any order.
//! Like the range ops it is additive in version 1: old servers reject
//! (and drop the connection on) the opcode, and clients latch back to
//! the pooled one-request-per-connection discipline.
//!
//! A tenth operation, `CombineRange`, moves repair decode arithmetic to
//! the data: the server multiplies a contiguous run of local elements
//! by a caller-supplied GF(2^8) coefficient matrix and ships back
//! pre-summed regions — optionally first fetching and XOR-merging other
//! helpers' partial sums ([`CombinePeer`]) so only the combined result
//! crosses the rebuilder's ingest link. Additive like the other new
//! ops, with the same probe-and-latch client fallback.

use std::io::{Read, Write};

/// Frame magic.
pub const MAGIC: [u8; 4] = *b"EFRM";
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Upper bound on a sane payload (guards allocation on corrupt frames).
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Transport / protocol failure.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Malformed or unexpected frame.
    Protocol(String),
    /// The request exceeded its deadline.
    Timeout,
    /// The server reported an error.
    Remote(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Timeout => write!(f, "request timed out"),
            NetError::Remote(m) => write!(f, "remote error: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            NetError::Timeout
        } else {
            NetError::Io(e)
        }
    }
}

/// A transport failure surfacing through the store reads as a network
/// error; callers holding a `Result<_, StoreError>` can `?` net calls.
impl From<NetError> for ecfrm_store::StoreError {
    fn from(e: NetError) -> Self {
        ecfrm_store::StoreError::Net(e.to_string())
    }
}

/// A store failure crossing back onto the wire (e.g. a server-side
/// handler) is reported to the peer as a remote error.
impl From<ecfrm_store::StoreError> for NetError {
    fn from(e: ecfrm_store::StoreError) -> Self {
        NetError::Remote(e.to_string())
    }
}

/// A failure-state change injected into a remote shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Reads return absent until healed.
    Fail,
    /// Clear the failure flag.
    Heal,
    /// Permanently erase contents.
    Wipe,
    /// Sleep this many milliseconds before serving each read (straggler
    /// simulation; 0 clears it).
    DelayMs(u64),
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Fetch one element.
    GetElement {
        /// Element offset on the shard.
        offset: u64,
    },
    /// Store one element.
    PutElement {
        /// Element offset on the shard.
        offset: u64,
        /// Element bytes.
        bytes: Vec<u8>,
    },
    /// Fetch several elements in one round trip.
    BatchGet {
        /// Element offsets, served in order.
        offsets: Vec<u64>,
    },
    /// Fetch a contiguous run of `count` elements starting at `offset`
    /// — the coalesced form of [`Request::BatchGet`] a client emits
    /// when a per-disk batch collapses into one sequential run (the
    /// common case under EC-FRM's sequential layout). Additive in
    /// protocol version 1: servers that predate it reject the opcode
    /// and clients fall back to `BatchGet`.
    GetRange {
        /// First element offset of the run.
        offset: u64,
        /// Number of consecutive elements.
        count: u32,
    },
    /// [`Request::GetRange`] with server-side integrity verification:
    /// the client ships its keyed-hash key and the server checks each
    /// stored cell's checksum footer against its offset before
    /// answering, classifying every element as valid, missing, or
    /// corrupt ([`CheckedElement`]). Corrupt cells are detected at the
    /// data, before crossing the network — the wire analogue of
    /// verify-on-read. Additive in protocol version 1: servers that
    /// predate it reject the opcode and clients fall back to
    /// `BatchGet` (verifying client-side as always).
    RangeChecked {
        /// First element offset of the run.
        offset: u64,
        /// Number of consecutive elements.
        count: u32,
        /// First word of the store's integrity key.
        k0: u64,
        /// Second word of the store's integrity key.
        k1: u64,
    },
    /// Multiply `count` contiguous local elements starting at `offset`
    /// by a row-major `outputs × count` GF(2^8) coefficient matrix and
    /// answer with one pre-summed region per output lane
    /// ([`Response::Combined`]) — the repair-traffic optimisation: a
    /// rebuild ships decode coefficients *to* the data and moves one
    /// combined region back instead of `k` raw elements. The server
    /// verifies each local element's checksum footer (under the shipped
    /// key) before it contributes, fetches and XOR-merges the partial
    /// sums of any `peers` (one level deep — forwarded requests carry
    /// no peers), and seals each returned region with a footer salted
    /// by `offset + lane`. Additive in protocol version 1: servers that
    /// predate it reject the opcode and clients fall back to fetching
    /// raw elements.
    CombineRange {
        /// First local element offset.
        offset: u64,
        /// Number of consecutive local elements.
        count: u32,
        /// Number of output lanes (pre-summed regions to return).
        outputs: u32,
        /// Row-major `outputs × count` coefficient matrix for the local
        /// elements.
        coeffs: Vec<u8>,
        /// First word of the store's integrity key.
        k0: u64,
        /// Second word of the store's integrity key.
        k1: u64,
        /// Other helpers whose partial sums this server fetches and
        /// merges before answering.
        peers: Vec<CombinePeer>,
    },
    /// Create an empty named object for a tenant on the server's
    /// object front door ([`ecfrm_store::FrontDoor`]). Part of the
    /// additive object-op family (opcodes 11–15, protocol version 1):
    /// servers that predate them reject the opcodes and clients fall
    /// back to a local front door over the shard data path
    /// (probe-and-latch like opcodes 7–10, but probing with a
    /// read-only `ObjStat` so timeouts and transient drops on a
    /// capable server never latch). Servers *without* a front door
    /// attached answer [`Response::Error`]`("no front door…")`
    /// instead.
    ObjCreate {
        /// Owning tenant.
        tenant: String,
        /// Object name, unique per tenant.
        object: String,
    },
    /// Append bytes to an existing object as one new extent.
    ObjWrite {
        /// Owning tenant.
        tenant: String,
        /// Object name.
        object: String,
        /// Bytes to append.
        bytes: Vec<u8>,
    },
    /// Read `len` bytes of an object starting at `start`
    /// (`len == u64::MAX` means "to the end").
    ObjGet {
        /// Owning tenant.
        tenant: String,
        /// Object name.
        object: String,
        /// First byte to read.
        start: u64,
        /// Bytes to read, or `u64::MAX` for the whole remainder.
        len: u64,
    },
    /// Object metadata probe.
    ObjStat {
        /// Owning tenant.
        tenant: String,
        /// Object name.
        object: String,
    },
    /// Drop an object's namespace record (metadata-only delete).
    ObjDelete {
        /// Owning tenant.
        tenant: String,
        /// Object name.
        object: String,
    },
    /// Liveness + occupancy probe.
    Health,
    /// Drive the shard's failure state.
    InjectFault(Fault),
    /// Dump the server's metrics registry.
    Stats,
    /// Any other request wrapped with a client-chosen id, for keeping
    /// many requests in flight over one connection. The server answers
    /// with [`Response::Mux`] carrying the same id; answers may arrive
    /// in any order. Nesting a `Mux` inside a `Mux` is a protocol
    /// error. Additive in protocol version 1: servers that predate it
    /// reject the opcode and clients fall back to pooled connections.
    Mux {
        /// Client-chosen request id, echoed by the response.
        id: u64,
        /// The wrapped request.
        inner: Box<Request>,
    },
}

/// One peer's share of a [`Request::CombineRange`], forwarded by the
/// aggregating server so partial sums merge beside the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinePeer {
    /// The peer shard's dialable address (`host:port`).
    pub addr: String,
    /// First element offset on the peer.
    pub offset: u64,
    /// Number of consecutive elements on the peer.
    pub count: u32,
    /// Row-major `outputs × count` coefficient matrix for the peer's
    /// elements (`outputs` comes from the enclosing request).
    pub coeffs: Vec<u8>,
}

/// One element of a [`Response::Checked`] — the server's per-element
/// integrity verdict for a [`Request::RangeChecked`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckedElement {
    /// Not stored (or the shard is failed).
    Missing,
    /// Stored and the checksum footer verified; carries the full cell
    /// (`payload || footer`) so the client can re-verify end-to-end.
    Valid(Vec<u8>),
    /// Stored but the checksum footer disagreed — the bytes are not
    /// shipped (they are known-bad; the client treats this as an
    /// erasure and saves the wire transfer).
    Corrupt,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// One element (`None` = absent or failed).
    Element(Option<Vec<u8>>),
    /// Write acknowledged.
    Put,
    /// Batched elements, in request order.
    Batch(Vec<Option<Vec<u8>>>),
    /// A contiguous run of elements answering [`Request::GetRange`]:
    /// one frame carrying a presence bitmap plus the present elements'
    /// bytes, so a fully-present run costs 4 + ⌈count/8⌉ bytes of
    /// per-element framing total instead of 5 bytes *per element*.
    Range(Vec<Option<Vec<u8>>>),
    /// A contiguous run answering [`Request::RangeChecked`]: one
    /// status byte per element (so corrupt cells cost 1 byte, not a
    /// wasted element transfer) followed by the valid elements' bytes
    /// in order.
    Checked(Vec<CheckedElement>),
    /// The answer to a [`Request::CombineRange`]: one pre-summed region
    /// per output lane (each `payload || footer`, the footer salted by
    /// `offset + lane` under the request's key), plus per-local-element
    /// and per-peer verdicts (0 = ok, 1 = missing/unreachable,
    /// 2 = corrupt, 3 = declined) so the rebuilder can exclude a bad
    /// helper and re-plan. `regions` is empty when nothing contributed.
    Combined {
        /// One region per output lane.
        regions: Vec<Vec<u8>>,
        /// Verdict per local element, in offset order.
        local_status: Vec<u8>,
        /// Verdict per forwarded peer, in request order. A non-ok peer
        /// contributed nothing to the sums.
        peer_status: Vec<u8>,
    },
    /// Object op acknowledged ([`Request::ObjCreate`] /
    /// [`Request::ObjWrite`] / [`Request::ObjDelete`]).
    ObjAck,
    /// The bytes answering a [`Request::ObjGet`].
    ObjData(Vec<u8>),
    /// The answer to a [`Request::ObjStat`].
    ObjStat {
        /// Object length in bytes.
        len: u64,
        /// Mutation version (create = 1, +1 per write).
        version: u64,
        /// Number of stream extents backing the object.
        extents: u32,
    },
    /// Health probe answer: stored element count.
    Health {
        /// Elements currently stored.
        elements: u64,
    },
    /// Fault injection acknowledged.
    FaultInjected,
    /// Flattened metrics: sorted `(name, value)` pairs.
    Stats(Vec<(String, u64)>),
    /// Server-side failure.
    Error(String),
    /// The answer to a [`Request::Mux`]: the wrapped response plus the
    /// request's id, so the client can match completions out of order.
    Mux {
        /// The id of the request this answers.
        id: u64,
        /// The wrapped response.
        inner: Box<Response>,
    },
}

const OP_GET: u8 = 1;
const OP_PUT: u8 = 2;
const OP_BATCH_GET: u8 = 3;
const OP_HEALTH: u8 = 4;
const OP_INJECT: u8 = 5;
const OP_STATS: u8 = 6;
const OP_GET_RANGE: u8 = 7;
const OP_RANGE_CHECKED: u8 = 8;
const OP_MUX: u8 = 9;
const OP_COMBINE_RANGE: u8 = 10;
const OP_OBJ_CREATE: u8 = 11;
const OP_OBJ_WRITE: u8 = 12;
const OP_OBJ_GET: u8 = 13;
const OP_OBJ_STAT: u8 = 14;
const OP_OBJ_DELETE: u8 = 15;

const RESP_ELEMENT: u8 = 129;
const RESP_PUT: u8 = 130;
const RESP_BATCH: u8 = 131;
const RESP_HEALTH: u8 = 132;
const RESP_FAULT: u8 = 133;
const RESP_STATS: u8 = 134;
const RESP_RANGE: u8 = 135;
const RESP_CHECKED: u8 = 136;
const RESP_MUX: u8 = 137;
const RESP_COMBINED: u8 = 138;
const RESP_OBJ_ACK: u8 = 139;
const RESP_OBJ_DATA: u8 = 140;
const RESP_OBJ_STAT: u8 = 141;
const RESP_ERROR: u8 = 255;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.pos + n > self.buf.len() {
            return Err(NetError::Protocol("payload truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), NetError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(NetError::Protocol("trailing bytes in payload".into()))
        }
    }

    /// Everything not yet consumed (for wrapped inner payloads).
    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

/// `[len:u32][utf-8 bytes]`.
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(c: &mut Cursor<'_>) -> Result<String, NetError> {
    let len = c.u32()? as usize;
    Ok(std::str::from_utf8(c.take(len)?)
        .map_err(|_| NetError::Protocol("string is not UTF-8".into()))?
        .to_string())
}

/// `Some(bytes)` ↔ `[1][len:u32][bytes]`, `None` ↔ `[0]`.
fn put_opt_bytes(out: &mut Vec<u8>, v: &Option<Vec<u8>>) {
    match v {
        Some(b) => {
            out.push(1);
            put_u32(out, b.len() as u32);
            out.extend_from_slice(b);
        }
        None => out.push(0),
    }
}

fn get_opt_bytes(c: &mut Cursor<'_>) -> Result<Option<Vec<u8>>, NetError> {
    match c.u8()? {
        0 => Ok(None),
        1 => {
            let len = c.u32()? as usize;
            Ok(Some(c.take(len)?.to_vec()))
        }
        t => Err(NetError::Protocol(format!("bad option tag {t}"))),
    }
}

impl Request {
    fn opcode(&self) -> u8 {
        match self {
            Request::GetElement { .. } => OP_GET,
            Request::PutElement { .. } => OP_PUT,
            Request::BatchGet { .. } => OP_BATCH_GET,
            Request::GetRange { .. } => OP_GET_RANGE,
            Request::RangeChecked { .. } => OP_RANGE_CHECKED,
            Request::CombineRange { .. } => OP_COMBINE_RANGE,
            Request::ObjCreate { .. } => OP_OBJ_CREATE,
            Request::ObjWrite { .. } => OP_OBJ_WRITE,
            Request::ObjGet { .. } => OP_OBJ_GET,
            Request::ObjStat { .. } => OP_OBJ_STAT,
            Request::ObjDelete { .. } => OP_OBJ_DELETE,
            Request::Health => OP_HEALTH,
            Request::InjectFault(_) => OP_INJECT,
            Request::Stats => OP_STATS,
            Request::Mux { .. } => OP_MUX,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::GetElement { offset } => put_u64(&mut out, *offset),
            Request::PutElement { offset, bytes } => {
                put_u64(&mut out, *offset);
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            Request::BatchGet { offsets } => {
                put_u32(&mut out, offsets.len() as u32);
                for &o in offsets {
                    put_u64(&mut out, o);
                }
            }
            Request::GetRange { offset, count } => {
                put_u64(&mut out, *offset);
                put_u32(&mut out, *count);
            }
            Request::RangeChecked {
                offset,
                count,
                k0,
                k1,
            } => {
                put_u64(&mut out, *offset);
                put_u32(&mut out, *count);
                put_u64(&mut out, *k0);
                put_u64(&mut out, *k1);
            }
            Request::CombineRange {
                offset,
                count,
                outputs,
                coeffs,
                k0,
                k1,
                peers,
            } => {
                // [offset:u64][count:u32][outputs:u32][coeffs len:u32]
                // [coeffs][k0:u64][k1:u64][n_peers:u32] then per peer
                // [addr len:u32][addr][offset:u64][count:u32]
                // [coeffs len:u32][coeffs].
                put_u64(&mut out, *offset);
                put_u32(&mut out, *count);
                put_u32(&mut out, *outputs);
                put_u32(&mut out, coeffs.len() as u32);
                out.extend_from_slice(coeffs);
                put_u64(&mut out, *k0);
                put_u64(&mut out, *k1);
                put_u32(&mut out, peers.len() as u32);
                for p in peers {
                    put_u32(&mut out, p.addr.len() as u32);
                    out.extend_from_slice(p.addr.as_bytes());
                    put_u64(&mut out, p.offset);
                    put_u32(&mut out, p.count);
                    put_u32(&mut out, p.coeffs.len() as u32);
                    out.extend_from_slice(&p.coeffs);
                }
            }
            Request::ObjCreate { tenant, object } | Request::ObjDelete { tenant, object } => {
                // [tenant len:u32][tenant][object len:u32][object].
                put_str(&mut out, tenant);
                put_str(&mut out, object);
            }
            Request::ObjStat { tenant, object } => {
                put_str(&mut out, tenant);
                put_str(&mut out, object);
            }
            Request::ObjWrite {
                tenant,
                object,
                bytes,
            } => {
                // [tenant][object][bytes len:u32][bytes].
                put_str(&mut out, tenant);
                put_str(&mut out, object);
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            Request::ObjGet {
                tenant,
                object,
                start,
                len,
            } => {
                // [tenant][object][start:u64][len:u64].
                put_str(&mut out, tenant);
                put_str(&mut out, object);
                put_u64(&mut out, *start);
                put_u64(&mut out, *len);
            }
            Request::Health | Request::Stats => {}
            Request::Mux { id, inner } => {
                // [id:u64][inner opcode:u8][inner payload].
                put_u64(&mut out, *id);
                out.push(inner.opcode());
                out.extend_from_slice(&inner.payload());
            }
            Request::InjectFault(fault) => match fault {
                Fault::Fail => out.push(0),
                Fault::Heal => out.push(1),
                Fault::Wipe => out.push(2),
                Fault::DelayMs(ms) => {
                    out.push(3);
                    put_u64(&mut out, *ms);
                }
            },
        }
        out
    }

    fn decode(opcode: u8, payload: &[u8]) -> Result<Self, NetError> {
        let mut c = Cursor::new(payload);
        let req = match opcode {
            OP_GET => Request::GetElement { offset: c.u64()? },
            OP_PUT => {
                let offset = c.u64()?;
                let len = c.u32()? as usize;
                let bytes = c.take(len)?.to_vec();
                Request::PutElement { offset, bytes }
            }
            OP_BATCH_GET => {
                let n = c.u32()? as usize;
                let mut offsets = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    offsets.push(c.u64()?);
                }
                Request::BatchGet { offsets }
            }
            OP_GET_RANGE => Request::GetRange {
                offset: c.u64()?,
                count: c.u32()?,
            },
            OP_RANGE_CHECKED => Request::RangeChecked {
                offset: c.u64()?,
                count: c.u32()?,
                k0: c.u64()?,
                k1: c.u64()?,
            },
            OP_COMBINE_RANGE => {
                let offset = c.u64()?;
                let count = c.u32()?;
                let outputs = c.u32()?;
                let clen = c.u32()? as usize;
                let coeffs = c.take(clen)?.to_vec();
                let k0 = c.u64()?;
                let k1 = c.u64()?;
                let n = c.u32()? as usize;
                let mut peers = Vec::with_capacity(n.min(1 << 10));
                for _ in 0..n {
                    let alen = c.u32()? as usize;
                    let addr = std::str::from_utf8(c.take(alen)?)
                        .map_err(|_| NetError::Protocol("peer address is not UTF-8".into()))?
                        .to_string();
                    let offset = c.u64()?;
                    let count = c.u32()?;
                    let clen = c.u32()? as usize;
                    let coeffs = c.take(clen)?.to_vec();
                    peers.push(CombinePeer {
                        addr,
                        offset,
                        count,
                        coeffs,
                    });
                }
                Request::CombineRange {
                    offset,
                    count,
                    outputs,
                    coeffs,
                    k0,
                    k1,
                    peers,
                }
            }
            OP_OBJ_CREATE => Request::ObjCreate {
                tenant: get_str(&mut c)?,
                object: get_str(&mut c)?,
            },
            OP_OBJ_WRITE => {
                let tenant = get_str(&mut c)?;
                let object = get_str(&mut c)?;
                let len = c.u32()? as usize;
                Request::ObjWrite {
                    tenant,
                    object,
                    bytes: c.take(len)?.to_vec(),
                }
            }
            OP_OBJ_GET => Request::ObjGet {
                tenant: get_str(&mut c)?,
                object: get_str(&mut c)?,
                start: c.u64()?,
                len: c.u64()?,
            },
            OP_OBJ_STAT => Request::ObjStat {
                tenant: get_str(&mut c)?,
                object: get_str(&mut c)?,
            },
            OP_OBJ_DELETE => Request::ObjDelete {
                tenant: get_str(&mut c)?,
                object: get_str(&mut c)?,
            },
            OP_HEALTH => Request::Health,
            OP_STATS => Request::Stats,
            OP_MUX => {
                let id = c.u64()?;
                let op = c.u8()?;
                if op == OP_MUX {
                    return Err(NetError::Protocol("nested mux request".into()));
                }
                let inner = Request::decode(op, c.rest())?;
                Request::Mux {
                    id,
                    inner: Box::new(inner),
                }
            }
            OP_INJECT => {
                let fault = match c.u8()? {
                    0 => Fault::Fail,
                    1 => Fault::Heal,
                    2 => Fault::Wipe,
                    3 => Fault::DelayMs(c.u64()?),
                    t => return Err(NetError::Protocol(format!("bad fault tag {t}"))),
                };
                Request::InjectFault(fault)
            }
            op => return Err(NetError::Protocol(format!("unknown request opcode {op}"))),
        };
        c.done()?;
        Ok(req)
    }
}

impl Response {
    fn opcode(&self) -> u8 {
        match self {
            Response::Element(_) => RESP_ELEMENT,
            Response::Put => RESP_PUT,
            Response::Batch(_) => RESP_BATCH,
            Response::Range(_) => RESP_RANGE,
            Response::Checked(_) => RESP_CHECKED,
            Response::Combined { .. } => RESP_COMBINED,
            Response::ObjAck => RESP_OBJ_ACK,
            Response::ObjData(_) => RESP_OBJ_DATA,
            Response::ObjStat { .. } => RESP_OBJ_STAT,
            Response::Health { .. } => RESP_HEALTH,
            Response::FaultInjected => RESP_FAULT,
            Response::Stats(_) => RESP_STATS,
            Response::Error(_) => RESP_ERROR,
            Response::Mux { .. } => RESP_MUX,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Element(v) => put_opt_bytes(&mut out, v),
            Response::Put | Response::FaultInjected => {}
            Response::Batch(items) => {
                put_u32(&mut out, items.len() as u32);
                for v in items {
                    put_opt_bytes(&mut out, v);
                }
            }
            Response::Range(items) => {
                // [count:u32][presence bitmap: ceil(count/8) bytes, LSB
                // first][per present element: len:u32 + bytes].
                put_u32(&mut out, items.len() as u32);
                let mut bitmap = vec![0u8; items.len().div_ceil(8)];
                for (i, v) in items.iter().enumerate() {
                    if v.is_some() {
                        bitmap[i / 8] |= 1 << (i % 8);
                    }
                }
                out.extend_from_slice(&bitmap);
                for v in items.iter().flatten() {
                    put_u32(&mut out, v.len() as u32);
                    out.extend_from_slice(v);
                }
            }
            Response::Checked(items) => {
                // [count:u32][status byte per element: 0=missing,
                // 1=valid, 2=corrupt][per valid element, in order:
                // len:u32 + bytes]. Corrupt cells ship a verdict but
                // no payload.
                put_u32(&mut out, items.len() as u32);
                for item in items {
                    out.push(match item {
                        CheckedElement::Missing => 0,
                        CheckedElement::Valid(_) => 1,
                        CheckedElement::Corrupt => 2,
                    });
                }
                for item in items {
                    if let CheckedElement::Valid(v) = item {
                        put_u32(&mut out, v.len() as u32);
                        out.extend_from_slice(v);
                    }
                }
            }
            Response::Combined {
                regions,
                local_status,
                peer_status,
            } => {
                // [n_regions:u32][per region: len:u32 + bytes]
                // [n_local:u32][status bytes][n_peers:u32][status bytes].
                put_u32(&mut out, regions.len() as u32);
                for r in regions {
                    put_u32(&mut out, r.len() as u32);
                    out.extend_from_slice(r);
                }
                put_u32(&mut out, local_status.len() as u32);
                out.extend_from_slice(local_status);
                put_u32(&mut out, peer_status.len() as u32);
                out.extend_from_slice(peer_status);
            }
            Response::ObjAck => {}
            Response::ObjData(bytes) => {
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            Response::ObjStat {
                len,
                version,
                extents,
            } => {
                // [len:u64][version:u64][extents:u32].
                put_u64(&mut out, *len);
                put_u64(&mut out, *version);
                put_u32(&mut out, *extents);
            }
            Response::Health { elements } => put_u64(&mut out, *elements),
            Response::Stats(pairs) => {
                put_u32(&mut out, pairs.len() as u32);
                for (name, value) in pairs {
                    put_u32(&mut out, name.len() as u32);
                    out.extend_from_slice(name.as_bytes());
                    put_u64(&mut out, *value);
                }
            }
            Response::Error(msg) => out.extend_from_slice(msg.as_bytes()),
            Response::Mux { id, inner } => {
                // [id:u64][inner opcode:u8][inner payload].
                put_u64(&mut out, *id);
                out.push(inner.opcode());
                out.extend_from_slice(&inner.payload());
            }
        }
        out
    }

    fn decode(opcode: u8, payload: &[u8]) -> Result<Self, NetError> {
        let mut c = Cursor::new(payload);
        let resp = match opcode {
            RESP_ELEMENT => Response::Element(get_opt_bytes(&mut c)?),
            RESP_PUT => Response::Put,
            RESP_BATCH => {
                let n = c.u32()? as usize;
                let mut items = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    items.push(get_opt_bytes(&mut c)?);
                }
                Response::Batch(items)
            }
            RESP_RANGE => {
                let n = c.u32()? as usize;
                if n > MAX_PAYLOAD as usize {
                    return Err(NetError::Protocol(format!("range count {n} implausible")));
                }
                let bitmap = c.take(n.div_ceil(8))?.to_vec();
                let mut items = Vec::with_capacity(n.min(1 << 20));
                for i in 0..n {
                    if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                        let len = c.u32()? as usize;
                        items.push(Some(c.take(len)?.to_vec()));
                    } else {
                        items.push(None);
                    }
                }
                Response::Range(items)
            }
            RESP_CHECKED => {
                let n = c.u32()? as usize;
                if n > MAX_PAYLOAD as usize {
                    return Err(NetError::Protocol(format!("checked count {n} implausible")));
                }
                let statuses = c.take(n)?.to_vec();
                let mut items = Vec::with_capacity(n.min(1 << 20));
                for s in statuses {
                    items.push(match s {
                        0 => CheckedElement::Missing,
                        1 => {
                            let len = c.u32()? as usize;
                            CheckedElement::Valid(c.take(len)?.to_vec())
                        }
                        2 => CheckedElement::Corrupt,
                        t => {
                            return Err(NetError::Protocol(format!("bad checked status {t}")));
                        }
                    });
                }
                Response::Checked(items)
            }
            RESP_COMBINED => {
                let n = c.u32()? as usize;
                if n > MAX_PAYLOAD as usize {
                    return Err(NetError::Protocol(format!(
                        "combined region count {n} implausible"
                    )));
                }
                let mut regions = Vec::with_capacity(n.min(1 << 10));
                for _ in 0..n {
                    let len = c.u32()? as usize;
                    regions.push(c.take(len)?.to_vec());
                }
                let nl = c.u32()? as usize;
                if nl > MAX_PAYLOAD as usize {
                    return Err(NetError::Protocol(format!(
                        "combined status count {nl} implausible"
                    )));
                }
                let local_status = c.take(nl)?.to_vec();
                let np = c.u32()? as usize;
                if np > MAX_PAYLOAD as usize {
                    return Err(NetError::Protocol(format!(
                        "combined peer count {np} implausible"
                    )));
                }
                let peer_status = c.take(np)?.to_vec();
                Response::Combined {
                    regions,
                    local_status,
                    peer_status,
                }
            }
            RESP_OBJ_ACK => Response::ObjAck,
            RESP_OBJ_DATA => {
                let len = c.u32()? as usize;
                Response::ObjData(c.take(len)?.to_vec())
            }
            RESP_OBJ_STAT => Response::ObjStat {
                len: c.u64()?,
                version: c.u64()?,
                extents: c.u32()?,
            },
            RESP_HEALTH => Response::Health { elements: c.u64()? },
            RESP_FAULT => Response::FaultInjected,
            RESP_STATS => {
                let n = c.u32()? as usize;
                let mut pairs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let len = c.u32()? as usize;
                    let name = std::str::from_utf8(c.take(len)?)
                        .map_err(|_| NetError::Protocol("stats name is not UTF-8".into()))?
                        .to_string();
                    pairs.push((name, c.u64()?));
                }
                Response::Stats(pairs)
            }
            RESP_MUX => {
                let id = c.u64()?;
                let op = c.u8()?;
                if op == RESP_MUX {
                    return Err(NetError::Protocol("nested mux response".into()));
                }
                let inner = Response::decode(op, c.rest())?;
                Response::Mux {
                    id,
                    inner: Box::new(inner),
                }
            }
            RESP_ERROR => {
                let msg = String::from_utf8_lossy(c.take(payload.len())?).into_owned();
                return Ok(Response::Error(msg));
            }
            op => return Err(NetError::Protocol(format!("unknown response opcode {op}"))),
        };
        c.done()?;
        Ok(resp)
    }
}

fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> Result<(), NetError> {
    if payload.len() as u64 > MAX_PAYLOAD as u64 {
        return Err(NetError::Protocol(format!(
            "payload of {} bytes exceeds the {MAX_PAYLOAD}-byte cap",
            payload.len()
        )));
    }
    let mut header = [0u8; 10];
    header[..4].copy_from_slice(&MAGIC);
    header[4] = VERSION;
    header[5] = opcode;
    header[6..10].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), NetError> {
    let mut header = [0u8; 10];
    r.read_exact(&mut header)?;
    if header[..4] != MAGIC {
        return Err(NetError::Protocol("bad magic".into()));
    }
    if header[4] != VERSION {
        return Err(NetError::Protocol(format!(
            "unsupported protocol version {} (this build speaks {VERSION})",
            header[4]
        )));
    }
    let len = u32::from_le_bytes(header[6..10].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(NetError::Protocol(format!(
            "payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((header[5], payload))
}

/// Outcome of one polling read attempt on a server connection whose
/// socket has a short read timeout.
#[derive(Debug)]
pub enum PolledRequest {
    /// A complete, well-formed request frame.
    Frame(Request),
    /// The timeout elapsed with no frame started — poll again.
    Idle,
    /// Peer hung up, the stop flag was raised, or the stream is garbage.
    Closed,
}

/// Outcome of one polling read attempt for a raw frame.
enum PolledFrame {
    Frame(u8, Vec<u8>),
    Idle,
    Closed,
}

/// Read one raw frame from a socket with a short read timeout, without
/// ever losing sync: a timeout *between* frames reports `Idle`, while a
/// timeout *inside* a partially read frame keeps polling (checking
/// `stop` each round) until the rest of the frame arrives.
fn poll_frame(r: &mut impl Read, stop: &std::sync::atomic::AtomicBool) -> PolledFrame {
    use std::sync::atomic::Ordering;

    fn fill(
        r: &mut impl Read,
        buf: &mut [u8],
        stop: &std::sync::atomic::AtomicBool,
        idle_ok: bool,
    ) -> Result<bool, ()> {
        let mut filled = 0usize;
        while filled < buf.len() {
            if stop.load(Ordering::Acquire) {
                return Err(());
            }
            match r.read(&mut buf[filled..]) {
                Ok(0) => return Err(()),
                Ok(n) => filled += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if filled == 0 && idle_ok {
                        return Ok(false);
                    }
                    // Mid-frame: keep waiting for the rest.
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Err(()),
            }
        }
        Ok(true)
    }

    let mut header = [0u8; 10];
    match fill(r, &mut header, stop, true) {
        Ok(false) => return PolledFrame::Idle,
        Ok(true) => {}
        Err(()) => return PolledFrame::Closed,
    }
    if header[..4] != MAGIC || header[4] != VERSION {
        return PolledFrame::Closed;
    }
    let len = u32::from_le_bytes(header[6..10].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return PolledFrame::Closed;
    }
    let mut payload = vec![0u8; len as usize];
    if fill(r, &mut payload, stop, false) != Ok(true) {
        return PolledFrame::Closed;
    }
    PolledFrame::Frame(header[5], payload)
}

/// Read one request frame from a socket with a short read timeout,
/// without ever losing sync: a timeout *between* frames reports
/// [`PolledRequest::Idle`], while a timeout *inside* a partially read
/// frame keeps polling (checking `stop` each round) until the rest of
/// the frame arrives.
pub fn read_request_polling(
    r: &mut impl Read,
    stop: &std::sync::atomic::AtomicBool,
) -> PolledRequest {
    match poll_frame(r, stop) {
        PolledFrame::Idle => PolledRequest::Idle,
        PolledFrame::Closed => PolledRequest::Closed,
        PolledFrame::Frame(opcode, payload) => match Request::decode(opcode, &payload) {
            Ok(req) => PolledRequest::Frame(req),
            Err(_) => PolledRequest::Closed,
        },
    }
}

/// Outcome of one polling read attempt on a multiplexed client
/// connection whose socket has a short read timeout.
#[derive(Debug)]
pub enum PolledResponse {
    /// A complete, well-formed response frame.
    Frame(Response),
    /// The timeout elapsed with no frame started — poll again (and
    /// sweep request deadlines).
    Idle,
    /// Peer hung up, the stop flag was raised, or the stream is garbage.
    Closed,
}

/// Read one response frame from a socket with a short read timeout —
/// the demux side of a multiplexed connection. Same sync discipline as
/// [`read_request_polling`]: idle only ever between frames.
pub fn read_response_polling(
    r: &mut impl Read,
    stop: &std::sync::atomic::AtomicBool,
) -> PolledResponse {
    match poll_frame(r, stop) {
        PolledFrame::Idle => PolledResponse::Idle,
        PolledFrame::Closed => PolledResponse::Closed,
        PolledFrame::Frame(opcode, payload) => match Response::decode(opcode, &payload) {
            Ok(resp) => PolledResponse::Frame(resp),
            Err(_) => PolledResponse::Closed,
        },
    }
}

/// Serialise one request onto a stream.
///
/// # Errors
/// I/O failure, or an oversized payload.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), NetError> {
    write_frame(w, req.opcode(), &req.payload())
}

/// Read one request frame off a stream.
///
/// # Errors
/// I/O failure or a malformed frame.
pub fn read_request(r: &mut impl Read) -> Result<Request, NetError> {
    let (opcode, payload) = read_frame(r)?;
    Request::decode(opcode, &payload)
}

/// Serialise one response onto a stream.
///
/// # Errors
/// I/O failure, or an oversized payload.
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), NetError> {
    write_frame(w, resp.opcode(), &resp.payload())
}

/// Read one response frame off a stream.
///
/// # Errors
/// I/O failure or a malformed frame.
pub fn read_response(r: &mut impl Read) -> Result<Response, NetError> {
    let (opcode, payload) = read_frame(r)?;
    Response::decode(opcode, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let got = read_request(&mut buf.as_slice()).unwrap();
        assert_eq!(got, req);
    }

    fn roundtrip_response(resp: Response) {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let got = read_response(&mut buf.as_slice()).unwrap();
        assert_eq!(got, resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::GetElement { offset: 42 });
        roundtrip_request(Request::PutElement {
            offset: u64::MAX,
            bytes: vec![1, 2, 3, 0, 255],
        });
        roundtrip_request(Request::PutElement {
            offset: 0,
            bytes: vec![],
        });
        roundtrip_request(Request::BatchGet {
            offsets: vec![0, 7, 1 << 40],
        });
        roundtrip_request(Request::BatchGet { offsets: vec![] });
        roundtrip_request(Request::GetRange {
            offset: 0,
            count: 1,
        });
        roundtrip_request(Request::GetRange {
            offset: 1 << 40,
            count: u32::MAX,
        });
        roundtrip_request(Request::RangeChecked {
            offset: 0,
            count: 1,
            k0: 0,
            k1: 0,
        });
        roundtrip_request(Request::RangeChecked {
            offset: 1 << 40,
            count: 4096,
            k0: u64::MAX,
            k1: 0xDEAD_BEEF_CAFE_F00D,
        });
        roundtrip_request(Request::Health);
        roundtrip_request(Request::Stats);
        for fault in [Fault::Fail, Fault::Heal, Fault::Wipe, Fault::DelayMs(250)] {
            roundtrip_request(Request::InjectFault(fault));
        }
    }

    #[test]
    fn object_op_roundtrips() {
        roundtrip_request(Request::ObjCreate {
            tenant: "web".into(),
            object: "profile.json".into(),
        });
        roundtrip_request(Request::ObjWrite {
            tenant: "".into(),
            object: "naïve/名前".into(),
            bytes: vec![0, 1, 255],
        });
        roundtrip_request(Request::ObjWrite {
            tenant: "t".into(),
            object: "o".into(),
            bytes: vec![],
        });
        roundtrip_request(Request::ObjGet {
            tenant: "t".into(),
            object: "o".into(),
            start: 1 << 40,
            len: u64::MAX,
        });
        roundtrip_request(Request::ObjStat {
            tenant: "t".into(),
            object: "o".into(),
        });
        roundtrip_request(Request::ObjDelete {
            tenant: "t".into(),
            object: "o".into(),
        });
        roundtrip_response(Response::ObjAck);
        roundtrip_response(Response::ObjData(vec![9; 4096]));
        roundtrip_response(Response::ObjData(vec![]));
        roundtrip_response(Response::ObjStat {
            len: u64::MAX,
            version: 3,
            extents: u32::MAX,
        });
        // Non-UTF-8 tenant bytes are a protocol error, not garbage.
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &Request::ObjStat {
                tenant: "ab".into(),
                object: "o".into(),
            },
        )
        .unwrap();
        let tenant_start = 10 + 4; // header + tenant len
        buf[tenant_start] = 0xFF;
        assert!(read_request(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn combine_range_roundtrips() {
        roundtrip_request(Request::CombineRange {
            offset: 0,
            count: 1,
            outputs: 1,
            coeffs: vec![7],
            k0: 0,
            k1: 0,
            peers: vec![],
        });
        roundtrip_request(Request::CombineRange {
            offset: 1 << 40,
            count: 3,
            outputs: 3,
            coeffs: vec![1, 0, 0, 0, 2, 0, 0, 0, 3],
            k0: u64::MAX,
            k1: 0xDEAD_BEEF_CAFE_F00D,
            peers: vec![
                CombinePeer {
                    addr: "127.0.0.1:9001".into(),
                    offset: 12,
                    count: 3,
                    coeffs: vec![9; 9],
                },
                CombinePeer {
                    addr: "[::1]:80".into(),
                    offset: 0,
                    count: 1,
                    coeffs: vec![0, 0, 255],
                },
            ],
        });
        roundtrip_response(Response::Combined {
            regions: vec![],
            local_status: vec![],
            peer_status: vec![],
        });
        roundtrip_response(Response::Combined {
            regions: vec![vec![1; 32], vec![], vec![0xAB; 4096]],
            local_status: vec![0, 2, 1],
            peer_status: vec![0, 3],
        });
    }

    #[test]
    fn mux_request_roundtrips() {
        roundtrip_request(Request::Mux {
            id: 0,
            inner: Box::new(Request::Health),
        });
        roundtrip_request(Request::Mux {
            id: u64::MAX,
            inner: Box::new(Request::RangeChecked {
                offset: 1 << 33,
                count: 512,
                k0: 7,
                k1: u64::MAX,
            }),
        });
        roundtrip_request(Request::Mux {
            id: 42,
            inner: Box::new(Request::PutElement {
                offset: 3,
                bytes: vec![1, 2, 3],
            }),
        });
    }

    #[test]
    fn mux_response_roundtrips() {
        roundtrip_response(Response::Mux {
            id: 9,
            inner: Box::new(Response::Range(vec![Some(vec![5; 16]), None])),
        });
        roundtrip_response(Response::Mux {
            id: 1 << 50,
            inner: Box::new(Response::Error("shard offline".into())),
        });
    }

    #[test]
    fn nested_mux_rejected() {
        let req = Request::Mux {
            id: 1,
            inner: Box::new(Request::Mux {
                id: 2,
                inner: Box::new(Request::Health),
            }),
        };
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let err = read_request(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("nested mux"), "{err}");
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Element(Some(vec![9; 100])));
        roundtrip_response(Response::Element(None));
        roundtrip_response(Response::Put);
        roundtrip_response(Response::Batch(vec![Some(vec![1]), None, Some(vec![])]));
        roundtrip_response(Response::Range(vec![]));
        roundtrip_response(Response::Range(vec![Some(vec![7; 32])]));
        roundtrip_response(Response::Range(vec![None, None, None]));
        // Presence straddling a bitmap byte boundary, with empty and
        // absent elements interleaved.
        let mut items: Vec<Option<Vec<u8>>> = (0..19u8)
            .map(|i| (i % 3 != 0).then(|| vec![i; i as usize]))
            .collect();
        items[8] = Some(vec![]);
        roundtrip_response(Response::Range(items));
        roundtrip_response(Response::Checked(vec![]));
        roundtrip_response(Response::Checked(vec![CheckedElement::Valid(vec![7; 32])]));
        roundtrip_response(Response::Checked(vec![
            CheckedElement::Missing,
            CheckedElement::Corrupt,
            CheckedElement::Missing,
        ]));
        // All three verdicts interleaved, with an empty valid cell.
        roundtrip_response(Response::Checked(vec![
            CheckedElement::Valid(vec![1, 2, 3]),
            CheckedElement::Corrupt,
            CheckedElement::Valid(vec![]),
            CheckedElement::Missing,
            CheckedElement::Valid(vec![0xFF; 4096]),
        ]));
        roundtrip_response(Response::Health { elements: 12345 });
        roundtrip_response(Response::FaultInjected);
        roundtrip_response(Response::Stats(vec![]));
        roundtrip_response(Response::Stats(vec![
            ("serve.get".into(), 42),
            ("serve_us.p99".into(), u64::MAX),
            ("net.retries".into(), 0),
        ]));
        roundtrip_response(Response::Error("disk on fire".into()));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Health).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_request(&mut buf.as_slice()),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Health).unwrap();
        buf[4] = VERSION + 1;
        let err = read_request(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Health).unwrap();
        buf[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_request(&mut buf.as_slice()),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn truncated_payload_is_io_error() {
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &Request::PutElement {
                offset: 1,
                bytes: vec![5; 64],
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(
            read_request(&mut buf.as_slice()),
            Err(NetError::Io(_))
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let req = Request::GetElement { offset: 3 };
        let mut payload = req.payload();
        payload.push(0xEE);
        assert!(matches!(
            Request::decode(OP_GET, &payload),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn bad_checked_status_rejected() {
        // count=1, status byte 7 (only 0/1/2 are defined).
        let mut payload = Vec::new();
        put_u32(&mut payload, 1);
        payload.push(7);
        let err = Response::decode(RESP_CHECKED, &payload).unwrap_err();
        assert!(err.to_string().contains("checked status"), "{err}");
    }

    #[test]
    fn checked_truncated_valid_bytes_rejected() {
        let mut payload = Vec::new();
        put_u32(&mut payload, 1);
        payload.push(1); // valid...
        put_u32(&mut payload, 100); // ...claiming 100 bytes
        payload.extend_from_slice(&[9; 10]); // but shipping 10
        assert!(matches!(
            Response::decode(RESP_CHECKED, &payload),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn timeout_errors_classified() {
        let e: NetError = std::io::Error::new(std::io::ErrorKind::WouldBlock, "slow").into();
        assert!(matches!(e, NetError::Timeout));
        let e: NetError = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow").into();
        assert!(matches!(e, NetError::Timeout));
        let e: NetError = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "gone").into();
        assert!(matches!(e, NetError::Io(_)));
    }
}

//! The batched read path over a real loopback cluster.
//!
//! Pins the contract the per-disk vectored read path makes on the wire:
//! one stripe read costs exactly one request per live disk, a shard
//! whose `GetRange` reply comes back all-absent still decodes through
//! the degraded path, and the protocol stays compatible in both
//! directions — an old client (no `GetRange`) against a new server, and
//! a new client against an old server that rejects opcode 7.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::thread;

use ecfrm_codes::RsCode;
use ecfrm_core::Scheme;
use ecfrm_net::protocol::{read_request, write_response};
use ecfrm_net::{Cluster, Fault, RemoteDisk, RemoteDiskConfig, Request, Response};
use ecfrm_sim::{DiskBackend, ThreadedArray};
use ecfrm_store::ObjectStore;

const ELEMENT: usize = 512;

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + 7) % 256) as u8).collect()
}

fn rs_scheme() -> Scheme {
    Scheme::builder(Arc::new(RsCode::vandermonde(6, 3)))
        .layout(ecfrm_core::LayoutKind::EcFrm)
        .build() // n = 9 disks
}

fn store_over(cluster: &Cluster, scheme: Scheme) -> ObjectStore {
    ObjectStore::with_array(
        scheme,
        ELEMENT,
        ThreadedArray::from_backends(cluster.backends()),
    )
}

/// One server-side counter, read over the wire via the `Stats` op.
fn server_counter(cluster: &Cluster, i: usize, name: &str) -> u64 {
    cluster
        .client(i)
        .stats()
        .unwrap()
        .into_iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(0)
}

/// Total read requests a shard server has handled, whatever the shape.
fn server_read_ops(cluster: &Cluster, i: usize) -> u64 {
    server_counter(cluster, i, "serve.get")
        + server_counter(cluster, i, "serve.batch")
        + server_counter(cluster, i, "serve.range")
}

fn store_counter(store: &ObjectStore, name: &str) -> u64 {
    store
        .recorder()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

#[test]
fn stripe_read_is_one_rpc_per_live_disk() {
    let scheme = rs_scheme();
    let n = scheme.n_disks();
    let cluster = Cluster::spawn(n).unwrap();
    let store = store_over(&cluster, scheme.clone());

    // Exactly one stripe of data, so the read touches every disk.
    let data = payload(scheme.data_per_stripe() * ELEMENT);
    store.put("stripe", &data).unwrap();
    store.flush();

    let ops_before: Vec<u64> = (0..n).map(|i| server_read_ops(&cluster, i)).collect();
    let rpcs_before = store_counter(&store, "read.rpcs");
    let runs_before = store_counter(&store, "read.coalesced_runs");

    let (got, stats) = store.get_with_stats("stripe").unwrap();
    assert_eq!(got, data);
    assert!(!stats.degraded);

    // The acceptance bar: one vectored request per live disk, counted on
    // both sides of the wire.
    let rpcs = store_counter(&store, "read.rpcs") - rpcs_before;
    assert_eq!(rpcs as usize, n, "client issued {rpcs} RPCs for {n} disks");
    for (i, before) in ops_before.iter().enumerate() {
        let served = server_read_ops(&cluster, i) - before;
        assert_eq!(served, 1, "disk {i} served {served} read requests");
    }

    // EC-FRM's sequential layout makes each per-disk batch one
    // contiguous run, so every request shipped as a coalesced GetRange.
    let runs = store_counter(&store, "read.coalesced_runs") - runs_before;
    assert_eq!(
        runs as usize, n,
        "expected every per-disk batch to coalesce"
    );
    let ranges: u64 = (0..n)
        .map(|i| server_counter(&cluster, i, "serve.range"))
        .sum();
    assert_eq!(ranges as usize, n, "expected one GetRange per disk");
}

#[test]
fn get_range_partial_failure_still_decodes() {
    let scheme = rs_scheme();
    let cluster = Cluster::spawn(scheme.n_disks()).unwrap();
    let store = store_over(&cluster, scheme.clone());

    let data = payload(scheme.data_per_stripe() * ELEMENT);
    store.put("stripe", &data).unwrap();
    store.flush();

    // Fail one shard's backend but keep its server up: its GetRange
    // reply arrives as a well-formed all-absent Range frame rather than
    // a transport error.
    cluster.client(2).inject(Fault::Fail).unwrap();

    let (got, stats) = store.get_with_stats("stripe").unwrap();
    assert_eq!(got, data, "decode must survive an all-absent range reply");
    assert!(stats.degraded, "read should be flagged degraded: {stats:?}");
    assert!(stats.replans >= 1, "expected a replan: {stats:?}");
    // The failure really travelled through the range path.
    assert!(
        server_counter(&cluster, 2, "serve.range") >= 1,
        "failed shard should have answered via GetRange"
    );

    // Heal and confirm the normal path comes back.
    cluster.client(2).inject(Fault::Heal).unwrap();
    let (again, stats) = store.get_with_stats("stripe").unwrap();
    assert_eq!(again, data);
    assert!(!stats.degraded);
}

#[test]
fn old_client_without_get_range_talks_to_new_server() {
    let scheme = rs_scheme();
    // A client built before opcode 7 (or mux) existed.
    let cfg = RemoteDiskConfig::builder()
        .low_latency()
        .use_range(false)
        .multiplex(false)
        .build();
    let cluster = Cluster::spawn_with(scheme.n_disks(), &cfg).unwrap();
    let store = store_over(&cluster, scheme.clone());

    let data = payload(scheme.data_per_stripe() * ELEMENT + 777);
    store.put("obj", &data).unwrap();
    store.flush();
    assert_eq!(store.get("obj").unwrap(), data);

    // Everything went over the pre-range opcode subset.
    let n = scheme.n_disks();
    for i in 0..n {
        assert_eq!(
            server_counter(&cluster, i, "serve.range"),
            0,
            "old client must never emit GetRange"
        );
    }
    let batched: u64 = (0..n)
        .map(|i| server_counter(&cluster, i, "serve.batch"))
        .sum();
    assert!(batched >= 1, "old client should still batch via BatchGet");
}

/// A stand-in for a server built before `GetRange` existed: it serves
/// the original opcode subset and, like the old frame dispatcher, drops
/// the connection on an opcode it does not know.
fn spawn_old_server(data: HashMap<u64, Vec<u8>>) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let data = Arc::new(data);
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut s) = stream else { continue };
            let data = Arc::clone(&data);
            thread::spawn(move || loop {
                let Ok(req) = read_request(&mut s) else {
                    return;
                };
                let resp = match req {
                    // Old servers predate opcode 7: connection dies.
                    Request::GetRange { .. } => return,
                    Request::GetElement { offset } => Response::Element(data.get(&offset).cloned()),
                    Request::BatchGet { offsets } => {
                        Response::Batch(offsets.iter().map(|o| data.get(o).cloned()).collect())
                    }
                    Request::Health => Response::Health {
                        elements: data.len() as u64,
                    },
                    _ => Response::Error("unsupported".into()),
                };
                if write_response(&mut s, &resp).is_err() {
                    return;
                }
            });
        }
    });
    addr
}

#[test]
fn new_client_falls_back_to_batch_get_on_old_server() {
    let mut data = HashMap::new();
    for o in 0..6u64 {
        data.insert(o, vec![o as u8 + 1; 16]);
    }
    let addr = spawn_old_server(data.clone());
    let disk = RemoteDisk::new(addr, RemoteDiskConfig::builder().low_latency().build());
    assert!(disk.range_enabled());

    // A contiguous run tempts the client into GetRange; the old server
    // kills the connection, and the client must recover via BatchGet.
    let offsets: Vec<u64> = (0..6).collect();
    let got = disk.read_many(&offsets);
    for (o, e) in offsets.iter().zip(&got) {
        assert_eq!(e.as_deref(), Some(&data[o][..]), "offset {o}");
    }
    assert!(
        !disk.range_enabled(),
        "a BatchGet success after a GetRange failure proves the server \
         is range-less; the client must stop trying"
    );

    // Subsequent batched reads skip GetRange entirely and still work.
    let again = disk.read_many(&[2, 3, 4]);
    assert_eq!(again[0].as_deref(), Some(&data[&2][..]));
    assert_eq!(again[1].as_deref(), Some(&data[&3][..]));
    assert_eq!(again[2].as_deref(), Some(&data[&4][..]));
}

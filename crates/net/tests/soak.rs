//! Loopback soak: hundreds of concurrent stripe readers over the
//! reactor and the multiplexed wire, with a shard backend killed in
//! mid-flight.
//!
//! The invariants under load:
//! * every read stays byte-correct, before and after the kill (the
//!   dead shard's all-absent replies degrade into the erasure-code
//!   failure domain and decode through parity);
//! * nothing deadlocks — every reader thread finishes;
//! * the dead disk ends up reported in the array's suspect set;
//! * submissions in flight against the dead backend complete as
//!   all-`None` rather than hanging their completion handles.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use ecfrm_codes::RsCode;
use ecfrm_core::Scheme;
use ecfrm_net::Cluster;
use ecfrm_sim::{DiskBackend, FaultKind, FaultyDisk, MemDisk, ThreadedArray};
use ecfrm_store::ObjectStore;

const ELEMENT: usize = 256;
const READERS: usize = 8;
const READS_PER_READER: usize = 40; // 320 concurrent stripe reads total
const OBJECTS: usize = 8;
const KILLED_DISK: usize = 2;

fn payload(seed: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 131 + seed * 7 + 3) % 256) as u8)
        .collect()
}

#[test]
fn soak_concurrent_stripe_reads_survive_midflight_backend_kill() {
    let scheme = Scheme::builder(Arc::new(RsCode::vandermonde(6, 3)))
        .layout(ecfrm_core::LayoutKind::EcFrm)
        .build();
    let n = scheme.n_disks();

    // Shard backends: MemDisks, with one wrapped in a FaultyDisk armed
    // to die partway through the soak — after it has served enough
    // reads that plenty of submissions are in flight around the kill.
    let faulty = FaultyDisk::wrap(Arc::new(MemDisk::new()));
    let backends: Vec<Arc<dyn DiskBackend>> = (0..n)
        .map(|d| {
            if d == KILLED_DISK {
                Arc::clone(&faulty) as Arc<dyn DiskBackend>
            } else {
                Arc::new(MemDisk::new()) as Arc<dyn DiskBackend>
            }
        })
        .collect();
    let cluster = Cluster::spawn_over(
        backends,
        &ecfrm_net::RemoteDiskConfig::builder().low_latency().build(),
    )
    .unwrap();
    let store = Arc::new(ObjectStore::with_array(
        scheme.clone(),
        ELEMENT,
        ThreadedArray::from_backends(cluster.backends()),
    ));

    // A couple of stripes per object so each read is a real vectored
    // fan-out across every disk.
    let want: Vec<Vec<u8>> = (0..OBJECTS)
        .map(|i| payload(i, scheme.data_per_stripe() * ELEMENT * 2 + 97 * i))
        .collect();
    for (i, data) in want.iter().enumerate() {
        store.put(&format!("obj{i}"), data).unwrap();
    }
    store.flush();

    // Die mid-soak: the puts already pushed the tally up, so arm the
    // kill relative to the current count — ~1/3 into the read phase.
    let reads_at_start = faulty.reads();
    faulty.arm(
        FaultKind::Kill,
        reads_at_start + (READERS * READS_PER_READER / 3) as u64,
    );

    let failures = Arc::new(AtomicUsize::new(0));
    thread::scope(|scope| {
        for r in 0..READERS {
            let store = Arc::clone(&store);
            let want = &want;
            let failures = Arc::clone(&failures);
            scope.spawn(move || {
                for k in 0..READS_PER_READER {
                    let i = (r + k) % OBJECTS;
                    match store.get(&format!("obj{i}")) {
                        Ok(got) if got == want[i] => {}
                        Ok(_) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                            eprintln!("reader {r} iter {k}: wrong bytes for obj{i}");
                        }
                        Err(e) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                            eprintln!("reader {r} iter {k}: obj{i} failed: {e:?}");
                        }
                    }
                }
            });
        }
    });
    assert_eq!(
        failures.load(Ordering::Relaxed),
        0,
        "every concurrent read must stay byte-correct across the kill"
    );
    assert!(
        faulty.fired(),
        "the kill must actually have happened mid-soak"
    );
    assert_eq!(
        store.array().suspects(),
        vec![KILLED_DISK],
        "the dead disk ends up flagged suspect"
    );

    // In-flight submissions against the dead backend complete as
    // all-absent — the completion handles must never hang.
    let offsets: Vec<u64> = (0..16).collect();
    let handles: Vec<_> = (0..32).map(|_| faulty.submit_read_many(&offsets)).collect();
    for h in handles {
        assert_eq!(h.wait(), vec![None; offsets.len()]);
    }

    // Reads still work degraded after the soak, and the engine's books
    // balance: everything submitted has completed.
    let (got, stats) = store.get_with_stats("obj0").unwrap();
    assert_eq!(got, want[0]);
    assert!(stats.degraded);
    let io = store.array().io_stats().snapshot();
    assert_eq!(io.submitted, io.completed, "{io:?}");
    assert_eq!(io.inflight, 0, "{io:?}");
}

//! End-to-end: `ObjectStore` over a real loopback TCP cluster.
//!
//! The acceptance scenario for the networked shard service: boot an
//! n-node cluster, push an object through put → encode → **network**,
//! read it back over the wire, then crash a shard server and show the
//! store still returns correct bytes by flipping the read plan from
//! normal to degraded — with the retry/timeout traffic visible in
//! `ReadStats`.

use std::sync::Arc;
use std::time::Duration;

use ecfrm_codes::LrcCode;
use ecfrm_core::Scheme;
use ecfrm_integrity::FOOTER_LEN;
use ecfrm_net::{Cluster, RemoteDiskConfig};
use ecfrm_sim::{DiskBackend, FileDisk, ThreadedArray};
use ecfrm_store::ObjectStore;

const ELEMENT: usize = 512;

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + 7) % 256) as u8).collect()
}

fn store_over(cluster: &Cluster, scheme: Scheme) -> ObjectStore {
    ObjectStore::with_array(
        scheme,
        ELEMENT,
        ThreadedArray::from_backends(cluster.backends()),
    )
}

fn lrc_scheme() -> Scheme {
    Scheme::builder(Arc::new(LrcCode::new(6, 2, 2)))
        .layout(ecfrm_core::LayoutKind::EcFrm)
        .build() // n = 10 disks
}

#[test]
fn object_roundtrip_over_loopback_cluster() {
    let scheme = lrc_scheme();
    let cluster = Cluster::spawn(scheme.n_disks()).unwrap();
    let store = store_over(&cluster, scheme);

    let data = payload(40_000);
    store.put("obj", &data).unwrap();
    let (got, stats) = store.get_with_stats("obj").unwrap();
    assert_eq!(got, data, "bytes survived the wire");
    assert!(!stats.degraded);
    assert_eq!(stats.replans, 0);
    assert_eq!(stats.net.failed_requests, 0, "{:?}", stats.net);
}

#[test]
fn mid_read_shard_crash_falls_back_to_degraded() {
    let scheme = lrc_scheme();
    let mut cluster = Cluster::spawn(scheme.n_disks()).unwrap();
    let store = store_over(&cluster, scheme);

    let data = payload(60_000);
    store.put("obj", &data).unwrap();
    store.flush();

    // Crash one shard server. The store has no idea: its next read plans
    // normally, hits the dead node, and must replan degraded mid-read.
    cluster.kill(3);
    let (got, stats) = store.get_with_stats("obj").unwrap();
    assert_eq!(got, data, "degraded fallback reconstructed the bytes");
    assert!(stats.degraded, "read should be flagged degraded: {stats:?}");
    assert!(stats.replans >= 1, "expected a replan: {stats:?}");
    // The crash is visible in the transport counters surfaced through
    // ReadStats: requests to the dead node retried and then failed.
    assert!(stats.net.retries >= 1, "{:?}", stats.net);
    assert!(stats.net.failed_requests >= 1, "{:?}", stats.net);

    // Subsequent ranged reads keep working around the dead node.
    let slice = store.get_range("obj", 10_000, 20_000).unwrap();
    assert_eq!(&slice[..], &data[10_000..30_000]);
}

#[test]
fn two_crashed_shards_within_tolerance_still_read() {
    // LRC(6,2,2) globally tolerates 2 arbitrary failures.
    let scheme = lrc_scheme();
    let mut cluster = Cluster::spawn(scheme.n_disks()).unwrap();
    let store = store_over(&cluster, scheme);

    let data = payload(30_000);
    store.put("obj", &data).unwrap();
    store.flush();
    cluster.kill(0);
    cluster.kill(5);
    let (got, stats) = store.get_with_stats("obj").unwrap();
    assert_eq!(got, data);
    assert!(stats.degraded);
}

#[test]
fn fail_disk_routes_fault_injection_over_the_wire() {
    // store.fail_disk → RemoteDisk.fail → InjectFault RPC → the server's
    // backend flips. The server stays up, so reads fail fast (no
    // timeouts) and the planner goes degraded via the store's own
    // failed-disk bookkeeping.
    let scheme = lrc_scheme();
    let cluster = Cluster::spawn(scheme.n_disks()).unwrap();
    let store = store_over(&cluster, scheme);

    let data = payload(25_000);
    store.put("obj", &data).unwrap();
    store.flush();
    store.fail_disk(2).unwrap();
    let (got, stats) = store.get_with_stats("obj").unwrap();
    assert_eq!(got, data);
    assert!(stats.degraded);
    assert_eq!(stats.replans, 0, "known-failed disk needs no replan");

    store.heal_disk(2).unwrap();
    let (got, stats) = store.get_with_stats("obj").unwrap();
    assert_eq!(got, data);
    assert!(!stats.degraded);
}

#[test]
fn hedged_reads_mask_a_straggler_shard() {
    let scheme = lrc_scheme();
    let cfg = RemoteDiskConfig::builder()
        .low_latency()
        .request_timeout(Duration::from_secs(2))
        .hedge_after(Some(Duration::from_millis(40)))
        .multiplex(false) // hedging is a legacy-path tail-latency tool
        .build();
    let cluster = Cluster::spawn_with(scheme.n_disks(), &cfg).unwrap();
    let store = store_over(&cluster, scheme);

    let data = payload(20_000);
    store.put("obj", &data).unwrap();
    store.flush();

    // Make one shard a straggler; hedges fire for its requests.
    cluster
        .client(1)
        .inject(ecfrm_net::Fault::DelayMs(120))
        .unwrap();
    let (got, stats) = store.get_with_stats("obj").unwrap();
    assert_eq!(got, data);
    assert!(stats.net.hedges >= 1, "{:?}", stats.net);
}

#[test]
fn file_backed_cluster_roundtrips() {
    // FileDisk shards behind the servers: bytes cross the network AND
    // hit real files, exercising the full persistent path. Shard files
    // hold whole cells — payload plus the store's checksum footer.
    let scheme = lrc_scheme();
    let dir = std::env::temp_dir().join(format!("ecfrm-net-filetest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let backends: Vec<Arc<dyn DiskBackend>> = (0..scheme.n_disks())
        .map(|d| {
            Arc::new(
                FileDisk::create(dir.join(format!("shard{d}.bin")), ELEMENT + FOOTER_LEN).unwrap(),
            ) as Arc<dyn DiskBackend>
        })
        .collect();
    // Ship the store's integrity key so contiguous runs go out as
    // `RangeChecked` and shards verify footers at the source.
    let key = ecfrm_integrity::HashKey::DEFAULT;
    let cfg = RemoteDiskConfig::builder()
        .low_latency()
        .integrity_key(key.k0, key.k1)
        .build();
    let cluster = Cluster::spawn_over(backends, &cfg).unwrap();
    let store = store_over(&cluster, scheme);

    let data = payload(35_000);
    store.put("obj", &data).unwrap();
    store.flush();
    assert_eq!(store.get("obj").unwrap(), data);
    // The shard files really hold the elements.
    assert!(std::fs::metadata(dir.join("shard0.bin")).unwrap().len() > 0);
    // Store-sealed cells on a real file-backed shard verify at the
    // source: a contiguous run goes out as `RangeChecked` and comes
    // back valid (the store's footers were written with this key).
    let got = cluster.client(0).read_many(&[0, 1]);
    assert!(got[0].is_some(), "shard 0 offset 0 must verify server-side");
    assert!(cluster.client(0).checked_enabled(), "op must not demote");
    let stats = cluster.client(0).stats().unwrap();
    let get = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    assert_eq!(get("serve.checked"), Some(1));
    assert_eq!(get("serve.checked_corrupt"), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_beyond_tolerance_is_data_loss_not_hang() {
    let scheme = lrc_scheme();
    let mut cluster = Cluster::spawn(scheme.n_disks()).unwrap();
    let store = store_over(&cluster, scheme);

    let data = payload(15_000);
    store.put("obj", &data).unwrap();
    store.flush();
    // LRC(6,2,2) has 4 parities total; 5 erasures can never decode.
    for d in [0, 2, 4, 6, 8] {
        cluster.kill(d);
    }
    let t0 = std::time::Instant::now();
    let err = store.get("obj");
    assert!(err.is_err(), "4 dead nodes must not decode");
    // Bounded failure: fast() timeouts keep the whole attempt short.
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "took {:?}",
        t0.elapsed()
    );
}

//! Repair-traffic-optimal recovery over a real loopback cluster.
//!
//! The acceptance scenarios for server-side `CombineRange` partial sums:
//! a combined stripe repair ingests `rows` pre-summed regions instead of
//! `k·rows` raw elements (1/k of the naive wire bytes at RS(6,3)), a
//! lying helper is excluded and the stripe replanned, rack labels keep
//! repair traffic inside the failed disk's domain, and a mixed-version
//! cluster (some shards predate the opcode) still repairs byte-correct
//! by serving old shards with raw fetches.

use std::sync::Arc;

use ecfrm_codes::RsCode;
use ecfrm_core::{DomainMap, LayoutKind, Scheme};
use ecfrm_integrity::FOOTER_LEN;
use ecfrm_net::protocol::{read_request, write_response};
use ecfrm_net::{Cluster, RemoteDiskConfig, Request, Response, ShardServer};
use ecfrm_sim::{DiskBackend, MemDisk, ThreadedArray};
use ecfrm_store::ObjectStore;

const ELEMENT: usize = 512;
const CELL: u64 = (ELEMENT + FOOTER_LEN) as u64;

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + 7) % 256) as u8).collect()
}

fn rs_scheme() -> Scheme {
    // n = 9 disks, 3 rows per stripe: naive repair reads k·rows = 18
    // elements per stripe, combined ships rows = 3 regions.
    Scheme::builder(Arc::new(RsCode::vandermonde(6, 3)))
        .layout(LayoutKind::EcFrm)
        .build()
}

fn store_over(cluster: &Cluster, scheme: Scheme) -> ObjectStore {
    ObjectStore::with_array(
        scheme,
        ELEMENT,
        ThreadedArray::from_backends(cluster.backends()),
    )
}

fn counter(store: &ObjectStore, name: &str) -> u64 {
    store
        .recorder()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

#[test]
fn combined_repair_ships_one_kth_of_naive_wire_bytes() {
    let scheme = rs_scheme();
    let rows = scheme.layout().offsets_per_stripe();
    let cluster = Cluster::spawn(scheme.n_disks()).unwrap();
    let store = store_over(&cluster, scheme);
    let data = payload(40_000);
    store.put("obj", &data).unwrap();
    store.flush();

    // Price the naive path: every source element crosses the wire.
    store.set_combined_repair(false);
    let naive = store.repair_stripe(2, 0).unwrap();
    assert_eq!(naive.bytes_read, 6 * rows * CELL, "k·rows raw elements");
    let naive_wire = counter(&store, "repair.wire_bytes");
    assert_eq!(naive_wire, naive.bytes_read);
    assert_eq!(counter(&store, "repair.combined_stripes"), 0);

    // Combined: helpers pre-sum server-side, the root merges its peers,
    // and only `rows` sealed regions reach the rebuilder — 1/k of naive.
    store.set_combined_repair(true);
    let combined = store.repair_stripe(2, 0).unwrap();
    assert_eq!(combined.elements as u64, rows);
    assert_eq!(combined.bytes_read, rows * CELL, "rows sealed regions");
    assert_eq!(
        counter(&store, "repair.wire_bytes") - naive_wire,
        combined.bytes_read
    );
    assert_eq!(naive.bytes_read, 6 * combined.bytes_read, "exactly 1/k");
    assert_eq!(counter(&store, "repair.combined_stripes"), 1);

    // The real drill: wipe a shard server-side and rebuild it stripe by
    // stripe over the combined path.
    cluster.client(4).wipe();
    let stripes = store.stats().stripes;
    for s in 0..stripes {
        store.repair_stripe(4, s).unwrap();
    }
    assert_eq!(store.get("obj").unwrap(), data, "rebuilt bytes are exact");
}

#[test]
fn corrupt_helper_is_excluded_and_stripe_replanned() {
    let scheme = rs_scheme();
    let rows = scheme.layout().offsets_per_stripe();
    let mem: Vec<Arc<MemDisk>> = (0..scheme.n_disks())
        .map(|_| Arc::new(MemDisk::new()))
        .collect();
    let backends: Vec<Arc<dyn DiskBackend>> = mem
        .iter()
        .map(|m| Arc::clone(m) as Arc<dyn DiskBackend>)
        .collect();
    let cfg = RemoteDiskConfig::builder().low_latency().build();
    let cluster = Cluster::spawn_over(backends, &cfg).unwrap();
    let store = store_over(&cluster, scheme);
    let data = payload(20_000);
    store.put("obj", &data).unwrap();
    store.flush();

    let originals: Vec<Vec<u8>> = (0..rows).map(|o| mem[2].read(o).unwrap()).collect();
    // Rot every stripe-0 cell of one helper behind its server's back.
    for o in 0..rows {
        let mut cell = mem[0].read(o).unwrap();
        cell[0] ^= 0xFF;
        mem[0].write(o, cell);
    }

    // The root's footer check catches the liar; the planner excludes it
    // and replans the stripe over the remaining survivors — combined.
    let repaired = store.repair_stripe(2, 0).unwrap();
    assert_eq!(repaired.elements as u64, rows);
    for (o, want) in originals.iter().enumerate() {
        assert_eq!(
            mem[2].read(o as u64).as_ref(),
            Some(want),
            "rebuilt cell {o} byte-correct despite the corrupt helper"
        );
    }
    assert!(counter(&store, "integrity.verify_fail") >= 1);
    assert_eq!(counter(&store, "repair.combined_stripes"), 1);
    // The rotted shard is still rotted — reads route around it.
    assert_eq!(store.get("obj").unwrap(), data);
}

#[test]
fn rack_labels_keep_repair_traffic_intra_domain() {
    // Rack 0 holds disks 0..=6: repairing any of them finds k = 6 live
    // helpers without crossing racks, and with labels set it must.
    let scheme = Scheme::builder(Arc::new(RsCode::vandermonde(6, 3)))
        .layout(LayoutKind::EcFrm)
        .domains(DomainMap::from_labels(&[0, 0, 0, 0, 0, 0, 0, 1, 1]))
        .build();
    let cluster = Cluster::spawn(scheme.n_disks()).unwrap();
    let store = store_over(&cluster, scheme);
    let data = payload(30_000);
    store.put("obj", &data).unwrap();
    store.flush();

    let stripes = store.stats().stripes;
    for s in 0..stripes {
        store.repair_stripe(0, s).unwrap();
    }
    assert_eq!(
        counter(&store, "repair.cross_domain_reads"),
        0,
        "an intra-domain plan exists, so no helper read crosses racks"
    );
    assert_eq!(counter(&store, "repair.combined_stripes"), stripes);

    // Rack 1 has a single survivor when disk 7 fails: crossing racks is
    // unavoidable and the counter says so.
    store.repair_stripe(7, 0).unwrap();
    assert!(counter(&store, "repair.cross_domain_reads") > 0);
    assert_eq!(store.get("obj").unwrap(), data);
}

/// A shard that predates `CombineRange` (and the other negotiated
/// opcodes): unknown frames drop the connection, the legacy operations
/// answer fine.
fn spawn_old_server(backend: Arc<MemDisk>) -> std::net::SocketAddr {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { return };
            let disk = Arc::clone(&backend);
            std::thread::spawn(move || loop {
                let req = match read_request(&mut stream) {
                    Ok(r) => r,
                    Err(_) => return,
                };
                let resp = match req {
                    Request::CombineRange { .. }
                    | Request::RangeChecked { .. }
                    | Request::Mux { .. }
                    | Request::ObjCreate { .. }
                    | Request::ObjWrite { .. }
                    | Request::ObjGet { .. }
                    | Request::ObjStat { .. }
                    | Request::ObjDelete { .. } => return, // "unknown opcode"
                    Request::GetElement { offset } => Response::Element(disk.read(offset)),
                    Request::PutElement { offset, bytes } => {
                        disk.write(offset, bytes);
                        Response::Put
                    }
                    Request::BatchGet { offsets } => Response::Batch(disk.read_many(&offsets)),
                    Request::GetRange { offset, count } => {
                        let offsets: Vec<u64> = (0..u64::from(count)).map(|i| offset + i).collect();
                        Response::Range(disk.read_many(&offsets))
                    }
                    Request::Health => Response::Health {
                        elements: disk.len() as u64,
                    },
                    Request::InjectFault(_) => Response::FaultInjected,
                    Request::Stats => Response::Stats(Vec::new()),
                };
                if write_response(&mut stream, &resp).is_err() {
                    return;
                }
            });
        }
    });
    addr
}

#[test]
fn mixed_version_cluster_latches_old_shards_off_and_repairs_byte_correct() {
    let scheme = rs_scheme();
    let rows = scheme.layout().offsets_per_stripe();
    let old_disks = [3usize, 5];
    let cfg = RemoteDiskConfig::builder().low_latency().build();
    let mem: Vec<Arc<MemDisk>> = (0..scheme.n_disks())
        .map(|_| Arc::new(MemDisk::new()))
        .collect();
    let mut servers: Vec<ShardServer> = Vec::new();
    let backends: Vec<Arc<dyn DiskBackend>> = mem
        .iter()
        .enumerate()
        .map(|(d, m)| {
            let addr = if old_disks.contains(&d) {
                spawn_old_server(Arc::clone(m))
            } else {
                let server =
                    ShardServer::spawn(Arc::clone(m) as Arc<dyn DiskBackend>, "127.0.0.1:0")
                        .unwrap();
                let addr = server.addr();
                servers.push(server);
                addr
            };
            Arc::new(ecfrm_net::RemoteDisk::new(addr, cfg.clone())) as Arc<dyn DiskBackend>
        })
        .collect();
    let store = ObjectStore::with_array(scheme, ELEMENT, ThreadedArray::from_backends(backends));
    let data = payload(25_000);
    store.put("obj", &data).unwrap();
    store.flush();
    let stripes = store.stats().stripes;

    // Lose a new shard and rebuild it. The first combined attempt vetoes
    // (the root cannot reach the old peers over the combine opcode), the
    // probe latches their clients off, and the retry serves them with
    // raw fetches — every stripe still repairs combined.
    let originals: Vec<Vec<u8>> = (0..stripes * rows)
        .map(|o| mem[0].read(o).unwrap())
        .collect();
    mem[0].wipe();
    for s in 0..stripes {
        store.repair_stripe(0, s).unwrap();
    }
    for (o, want) in originals.iter().enumerate() {
        assert_eq!(
            mem[0].read(o as u64).as_ref(),
            Some(want),
            "cell {o} rebuilt byte-correct across versions"
        );
    }
    for d in old_disks {
        assert!(
            !store.array().disk(d).supports_combine(),
            "old shard {d} must latch its combine support off"
        );
    }
    assert_eq!(counter(&store, "repair.combined_stripes"), stripes);
    assert_eq!(store.get("obj").unwrap(), data);
}

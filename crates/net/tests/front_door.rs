//! The object front door over real TCP: opcodes 11–15 end-to-end,
//! typed errors across the wire, and the additive-opcode negotiation
//! story — an old server (or a front-less new one) demotes the client
//! to a local fallback `FrontDoor` once, permanently, and every object
//! op stays byte-correct through the demotion.

use std::sync::Arc;

use ecfrm_codes::RsCode;
use ecfrm_core::{LayoutKind, Scheme};
use ecfrm_net::protocol::{read_request, write_response};
use ecfrm_net::{FrontClient, RemoteDiskConfig, Request, Response, ShardServer};
use ecfrm_sim::{DiskBackend, MemDisk};
use ecfrm_store::{FrontConfig, FrontDoor, ObjectStore, QosClass, StoreError, TenantSpec};

const ELEMENT: usize = 512;

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 137 + 11) % 256) as u8).collect()
}

fn scheme() -> Scheme {
    Scheme::builder(Arc::new(RsCode::vandermonde(4, 2)))
        .layout(LayoutKind::EcFrm)
        .build()
}

fn local_front() -> Arc<FrontDoor> {
    let store = Arc::new(ObjectStore::new(scheme(), ELEMENT));
    FrontDoor::new(store, FrontConfig::default())
}

fn client_cfg() -> RemoteDiskConfig {
    RemoteDiskConfig::builder().build()
}

/// Full object lifecycle against a front node over real sockets:
/// create / write (multi-extent) / stat / ranged + whole reads /
/// delete, with bytes compared against a reference copy.
#[test]
fn remote_front_round_trips_every_op() {
    let front = local_front();
    let mut server =
        ShardServer::spawn_with_front(Arc::new(MemDisk::new()), Arc::clone(&front), "127.0.0.1:0")
            .unwrap();
    let client = FrontClient::new(server.addr(), client_cfg());

    let a = payload(10_000);
    let b = payload(3_000);
    client.create("web", "hero.png").unwrap();
    client.write("web", "hero.png", &a).unwrap();
    client.write("web", "hero.png", &b).unwrap();

    let stat = client.stat("web", "hero.png").unwrap();
    assert_eq!(stat.len, 13_000);
    assert_eq!(stat.extents, 2);
    assert_eq!(stat.version, 3); // create=1, +1 per write

    let mut want = a.clone();
    want.extend_from_slice(&b);
    assert_eq!(client.read("web", "hero.png").unwrap(), want);
    // A range crossing the extent seam.
    assert_eq!(
        client.read_range("web", "hero.png", 9_990, 20).unwrap(),
        &want[9_990..10_010]
    );

    client.delete("web", "hero.png").unwrap();
    assert!(matches!(
        client.stat("web", "hero.png"),
        Err(StoreError::NotFound(_))
    ));
    assert!(client.remote_enabled(), "no demotion happened");
    server.kill();
}

/// Store errors cross the wire re-typed, not stringified: the client
/// can match on the same variants it would get from a local front.
#[test]
fn wire_errors_arrive_typed() {
    let front = local_front();
    front.register_tenant(TenantSpec::new("bulk", QosClass::Bulk).rate(1)); // 1 B/s: everything throttles
    let mut server =
        ShardServer::spawn_with_front(Arc::new(MemDisk::new()), Arc::clone(&front), "127.0.0.1:0")
            .unwrap();
    let client = FrontClient::new(server.addr(), client_cfg());

    assert!(matches!(
        client.read("web", "missing"),
        Err(StoreError::NotFound(n)) if n == "web/missing"
    ));
    client.create("web", "dup").unwrap();
    assert!(matches!(
        client.create("web", "dup"),
        Err(StoreError::AlreadyExists(_))
    ));
    client.write("web", "dup", &payload(100)).unwrap();
    assert!(matches!(
        client.read_range("web", "dup", 90, 20),
        Err(StoreError::RangeOutOfBounds { len: 100, .. })
    ));
    // The bulk tenant's first byte overdraws its 1 B/s bucket for far
    // longer than the 500 ms default deadline.
    client.create("bulk", "slow").unwrap();
    client.write("bulk", "slow", &payload(4096)).unwrap();
    assert!(matches!(
        client.read("bulk", "slow"),
        Err(StoreError::Throttled(_))
    ));
    server.kill();
}

/// A shard that predates the object opcodes: unknown frames drop the
/// connection, `Health` (and the other legacy ops) answer fine.
fn spawn_old_server() -> std::net::SocketAddr {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { return };
            std::thread::spawn(move || loop {
                let req = match read_request(&mut stream) {
                    Ok(r) => r,
                    Err(_) => return, // "unknown opcode": drop the connection
                };
                let resp = match req {
                    Request::Health => Response::Health { elements: 0 },
                    _ => return,
                };
                if write_response(&mut stream, &resp).is_err() {
                    return;
                }
            });
        }
    });
    addr
}

/// Every object op against an old server falls back to the local
/// front door, byte-correct, and the latch is permanent: exactly one
/// demotion no matter how many ops follow.
#[test]
fn old_server_demotes_once_and_every_op_falls_back() {
    let addr = spawn_old_server();
    let fallback = local_front();
    let client = FrontClient::new(addr, client_cfg()).with_fallback(Arc::clone(&fallback));

    let data = payload(8_000);
    client.create("web", "obj").unwrap(); // first op: probe + demote
    assert!(!client.remote_enabled(), "answering probe must demote");

    client.write("web", "obj", &data).unwrap();
    assert_eq!(client.read("web", "obj").unwrap(), data);
    assert_eq!(
        client.read_range("web", "obj", 100, 50).unwrap(),
        &data[100..150]
    );
    assert_eq!(client.stat("web", "obj").unwrap().len, 8_000);
    client.delete("web", "obj").unwrap();
    assert!(matches!(
        client.stat("web", "obj"),
        Err(StoreError::NotFound(_))
    ));

    let snap = client.recorder().snapshot();
    let get = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
    assert_eq!(get("front.demoted"), 1, "latch fires exactly once");
    assert_eq!(get("front.remote"), 0, "no op was served remotely");
    assert!(get("front.fallback") >= 6, "every op took the fallback");
}

/// A *new* server with no front door attached answers the typed
/// `no_front` error — which demotes the client the same way, without
/// a probe, while raw shard ops on that server keep working.
#[test]
fn front_less_server_demotes_via_typed_error() {
    let mut server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
    let fallback = local_front();
    let client = FrontClient::new(server.addr(), client_cfg()).with_fallback(Arc::clone(&fallback));

    let data = payload(2_000);
    client.create("web", "obj").unwrap();
    assert!(!client.remote_enabled());
    client.write("web", "obj", &data).unwrap();
    assert_eq!(client.read("web", "obj").unwrap(), data);
    server.kill();
}

/// Without a fallback, a demoted client errors loudly instead of
/// pretending; a *dead* server is a transient `Net` error that leaves
/// the latch alone so recovery is possible.
#[test]
fn no_fallback_errors_and_outages_never_latch() {
    // Front-less server, no fallback: typed failure.
    let mut server = ShardServer::spawn(Arc::new(MemDisk::new()), "127.0.0.1:0").unwrap();
    let client = FrontClient::new(server.addr(), client_cfg());
    assert!(matches!(
        client.create("web", "obj"),
        Err(StoreError::Net(_))
    ));
    server.kill();

    // Dead server: transport error, latch untouched.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    }; // listener dropped: nothing is home
    let fallback = local_front();
    let client = FrontClient::new(addr, client_cfg()).with_fallback(fallback);
    assert!(matches!(
        client.create("web", "obj"),
        Err(StoreError::Net(_))
    ));
    assert!(
        client.remote_enabled(),
        "an outage is not evidence of an old server"
    );
}

/// A server that answers `Health` / `ObjStat` promptly but sits on
/// `ObjGet` for `get_delay` — a live, object-op-capable node that
/// merely blows the client's request deadline (queued admission, slow
/// disk, big transfer). Also counts `ObjWrite` frames it *receives*
/// and, when `drop_writes` is set, kills the connection after reading
/// one instead of answering — the executed-but-response-lost case.
fn spawn_slow_server(
    get_delay: std::time::Duration,
    drop_writes: bool,
) -> (std::net::SocketAddr, Arc<std::sync::atomic::AtomicUsize>) {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let writes = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&writes);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { return };
            let writes = Arc::clone(&counter);
            std::thread::spawn(move || loop {
                let Ok(req) = read_request(&mut stream) else {
                    return;
                };
                let resp = match req {
                    Request::Health => Response::Health { elements: 0 },
                    Request::ObjCreate { .. } => Response::ObjAck,
                    Request::ObjStat { .. } => Response::ObjStat {
                        len: 0,
                        version: 1,
                        extents: 0,
                    },
                    Request::ObjGet { .. } => {
                        std::thread::sleep(get_delay);
                        Response::ObjData(vec![7; 8])
                    }
                    Request::ObjWrite { .. } => {
                        writes.fetch_add(1, Ordering::SeqCst);
                        if drop_writes {
                            return; // connection dies with the response unsent
                        }
                        Response::ObjAck
                    }
                    _ => Response::Error("unexpected op".into()),
                };
                if write_response(&mut stream, &resp).is_err() {
                    return;
                }
            });
        }
    });
    (addr, writes)
}

/// A request that merely exceeds the client timeout on a live,
/// object-op-capable server must stay a transient `Net` error: no
/// demotion, and the very next (fast) op is served remotely again.
#[test]
fn slow_server_times_out_without_latching() {
    let (addr, _) = spawn_slow_server(std::time::Duration::from_millis(800), false);
    let fallback = local_front(); // present, but must never be used
    let cfg = RemoteDiskConfig::builder()
        .request_timeout(std::time::Duration::from_millis(100))
        .build();
    let client = FrontClient::new(addr, cfg).with_fallback(fallback);

    assert!(matches!(
        client.read_range("web", "obj", 0, 8),
        Err(StoreError::Net(_))
    ));
    assert!(
        client.remote_enabled(),
        "a timeout is not evidence of an old server"
    );
    // The next op answers within the deadline and is served remotely.
    assert_eq!(client.stat("web", "obj").unwrap().len, 0);
    let snap = client.recorder().snapshot();
    assert_eq!(
        snap.counters.get("front.fallback").copied().unwrap_or(0),
        0,
        "no op may be served from the fallback's empty namespace"
    );
}

/// A lost `ObjWrite` *response* must not trigger a blind retry: the
/// server may have appended the extent with only the answer lost, and
/// a replay would append it twice. The server here counts the write
/// frames it receives — exactly one may arrive.
#[test]
fn lost_write_response_is_not_retried() {
    let (addr, writes) = spawn_slow_server(std::time::Duration::ZERO, true);
    let client = FrontClient::new(addr, RemoteDiskConfig::builder().build());

    client.create("web", "obj").unwrap(); // parks a pooled connection
    let r = client.write("web", "obj", &payload(100));
    assert!(matches!(r, Err(StoreError::Net(_))), "{r:?}");
    assert_eq!(
        writes.load(std::sync::atomic::Ordering::SeqCst),
        1,
        "the write frame must cross the wire exactly once"
    );
    assert!(
        client.remote_enabled(),
        "an answering object-op probe proves the server is not old"
    );
}

/// Idempotent reads still recover from a stale pooled connection with
/// a silent fresh-dial retry (the server here hangs up after every
/// response, so the second op always finds a dead pooled stream).
#[test]
fn stale_pooled_connection_retries_idempotent_reads() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { return };
            std::thread::spawn(move || {
                // One request, one answer, hang up.
                if let Ok(req) = read_request(&mut stream) {
                    let resp = match req {
                        Request::ObjCreate { .. } => Response::ObjAck,
                        Request::ObjStat { .. } => Response::ObjStat {
                            len: 42,
                            version: 1,
                            extents: 0,
                        },
                        _ => Response::Error("unexpected op".into()),
                    };
                    let _ = write_response(&mut stream, &resp);
                }
            });
        }
    });

    let client = FrontClient::new(addr, RemoteDiskConfig::builder().build());
    client.create("web", "obj").unwrap(); // parked stream is now stale
    std::thread::sleep(std::time::Duration::from_millis(30)); // let the server hang up
    assert_eq!(client.stat("web", "obj").unwrap().len, 42);
    assert!(client.remote_enabled());
}

/// The mixed-version acceptance scenario: the *front* node is old, the
/// *shard* nodes are new. The demoted client serves through a local
/// front door whose store reads the same shard cluster over
/// `RemoteDisk`, so data lands erasure-coded on real remote shards and
/// reads back byte-correct.
#[test]
fn mixed_version_cluster_stays_byte_correct_through_fallback() {
    use ecfrm_net::RemoteDisk;
    use ecfrm_sim::ThreadedArray;

    let sch = scheme();
    let shards: Vec<(ShardServer, Arc<MemDisk>)> = (0..sch.n_disks())
        .map(|_| {
            let mem = Arc::new(MemDisk::new());
            let srv = ShardServer::spawn(Arc::clone(&mem) as Arc<dyn DiskBackend>, "127.0.0.1:0")
                .unwrap();
            (srv, mem)
        })
        .collect();
    let backends: Vec<Arc<dyn DiskBackend>> = shards
        .iter()
        .map(|(srv, _)| Arc::new(RemoteDisk::new(srv.addr(), client_cfg())) as Arc<dyn DiskBackend>)
        .collect();
    let store = Arc::new(ObjectStore::with_array(
        sch,
        ELEMENT,
        ThreadedArray::from_backends(backends),
    ));
    let fallback = FrontDoor::new(store, FrontConfig::default());

    let old_front = spawn_old_server();
    let client = FrontClient::new(old_front, client_cfg()).with_fallback(Arc::clone(&fallback));

    let data = payload(20_000);
    client.put("web", "movie.mp4", &data).unwrap();
    assert!(!client.remote_enabled());
    assert_eq!(client.read("web", "movie.mp4").unwrap(), data);

    // The bytes really live on the remote shards, not in some client
    // buffer: at least one shard holds sealed elements.
    let held: usize = shards.iter().map(|(_, mem)| mem.len()).sum();
    assert!(held > 0, "sealed stripes must land on the shard nodes");
}

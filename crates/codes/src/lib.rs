//! Candidate erasure codes for the EC-FRM framework.
//!
//! The EC-FRM paper (ICPP'15) defines a *candidate code* as any erasure
//! code whose stripe is a single row — i.e. a systematic `(n, k)` code
//! over one row of `n` elements, `k` of them data. This crate provides:
//!
//! * [`CandidateCode`] — the trait EC-FRM integrates against, exposing the
//!   generator matrix, encoding, full matrix decoding, per-element repair
//!   plans, and recoverability checks;
//! * [`RsCode`] — systematic Reed–Solomon `(k, m)` (the Google/Facebook
//!   code in the paper), with Vandermonde-derived or Cauchy generators;
//! * [`LrcCode`] — Azure-style Local Reconstruction Codes `(k, l, m)`
//!   with `l` XOR local parities and `m` Galois-field global parities
//!   (paper Eq. (5)–(8));
//! * [`XorCode`] — single-parity RAID-5 style code, the smallest possible
//!   candidate code, useful for exhaustive testing and as a third
//!   demonstration that the framework is generic.
//!
//! # Example
//!
//! ```
//! use ecfrm_codes::{CandidateCode, RsCode};
//!
//! let rs = RsCode::vandermonde(6, 3);
//! let data: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 16]).collect();
//! let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
//! let mut parity = vec![vec![0u8; 16]; 3];
//! rs.encode(&refs, &mut parity);
//!
//! // Erase any three elements and decode.
//! let mut shards: Vec<Option<Vec<u8>>> =
//!     data.iter().cloned().map(Some).chain(parity.into_iter().map(Some)).collect();
//! shards[0] = None;
//! shards[4] = None;
//! shards[7] = None;
//! rs.decode(&mut shards, 16).unwrap();
//! assert_eq!(shards[0].as_deref().unwrap(), &data[0][..]);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod decode;
pub mod lrc;
pub mod rs;
pub mod traits;
pub mod wide;
pub mod xor;

pub use cache::DecoderCache;
pub use decode::{matrix_decode, select_independent_rows};
pub use lrc::LrcCode;
pub use rs::RsCode;
pub use traits::{CandidateCode, CodeError, ElementClass, RepairSpec};
pub use wide::WideRs;
pub use xor::XorCode;

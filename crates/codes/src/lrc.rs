//! Azure-style Local Reconstruction Codes `(k, l, m)` — the second
//! candidate code of the paper (Huang et al., USENIX ATC'12; paper §II-C
//! and Eq. (5)–(8)).
//!
//! The `k` data elements split into `l` equal local groups. Each local
//! parity is the XOR of its group (Eq. (5)–(6)); each global parity `j`
//! is `Σᵢ cᵢ^(j+1)·dᵢ` over all data with distinct non-zero coefficients
//! `cᵢ` (the `a`/`b` and squared-`a`/`b` coefficients of Eq. (7)–(8)
//! generalised to arbitrary `m`). With distinct coefficients the decoding
//! matrix of the paper's triple-failure case study (Eq. (12)) is a
//! Vandermonde block and therefore non-singular.
//!
//! Degraded reads of a single lost data element touch only the
//! `k/l` surviving members of its local group — the property the paper
//! credits LRC for and which EC-FRM-LRC preserves.

use crate::decode::solved_sources;
use crate::traits::{CandidateCode, ElementClass, RepairSpec};
use ecfrm_gf::{Field, Gf8, Matrix};

/// Azure LRC `(k, l, m)` over `GF(2^8)`: `k` data, `l` XOR local
/// parities, `m` Galois global parities.
///
/// ```
/// use ecfrm_codes::{CandidateCode, LrcCode, RepairSpec};
///
/// let lrc = LrcCode::new(6, 2, 2);
/// assert_eq!(lrc.n(), 10);
/// assert_eq!(lrc.fault_tolerance(), 3); // any 3 erasures decode
/// // A single lost data element repairs from its local group only.
/// let spec = lrc.repair_spec(4, &[4]).unwrap();
/// assert_eq!(spec, RepairSpec::Exact { read: vec![3, 5, 7] });
/// ```
#[derive(Debug, Clone)]
pub struct LrcCode {
    k: usize,
    l: usize,
    m: usize,
    parity: Matrix<Gf8>,
    generator: Matrix<Gf8>,
}

impl LrcCode {
    /// Construct an LRC. Data element `i` has global-parity coefficient
    /// `α^(i+1)` (distinct, non-zero), and global parity `j` uses those
    /// coefficients raised to the `j+1`-th power.
    ///
    /// # Panics
    /// Panics unless `l >= 1`, `m >= 1`, `l` divides `k`, and the
    /// coefficients stay distinct (`k <= 254`).
    pub fn new(k: usize, l: usize, m: usize) -> Self {
        assert!(k > 0 && l > 0 && m > 0, "LRC requires k, l, m > 0");
        assert!(
            k.is_multiple_of(l),
            "LRC requires l | k (equal local groups)"
        );
        assert!(k <= 254, "LRC(k,l,m) needs k <= 254 distinct coefficients");
        let n = k + l + m;
        let mut parity = Matrix::<Gf8>::zero(l + m, k);
        let group = k / l;
        // Local parities: XOR of each group (Eq. (5)-(6)).
        for g in 0..l {
            for j in 0..group {
                parity[(g, g * group + j)] = 1;
            }
        }
        // Global parities: powers of distinct non-zero coefficients
        // (Eq. (7)-(8) generalised).
        for j in 0..m {
            for i in 0..k {
                let c = Gf8::exp((i + 1) as u32);
                parity[(l + j, i)] = Gf8::pow(c, (j + 1) as u32);
            }
        }
        let generator = Matrix::<Gf8>::identity(k).vstack(&parity);
        debug_assert_eq!(generator.rows(), n);
        Self {
            k,
            l,
            m,
            parity,
            generator,
        }
    }

    /// Number of local parity elements.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Data elements per local group (`k / l`).
    pub fn group_size(&self) -> usize {
        self.k / self.l
    }

    /// Which local group data element `idx` (`0..k`) belongs to.
    ///
    /// # Panics
    /// Panics if `idx >= k`.
    pub fn local_group_of(&self, idx: usize) -> usize {
        assert!(idx < self.k, "local_group_of takes a data index");
        idx / self.group_size()
    }

    /// All members of local group `g`: its data elements plus its local
    /// parity (position `k + g`).
    ///
    /// # Panics
    /// Panics if `g >= l`.
    pub fn local_members(&self, g: usize) -> Vec<usize> {
        assert!(g < self.l, "group index out of range");
        let gs = self.group_size();
        let mut v: Vec<usize> = (g * gs..(g + 1) * gs).collect();
        v.push(self.k + g);
        v
    }

    /// Verify by exhaustive enumeration that every erasure pattern of
    /// exactly `t` elements decodes. Exponential in `n choose t`; meant
    /// for tests and one-off construction validation.
    pub fn verify_tolerance(&self, t: usize) -> bool {
        let n = self.n();
        let mut idx: Vec<usize> = (0..t).collect();
        if t > n {
            return false;
        }
        loop {
            if !self.is_recoverable(&idx) {
                return false;
            }
            let mut i = t;
            let mut advanced = false;
            while i > 0 {
                i -= 1;
                if idx[i] != i + n - t {
                    idx[i] += 1;
                    for j in i + 1..t {
                        idx[j] = idx[j - 1] + 1;
                    }
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return true;
            }
        }
    }

    /// Fraction of erasure patterns of exactly `t` elements that decode
    /// (e.g. the Azure paper's "86% of four-failure patterns" for
    /// (6,2,2)).
    pub fn recoverable_fraction(&self, t: usize) -> f64 {
        let n = self.n();
        let mut total = 0u64;
        let mut ok = 0u64;
        let mut idx: Vec<usize> = (0..t).collect();
        if t > n {
            return 0.0;
        }
        loop {
            total += 1;
            if self.is_recoverable(&idx) {
                ok += 1;
            }
            let mut advanced = false;
            let mut i = t;
            while i > 0 {
                i -= 1;
                if idx[i] != i + n - t {
                    idx[i] += 1;
                    for j in i + 1..t {
                        idx[j] = idx[j - 1] + 1;
                    }
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
        ok as f64 / total as f64
    }
}

impl CandidateCode for LrcCode {
    fn k(&self) -> usize {
        self.k
    }

    fn m(&self) -> usize {
        self.l + self.m
    }

    fn name(&self) -> String {
        format!("LRC({},{},{})", self.k, self.l, self.m)
    }

    fn parity_matrix(&self) -> &Matrix<Gf8> {
        &self.parity
    }

    fn generator(&self) -> &Matrix<Gf8> {
        &self.generator
    }

    fn classify(&self, idx: usize) -> ElementClass {
        if idx < self.k {
            ElementClass::Data
        } else if idx < self.k + self.l {
            ElementClass::LocalParity(idx - self.k)
        } else {
            ElementClass::GlobalParity
        }
    }

    fn fault_tolerance(&self) -> usize {
        // Any m+1 erasures decode (verified exhaustively in tests for the
        // paper's parameters): worst case is m+1 data erasures inside one
        // local group, where the local parity plus the m global parities
        // form a Vandermonde system with exponents 0..m.
        self.m + 1
    }

    /// LRC repair: a single lost member of a local group is rebuilt from
    /// the group's other members (the paper's "significantly reduce the
    /// I/O accesses on degraded reads"); anything else falls back to
    /// solving the global system.
    fn repair_spec(&self, target: usize, erased: &[usize]) -> Option<RepairSpec> {
        let n = self.n();
        debug_assert!(target < n);
        let is_erased = |i: usize| erased.contains(&i);

        // Local fast path: target is in a local group whose other members
        // all survive.
        let group = match self.classify(target) {
            ElementClass::Data => Some(self.local_group_of(target)),
            ElementClass::LocalParity(g) => Some(g),
            ElementClass::GlobalParity => None,
        };
        if let Some(g) = group {
            let members = self.local_members(g);
            let others: Vec<usize> = members.iter().copied().filter(|&i| i != target).collect();
            if others.iter().all(|&i| !is_erased(i)) {
                return Some(RepairSpec::Exact { read: others });
            }
        }

        // Global parity with all data alive: recompute from the k data.
        if matches!(self.classify(target), ElementClass::GlobalParity)
            && (0..self.k).all(|i| !is_erased(i))
        {
            return Some(RepairSpec::Exact {
                read: (0..self.k).collect(),
            });
        }

        // Generic fallback: solve for any spanning combination.
        let avail: Vec<usize> = (0..n).filter(|&i| i != target && !is_erased(i)).collect();
        let read = solved_sources(self.generator(), target, &avail)?;
        Some(RepairSpec::Exact { read })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::CodeError;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 37 + j * 13 + 5) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn encode_all(code: &LrcCode, data: &[Vec<u8>], len: usize) -> Vec<Vec<u8>> {
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let mut parity = vec![vec![0u8; len]; code.m()];
        code.encode(&refs, &mut parity);
        parity
    }

    #[test]
    fn local_parity_is_group_xor() {
        let code = LrcCode::new(6, 2, 2);
        let len = 32;
        let data = sample_data(6, len);
        let parity = encode_all(&code, &data, len);
        // l0 = d0 + d1 + d2 (paper Eq. (5)).
        let l0: Vec<u8> = (0..len)
            .map(|j| data[0][j] ^ data[1][j] ^ data[2][j])
            .collect();
        assert_eq!(parity[0], l0);
        // l1 = d3 + d4 + d5 (paper Eq. (6)).
        let l1: Vec<u8> = (0..len)
            .map(|j| data[3][j] ^ data[4][j] ^ data[5][j])
            .collect();
        assert_eq!(parity[1], l1);
    }

    #[test]
    fn layout_matches_paper_figure_2() {
        // (6,2,2): 6 data, 2 local parities, 2 global parities = 10.
        let code = LrcCode::new(6, 2, 2);
        assert_eq!(code.n(), 10);
        assert_eq!(code.classify(0), ElementClass::Data);
        assert_eq!(code.classify(6), ElementClass::LocalParity(0));
        assert_eq!(code.classify(7), ElementClass::LocalParity(1));
        assert_eq!(code.classify(8), ElementClass::GlobalParity);
        assert_eq!(code.classify(9), ElementClass::GlobalParity);
        assert_eq!(code.local_members(0), vec![0, 1, 2, 6]);
        assert_eq!(code.local_members(1), vec![3, 4, 5, 7]);
    }

    #[test]
    fn single_failure_repairs_locally() {
        let code = LrcCode::new(6, 2, 2);
        // A lost data element reads its 2 group-mates + local parity.
        let spec = code.repair_spec(1, &[1]).unwrap();
        assert_eq!(
            spec,
            RepairSpec::Exact {
                read: vec![0, 2, 6]
            }
        );
        // A lost local parity reads its 3 data elements.
        let spec = code.repair_spec(7, &[7]).unwrap();
        assert_eq!(
            spec,
            RepairSpec::Exact {
                read: vec![3, 4, 5]
            }
        );
        // A lost global parity recomputes from all 6 data elements.
        let spec = code.repair_spec(8, &[8]).unwrap();
        assert_eq!(
            spec,
            RepairSpec::Exact {
                read: (0..6).collect()
            }
        );
    }

    #[test]
    fn degraded_repair_cost_is_group_size() {
        // The headline LRC win: single-failure repair reads k/l elements,
        // not k.
        for (k, l, m) in [(6usize, 2usize, 2usize), (8, 2, 3), (10, 2, 4)] {
            let code = LrcCode::new(k, l, m);
            let spec = code.repair_spec(0, &[0]).unwrap();
            assert_eq!(spec.read_count(), k / l, "LRC({k},{l},{m})");
        }
    }

    #[test]
    fn repair_falls_back_to_global_when_group_broken() {
        let code = LrcCode::new(6, 2, 2);
        // d0 and d1 both erased: local group 0 has two holes, so d0 must
        // be repaired globally.
        let spec = code.repair_spec(0, &[0, 1]).unwrap();
        match spec {
            RepairSpec::Exact { read } => {
                assert!(!read.contains(&0) && !read.contains(&1));
                // Must use at least one global parity.
                assert!(
                    read.iter().any(|&i| i >= 8),
                    "needs a global parity: {read:?}"
                );
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn paper_case_study_triple_failure_decodes() {
        // Paper §IV-E / Fig 6: d3, d4, d5 (one whole local group) lost —
        // Eq. (9)-(12): the system from l1, m0, m1 must be solvable.
        let code = LrcCode::new(6, 2, 2);
        let len = 24;
        let data = sample_data(6, len);
        let parity = encode_all(&code, &data, len);
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        shards[3] = None;
        shards[4] = None;
        shards[5] = None;
        code.decode(&mut shards, len).unwrap();
        for i in 3..6 {
            assert_eq!(shards[i].as_deref().unwrap(), &data[i][..]);
        }
    }

    #[test]
    fn tolerates_any_m_plus_one_failures_paper_params() {
        // (6,2,2) tolerates any 3 (paper: "can be recovered from any
        // kinds of triple disk failures").
        assert!(LrcCode::new(6, 2, 2).verify_tolerance(3));
        // Generalisation: any m+1 for the other tested parameters.
        assert!(LrcCode::new(8, 2, 3).verify_tolerance(4));
        assert!(LrcCode::new(10, 2, 4).verify_tolerance(5));
    }

    #[test]
    fn not_mds_some_larger_patterns_fail() {
        let code = LrcCode::new(6, 2, 2);
        // 4 parities' worth of redundancy but NOT any-4-recoverable:
        // e.g. losing d0,d1,d2 and l0 kills local group 0 beyond what the
        // two globals can restore.
        assert!(!code.is_recoverable(&[0, 1, 2, 6]));
        // Azure reports ~86% of 4-failure patterns recoverable.
        let frac = code.recoverable_fraction(4);
        assert!(frac > 0.80 && frac < 0.95, "fraction = {frac}");
    }

    #[test]
    fn unrecoverable_decode_reports_error() {
        let code = LrcCode::new(6, 2, 2);
        let len = 8;
        let data = sample_data(6, len);
        let parity = encode_all(&code, &data, len);
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        for i in [0, 1, 2, 6] {
            shards[i] = None;
        }
        let err = code.decode(&mut shards, len).unwrap_err();
        assert!(matches!(err, CodeError::Unrecoverable { .. }));
    }

    #[test]
    fn partial_repair_of_survivable_target() {
        // With [0,1,2,6] lost, group 1's elements remain repairable even
        // though the pattern as a whole is dead.
        let code = LrcCode::new(6, 2, 2);
        assert!(!code.is_recoverable(&[0, 1, 2, 6, 3]));
        assert!(code.is_recoverable_target(3, &[0, 1, 2, 6, 3]));
        let spec = code.repair_spec(3, &[0, 1, 2, 6, 3]).unwrap();
        assert_eq!(
            spec,
            RepairSpec::Exact {
                read: vec![4, 5, 7]
            }
        );
    }

    #[test]
    fn storage_overhead_matches_parameters() {
        for (k, l, m) in [(6usize, 2usize, 2usize), (8, 2, 3), (10, 2, 4)] {
            let code = LrcCode::new(k, l, m);
            assert_eq!(code.n(), k + l + m);
            assert_eq!(code.m(), l + m);
            assert_eq!(code.k(), k);
        }
    }

    #[test]
    fn roundtrip_all_paper_parameters_random_tolerable_patterns() {
        for (k, l, m) in [(6usize, 2usize, 2usize), (8, 2, 3), (10, 2, 4)] {
            let code = LrcCode::new(k, l, m);
            let len = 16;
            let data = sample_data(k, len);
            let parity = encode_all(&code, &data, len);
            let n = code.n();
            // Erase m+1 consecutive positions starting at various offsets.
            for start in 0..n {
                let erased: Vec<usize> = (0..m + 1).map(|i| (start + i) % n).collect();
                let mut shards: Vec<Option<Vec<u8>>> = data
                    .iter()
                    .cloned()
                    .map(Some)
                    .chain(parity.iter().cloned().map(Some))
                    .collect();
                for &e in &erased {
                    shards[e] = None;
                }
                code.decode(&mut shards, len)
                    .unwrap_or_else(|e| panic!("LRC({k},{l},{m}) {erased:?}: {e}"));
                for (i, d) in data.iter().enumerate() {
                    assert_eq!(shards[i].as_deref().unwrap(), &d[..]);
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn l_must_divide_k() {
        LrcCode::new(7, 2, 2);
    }
}

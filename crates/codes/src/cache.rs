//! Decode-coefficient caching.
//!
//! Solving the linear system for a repair is cheap relative to moving
//! megabyte regions, but under sustained degraded operation a store
//! repairs the *same* erasure geometry thousands of times (every row of
//! every stripe touched while one disk is down solves an identical
//! system). Jerasure and ISA-L both precompute and reuse decode
//! matrices; [`DecoderCache`] is that optimisation: coefficient vectors
//! keyed by `(target, available positions)`, shared across threads.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ecfrm_gf::region::mul_add_region;
use ecfrm_gf::{Gf8, Matrix};

use crate::decode::solve_coefficients;

/// Key: (target position, sorted available positions).
type Key = (usize, Vec<usize>);

/// A concurrent cache of repair-coefficient vectors for one generator
/// matrix.
///
/// Entries are `None` when the source set does not span the target, so
/// negative lookups are cached too.
///
/// ```
/// use ecfrm_codes::{CandidateCode, DecoderCache, RsCode};
///
/// let code = RsCode::vandermonde(4, 2);
/// let cache = DecoderCache::new(code.generator().clone());
/// // First solve misses; the identical geometry afterwards hits.
/// cache.coefficients(0, &[1, 2, 3, 4]).unwrap();
/// cache.coefficients(0, &[1, 2, 3, 4]).unwrap();
/// assert_eq!(cache.stats(), (1, 1));
/// ```
pub struct DecoderCache {
    generator: Matrix<Gf8>,
    entries: Mutex<HashMap<Key, Option<Arc<Vec<u8>>>>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl std::fmt::Debug for DecoderCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (h, m) = self.stats();
        write!(f, "DecoderCache({} entries, {h} hits / {m} misses)", {
            self.entries.lock().unwrap().len()
        })
    }
}

impl DecoderCache {
    /// Create a cache over a code's `n × k` generator.
    pub fn new(generator: Matrix<Gf8>) -> Self {
        Self {
            generator,
            entries: Mutex::new(HashMap::new()),
            hits: Mutex::new(0),
            misses: Mutex::new(0),
        }
    }

    /// Coefficients for rebuilding `target` from exactly the positions in
    /// `avail` (order-sensitive application, order-insensitive caching).
    pub fn coefficients(&self, target: usize, avail: &[usize]) -> Option<Arc<Vec<u8>>> {
        let mut key: Vec<usize> = avail.to_vec();
        key.sort_unstable();
        let key = (target, key);
        if let Some(cached) = self.entries.lock().unwrap().get(&key) {
            *self.hits.lock().unwrap() += 1;
            return cached.clone();
        }
        *self.misses.lock().unwrap() += 1;
        // Solve against the SORTED positions so the cached vector matches
        // the canonical key order.
        let solved = solve_coefficients(&self.generator, target, &key.1).map(Arc::new);
        self.entries.lock().unwrap().insert(key, solved.clone());
        solved
    }

    /// Rebuild `target` from `(position, region)` sources using cached
    /// coefficients.
    ///
    /// # Panics
    /// Panics if source regions have differing lengths.
    pub fn reconstruct(
        &self,
        target: usize,
        sources: &[(usize, &[u8])],
        len: usize,
    ) -> Option<Vec<u8>> {
        let positions: Vec<usize> = sources.iter().map(|(p, _)| *p).collect();
        let coeffs = self.coefficients(target, &positions)?;
        // Canonical (sorted) coefficient order → look up each source.
        let mut sorted: Vec<(usize, &[u8])> = sources.to_vec();
        sorted.sort_unstable_by_key(|(p, _)| *p);
        let mut out = vec![0u8; len];
        for (&c, (_, region)) in coeffs.iter().zip(&sorted) {
            if c != 0 {
                assert_eq!(region.len(), len, "source region length mismatch");
                mul_add_region(c, region, &mut out);
            }
        }
        Some(out)
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.lock().unwrap(), *self.misses.lock().unwrap())
    }

    /// Number of cached systems.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CandidateCode, LrcCode, RsCode};

    fn encode_full(code: &dyn CandidateCode, len: usize) -> Vec<Vec<u8>> {
        let data: Vec<Vec<u8>> = (0..code.k())
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 37 + j * 11 + 3) % 256) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let mut parity = vec![vec![0u8; len]; code.m()];
        code.encode(&refs, &mut parity);
        data.into_iter().chain(parity).collect()
    }

    #[test]
    fn cached_reconstruction_matches_direct() {
        let code = RsCode::vandermonde(6, 3);
        let len = 32;
        let full = encode_full(&code, len);
        let cache = DecoderCache::new(code.generator().clone());
        for target in 0..9usize {
            let sources: Vec<(usize, &[u8])> = (0..9)
                .filter(|&p| p != target)
                .take(6)
                .map(|p| (p, full[p].as_slice()))
                .collect();
            let got = cache.reconstruct(target, &sources, len).unwrap();
            assert_eq!(got, full[target], "target {target}");
        }
    }

    #[test]
    fn repeated_geometry_hits_the_cache() {
        let code = LrcCode::new(6, 2, 2);
        let len = 16;
        let full = encode_full(&code, len);
        let cache = DecoderCache::new(code.generator().clone());
        // Same geometry 100 times: 1 miss, 99 hits.
        for _ in 0..100 {
            let sources: Vec<(usize, &[u8])> = [1usize, 2, 6]
                .iter()
                .map(|&p| (p, full[p].as_slice()))
                .collect();
            let got = cache.reconstruct(0, &sources, len).unwrap();
            assert_eq!(got, full[0]);
        }
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 99);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn source_order_does_not_matter() {
        let code = RsCode::vandermonde(4, 2);
        let len = 8;
        let full = encode_full(&code, len);
        let cache = DecoderCache::new(code.generator().clone());
        let fwd: Vec<(usize, &[u8])> = [1usize, 2, 3, 4]
            .iter()
            .map(|&p| (p, full[p].as_slice()))
            .collect();
        let rev: Vec<(usize, &[u8])> = [4usize, 3, 2, 1]
            .iter()
            .map(|&p| (p, full[p].as_slice()))
            .collect();
        let a = cache.reconstruct(0, &fwd, len).unwrap();
        let b = cache.reconstruct(0, &rev, len).unwrap();
        assert_eq!(a, full[0]);
        assert_eq!(b, full[0]);
        // Both orders share one cache entry.
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().0, 1);
    }

    #[test]
    fn insufficient_sources_cached_as_negative() {
        let code = RsCode::vandermonde(6, 3);
        let len = 8;
        let full = encode_full(&code, len);
        let cache = DecoderCache::new(code.generator().clone());
        let sources: Vec<(usize, &[u8])> = [1usize, 2]
            .iter()
            .map(|&p| (p, full[p].as_slice()))
            .collect();
        assert!(cache.reconstruct(0, &sources, len).is_none());
        assert!(cache.reconstruct(0, &sources, len).is_none());
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1), "negative result should be cached");
    }

    #[test]
    fn parallel_access_is_safe() {
        let code = RsCode::vandermonde(6, 3);
        let len = 16;
        let full = Arc::new(encode_full(&code, len));
        let cache = Arc::new(DecoderCache::new(code.generator().clone()));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let full = Arc::clone(&full);
                std::thread::spawn(move || {
                    let target = t % 6;
                    let sources: Vec<(usize, &[u8])> = (0..9)
                        .filter(|&p| p != target)
                        .take(6)
                        .map(|p| (p, full[p].as_slice()))
                        .collect();
                    for _ in 0..50 {
                        let got = cache.reconstruct(target, &sources, len).unwrap();
                        assert_eq!(got, full[target]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 6);
    }
}

//! Single-parity XOR code (`RAID-5` style): the smallest candidate code.
//!
//! `(k, 1)`: one parity element equal to the XOR of all data. Included
//! because (a) it demonstrates EC-FRM works over *any* one-row code, not
//! just RS/LRC, and (b) its tiny parameter space lets tests enumerate
//! every case exhaustively.

use crate::traits::{CandidateCode, ElementClass};
use ecfrm_gf::{Gf8, Matrix};

/// RAID-5 style `(k, 1)` code: one XOR parity.
#[derive(Debug, Clone)]
pub struct XorCode {
    k: usize,
    parity: Matrix<Gf8>,
    generator: Matrix<Gf8>,
}

impl XorCode {
    /// Construct a `(k, 1)` XOR code.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "XOR code requires k > 0");
        let parity = Matrix::<Gf8>::from_data(1, k, vec![1; k]);
        let generator = Matrix::<Gf8>::identity(k).vstack(&parity);
        Self {
            k,
            parity,
            generator,
        }
    }
}

impl CandidateCode for XorCode {
    fn k(&self) -> usize {
        self.k
    }

    fn m(&self) -> usize {
        1
    }

    fn name(&self) -> String {
        format!("XOR({},1)", self.k)
    }

    fn parity_matrix(&self) -> &Matrix<Gf8> {
        &self.parity
    }

    fn generator(&self) -> &Matrix<Gf8> {
        &self.generator
    }

    fn classify(&self, idx: usize) -> ElementClass {
        if idx < self.k {
            ElementClass::Data
        } else {
            ElementClass::GlobalParity
        }
    }

    fn fault_tolerance(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_is_xor_of_all_data() {
        let code = XorCode::new(4);
        let data: Vec<Vec<u8>> = (1..=4u8).map(|i| vec![i * 3; 8]).collect();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let mut parity = vec![vec![0u8; 8]; 1];
        code.encode(&refs, &mut parity);
        let want: Vec<u8> = (0..8)
            .map(|j| data.iter().fold(0, |acc, d| acc ^ d[j]))
            .collect();
        assert_eq!(parity[0], want);
    }

    #[test]
    fn every_single_erasure_recovers() {
        let code = XorCode::new(5);
        let data: Vec<Vec<u8>> = (0..5).map(|i| vec![(i * 7 + 1) as u8; 6]).collect();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let mut parity = vec![vec![0u8; 6]; 1];
        code.encode(&refs, &mut parity);
        for lost in 0..6 {
            let mut shards: Vec<Option<Vec<u8>>> = data
                .iter()
                .cloned()
                .map(Some)
                .chain(parity.iter().cloned().map(Some))
                .collect();
            shards[lost] = None;
            code.decode(&mut shards, 6).unwrap();
            for (i, d) in data.iter().enumerate() {
                assert_eq!(shards[i].as_deref().unwrap(), &d[..]);
            }
        }
    }

    #[test]
    fn double_erasure_fails() {
        let code = XorCode::new(3);
        assert!(!code.is_recoverable(&[0, 1]));
        assert!(code.is_recoverable(&[2]));
    }

    #[test]
    fn name_and_tolerance() {
        let code = XorCode::new(6);
        assert_eq!(code.name(), "XOR(6,1)");
        assert_eq!(code.fault_tolerance(), 1);
        assert_eq!(code.n(), 7);
    }
}

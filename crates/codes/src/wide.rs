//! Wide-stripe Reed–Solomon over `GF(2^16)`: stripes beyond the
//! 255-element reach of byte symbols.
//!
//! The [`CandidateCode`](crate::CandidateCode) trait (and everything the
//! evaluation needs) is byte-symbol `GF(2^8)`, matching the paper's
//! Jerasure `w = 8` setup. [`WideRs`] is the substrate extension for
//! deployments with hundreds-to-thousands of devices per stripe — the
//! regime Jerasure's `w = 16` covers. It reuses the generic
//! [`Matrix`] machinery (Vandermonde derivation, Gauss–Jordan solving)
//! instantiated at [`Gf16`], and the byte-pair region kernels of
//! [`ecfrm_gf::region16`].
//!
//! EC-FRM's layout math is code-agnostic — [`EcFrmLayout`] accepts any
//! `(n, k)` — so wide stripes get the same sequential-data placement;
//! only the planner/scheme plumbing (which is `GF(2^8)`-typed) stops at
//! 255. The example below shows a (300, 240) stripe.
//!
//! ```
//! use ecfrm_codes::wide::WideRs;
//!
//! let rs = WideRs::new(40, 10); // any 10 of 50 elements may vanish
//! let data: Vec<Vec<u8>> = (0..40).map(|i| vec![i as u8; 32]).collect();
//! let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
//! let mut parity = vec![vec![0u8; 32]; 10];
//! rs.encode(&refs, &mut parity);
//! ```
//!
//! [`Matrix`]: ecfrm_gf::Matrix
//! [`Gf16`]: ecfrm_gf::Gf16
//! [`EcFrmLayout`]: https://docs.rs/ecfrm-layout

use ecfrm_gf::region16::{dot_region_multi16, mul_add_region16};
use ecfrm_gf::{Gf16, Matrix};

use crate::traits::CodeError;

/// Systematic Reed–Solomon `(k, m)` over `GF(2^16)` (symbols = LE byte
/// pairs). MDS: any `m` erasures decode. Supports `k + m` up to 65535.
#[derive(Debug, Clone)]
pub struct WideRs {
    k: usize,
    m: usize,
    parity: Matrix<Gf16>,
    generator: Matrix<Gf16>,
}

impl WideRs {
    /// Construct via the systematic-Vandermonde derivation at width 16.
    ///
    /// # Panics
    /// Panics if `k == 0`, `m == 0`, or `k + m > 65535`.
    pub fn new(k: usize, m: usize) -> Self {
        assert!(k > 0 && m > 0, "WideRs requires k > 0 and m > 0");
        assert!(k + m <= 65535, "WideRs(k,m) needs k+m <= 65535");
        let parity = Matrix::<Gf16>::systematic_vandermonde_parity(k, m);
        let generator = Matrix::<Gf16>::identity(k).vstack(&parity);
        Self {
            k,
            m,
            parity,
            generator,
        }
    }

    /// Data symbols per stripe.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Parity symbols per stripe.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total elements per stripe.
    pub fn n(&self) -> usize {
        self.k + self.m
    }

    /// The `m × k` parity coefficient block.
    pub fn parity_matrix(&self) -> &Matrix<Gf16> {
        &self.parity
    }

    /// The full `n × k` generator `[I_k; P]` over `GF(2^16)`.
    pub fn generator(&self) -> &Matrix<Gf16> {
        &self.generator
    }

    /// Rebuild exactly one element from `sources` (`(position, region)`
    /// pairs). MDS: any `k` sources suffice; returns `None` with fewer.
    ///
    /// # Panics
    /// Panics if a source region's length differs from `len`.
    pub fn reconstruct_one(
        &self,
        target: usize,
        sources: &[(usize, &[u8])],
        len: usize,
    ) -> Option<Vec<u8>> {
        if sources.len() < self.k {
            return None;
        }
        let picked = &sources[..self.k];
        let rows: Vec<usize> = picked.iter().map(|(p, _)| *p).collect();
        let a = self.generator.select_rows(&rows);
        let ainv = a.invert()?; // always Some for distinct rows (MDS)
        let trow = Matrix::<Gf16>::from_data(1, self.k, self.generator.row(target).to_vec());
        let coeffs = trow.mul(&ainv);
        let mut out = vec![0u8; len];
        for (j, (_, region)) in picked.iter().enumerate() {
            assert_eq!(region.len(), len, "source region length mismatch");
            let c = coeffs[(0, j)] as u16;
            if c != 0 {
                mul_add_region16(c, region, &mut out);
            }
        }
        Some(out)
    }

    /// Compute all parities from the `k` data regions (byte lengths must
    /// be even: one symbol per byte pair) in one fused streaming pass.
    ///
    /// # Panics
    /// Panics on arity/length mismatches.
    pub fn encode(&self, data: &[&[u8]], parity: &mut [Vec<u8>]) {
        assert_eq!(data.len(), self.k, "encode expects k data regions");
        assert_eq!(parity.len(), self.m, "encode expects m parity regions");
        let rows: Vec<Vec<u16>> = (0..self.m)
            .map(|i| self.parity.row(i).iter().map(|&c| c as u16).collect())
            .collect();
        let row_refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let mut dsts: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        dot_region_multi16(&row_refs, data, &mut dsts);
    }

    /// True when the erasure pattern decodes (always, for ≤ m erasures —
    /// MDS).
    pub fn is_recoverable(&self, erased: &[usize]) -> bool {
        erased.iter().filter(|&&e| e < self.n()).count() <= self.m
    }

    /// Reconstruct every `None` shard in place.
    ///
    /// # Errors
    /// [`CodeError::Unrecoverable`] beyond `m` erasures;
    /// [`CodeError::Shape`] on inconsistent shapes.
    pub fn decode(&self, shards: &mut [Option<Vec<u8>>], len: usize) -> Result<(), CodeError> {
        let n = self.n();
        if shards.len() != n {
            return Err(CodeError::Shape(format!(
                "expected {n} shards, got {}",
                shards.len()
            )));
        }
        if !len.is_multiple_of(2) {
            return Err(CodeError::Shape(
                "GF(2^16) regions must be even-length".into(),
            ));
        }
        let erased: Vec<usize> = (0..n).filter(|&i| shards[i].is_none()).collect();
        if erased.is_empty() {
            return Ok(());
        }
        if erased.len() > self.m {
            return Err(CodeError::Unrecoverable { erased });
        }
        // Select the first k surviving rows (any k suffice: MDS), invert,
        // and express each erased element over them.
        let avail: Vec<usize> = (0..n)
            .filter(|&i| shards[i].is_some())
            .take(self.k)
            .collect();
        let a = self.generator.select_rows(&avail);
        let ainv = a.invert().ok_or(CodeError::Unrecoverable {
            erased: erased.clone(),
        })?;
        // Coefficients of element e over the selected survivors:
        // row_e(G) · A⁻¹ — one row per erased element, replayed through
        // the fused kernel so each survivor region streams once.
        let coeff_rows: Vec<Vec<u16>> = erased
            .iter()
            .map(|&e| {
                let ge = self.generator.row(e).to_vec();
                let row = Matrix::<Gf16>::from_data(1, self.k, ge);
                let coeffs = row.mul(&ainv);
                (0..self.k).map(|j| coeffs[(0, j)] as u16).collect()
            })
            .collect();
        let mut outs: Vec<Vec<u8>> = erased.iter().map(|_| vec![0u8; len]).collect();
        {
            let row_refs: Vec<&[u16]> = coeff_rows.iter().map(Vec::as_slice).collect();
            let srcs: Vec<&[u8]> = avail
                .iter()
                .map(|&i| shards[i].as_deref().unwrap())
                .collect();
            let mut out_refs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
            dot_region_multi16(&row_refs, &srcs, &mut out_refs);
        }
        for (&e, out) in erased.iter().zip(outs) {
            shards[e] = Some(out);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 29 + j * 13 + 1) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn encode_all(rs: &WideRs, data: &[Vec<u8>], len: usize) -> Vec<Vec<u8>> {
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let mut parity = vec![vec![0u8; len]; rs.m()];
        rs.encode(&refs, &mut parity);
        parity
    }

    #[test]
    fn roundtrip_small() {
        let rs = WideRs::new(6, 3);
        let len = 32;
        let data = sample(6, len);
        let parity = encode_all(&rs, &data, len);
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        for e in [0usize, 4, 7] {
            shards[e] = None;
        }
        rs.decode(&mut shards, len).unwrap();
        for (i, d) in data.iter().enumerate() {
            assert_eq!(shards[i].as_deref().unwrap(), &d[..]);
        }
        for (i, p) in parity.iter().enumerate() {
            assert_eq!(shards[6 + i].as_deref().unwrap(), &p[..]);
        }
    }

    #[test]
    fn wide_stripe_beyond_gf8_limit() {
        // (240, 60): n = 300 > 255 — impossible at w = 8, fine at w = 16.
        let rs = WideRs::new(240, 60);
        let len = 8;
        let data = sample(240, len);
        let parity = encode_all(&rs, &data, len);
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        // Erase 60 elements spread over data and parity.
        for i in 0..60 {
            shards[i * 5] = None;
        }
        rs.decode(&mut shards, len).unwrap();
        for (i, d) in data.iter().enumerate() {
            assert_eq!(shards[i].as_deref().unwrap(), &d[..], "element {i}");
        }
    }

    #[test]
    fn beyond_m_erasures_fails() {
        let rs = WideRs::new(4, 2);
        let len = 8;
        let data = sample(4, len);
        let parity = encode_all(&rs, &data, len);
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        for e in [0usize, 1, 2] {
            shards[e] = None;
        }
        assert!(matches!(
            rs.decode(&mut shards, len),
            Err(CodeError::Unrecoverable { .. })
        ));
        assert!(!rs.is_recoverable(&[0, 1, 2]));
        assert!(rs.is_recoverable(&[0, 5]));
    }

    #[test]
    fn odd_region_length_rejected() {
        let rs = WideRs::new(2, 1);
        let mut shards = vec![Some(vec![0u8; 3]), Some(vec![0u8; 3]), None];
        assert!(matches!(
            rs.decode(&mut shards, 3),
            Err(CodeError::Shape(_))
        ));
    }
}
